//! Micro-benchmarks of the G-COPSS building blocks: the operations whose
//! costs the paper's router calibration aggregates (name handling,
//! Bloom-filter ST lookup, FIB LPM, PIT churn) plus end-to-end engine and
//! simulator throughput.
//!
//! Runs on a self-contained warmup + timed-iterations loop (`harness =
//! false`); no external benchmark framework. Invoke with
//! `cargo bench --offline`. Pass a substring argument to run a subset,
//! e.g. `cargo bench --offline -- names/`.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::hint::black_box;
use std::time::{Duration, Instant};

use gcopss_bench::{write_bench, BenchEntry};
use gcopss_copss::{CopssEngine, MulticastPacket, RpId, SubscriptionTable, TrafficWindow};
use gcopss_core::experiments::{Workload, WorkloadParams};
use gcopss_core::scenario::{GcopssConfig, NetworkSpec, ScenarioSpec};
use gcopss_core::MetricsMode;
use gcopss_game::GameMap;
use gcopss_names::{BloomFilter, Cd, Name, NameTree};
use gcopss_ndn::{Data, FaceId, Interest, NdnConfig, NdnEngine};
use gcopss_sim::{LineageConfig, TelemetryConfig};

/// Target wall time for the measurement phase of a fast benchmark.
const MEASURE_TARGET: Duration = Duration::from_millis(300);
/// Target wall time for the warmup phase of a fast benchmark.
const WARMUP_TARGET: Duration = Duration::from_millis(100);

struct Runner {
    filter: Option<String>,
    entries: RefCell<Vec<BenchEntry>>,
}

impl Runner {
    fn new() -> Self {
        // `cargo bench -- <filter>` passes the filter as an argument; cargo
        // also passes `--bench`, which we ignore.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with("--"));
        println!("{:<44} {:>12} {:>14}", "benchmark", "iterations", "per-iter");
        Runner {
            filter,
            entries: RefCell::new(Vec::new()),
        }
    }

    fn skip(&self, id: &str) -> bool {
        self.filter.as_deref().is_some_and(|f| !id.contains(f))
    }

    fn record(&self, id: &str, median_ns: f64, iters: u64) {
        self.entries
            .borrow_mut()
            .push(BenchEntry::new(id, median_ns, iters));
    }

    /// Writes the `BENCH_<label>.json` perf trajectory — only for unfiltered
    /// runs, so the benchmark-set fingerprint stays comparable run to run.
    fn write_trajectory(&self, label: &str) {
        if self.filter.is_some() {
            return;
        }
        // `cargo bench` runs with the package dir as cwd; hop to the
        // workspace root so results/ matches the experiment binaries.
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        std::env::set_current_dir(root).expect("chdir to workspace root");
        write_bench(label, 0, &self.entries.borrow()).expect("write bench trajectory");
    }

    /// Warm up for ~WARMUP_TARGET, then time batches until MEASURE_TARGET
    /// has elapsed, reporting the mean per-iteration cost.
    fn bench<T>(&self, id: &str, mut f: impl FnMut() -> T) {
        if self.skip(id) {
            return;
        }
        // Warmup: discover a batch size that takes ≥ ~1ms so timer overhead
        // is negligible, while warming caches/branch predictors.
        let mut batch: u64 = 1;
        let warm_start = Instant::now();
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t.elapsed();
            if dt < Duration::from_millis(1) {
                batch = batch.saturating_mul(2);
            }
            if warm_start.elapsed() >= WARMUP_TARGET && dt >= Duration::from_millis(1) {
                break;
            }
            if batch > 1 << 30 {
                break;
            }
        }
        // Measurement: per-batch means, reported as their median (robust
        // against scheduler noise in a shared environment).
        let mut iters: u64 = 0;
        let mut elapsed = Duration::ZERO;
        let mut batch_ns: Vec<f64> = Vec::new();
        while elapsed < MEASURE_TARGET {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t.elapsed();
            batch_ns.push(dt.as_nanos() as f64 / batch as f64);
            elapsed += dt;
            iters += batch;
        }
        batch_ns.sort_by(f64::total_cmp);
        let per_iter = batch_ns[batch_ns.len() / 2];
        println!("{:<44} {:>12} {:>11.1} ns", id, iters, per_iter);
        self.record(id, per_iter, iters);
    }

    /// Variant for slow, end-to-end benchmarks: fixed small iteration count,
    /// one warmup run.
    fn bench_slow<T>(&self, id: &str, iters: u64, mut f: impl FnMut() -> T) {
        if self.skip(id) {
            return;
        }
        black_box(f()); // warmup
        let mut iter_ns: Vec<f64> = Vec::with_capacity(iters as usize);
        for _ in 0..iters {
            let t = Instant::now();
            black_box(f());
            iter_ns.push(t.elapsed().as_nanos() as f64);
        }
        iter_ns.sort_by(f64::total_cmp);
        let median_ns = iter_ns[iter_ns.len() / 2];
        println!("{:<44} {:>12} {:>11.2} ms", id, iters, median_ns / 1e6);
        self.record(id, median_ns, iters);
    }
}

fn bench_names(r: &Runner) {
    r.bench("names/parse", || "/1/2/3".parse::<Name>().unwrap());
    let n = Name::parse_lit("/1/2/3");
    r.bench("names/hash_chain", || n.hash_chain());
    r.bench("names/cd_new", || Cd::new(n.clone()));
    let m = Name::parse_lit("/1/2");
    r.bench("names/is_prefix_of", || m.is_prefix_of(&n));
}

fn bench_bloom_and_st(r: &Runner) {
    // The paper's map: 31 leaf CDs, 62 players' subscriptions.
    let map = GameMap::paper_map();
    let mut st = SubscriptionTable::default();
    let anchors: BTreeSet<RpId> = [RpId(0)].into();
    let mut f = 0u32;
    for area in map.areas() {
        for _ in 0..2 {
            for cd in map.subscription_cds(area) {
                st.subscribe(FaceId(f), cd, anchors.clone(), true);
            }
            f += 1;
        }
    }
    let cd = Cd::parse_lit("/3/4");
    r.bench("subscription_table/matching_faces_index", || {
        st.matching_faces(&cd, None, Some(RpId(0)))
    });
    r.bench("subscription_table/matching_faces_bloom", || {
        st.matching_faces_bloom(&cd, None, Some(RpId(0)))
    });
    r.bench("subscription_table/matching_faces_exact", || {
        st.matching_faces_exact(&cd, None, Some(RpId(0)))
    });

    let mut bloom = BloomFilter::default();
    for leaf in map.leaf_cds() {
        bloom.insert(leaf.stable_hash());
    }
    let hashes = cd.hashes().as_slice().to_vec();
    r.bench("subscription_table/bloom_contains_any", || {
        bloom.contains_any(&hashes)
    });
}

fn bench_fib_pit(r: &Runner) {
    let mut tree: NameTree<u32> = NameTree::new();
    let mut fib = gcopss_ndn::Fib::new();
    for i in 0..400u32 {
        tree.insert(Name::parse_lit("/player").child_index(i), i);
        fib.add(Name::parse_lit("/player").child_index(i), FaceId(i));
    }
    let probe = Name::parse_lit("/player/250/17");
    let chain = probe.hash_chain();
    r.bench("ndn_engine/fib_lpm_400_routes", || {
        fib.lookup(&probe).map(<[FaceId]>::len)
    });
    r.bench("ndn_engine/fib_lpm_hashed_400_routes", || {
        fib.lookup_hashed(&probe, &chain).map(<[FaceId]>::len)
    });
    r.bench("ndn_engine/nametree_lpm_400_routes", || {
        tree.longest_prefix(&probe)
    });

    let mut e = NdnEngine::new(NdnConfig::default());
    e.fib_mut().add(Name::parse_lit("/a"), FaceId(9));
    let mut nonce = 0u64;
    r.bench("ndn_engine/interest_data_round", || {
        nonce += 1;
        let i = Interest::new(Name::parse_lit("/a/b"), nonce);
        black_box(e.process_interest(nonce, FaceId(1), i));
        let d = Data::new(
            Name::parse_lit("/a/b"),
            gcopss_compat::bytes::Bytes::from_static(b"x"),
        );
        e.process_data(nonce, FaceId(9), d)
    });
}

fn bench_copss_engine(r: &Runner) {
    let map = GameMap::paper_map();
    let mut e = CopssEngine::new();
    e.rp_table_mut().assign(Name::root(), RpId(0)).unwrap();
    for (f, area) in map.areas().enumerate() {
        e.handle_subscribe(FaceId(f as u32), &map.subscription_cds(area), None);
    }
    let m = MulticastPacket::new(Cd::parse_lit("/2/3"), gcopss_compat::bytes::Bytes::new(), 1)
        .on_tree(RpId(0));
    r.bench("copss_engine/rp_st_lookup", || {
        e.multicast_faces(&m.cd, None, m.tree)
    });

    let mut w = TrafficWindow::new(2_000);
    let cd = Name::parse_lit("/1/2");
    r.bench("copss_engine/traffic_window_record", || {
        w.record(black_box(cd.clone()))
    });
}

fn bench_end_to_end(r: &Runner) {
    for &updates in &[500usize, 2_000] {
        let id = format!("end_to_end/gcopss_3rp_backbone/{updates}");
        if r.skip(&id) {
            continue;
        }
        let w = Workload::counter_strike(&WorkloadParams {
            updates,
            players: 100,
            ..WorkloadParams::default()
        });
        let net = NetworkSpec::default_backbone(7);
        r.bench_slow(&id, 10, || {
            let cfg = GcopssConfig {
                metrics_mode: MetricsMode::StatsOnly,
                rp_count: 3,
                ..GcopssConfig::default()
            };
            let mut built = ScenarioSpec::new(&net, &w.map, &w.population, &w.trace)
                .gcopss(cfg)
                .build()
                .into_gcopss();
            built.sim.run();
            black_box(built.sim.world().metrics.delivered())
        });
    }
}

/// Telemetry cost on the same end-to-end run: `off` must match the plain
/// `end_to_end` numbers above (the disabled path is a single branch per
/// packet), `on` shows the full-instrumentation price.
fn bench_telemetry_overhead(r: &Runner) {
    let variants: [(&str, Option<TelemetryConfig>); 3] = [
        ("telemetry/end_to_end_off", None),
        (
            "telemetry/end_to_end_on_nojournal",
            Some(TelemetryConfig {
                journal_capacity: 0,
                journal_sample: 1,
            }),
        ),
        ("telemetry/end_to_end_on", Some(TelemetryConfig::default())),
    ];
    let w = Workload::counter_strike(&WorkloadParams {
        updates: 2_000,
        players: 100,
        ..WorkloadParams::default()
    });
    let net = NetworkSpec::default_backbone(7);
    for (id, tcfg) in variants {
        if r.skip(id) {
            continue;
        }
        r.bench_slow(id, 10, || {
            let cfg = GcopssConfig {
                metrics_mode: MetricsMode::StatsOnly,
                rp_count: 3,
                ..GcopssConfig::default()
            };
            let mut built = ScenarioSpec::new(&net, &w.map, &w.population, &w.trace)
                .gcopss(cfg)
                .build()
                .into_gcopss();
            if let Some(t) = &tcfg {
                built.sim.enable_telemetry(t.clone());
            }
            built.sim.run();
            black_box(built.sim.world().metrics.delivered())
        });
    }
}

/// Lineage-tracer cost on the same end-to-end run: `off` must stay within
/// noise of the plain `end_to_end` numbers (the disabled path is one
/// branch per packet event), `sampled` shows the 1-in-16 price and `full`
/// the every-lineage price paid by the delivery audit.
fn bench_lineage_overhead(r: &Runner) {
    let variants: [(&str, Option<LineageConfig>); 3] = [
        ("lineage/end_to_end_off", None),
        (
            "lineage/end_to_end_sampled_16",
            Some(LineageConfig {
                sample: 16,
                ..LineageConfig::default()
            }),
        ),
        ("lineage/end_to_end_full", Some(LineageConfig::default())),
    ];
    let w = Workload::counter_strike(&WorkloadParams {
        updates: 2_000,
        players: 100,
        ..WorkloadParams::default()
    });
    let net = NetworkSpec::default_backbone(7);
    for (id, lcfg) in variants {
        if r.skip(id) {
            continue;
        }
        r.bench_slow(id, 10, || {
            let cfg = GcopssConfig {
                metrics_mode: MetricsMode::StatsOnly,
                rp_count: 3,
                ..GcopssConfig::default()
            };
            let mut built = ScenarioSpec::new(&net, &w.map, &w.population, &w.trace)
                .gcopss(cfg)
                .build()
                .into_gcopss();
            if let Some(l) = &lcfg {
                built.sim.enable_lineage(l.clone());
            }
            built.sim.run();
            black_box((
                built.sim.lineage().spans().len(),
                built.sim.world().metrics.delivered(),
            ))
        });
    }
}

/// Self-profiler cost on the same end-to-end run: `off` must stay within
/// noise of the plain `end_to_end` numbers (the disabled path is a single
/// thread-local branch per scope), `on` shows the price of full hot-loop
/// attribution (two clock reads plus a tree update per phase).
fn bench_prof_overhead(r: &Runner) {
    let variants: [(&str, bool); 2] = [
        ("prof/end_to_end_off", false),
        ("prof/end_to_end_on", true),
    ];
    let w = Workload::counter_strike(&WorkloadParams {
        updates: 2_000,
        players: 100,
        ..WorkloadParams::default()
    });
    let net = NetworkSpec::default_backbone(7);
    for (id, enabled) in variants {
        if r.skip(id) {
            continue;
        }
        r.bench_slow(id, 10, || {
            let cfg = GcopssConfig {
                metrics_mode: MetricsMode::StatsOnly,
                rp_count: 3,
                ..GcopssConfig::default()
            };
            let mut built = ScenarioSpec::new(&net, &w.map, &w.population, &w.trace)
                .gcopss(cfg)
                .build()
                .into_gcopss();
            gcopss_sim::prof::reset();
            if enabled {
                gcopss_sim::prof::enable();
            }
            built.sim.run();
            gcopss_sim::prof::disable();
            black_box(built.sim.world().metrics.delivered())
        });
    }
}

fn main() {
    let r = Runner::new();
    bench_names(&r);
    bench_bloom_and_st(&r);
    bench_fib_pit(&r);
    bench_copss_engine(&r);
    bench_end_to_end(&r);
    bench_telemetry_overhead(&r);
    bench_lineage_overhead(&r);
    bench_prof_overhead(&r);
    r.write_trajectory("micro");
}
