//! Criterion micro-benchmarks of the G-COPSS building blocks: the
//! operations whose costs the paper's router calibration aggregates
//! (name handling, Bloom-filter ST lookup, FIB LPM, PIT churn) plus
//! end-to-end engine and simulator throughput.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeSet;
use std::sync::Arc;

use gcopss_copss::{CopssEngine, MulticastPacket, RpId, SubscriptionTable, TrafficWindow};
use gcopss_core::experiments::{Workload, WorkloadParams};
use gcopss_core::scenario::{build_gcopss, GcopssConfig, NetworkSpec};
use gcopss_core::MetricsMode;
use gcopss_game::GameMap;
use gcopss_names::{BloomFilter, Cd, Name, NameTree};
use gcopss_ndn::{Data, FaceId, Interest, NdnConfig, NdnEngine};

fn bench_names(c: &mut Criterion) {
    let mut g = c.benchmark_group("names");
    g.bench_function("parse", |b| {
        b.iter(|| black_box("/1/2/3".parse::<Name>().unwrap()));
    });
    let n = Name::parse_lit("/1/2/3");
    g.bench_function("hash_chain", |b| {
        b.iter(|| black_box(n.hash_chain()));
    });
    g.bench_function("cd_new", |b| {
        b.iter(|| black_box(Cd::new(n.clone())));
    });
    let m = Name::parse_lit("/1/2");
    g.bench_function("is_prefix_of", |b| {
        b.iter(|| black_box(m.is_prefix_of(&n)));
    });
    g.finish();
}

fn bench_bloom_and_st(c: &mut Criterion) {
    let mut g = c.benchmark_group("subscription_table");
    // The paper's map: 31 leaf CDs, 62 players' subscriptions.
    let map = GameMap::paper_map();
    let mut st = SubscriptionTable::default();
    let anchors: BTreeSet<RpId> = [RpId(0)].into();
    let mut f = 0u32;
    for area in map.areas() {
        for _ in 0..2 {
            for cd in map.subscription_cds(area) {
                st.subscribe(FaceId(f), cd, anchors.clone(), true);
            }
            f += 1;
        }
    }
    let cd = Cd::parse_lit("/3/4");
    g.bench_function("matching_faces_bloom", |b| {
        b.iter(|| black_box(st.matching_faces(&cd, None, Some(RpId(0)))));
    });
    g.bench_function("matching_faces_exact", |b| {
        b.iter(|| black_box(st.matching_faces_exact(&cd, None, Some(RpId(0)))));
    });

    let mut bloom = BloomFilter::default();
    for leaf in map.leaf_cds() {
        bloom.insert(leaf.stable_hash());
    }
    let hashes = cd.hashes().as_slice().to_vec();
    g.bench_function("bloom_contains_any", |b| {
        b.iter(|| black_box(bloom.contains_any(&hashes)));
    });
    g.finish();
}

fn bench_fib_pit(c: &mut Criterion) {
    let mut g = c.benchmark_group("ndn_engine");
    let mut tree: NameTree<u32> = NameTree::new();
    for i in 0..400u32 {
        tree.insert(Name::parse_lit("/player").child_index(i), i);
    }
    let probe = Name::parse_lit("/player/250/17");
    g.bench_function("fib_lpm_400_routes", |b| {
        b.iter(|| black_box(tree.longest_prefix(&probe)));
    });

    g.bench_function("interest_data_round", |b| {
        let mut e = NdnEngine::new(NdnConfig::default());
        e.fib_mut().add(Name::parse_lit("/a"), FaceId(9));
        let mut nonce = 0u64;
        b.iter(|| {
            nonce += 1;
            let i = Interest::new(Name::parse_lit("/a/b"), nonce);
            black_box(e.process_interest(nonce, FaceId(1), i));
            let d = Data::new(Name::parse_lit("/a/b"), bytes::Bytes::from_static(b"x"));
            black_box(e.process_data(nonce, FaceId(9), d));
        });
    });
    g.finish();
}

fn bench_copss_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("copss_engine");
    let map = GameMap::paper_map();
    let mut e = CopssEngine::new();
    e.rp_table_mut().assign(Name::root(), RpId(0)).unwrap();
    let mut f = 0u32;
    for area in map.areas() {
        e.handle_subscribe(FaceId(f), &map.subscription_cds(area), None);
        f += 1;
    }
    let m = MulticastPacket::new(Cd::parse_lit("/2/3"), bytes::Bytes::new(), 1).on_tree(RpId(0));
    g.bench_function("rp_st_lookup", |b| {
        b.iter(|| black_box(e.multicast_faces(&m.cd, None, m.tree)));
    });

    g.bench_function("traffic_window_record", |b| {
        let mut w = TrafficWindow::new(2_000);
        let cd = Name::parse_lit("/1/2");
        b.iter(|| w.record(black_box(cd.clone())));
    });
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    for &updates in &[500usize, 2_000] {
        g.bench_with_input(
            BenchmarkId::new("gcopss_3rp_backbone", updates),
            &updates,
            |b, &updates| {
                let w = Workload::counter_strike(&WorkloadParams {
                    updates,
                    players: 100,
                    ..WorkloadParams::default()
                });
                let net = NetworkSpec::default_backbone(7);
                b.iter(|| {
                    let cfg = GcopssConfig {
                        metrics_mode: MetricsMode::StatsOnly,
                        rp_count: 3,
                        ..GcopssConfig::default()
                    };
                    let mut built = build_gcopss(
                        cfg,
                        &net,
                        &w.map,
                        &w.population,
                        &Arc::clone(&w.trace),
                        vec![],
                    );
                    built.sim.run();
                    black_box(built.sim.world().metrics.delivered())
                });
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_names,
    bench_bloom_and_st,
    bench_fib_pit,
    bench_copss_engine,
    bench_end_to_end
);
criterion_main!(benches);
