//! Bench-trend regression gate.
//!
//! Archives the current `results/BENCH_*.json` trajectory files into
//! `results/bench_history/` (as `BENCH_<label>.r<NNN>.json`, indexed — no
//! wall-clock timestamps), compares each label's newest archived run
//! against the previous one, writes `results/BENCH_TREND.json`, and exits
//! non-zero when any benchmark's median regressed past the threshold.
//!
//! ```text
//! bench_trend [--threshold <mult>] [--history <dir>] [--out <path>] [files...]
//! ```
//!
//! With no files given, every `results/BENCH_*.json` (except the trend
//! file itself) is taken. The default threshold is deliberately generous
//! (see `gcopss_bench::trend::DEFAULT_THRESHOLD`): this gate catches
//! order-of-magnitude accidents, not noise.

use std::path::PathBuf;
use std::process::ExitCode;

use gcopss_bench::trend::{self, DEFAULT_THRESHOLD};

fn default_bench_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir("results")
        .into_iter()
        .flatten()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| {
                    n.starts_with("BENCH_") && n.ends_with(".json") && n != "BENCH_TREND.json"
                })
        })
        .collect();
    files.sort();
    files
}

fn main() -> ExitCode {
    let mut threshold = DEFAULT_THRESHOLD;
    let mut history = PathBuf::from("results/bench_history");
    let mut out = "results/BENCH_TREND.json".to_string();
    let mut files: Vec<PathBuf> = Vec::new();

    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    threshold = v;
                    i += 1;
                }
            }
            "--history" => {
                if let Some(v) = args.get(i + 1) {
                    history = PathBuf::from(v);
                    i += 1;
                }
            }
            "--out" => {
                if let Some(v) = args.get(i + 1) {
                    out = v.clone();
                    i += 1;
                }
            }
            f => files.push(PathBuf::from(f)),
        }
        i += 1;
    }
    if files.is_empty() {
        files = default_bench_files();
    }
    if files.is_empty() {
        eprintln!("bench_trend: no BENCH_*.json files found (run the bench suite first)");
        return ExitCode::FAILURE;
    }

    let (comparisons, pending) = match trend::run_gate(&history, &files, &out, threshold) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_trend: {e}");
            return ExitCode::FAILURE;
        }
    };

    for (label, runs) in &pending {
        println!("bench_trend: {label}: {runs} archived run(s), need 2 to compare");
    }
    let mut regressed = false;
    for c in &comparisons {
        println!(
            "bench_trend: {} r{:03} -> r{:03}: {} benchmarks, {} added, {} removed",
            c.label,
            c.prev_run,
            c.cur_run,
            c.rows.len(),
            c.added.len(),
            c.removed.len()
        );
        for r in &c.rows {
            if r.regressed {
                regressed = true;
                println!(
                    "bench_trend: REGRESSION {}: {:.0} ns -> {:.0} ns ({:.1}x > {:.1}x threshold)",
                    r.id, r.prev_ns, r.cur_ns, r.ratio, c.threshold
                );
            }
        }
    }
    println!("bench_trend: trend written to {out}");
    if regressed {
        eprintln!("bench_trend: FAILED (median regression past threshold)");
        return ExitCode::FAILURE;
    }
    println!("bench_trend: ok");
    ExitCode::SUCCESS
}
