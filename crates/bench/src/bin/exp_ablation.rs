//! Design-choice ablations: hybrid group density, RP split threshold, NDN
//! accumulation interval, QR pipelining window.
//!
//! ```text
//! cargo run --release -p gcopss-bench --bin exp_ablation [--scale f]
//! ```

use gcopss_bench::{header, ExpHarness};
use gcopss_core::experiments::ablation;
use gcopss_core::experiments::movement::MovementConfig;
use gcopss_core::experiments::WorkloadParams;
use gcopss_sim::SimDuration;

fn main() {
    // One capture across all four sweeps: every run lands in the same
    // merged telemetry document, one trace process per run label.
    let mut h = ExpHarness::new("ablation").with_sampled_capture();
    let updates = h.opts.scaled(8_000, 50_000);
    let seed = h.opts.seed;

    header("Ablation 1 — hybrid-G-COPSS: IP multicast group count (§III-D)");
    println!(
        "{:>8} {:>14} {:>12}",
        "groups", "latency (ms)", "load (GB)"
    );
    let wl = WorkloadParams {
        seed,
        updates,
        ..WorkloadParams::default()
    };
    for (g, s) in ablation::hybrid_group_sweep_with(&wl, 7, &[1, 2, 4, 6, 12, 31], h.cap()) {
        println!(
            "{:>8} {:>14.2} {:>12.4}",
            g,
            s.mean_latency.as_millis_f64(),
            s.network_gb()
        );
    }

    header("Ablation 2 — automatic RP split threshold (§IV-B)");
    println!(
        "{:>10} {:>8} {:>14} {:>12}",
        "threshold", "splits", "latency (ms)", "load (GB)"
    );
    for (t, splits, s) in ablation::split_threshold_sweep_with(&wl, 7, &[20, 50, 100, 250], h.cap()) {
        println!(
            "{:>10} {:>8} {:>14.2} {:>12.4}",
            t,
            splits,
            s.mean_latency.as_millis_f64(),
            s.network_gb()
        );
    }

    header("Ablation 3 — NDN baseline accumulation interval t (§V-A trade-off)");
    println!(
        "{:>8} {:>14} {:>12}",
        "t (ms)", "latency (ms)", "load (GB)"
    );
    let dur = SimDuration::from_secs(h.opts.scaled(6, 30) as u64);
    for (t, s) in ablation::ndn_accumulation_sweep_with(
        seed,
        dur,
        &[
            SimDuration::from_millis(20),
            SimDuration::from_millis(50),
            SimDuration::from_millis(100),
            SimDuration::from_millis(250),
            SimDuration::from_millis(500),
        ],
        h.cap(),
    ) {
        println!(
            "{:>8.0} {:>14.1} {:>12.5}",
            t.as_millis_f64(),
            s.mean_latency.as_millis_f64(),
            s.network_gb()
        );
    }

    header("Ablation 4 — QR pipelining window (§V-B: saturates near 15)");
    println!("{:>8} {:>16}", "window", "convergence (ms)");
    let mcfg = MovementConfig {
        workload: WorkloadParams {
            seed,
            updates,
            players: 150,
            ..WorkloadParams::default()
        },
        // ~19 s trace: 12 movers, one move each every 4-10 s.
        move_interval: (SimDuration::from_secs(4), SimDuration::from_secs(10)),
        mover_count: 12,
        drain: SimDuration::from_secs(120),
        ..MovementConfig::default()
    };
    for (w, mean) in ablation::qr_window_sweep_with(&mcfg, &[1, 5, 10, 15, 20, 30], h.cap()) {
        println!("{:>8} {:>16.1}", w, mean.as_millis_f64());
    }

    h.finish();
}
