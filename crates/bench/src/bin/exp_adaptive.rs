//! Adaptive-control sweep: the streaming metric pipeline drives RP
//! balancing and cache-class selection inside the simulation, ablated
//! against the static policies it replaces — a hotspot trace for the RP
//! arm (off / static threshold / stream-triggered) and a flash crowd for
//! the cache arm (fixed freshness / popularity-promoted).
//!
//! ```text
//! cargo run --release -p gcopss-bench --bin exp_adaptive [--full] [--scale f] [--seed n]
//! ```

use gcopss_bench::{header, BenchEntry, ExpHarness};
use gcopss_core::experiments::adaptive::{self, AdaptiveSweepConfig, RpPolicy};
use gcopss_core::experiments::WorkloadParams;
use gcopss_sim::{SimDuration, TimeSeriesConfig};

fn main() {
    // Five runs (3 RP policies + 2 cache policies), all same-seed. The
    // time-series frames carry the new stream values ("streams" key) on
    // the adaptive runs, plus per-RP served counts for the skew plots.
    let mut h = ExpHarness::new("exp_adaptive")
        .with_sampled_capture()
        .with_timeseries(TimeSeriesConfig {
            tick: SimDuration::from_millis(250),
            counters: vec![
                "delivered",
                "drop",
                "queue-full",
                "cs-hit",
                "cs-miss",
                "rp-move-triggered",
                "cache-class-promotions",
                "broker-qr-served",
            ],
            per_node: vec!["rp-served"],
            ..TimeSeriesConfig::default()
        });
    let updates = h.opts.scaled(8_000, 20_000);
    let players = h.opts.scaled(80, 150);
    let crowd = h.opts.scaled(16, 36);
    let cfg = AdaptiveSweepConfig {
        workload: WorkloadParams {
            seed: h.opts.seed,
            updates,
            players,
            ..WorkloadParams::default()
        },
        crowd_size: crowd,
        drain: if h.opts.full {
            SimDuration::from_secs(15)
        } else {
            SimDuration::from_secs(10)
        },
        ..AdaptiveSweepConfig::default()
    };
    let out = adaptive::run_with(&cfg, h.cap());

    header(&format!(
        "Adaptive RP balancing — {updates} updates, {players} players, hotspot {}/{} of load onto zone {} after {}/{} of the trace, queue cap {}",
        cfg.hot_share.0, cfg.hot_share.1, cfg.hot_top, cfg.hot_onset.0, cfg.hot_onset.1, cfg.queue_capacity
    ));
    println!(
        "{:<14} {:>8} {:>9} {:>9} {:>8} {:>4} {:>4}",
        "run", "ratio", "p50 (ms)", "p99 (ms)", "qfull", "spl", "trig"
    );
    for r in &out.rp_rows {
        println!("{}", r.row());
        let times: Vec<String> = r
            .split_times
            .iter()
            .map(|t| format!("{:.2}s", t.as_nanos() as f64 / 1e9))
            .collect();
        if !times.is_empty() {
            println!("  splits at {}", times.join(", "));
        }
    }
    for r in &out.rp_rows {
        if let Some((audit, fp)) = &r.audit {
            h.add_audit(&r.label, audit.clone());
            println!(
                "audit {:<14} clean={:?} span-fingerprint {fp:016x}",
                r.label, r.audit_clean
            );
            if r.audit_clean == Some(false) {
                println!("  {audit}");
            }
        }
    }

    header(&format!(
        "Adaptive cache classes — flash crowd of {crowd} movers into the hot area, QR window {}",
        cfg.qr_window
    ));
    println!(
        "{:<16} {:>5} {:>9} {:>8} {:>8} {:>8} {:>4} {:>4}",
        "run", "moves", "conv (ms)", "hitrate", "cs-hit", "broker", "pro", "dem"
    );
    for r in &out.cache_rows {
        println!("{}", r.row());
        if let Some(hot) = r.hot_hit_rate {
            println!("  hot-prefix hit rate (live sketch): {hot:.4}");
        }
    }

    for r in &out.rp_rows {
        h.add_bench(BenchEntry::new(
            format!("adaptive/{}/p99_latency", r.label),
            r.p99.as_nanos() as f64,
            r.delivered,
        ));
    }
    for r in &out.cache_rows {
        h.add_bench(BenchEntry::new(
            format!("adaptive/{}/convergence", r.label),
            r.mean_convergence.as_nanos() as f64,
            r.moves as u64,
        ));
    }

    header("Shape check");
    let rp = |p: RpPolicy| {
        out.rp_rows
            .iter()
            .find(|r| r.policy == p)
            .expect("rp row")
    };
    let off = rp(RpPolicy::Off);
    let stat = rp(RpPolicy::Static);
    let adap = rp(RpPolicy::Adaptive);
    let cstat = &out.cache_rows[0];
    let cadap = &out.cache_rows[1];
    println!(
        "rp: delivery {:.4} (adaptive) vs {:.4} (static) vs {:.4} (off); drops {} vs {} vs {}; {} stream-triggered moves",
        adap.delivery_ratio, stat.delivery_ratio, off.delivery_ratio,
        adap.queue_full, stat.queue_full, off.queue_full, adap.triggered
    );
    println!(
        "cache: hit rate {:.4} (adaptive) vs {:.4} (static); broker load {} vs {}; convergence {:.2} ms vs {:.2} ms",
        cadap.hit_rate, cstat.hit_rate, cadap.broker_served, cstat.broker_served,
        cadap.mean_convergence.as_millis_f64(), cstat.mean_convergence.as_millis_f64()
    );
    for r in &out.rp_rows {
        if let Some(clean) = r.audit_clean {
            assert!(clean, "{}: delivery audit not clean", r.label);
        }
    }
    // The headline gates hold at the calibrated scale (and at --full);
    // tiny --scale runs may not saturate the hotspot, so only the audit
    // invariants are asserted there.
    if h.opts.full || h.opts.scale >= 1.0 {
        assert!(adap.triggered > 0, "no stream-triggered move recorded");
        assert!(
            adap.delivery_ratio > stat.delivery_ratio
                && stat.delivery_ratio > off.delivery_ratio,
            "delivery ratios not ordered: adaptive {} / static {} / off {}",
            adap.delivery_ratio,
            stat.delivery_ratio,
            off.delivery_ratio
        );
        assert!(
            adap.queue_full < stat.queue_full,
            "adaptive ({}) did not beat static ({}) on drops",
            adap.queue_full,
            stat.queue_full
        );
        assert!(cadap.promotions > 0, "no cache-class promotion");
        assert!(
            cadap.hit_rate > cstat.hit_rate && cadap.broker_served < cstat.broker_served,
            "adaptive cache did not absorb the crowd: hit {} vs {}, broker {} vs {}",
            cadap.hit_rate,
            cstat.hit_rate,
            cadap.broker_served,
            cstat.broker_served
        );
    }

    h.finish();
}
