//! Delivery audit: replay the chaos scenario under the lineage tracer and
//! close the books — every `(publication, owed subscriber)` pair must be
//! delivered exactly once, dropped for a recorded reason, lost inside the
//! fault damage window, or still in flight at the horizon. Duplicates and
//! unexplained losses abort the run.
//!
//! ```text
//! cargo run --release -p gcopss-bench --bin exp_audit [--full] [--scale f] [--seed n]
//! ```

use gcopss_bench::{header, ExpHarness};
use gcopss_core::experiments::audit::{self, AuditConfig};
use gcopss_core::experiments::failover::FailoverConfig;
use gcopss_core::experiments::WorkloadParams;

fn main() {
    let mut h = ExpHarness::new("exp_audit");
    let updates = h.opts.scaled(6_000, 50_000);
    let players = h.opts.scaled(100, 414);
    let cfg = AuditConfig {
        failover: FailoverConfig {
            workload: WorkloadParams {
                seed: h.opts.seed,
                updates,
                players,
                ..WorkloadParams::default()
            },
            ..FailoverConfig::default()
        },
        ..AuditConfig::default()
    };
    let out = audit::run(&cfg);

    header(&format!(
        "Delivery audit — {updates} updates, {players} players, {} link flaps + RP crash/restart, loss {:?}",
        cfg.failover.flaps, cfg.failover.loss_rates
    ));
    let mut dirty = false;
    for r in &out.runs {
        header(&format!(
            "{} — {} spans, lineage fingerprint {:016x}",
            r.label, r.spans, r.fingerprint
        ));
        println!("{}", r.report.table());
        for e in &r.report.errors {
            println!("  ERROR: {e}");
        }
        dirty |= !r.report.is_clean();
    }

    for r in &out.runs {
        h.add_audit(r.label.clone(), r.report.to_json());
        if let Some(ts) = r.timeseries.clone() {
            h.add_series(r.label.clone(), ts);
        }
    }
    h.finish();

    assert!(!dirty, "audit found unexplained losses or duplicates");
    println!("\nall runs clean: every owed pair accounted for");
}
