//! Failure sweep: delivery ratio and recovery time of G-COPSS (with
//! failure-aware routing, soft-state repair, and RP failover) vs the IP
//! and NDN baselines under random link flaps, one infrastructure crash,
//! and swept packet loss.
//!
//! ```text
//! cargo run --release -p gcopss-bench --bin exp_failover [--full] [--scale f] [--seed n]
//! ```

use gcopss_bench::{header, ExpHarness};
use gcopss_core::experiments::failover::{self, FailoverConfig};
use gcopss_core::experiments::WorkloadParams;
use gcopss_sim::{SimDuration, TimeSeriesConfig};

fn main() {
    // Nine chaotic runs; sample the journal to bound the merged document.
    let mut h = ExpHarness::new("exp_failover")
        .with_sampled_capture()
        .with_timeseries(TimeSeriesConfig {
            tick: SimDuration::from_millis(500),
            counters: vec!["delivered", "drop", "rp-failovers", "st-purged"],
            gauges: vec!["st-entries"],
            per_node: vec!["rp-served"],
            ..TimeSeriesConfig::default()
        });
    let updates = h.opts.scaled(10_000, 50_000);
    let players = h.opts.scaled(120, 414);
    let cfg = FailoverConfig {
        workload: WorkloadParams {
            seed: h.opts.seed,
            updates,
            players,
            ..WorkloadParams::default()
        },
        ..FailoverConfig::default()
    };
    let out = failover::run_with(&cfg, h.cap());

    header(&format!(
        "Failure sweep — {updates} updates, {players} players, {} link flaps + RP crash/restart, loss {:?}",
        cfg.flaps, cfg.loss_rates
    ));
    println!(
        "{:<18} {:>6} {:>9} {:>11} {:>9} {:>10} {:>7} {:>12}",
        "run", "loss", "ratio", "post-repair", "recovery", "lost", "resubs", "latency (ms)"
    );
    for r in &out.rows {
        println!("{}", r.row());
    }

    header("Shape check");
    if let Some(g0) = out
        .rows
        .iter()
        .find(|r| r.label.starts_with("gcopss") && r.loss == 0.0)
    {
        println!(
            "gcopss loss-free: post-repair ratio {:.4} (expect 1.0), {} RP failover(s), {} resubscribe(s)",
            g0.post_repair_ratio, g0.rp_failovers, g0.resubscribes
        );
    }
    for sys in ["gcopss", "ip", "ndn"] {
        let mut prev = f64::INFINITY;
        for r in out.rows.iter().filter(|r| r.label.starts_with(sys)) {
            assert!(
                r.delivery_ratio <= prev + 0.05,
                "{}: delivery ratio should not rise with loss",
                r.label
            );
            prev = r.delivery_ratio;
        }
    }

    h.finish();
}
