//! Fig. 4: microbenchmark update-latency CDFs of G-COPSS, NDN and the IP
//! server on the 6-router testbed.
//!
//! ```text
//! cargo run --release -p gcopss-bench --bin exp_fig4 [--full] [--scale f]
//! ```
//!
//! Paper reference points: G-COPSS mean 8.51 ms (all < 55 ms); IP server
//! mean 25.52 ms with a tail beyond 55 ms; NDN mean > 12 s.

use gcopss_bench::{gb, header, ExpHarness};
use gcopss_core::experiments::microbench::{self, MicrobenchConfig};
use gcopss_sim::{SimDuration, TelemetryConfig};

fn main() {
    let mut h = ExpHarness::new("fig4").with_capture(TelemetryConfig::default());
    let secs = h.opts.scaled(10, 60) as u64;
    let seed = h.opts.seed;
    let out = microbench::run_with(
        &MicrobenchConfig {
            seed,
            duration: SimDuration::from_secs(secs),
            ..MicrobenchConfig::default()
        },
        h.cap(),
    );

    header(&format!(
        "Fig. 4 — update latency (testbed, 62 players, {secs}s trace)"
    ));
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "system", "mean (ms)", "max (ms)", ">55ms", "delivered", "load (GB)"
    );
    for s in [&out.gcopss, &out.ip, &out.ndn] {
        println!(
            "{:<10} {:>12.2} {:>12.1} {:>9.1}% {:>10} {:>10.4}",
            s.summary.label,
            s.summary.mean_latency.as_millis_f64(),
            s.summary.max_latency.as_millis_f64(),
            s.frac_over_55ms * 100.0,
            s.summary.delivered,
            gb(s.summary.network_bytes),
        );
    }

    header("CDF (latency ms @ cumulative fraction)");
    println!("{:>6} {:>12} {:>12} {:>12}", "frac", "G-COPSS", "IP", "NDN");
    let idx = |c: &[(f64, f64)], f: f64| {
        c.iter()
            .find(|(_, frac)| *frac >= f)
            .map_or(f64::NAN, |(ms, _)| *ms)
    };
    for f in [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
        println!(
            "{:>6.2} {:>12.2} {:>12.2} {:>12.2}",
            f,
            idx(&out.gcopss.cdf, f),
            idx(&out.ip.cdf, f),
            idx(&out.ndn.cdf, f),
        );
    }

    header("Shape check (paper: G-COPSS ~3x better than IP; NDN ~3 orders worse)");
    let g = out.gcopss.summary.mean_latency.as_millis_f64();
    let i = out.ip.summary.mean_latency.as_millis_f64();
    let n = out.ndn.summary.mean_latency.as_millis_f64();
    println!("IP/G-COPSS mean ratio  = {:.2}x (paper ~3x)", i / g);
    println!("NDN/G-COPSS mean ratio = {:.0}x (paper ~1400x)", n / g);

    h.finish();
}
