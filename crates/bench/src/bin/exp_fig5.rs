//! Fig. 5: per-publication update-latency timelines — 3 RPs (no
//! congestion), 2 RPs (congestion partway through the trace), and automatic
//! RP balancing (splits bring latency back down).
//!
//! ```text
//! cargo run --release -p gcopss-bench --bin exp_fig5 [--full] [--scale f]
//! ```

use gcopss_bench::{header, ExpHarness};
use gcopss_core::experiments::rp_sweep::{self, RpSweepConfig};
use gcopss_core::experiments::WorkloadParams;
use gcopss_sim::{SimDuration, TimeSeriesConfig};

fn main() {
    // The per-RP load breakdown over time is the congestion story of
    // Fig. 5 told as a time series: watch rp-served concentrate, then
    // rebalance after the automatic split.
    let mut h = ExpHarness::new("fig5")
        .with_sampled_capture()
        .with_timeseries(TimeSeriesConfig {
            tick: SimDuration::from_millis(500),
            counters: vec!["delivered", "drop", "rp-served"],
            gauges: vec!["st-entries"],
            per_node: vec!["rp-served"],
            ..TimeSeriesConfig::default()
        });
    let updates = h.opts.scaled(20_000, 100_000);
    let seed = h.opts.seed;
    let out = rp_sweep::run_with(
        &RpSweepConfig {
            workload: WorkloadParams {
                seed,
                updates,
                ..WorkloadParams::default()
            },
            rp_counts: vec![2, 3],
            include_auto: true,
            server_counts: vec![],
            fig5_detail: true,
            fig5_points: 60,
            ..RpSweepConfig::default()
        },
        h.cap(),
    );

    for series in &out.fig5 {
        header(&format!(
            "Fig. 5 series: {} (publication id -> min/mean/max latency ms)",
            series.label
        ));
        println!("{:>10} {:>10} {:>10} {:>10}", "pub id", "min", "mean", "max");
        for (id, min, mean, max) in &series.points {
            println!("{id:>10} {min:>10.2} {mean:>10.2} {max:>10.2}");
        }
    }

    header("Automatic splits (paper Fig. 5c: the router split CDs twice)");
    if out.auto_splits.is_empty() {
        println!("(no splits occurred at this scale)");
    }
    for s in &out.auto_splits {
        println!(
            "t={:.2}s rp{} -> rp{}: moved {:?}",
            s.at.as_secs_f64(),
            s.from_rp,
            s.to_rp,
            s.moved.iter().map(ToString::to_string).collect::<Vec<_>>()
        );
    }

    header("Shape check");
    for series in &out.fig5 {
        let first_q: f64 = {
            let k = series.points.len() / 4;
            series.points[..k.max(1)].iter().map(|p| p.2).sum::<f64>() / k.max(1) as f64
        };
        let last_q: f64 = {
            let k = series.points.len() / 4;
            series.points[series.points.len() - k.max(1)..]
                .iter()
                .map(|p| p.2)
                .sum::<f64>()
                / k.max(1) as f64
        };
        println!(
            "{}: mean latency first-quarter {first_q:.1} ms -> last-quarter {last_q:.1} ms",
            series.label
        );
    }

    h.finish();
}
