//! Fig. 6: response latency and aggregate network load vs the number of
//! players (3 RPs vs 3 servers).
//!
//! ```text
//! cargo run --release -p gcopss-bench --bin exp_fig6 [--full] [--scale f]
//! ```

use gcopss_bench::{header, ExpHarness};
use gcopss_core::experiments::player_sweep::{self, PlayerSweepConfig};

fn main() {
    // Many runs in this sweep: sample the journal 1-in-16 and cap it low so
    // the merged trace file stays small.
    let mut h = ExpHarness::new("fig6").with_sampled_capture();
    let updates_per_player = h.opts.scaled(40, 250);
    let player_counts = if h.opts.full {
        vec![50, 100, 150, 200, 250, 300, 350, 400]
    } else {
        vec![50, 100, 200, 300, 400]
    };
    let seed = h.opts.seed;
    let out = player_sweep::run_with(
        &PlayerSweepConfig {
            seed,
            player_counts,
            updates_per_player,
            ..PlayerSweepConfig::default()
        },
        h.cap(),
    );

    header("Fig. 6a — response latency vs #players (3 RPs / 3 servers)");
    println!(
        "{:>8} {:>16} {:>16}",
        "players", "G-COPSS (ms)", "IP server (ms)"
    );
    for (g, i) in out.gcopss.iter().zip(&out.ip) {
        println!(
            "{:>8} {:>16.2} {:>16.2}",
            g.players,
            g.summary.mean_latency.as_millis_f64(),
            i.summary.mean_latency.as_millis_f64()
        );
    }

    header("Fig. 6b — aggregate network load vs #players");
    println!(
        "{:>8} {:>16} {:>16}",
        "players", "G-COPSS (GB)", "IP server (GB)"
    );
    for (g, i) in out.gcopss.iter().zip(&out.ip) {
        println!(
            "{:>8} {:>16.4} {:>16.4}",
            g.players,
            g.summary.network_gb(),
            i.summary.network_gb()
        );
    }

    header("Shape check (paper: G-COPSS flat; server knee ~250 players)");
    let g_first = out.gcopss.first().unwrap().summary.mean_latency.as_millis_f64();
    let g_last = out.gcopss.last().unwrap().summary.mean_latency.as_millis_f64();
    let i_first = out.ip.first().unwrap().summary.mean_latency.as_millis_f64();
    let i_last = out.ip.last().unwrap().summary.mean_latency.as_millis_f64();
    println!("G-COPSS latency growth = {:.1}x over the sweep", g_last / g_first.max(1e-9));
    println!("IP server latency growth = {:.1}x over the sweep", i_last / i_first.max(1e-9));

    h.finish();
}
