//! Overload sweep: offered load 0.5×–4× of aggregate RP service capacity
//! across G-COPSS (unbounded / drop-tail / AQM+priority queues with
//! congestion-feedback rate adaptation) and the IP and NDN baselines,
//! with per-class drop accounting and a delivery audit on the managed
//! G-COPSS runs.
//!
//! ```text
//! cargo run --release -p gcopss-bench --bin exp_overload [--full] [--scale f] [--seed n]
//! ```

use gcopss_bench::{header, ExpHarness};
use gcopss_core::experiments::overload::{self, OverloadSweepConfig, QueueRegime};
use gcopss_core::experiments::WorkloadParams;
use gcopss_sim::{SimDuration, TimeSeriesConfig};

fn main() {
    // Twenty runs (4 loads × 5 system/regime combinations); sample the
    // journal to bound the merged document.
    let mut h = ExpHarness::new("exp_overload")
        .with_sampled_capture()
        .with_timeseries(TimeSeriesConfig {
            tick: SimDuration::from_millis(500),
            counters: vec![
                "delivered",
                "drop",
                "queue-full",
                "aqm-shed",
                "stale-superseded",
                "rate-limited",
                "mark",
            ],
            ..TimeSeriesConfig::default()
        });
    let updates = h.opts.scaled(6_000, 20_000);
    let players = h.opts.scaled(80, 120);
    let cfg = OverloadSweepConfig {
        workload: WorkloadParams {
            seed: h.opts.seed,
            updates,
            players,
            ..WorkloadParams::default()
        },
        ..OverloadSweepConfig::default()
    };
    let out = overload::run_with(&cfg, h.cap());

    header(&format!(
        "Overload sweep — {updates} updates, {players} players, loads {:?} × capacity ({} µs interarrival at 1×)",
        cfg.loads,
        cfg.capacity_interarrival.as_nanos() / 1_000
    ));
    println!(
        "{:<22} {:>4} {:>8} {:>8} {:>9} {:>9} {:>8} {:>8} {:>7} {:>8} {:>7}",
        "run", "load", "ratio", "ctl", "p50 (ms)", "p99 (ms)", "qfull", "aqm", "stale", "paced", "marks"
    );
    for r in &out.rows {
        println!("{}", r.row());
    }
    for r in &out.rows {
        if let Some((audit, fp)) = &r.audit {
            h.add_audit(&r.label, audit.clone());
            println!("audit {:<22} clean={:?} span-fingerprint {fp:016x}", r.label, r.audit_clean);
        }
    }

    header("Shape check");
    let top = cfg.loads.iter().copied().fold(f64::MIN, f64::max);
    let find = |regime: QueueRegime| {
        out.rows
            .iter()
            .find(|r| r.system == "gcopss" && r.regime == regime && r.load == top)
            .expect("top-load gcopss row")
    };
    let aqm = find(QueueRegime::Aqm);
    let tail = find(QueueRegime::DropTail);
    println!(
        "gcopss at {top}x: ctl survival aqm {:.4} vs droptail {:.4}; sheds aqm {} / droptail {}",
        aqm.ctl_ratio,
        tail.ctl_ratio,
        aqm.queue_full + aqm.aqm_shed + aqm.stale_superseded + aqm.rate_limited,
        tail.queue_full,
    );
    assert!(
        aqm.ctl_ratio >= 0.99,
        "AQM+priority control survival {} < 0.99 at {top}x",
        aqm.ctl_ratio
    );
    assert!(
        aqm.ctl_ratio >= tail.ctl_ratio,
        "priority shedding did not protect control: {} < {}",
        aqm.ctl_ratio,
        tail.ctl_ratio
    );
    for r in &out.rows {
        if r.regime == QueueRegime::Unbounded {
            assert_eq!(
                r.queue_full + r.aqm_shed + r.stale_superseded + r.marks,
                0,
                "{}: unbounded regime shed or marked",
                r.label
            );
        }
        if let Some(clean) = r.audit_clean {
            assert!(clean, "{}: delivery audit not clean", r.label);
        }
    }

    h.finish();
}
