//! Rejoin storm: after an RP crash silences the update plane, every
//! client's watchdog triggers a recovery catch-up at once. The identical
//! storm runs twice — naive full-snapshot re-fetch vs content-addressed
//! chunked-delta — and the delta path must move at least 5x fewer
//! catch-up bytes. Both runs must close the exactly-once catch-up ledger.
//!
//! ```text
//! cargo run --release -p gcopss-bench --bin exp_rejoin [--full] [--scale f] [--seed n]
//! ```

use gcopss_bench::{header, BenchEntry, ExpHarness};
use gcopss_core::experiments::rejoin::{self, RejoinConfig, RejoinRow};
use gcopss_core::experiments::WorkloadParams;
use gcopss_sim::json::Json;
use gcopss_sim::{SimDuration, TimeSeriesConfig};

fn audit_json(r: &RejoinRow) -> Json {
    Json::obj([
        ("owed", Json::UInt(r.audit.owed)),
        ("delivered", Json::UInt(r.audit.delivered)),
        ("outstanding", Json::UInt(r.audit.outstanding)),
        ("over_delivered", Json::UInt(r.audit.over_delivered)),
        ("entries", Json::UInt(r.audit.entries)),
        ("clean", Json::Bool(r.audit.clean())),
        (
            "ledger_fingerprint",
            Json::str(format!("{:016x}", r.ledger_fingerprint)),
        ),
        ("recovery_catchups", Json::UInt(r.recovery_catchups)),
        ("recovery_bytes", Json::UInt(r.recovery_bytes)),
        ("chunks_fetched", Json::UInt(r.chunks_fetched)),
        ("chunks_held", Json::UInt(r.chunks_held)),
        ("reassembly_ok", Json::UInt(r.reassembly_ok)),
        ("reassembly_failed", Json::UInt(r.reassembly_failed)),
    ])
}

fn main() {
    let mut h = ExpHarness::new("exp_rejoin")
        .with_sampled_capture()
        .with_timeseries(TimeSeriesConfig {
            tick: SimDuration::from_millis(500),
            counters: vec![
                "delivered",
                "drop",
                "broker-manifest-served",
                "broker-chunk-served",
            ],
            gauges: vec!["st-entries"],
            per_node: vec!["rp-served"],
            ..TimeSeriesConfig::default()
        });
    let updates = h.opts.scaled(8_000, 50_000);
    let players = h.opts.scaled(120, 414);
    // Inherit the rejoin default workload (its calm interarrival leaves the
    // links idle enough for catch-up traffic), overriding only the knobs the
    // CLI controls.
    let base = RejoinConfig::default();
    let cfg = RejoinConfig {
        workload: WorkloadParams {
            seed: h.opts.seed,
            updates,
            players,
            ..base.workload
        },
        ..base
    };
    let out = rejoin::run_with(&cfg, h.cap());

    header(&format!(
        "Rejoin storm — {updates} updates, {players} players, RP crash at 30% of the span"
    ));
    println!(
        "{:<14} {:>8} {:>8} {:>12} {:>12} {:>10} {:>9} {:>9} {:>8}",
        "strategy", "prewarm", "storm", "pre (kB)", "storm (kB)", "lat (ms)", "fetched", "held", "retries"
    );
    for r in [&out.chunked, &out.full] {
        println!("{}", r.row());
    }

    header("Catch-up ledger (exactly-once accounting)");
    for r in [&out.chunked, &out.full] {
        println!(
            "{:<14} owed {:>7}  delivered {:>7}  outstanding {}  over-delivered {}  clean: {}  fingerprint {:016x}",
            r.label,
            r.audit.owed,
            r.audit.delivered,
            r.audit.outstanding,
            r.audit.over_delivered,
            r.audit.clean(),
            r.ledger_fingerprint,
        );
    }

    header("Shape check");
    let ratio = out.recovery_byte_ratio();
    // The 5x win needs the real population: with few players the per-client
    // manifest overhead is a larger share of the delta bytes. Scaled-down
    // smoke runs still must show a clear win, just with a softer floor.
    let gate = if h.opts.full || h.opts.scale >= 1.0 {
        5.0
    } else {
        2.0
    };
    println!(
        "recovery bytes: full-snapshot {} / chunked-delta {} = {ratio:.2}x (gate: >= {gate}x)",
        out.full.recovery_bytes, out.chunked.recovery_bytes
    );
    println!(
        "chunked integrity: {} manifests reassembled, {} failed; {} chunks held vs {} fetched",
        out.chunked.reassembly_ok,
        out.chunked.reassembly_failed,
        out.chunked.chunks_held,
        out.chunked.chunks_fetched
    );
    for r in [&out.chunked, &out.full] {
        assert!(r.recovery_catchups > 0, "{}: no storm ran", r.label);
        assert!(r.rp_failovers >= 1, "{}: crash did not fail over", r.label);
        assert!(
            r.audit.clean(),
            "{}: catch-up ledger dirty ({} outstanding, {} over-delivered)",
            r.label,
            r.audit.outstanding,
            r.audit.over_delivered
        );
    }
    assert_eq!(out.chunked.reassembly_failed, 0, "chunk integrity broke");
    assert!(
        ratio >= gate,
        "chunked-delta catch-up must move >= {gate}x fewer bytes (got {ratio:.2}x)"
    );

    for r in [&out.chunked, &out.full] {
        h.add_audit(r.label.clone(), audit_json(r));
        h.add_bench(BenchEntry::new(
            format!("rejoin/{}/recovery_latency", r.label),
            r.mean_latency.as_nanos() as f64,
            r.recovery_catchups,
        ));
        h.add_bench(BenchEntry::new(
            format!("rejoin/{}/recovery_bytes", r.label),
            r.recovery_bytes as f64,
            r.recovery_catchups,
        ));
    }
    h.finish();
    println!("\nrejoin storm: both ledgers clean, delta win {ratio:.2}x");
}
