//! ST match + FIB LPM scaling sweep: per-lookup cost from 1k to 1M
//! subscriptions (10M under `--full`) on the stride-based tree-bitmap
//! paths, against the Bloom-scan and `NameTree` baselines.
//!
//! ```text
//! cargo run --release -p gcopss-bench --bin exp_scale [--full] [--scale f]
//! ```
//!
//! Writes `results/exp_scale.json` (the sweep points) and
//! `results/BENCH_exp_scale.json` (the machine-readable perf trajectory
//! `check_hermetic.sh` gates on). `--full` adds the 10M point — budget
//! several GB of RAM for it.

use gcopss_bench::{header, BenchEntry, ExpHarness};
use gcopss_core::experiments::scale::{self, ScaleParams};
use gcopss_sim::json::{results_doc, write_results, Json};

fn main() {
    let mut h = ExpHarness::new("exp_scale");
    let mut sizes: Vec<usize> = [1_000usize, 10_000, 100_000, 1_000_000]
        .iter()
        .map(|&s| h.opts.scaled(s, s))
        .collect();
    if h.opts.full {
        sizes.push(10_000_000);
    }
    sizes.dedup();
    let params = ScaleParams {
        seed: h.opts.seed,
        sizes,
        ..ScaleParams::default()
    };

    header("ST match + FIB LPM scaling (median ns per lookup)");
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "entries", "st_match", "st_bloom", "fib_lpm", "fib_tree", "st_build", "fib_build"
    );
    let points = scale::run(&params);
    for pt in &points {
        println!(
            "{:>10} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>9.0}ms {:>9.0}ms",
            pt.entries,
            pt.st_match_ns,
            pt.st_bloom_ns,
            pt.fib_lpm_ns,
            pt.fib_nametree_ns,
            pt.st_build_ms,
            pt.fib_build_ms
        );
    }

    header("Flatness (cost growth across the sweep)");
    let ratio = |f: fn(&scale::ScalePoint) -> f64| {
        let (mut lo, mut hi) = (f64::INFINITY, 0.0f64);
        for pt in &points {
            lo = lo.min(f(pt));
            hi = hi.max(f(pt));
        }
        hi / lo
    };
    let st_ratio = ratio(|p| p.st_match_ns);
    let fib_ratio = ratio(|p| p.fib_lpm_ns);
    println!("st_match  max/min = {st_ratio:.2}x over {}x size growth", size_growth(&points));
    println!("fib_lpm   max/min = {fib_ratio:.2}x over {}x size growth", size_growth(&points));

    let doc = results_doc(
        "gcopss-scale-v1",
        "scale",
        h.opts.seed,
        [(
            "points",
            Json::arr(points.iter().map(|pt| {
                Json::obj([
                    ("entries", Json::UInt(pt.entries as u64)),
                    ("st_match_ns", Json::Float(pt.st_match_ns)),
                    ("st_bloom_ns", Json::Float(pt.st_bloom_ns)),
                    ("fib_lpm_ns", Json::Float(pt.fib_lpm_ns)),
                    ("fib_nametree_ns", Json::Float(pt.fib_nametree_ns)),
                    ("st_build_ms", Json::Float(pt.st_build_ms)),
                    ("fib_build_ms", Json::Float(pt.fib_build_ms)),
                ])
            })),
        )],
    );
    write_results("results/exp_scale.json", &doc).expect("write scale results");
    println!("\nscale sweep written to results/exp_scale.json");

    for pt in &points {
        let n = pt.entries;
        h.add_bench(BenchEntry::new(format!("st_match/n{n}"), pt.st_match_ns, 20_000));
        h.add_bench(BenchEntry::new(format!("st_bloom/n{n}"), pt.st_bloom_ns, 2_000));
        h.add_bench(BenchEntry::new(format!("fib_lpm/n{n}"), pt.fib_lpm_ns, 20_000));
        h.add_bench(BenchEntry::new(
            format!("fib_nametree/n{n}"),
            pt.fib_nametree_ns,
            20_000,
        ));
    }
    h.finish();
}

fn size_growth(points: &[scale::ScalePoint]) -> usize {
    let lo = points.iter().map(|p| p.entries).min().unwrap_or(1);
    let hi = points.iter().map(|p| p.entries).max().unwrap_or(1);
    hi / lo.max(1)
}
