//! Table I: update latency and network load of G-COPSS (1/2/3/6/auto RPs)
//! vs the IP server (1/2/3/6 servers) over the first 100,000 trace updates
//! with 414 players.
//!
//! ```text
//! cargo run --release -p gcopss-bench --bin exp_table1 [--full] [--scale f]
//! ```

use gcopss_bench::{gb, header, per_link_byte_sum, ExpHarness};
use gcopss_core::experiments::rp_sweep::{self, RpSweepConfig};
use gcopss_core::experiments::WorkloadParams;

fn main() {
    // Nine full-trace runs: sample the journal so the merged telemetry
    // document stays a few MB (counters and histograms are unaffected).
    let mut h = ExpHarness::new("table1").with_sampled_capture();
    let updates = h.opts.scaled(20_000, 100_000);
    let seed = h.opts.seed;
    let out = rp_sweep::run_with(
        &RpSweepConfig {
            workload: WorkloadParams {
                seed,
                updates,
                ..WorkloadParams::default()
            },
            fig5_detail: false,
            ..RpSweepConfig::default()
        },
        h.cap(),
    );

    header(&format!(
        "Table I — {updates} updates, 414 players (paper: 1-2 RPs congest, ≥3 fine, auto ≈ 3)"
    ));
    println!(
        "{:<28} {:>14} {:>12}",
        "configuration", "latency (ms)", "load (GB)"
    );
    for r in &out.gcopss_rows {
        println!("{}", r.row());
    }
    for r in &out.server_rows {
        println!("{}", r.row());
    }

    if !out.auto_splits.is_empty() {
        header("Automatic splits");
        for s in &out.auto_splits {
            println!(
                "t={:.2}s rp{} -> rp{}: moved {:?}",
                s.at.as_secs_f64(),
                s.from_rp,
                s.to_rp,
                s.moved.iter().map(ToString::to_string).collect::<Vec<_>>()
            );
        }
    }

    header("Shape check");
    let find = |label_part: &str| {
        out.gcopss_rows
            .iter()
            .find(|r| r.label.contains(label_part))
    };
    if let (Some(r1), Some(r3)) = (find("1 RP"), find("3 RP")) {
        println!(
            "G-COPSS 1RP/3RP latency ratio = {:.0}x (paper: ~3 orders of magnitude)",
            r1.mean_latency.as_millis_f64() / r3.mean_latency.as_millis_f64().max(1e-9)
        );
    }
    if let (Some(g3), Some(s3)) = (
        find("3 RP"),
        out.server_rows.iter().find(|r| r.label.contains("x3")),
    ) {
        println!(
            "IP(3)/G-COPSS(3) latency ratio = {:.1}x, load ratio = {:.2}x (paper: load ~2x)",
            s3.mean_latency.as_millis_f64() / g3.mean_latency.as_millis_f64().max(1e-9),
            s3.network_gb() / g3.network_gb().max(1e-12)
        );
    }

    // Telemetry keeps its own per-directed-link byte counters; their sum
    // must reconcile exactly with the engine's aggregate-load number that
    // fills the table above.
    header("Telemetry reconciliation (per-link byte sum vs aggregate load)");
    let rows = out.gcopss_rows.iter().chain(&out.server_rows);
    let cap = h.cap().expect("table1 runs captured");
    for (report, row) in cap.reports.iter().zip(rows) {
        let link_sum = per_link_byte_sum(report).expect("run summary has a link table");
        assert_eq!(
            link_sum, row.network_bytes,
            "{}: per-link telemetry bytes disagree with aggregate load",
            report.label
        );
        println!(
            "{:<14} per-link sum {:.4} GB == aggregate load {:.4} GB",
            report.label,
            gb(link_sum),
            gb(row.network_bytes)
        );
    }

    h.finish();
}
