//! Table II: the full event trace on IP (6 servers), G-COPSS (6 RPs) and
//! hybrid-G-COPSS (6 IP multicast groups).
//!
//! ```text
//! cargo run --release -p gcopss-bench --bin exp_table2 [--full] [--scale f]
//! ```
//!
//! Paper shape: hybrid has the best latency; load ordering is
//! G-COPSS < hybrid < IP server (IP roughly 2x G-COPSS).

use gcopss_bench::{header, ExpHarness};
use gcopss_core::experiments::full_trace::{self, FullTraceConfig};
use gcopss_core::experiments::WorkloadParams;

fn main() {
    let mut h = ExpHarness::new("table2").with_sampled_capture();
    let updates = h.opts.scaled(60_000, 1_686_905);
    let seed = h.opts.seed;
    let out = full_trace::run_with(
        &FullTraceConfig {
            workload: WorkloadParams {
                seed,
                updates,
                ..WorkloadParams::default()
            },
            ..FullTraceConfig::default()
        },
        h.cap(),
    );

    header(&format!(
        "Table II — {updates} updates, 414 players, 6 servers/RPs/groups"
    ));
    println!(
        "{:<28} {:>14} {:>12}",
        "system", "latency (ms)", "load (GB)"
    );
    for r in [&out.ip, &out.gcopss, &out.hybrid] {
        println!("{}", r.row());
    }

    header("Shape check");
    println!(
        "latency: hybrid {:.2} <= gcopss {:.2} < ip {:.2} : {}",
        out.hybrid.mean_latency.as_millis_f64(),
        out.gcopss.mean_latency.as_millis_f64(),
        out.ip.mean_latency.as_millis_f64(),
        out.hybrid.mean_latency <= out.gcopss.mean_latency
            && out.gcopss.mean_latency < out.ip.mean_latency
    );
    println!(
        "load: gcopss {:.3} < hybrid {:.3} < ip {:.3} : {}",
        out.gcopss.network_gb(),
        out.hybrid.network_gb(),
        out.ip.network_gb(),
        out.gcopss.network_bytes < out.hybrid.network_bytes
            && out.hybrid.network_bytes < out.ip.network_bytes
    );
    println!(
        "IP/G-COPSS load ratio = {:.2}x (paper ~2x)",
        out.ip.network_gb() / out.gcopss.network_gb().max(1e-12)
    );

    h.finish();
}
