//! Table III: snapshot convergence time per movement type, comparing the
//! query/response (windows 5 and 15) and cyclic-multicast dissemination
//! modes with 3 brokers.
//!
//! ```text
//! cargo run --release -p gcopss-bench --bin exp_table3 [--full] [--scale f]
//! ```
//!
//! Paper shape: convergence grows (sub)linearly with the number of leaf CDs
//! downloaded; QR window 15 beats window 5; cyclic multicast has the best
//! average; QR carries roughly 2x the snapshot traffic of cyclic.

use gcopss_bench::{gb, header, ExpHarness};
use gcopss_core::experiments::movement::{self, MovementConfig};
use gcopss_core::experiments::WorkloadParams;
use gcopss_sim::SimDuration;

fn main() {
    let mut h = ExpHarness::new("table3").with_sampled_capture();
    let updates = h.opts.scaled(15_000, 200_000);
    // Keep the network-wide move *rate* near the paper's (~0.35–2 moves/s)
    // at every scale: fewer movers with shorter intervals on short traces.
    let (lo, hi, movers) = if h.opts.full {
        (
            SimDuration::from_secs(60),
            SimDuration::from_secs(420),
            414,
        )
    } else {
        (SimDuration::from_secs(15), SimDuration::from_secs(45), 60)
    };
    let cfg = MovementConfig {
        workload: WorkloadParams {
            seed: h.opts.seed,
            updates,
            ..WorkloadParams::default()
        },
        move_interval: (lo, hi),
        mover_count: movers,
        drain: SimDuration::from_secs(120),
        ..MovementConfig::default()
    };
    let outputs = movement::run_all_with(&cfg, h.cap());

    for out in &outputs {
        header(&format!(
            "Table III — {} ({} moves, {} broker objects served)",
            out.label, out.moves, out.broker_served
        ));
        println!(
            "{:<36} {:>7} {:>9} {:>12} {:>10}",
            "move type", "count", "leaf CDs", "conv (ms)", "±95% (ms)"
        );
        for r in &out.rows {
            println!(
                "{:<36} {:>7} {:>9.1} {:>12.1} {:>10.1}",
                r.move_type.label(),
                r.count,
                r.leaf_cds,
                r.mean.as_millis_f64(),
                r.ci95.as_millis_f64()
            );
        }
        println!(
            "{:<36} {:>7} {:>9} {:>12.1} {:>10.1}",
            "total (snapshot-requiring)",
            "",
            "",
            out.total_mean.as_millis_f64(),
            out.total_ci95.as_millis_f64()
        );
        println!(
            "snapshot bytes to movers = {:.4} GB; total network load = {:.4} GB",
            gb(out.snapshot_bytes),
            gb(out.network_bytes)
        );
    }

    header("Shape check");
    if outputs.len() == 3 {
        let qr5 = &outputs[0];
        let qr15 = &outputs[1];
        let cyc = &outputs[2];
        println!(
            "QR5 {:.0} ms > QR15 {:.0} ms : {}",
            qr5.total_mean.as_millis_f64(),
            qr15.total_mean.as_millis_f64(),
            qr5.total_mean > qr15.total_mean
        );
        println!(
            "cyclic mean {:.0} ms (paper: best on average at 851 ms vs QR 2,600 ms)",
            cyc.total_mean.as_millis_f64()
        );
        println!(
            "QR15/cyclic network-load ratio = {:.2}x (paper snapshot traffic ~26GB/14GB = 1.9x)",
            qr15.network_bytes as f64 / cyc.network_bytes.max(1) as f64
        );
    }

    h.finish();
}
