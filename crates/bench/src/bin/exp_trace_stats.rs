//! Fig. 3c / Fig. 3d: trace characterization of the synthetic
//! Counter-Strike workload.
//!
//! ```text
//! cargo run --release -p gcopss-bench --bin exp_trace_stats [--full] [--scale f]
//! ```

use gcopss_bench::{header, ExpHarness};
use gcopss_core::experiments::trace_stats;
use gcopss_core::experiments::WorkloadParams;

fn main() {
    let mut h = ExpHarness::new("trace_stats");
    let updates = h.opts.scaled(100_000, 1_686_905);
    let params = WorkloadParams {
        seed: h.opts.seed,
        updates,
        ..WorkloadParams::default()
    };
    let out = {
        // No DES loop here: the characterization pass is the measured
        // "hot loop" for this binary's profile.
        let _p = gcopss_sim::prof::scope("trace_stats/run");
        trace_stats::run(&params)
    };

    header("Workload (paper: 414 players, 1,686,905 updates, 3,197 objects)");
    println!(
        "players = {}   updates = {}   objects = {}",
        out.players, out.total_updates, out.objects
    );

    header("Fig. 3c — updates per player (CDF, downsampled)");
    println!("{:>10} {:>8}", "updates", "CDF");
    let step = (out.updates_cdf.len() / 20).max(1);
    for (u, f) in out.updates_cdf.iter().step_by(step) {
        println!("{u:>10} {f:>8.3}");
    }
    if let Some((u, f)) = out.updates_cdf.last() {
        println!("{u:>10} {f:>8.3}");
    }

    header("Fig. 3d — players and objects per area");
    println!("{:<10} {:>8} {:>8} {:>10}", "area", "players", "objects", "updates");
    for a in &out.per_area {
        println!(
            "{:<10} {:>8} {:>8} {:>10}",
            a.cd.to_string(),
            a.players,
            a.objects,
            a.updates
        );
    }

    header("Shape check");
    let max = out.updates_cdf.last().map_or(0, |x| x.0);
    let median = out.updates_cdf[out.updates_cdf.len() / 2].0;
    println!("heavy tail: max/median updates per player = {:.1}", max as f64 / median.max(1) as f64);

    // No simulator runs here — the telemetry report characterizes the
    // workload itself with log-scale histograms.
    h.push_report(trace_stats::telemetry_report(&params, &out));
    h.finish();
}
