//! The experiment-binary harness: one builder wrapping the boilerplate
//! every `exp_*` binary shares — CLI parsing, enabling the simulator
//! self-profiler, telemetry capture, and the end-of-run export fan
//! (`prof_*.json` merged into `telemetry_*.json`, plus optional
//! `timeseries_*`, `audit_*` and `BENCH_*` documents).
//!
//! The canonical shape of a binary becomes:
//!
//! ```no_run
//! use gcopss_bench::ExpHarness;
//! let mut h = ExpHarness::new("fig4").with_sampled_capture();
//! let seed = h.opts.seed;
//! // ... run experiments, passing `h.cap()` to the `run_with` driver ...
//! h.finish();
//! ```
//!
//! [`ExpHarness::finish`] preserves the invariants the binaries relied on:
//! the profile is written (and merged as a pseudo-run) *before* the
//! telemetry document, so the prof trace lands in the merged Perfetto
//! file, and audit/bench documents are written before the profile table
//! prints.

use gcopss_core::experiments::TelemetryCapture;
use gcopss_sim::json::Json;
use gcopss_sim::{TelemetryConfig, TelemetryReport, TimeSeriesConfig};

use crate::{
    write_audit, write_bench, write_prof, write_telemetry, write_timeseries, BenchEntry,
    ExpOptions,
};

/// Shared lifecycle of one experiment binary. Construct with
/// [`ExpHarness::new`], run the experiment body, then call
/// [`ExpHarness::finish`] exactly once.
pub struct ExpHarness {
    /// Experiment label: the suffix of every `results/` file written.
    pub exp: String,
    /// Parsed CLI options (`--full`, `--scale`, `--seed`).
    pub opts: ExpOptions,
    capture: Option<TelemetryCapture>,
    audits: Vec<(String, Json)>,
    series: Vec<(String, Json)>,
    bench_entries: Vec<BenchEntry>,
}

impl ExpHarness {
    /// Parses the process arguments and enables the simulator
    /// self-profiler (every binary profiles its own hot loop).
    #[must_use]
    pub fn new(exp: &str) -> Self {
        let opts = ExpOptions::from_args();
        gcopss_sim::prof::enable();
        Self {
            exp: exp.to_string(),
            opts,
            capture: None,
            audits: Vec::new(),
            series: Vec::new(),
            bench_entries: Vec::new(),
        }
    }

    /// Arms a telemetry capture with an explicit configuration.
    #[must_use]
    pub fn with_capture(mut self, cfg: TelemetryConfig) -> Self {
        self.capture = Some(TelemetryCapture::new(cfg));
        self
    }

    /// Arms the multi-run capture shape: journal capped at 8,192 entries,
    /// sampled 1-in-16, so sweeps with many runs keep the merged trace
    /// document small (counters and histograms are unaffected).
    #[must_use]
    pub fn with_sampled_capture(self) -> Self {
        self.with_capture(TelemetryConfig {
            journal_capacity: 8_192,
            journal_sample: 16,
        })
    }

    /// Additionally arms the periodic time-series sampler on every
    /// captured run.
    ///
    /// # Panics
    ///
    /// Panics if no capture was configured yet.
    #[must_use]
    pub fn with_timeseries(mut self, ts: TimeSeriesConfig) -> Self {
        let cap = self
            .capture
            .take()
            .expect("configure a capture before the time-series sampler");
        self.capture = Some(cap.with_timeseries(ts));
        self
    }

    /// The capture to hand to a driver's `run_with(…)` telemetry argument
    /// (`None` when the harness runs captureless).
    pub fn cap(&mut self) -> Option<&mut TelemetryCapture> {
        self.capture.as_mut()
    }

    /// Appends a hand-built report (for characterization passes that never
    /// run a simulator, e.g. `trace_stats`). Creates an otherwise-unused
    /// capture if none was configured.
    pub fn push_report(&mut self, report: TelemetryReport) {
        self.capture
            .get_or_insert_with(|| TelemetryCapture::new(TelemetryConfig::default()))
            .reports
            .push(report);
    }

    /// Queues one run's audit document for `results/audit_<exp>.json`.
    pub fn add_audit(&mut self, label: impl Into<String>, audit: Json) {
        self.audits.push((label.into(), audit));
    }

    /// Queues one run's time-series document for
    /// `results/timeseries_<exp>.json` (merged after any capture-harvested
    /// series).
    pub fn add_series(&mut self, label: impl Into<String>, series: Json) {
        self.series.push((label.into(), series));
    }

    /// Queues one benchmark entry for `results/BENCH_<exp>.json`.
    pub fn add_bench(&mut self, entry: BenchEntry) {
        self.bench_entries.push(entry);
    }

    /// Writes every queued export and the self-profile. Call once, at the
    /// end of `main`.
    ///
    /// # Panics
    ///
    /// Panics if any `results/` file cannot be written.
    pub fn finish(mut self) {
        let prof = gcopss_sim::prof::take_report();
        let seed = self.opts.seed;
        if !self.audits.is_empty() {
            write_audit(&self.exp, seed, &self.audits).expect("write audit");
        }
        if !self.bench_entries.is_empty() {
            write_bench(&self.exp, seed, &self.bench_entries).expect("write bench trajectory");
        }
        match self.capture.as_mut() {
            Some(cap) => {
                write_prof(&self.exp, seed, &prof, Some(&mut cap.reports)).expect("write prof");
                write_telemetry(&self.exp, seed, &cap.reports).expect("write telemetry");
                let mut series = std::mem::take(&mut cap.series);
                series.append(&mut self.series);
                if !series.is_empty() {
                    write_timeseries(&self.exp, seed, &series).expect("write timeseries");
                }
            }
            None => {
                write_prof(&self.exp, seed, &prof, None).expect("write prof");
                if !self.series.is_empty() {
                    write_timeseries(&self.exp, seed, &self.series).expect("write timeseries");
                }
            }
        }
    }
}
