//! Shared helpers for the experiment binaries and benchmarks.

use std::env;

/// Simple CLI options shared by every experiment binary.
///
/// * `--full` — run at the paper's full scale (slow).
/// * `--scale <f>` — scale the workload size by `f` (default varies per
///   experiment; `--full` overrides).
/// * `--seed <n>` — master seed (default 42).
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Run at full paper scale.
    pub full: bool,
    /// Workload scale factor.
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
}

impl ExpOptions {
    /// Parses the process arguments (ignores unknown flags).
    #[must_use]
    pub fn from_args() -> Self {
        let mut out = Self {
            full: false,
            scale: 1.0,
            seed: 42,
        };
        let args: Vec<String> = env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--full" => out.full = true,
                "--scale" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        out.scale = v;
                        i += 1;
                    }
                }
                "--seed" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        out.seed = v;
                        i += 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        out
    }

    /// Scales a baseline count, with a full-scale override.
    #[must_use]
    pub fn scaled(&self, default: usize, full: usize) -> usize {
        if self.full {
            full
        } else {
            ((default as f64) * self.scale).round().max(1.0) as usize
        }
    }
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Formats bytes as the paper's GB unit.
#[must_use]
pub fn gb(bytes: u64) -> f64 {
    bytes as f64 / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_math() {
        let o = ExpOptions {
            full: false,
            scale: 0.5,
            seed: 1,
        };
        assert_eq!(o.scaled(100, 1000), 50);
        let o = ExpOptions {
            full: true,
            scale: 0.5,
            seed: 1,
        };
        assert_eq!(o.scaled(100, 1000), 1000);
        assert_eq!(gb(2_000_000_000), 2.0);
    }
}
