//! Shared helpers for the experiment binaries and benchmarks.

pub mod harness;
pub mod trend;

pub use harness::ExpHarness;

use std::env;

use gcopss_sim::json::{results_doc, write_results, Json};
use gcopss_sim::prof::ProfReport;
use gcopss_sim::TelemetryReport;

/// Simple CLI options shared by every experiment binary.
///
/// * `--full` — run at the paper's full scale (slow).
/// * `--scale <f>` — scale the workload size by `f` (default varies per
///   experiment; `--full` overrides).
/// * `--seed <n>` — master seed (default 42).
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Run at full paper scale.
    pub full: bool,
    /// Workload scale factor.
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
}

impl ExpOptions {
    /// Parses the process arguments (ignores unknown flags).
    #[must_use]
    pub fn from_args() -> Self {
        let mut out = Self {
            full: false,
            scale: 1.0,
            seed: 42,
        };
        let args: Vec<String> = env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--full" => out.full = true,
                "--scale" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        out.scale = v;
                        i += 1;
                    }
                }
                "--seed" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        out.seed = v;
                        i += 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        out
    }

    /// Scales a baseline count, with a full-scale override.
    #[must_use]
    pub fn scaled(&self, default: usize, full: usize) -> usize {
        if self.full {
            full
        } else {
            ((default as f64) * self.scale).round().max(1.0) as usize
        }
    }
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Assembles the unified telemetry document for one experiment: per-run
/// summaries plus a merged Chrome trace-event stream (one trace "process"
/// per run, named by its label — open the file directly in Perfetto).
#[must_use]
pub fn telemetry_json(exp: &str, seed: u64, reports: &[TelemetryReport]) -> Json {
    let mut trace_events: Vec<Json> = Vec::new();
    for (pid, r) in reports.iter().enumerate() {
        if r.trace_events.is_empty() {
            continue;
        }
        trace_events.push(Json::obj([
            ("name", Json::str("process_name")),
            ("ph", Json::str("M")),
            ("pid", Json::UInt(pid as u64)),
            ("tid", Json::UInt(0)),
            ("args", Json::obj([("name", Json::str(r.label.clone()))])),
        ]));
        trace_events.extend(r.trace_events.iter().cloned());
    }
    results_doc(
        "gcopss-telemetry-v1",
        exp,
        seed,
        [
            (
                "runs",
                Json::arr(reports.iter().map(|r| r.summary.clone())),
            ),
            ("traceEvents", Json::Array(trace_events)),
        ],
    )
}

/// Writes `results/telemetry_<exp>.json` and prints one line per run with
/// its journal fingerprint (the determinism witness: equal seeds must
/// produce equal fingerprints). Returns the path written.
///
/// # Errors
///
/// Propagates filesystem errors (`results/` not creatable, disk full, …).
pub fn write_telemetry(
    exp: &str,
    seed: u64,
    reports: &[TelemetryReport],
) -> std::io::Result<String> {
    let path = format!("results/telemetry_{exp}.json");
    let doc = telemetry_json(exp, seed, reports);
    write_results(&path, &doc)?;
    println!();
    for r in reports {
        println!("telemetry run {:<14} journal fingerprint {:016x}", r.label, r.fingerprint);
    }
    println!("telemetry written to {path}");
    Ok(path)
}

/// Writes `results/timeseries_<exp>.json`: one entry per run label, each
/// carrying the run's captured time-series frames
/// (see [`gcopss_sim::TimeSeries::to_json`]). Returns the path written.
///
/// # Errors
///
/// Propagates filesystem errors (`results/` not creatable, disk full, …).
pub fn write_timeseries(
    exp: &str,
    seed: u64,
    series: &[(String, Json)],
) -> std::io::Result<String> {
    let path = format!("results/timeseries_{exp}.json");
    let doc = results_doc(
        "gcopss-timeseries-v1",
        exp,
        seed,
        [(
            "runs",
            Json::arr(series.iter().map(|(label, s)| {
                Json::obj([("label", Json::str(label.clone())), ("series", s.clone())])
            })),
        )],
    );
    write_results(&path, &doc)?;
    println!("timeseries written to {path} ({} runs)", series.len());
    Ok(path)
}

/// Writes `results/audit_<exp>.json`: the delivery auditor's per-class
/// accounting plus the lineage fingerprint per run. Returns the path.
///
/// # Errors
///
/// Propagates filesystem errors (`results/` not creatable, disk full, …).
pub fn write_audit(exp: &str, seed: u64, runs: &[(String, Json)]) -> std::io::Result<String> {
    let path = format!("results/audit_{exp}.json");
    let doc = results_doc(
        "gcopss-audit-v1",
        exp,
        seed,
        [(
            "runs",
            Json::arr(runs.iter().map(|(label, a)| {
                Json::obj([("label", Json::str(label.clone())), ("audit", a.clone())])
            })),
        )],
    );
    write_results(&path, &doc)?;
    println!("audit written to {path} ({} runs)", runs.len());
    Ok(path)
}

/// One measured benchmark for the `BENCH_*.json` perf trajectory.
#[derive(Debug, Clone)]
pub struct BenchEntry {
    /// Stable benchmark id (`structure/operation[/size]`).
    pub id: String,
    /// Median per-iteration cost in nanoseconds.
    pub median_ns: f64,
    /// Iterations the median was computed over.
    pub iters: u64,
}

impl BenchEntry {
    /// Convenience constructor.
    #[must_use]
    pub fn new(id: impl Into<String>, median_ns: f64, iters: u64) -> Self {
        Self {
            id: id.into(),
            median_ns,
            iters,
        }
    }
}

/// Writes `results/BENCH_<label>.json`: the machine-readable perf
/// trajectory — per-benchmark median nanoseconds plus a fingerprint over
/// the benchmark *identities* (FNV-1a of the newline-joined ids). The
/// fingerprint pins the benchmark set, so two files are comparable iff
/// their fingerprints match; timings are expected to vary run to run.
/// Returns the path written.
///
/// # Errors
///
/// Propagates filesystem errors (`results/` not creatable, disk full, …).
pub fn write_bench(label: &str, seed: u64, entries: &[BenchEntry]) -> std::io::Result<String> {
    let path = format!("results/BENCH_{label}.json");
    let ids: Vec<&str> = entries.iter().map(|e| e.id.as_str()).collect();
    let fingerprint = gcopss_names::fnv1a(ids.join("\n").as_bytes());
    let doc = results_doc(
        "gcopss-bench-v1",
        label,
        seed,
        [
            (
                "entries",
                Json::arr(entries.iter().map(|e| {
                    Json::obj([
                        ("id", Json::str(e.id.clone())),
                        ("median_ns", Json::Float(e.median_ns)),
                        ("iters", Json::UInt(e.iters)),
                    ])
                })),
            ),
            ("fingerprint", Json::str(format!("{fingerprint:016x}"))),
        ],
    );
    write_results(&path, &doc)?;
    println!(
        "bench trajectory written to {path} ({} entries, fingerprint {fingerprint:016x})",
        entries.len()
    );
    Ok(path)
}

/// Prints the hot-loop time-attribution table and writes
/// `results/prof_<exp>.json` (schema `gcopss-prof-v1`) from the simulator
/// self-profile of this experiment run. When `merge_into` is given, the
/// profile is also appended as a pseudo-run labeled `"prof"` whose Chrome
/// trace spans land in the experiment's merged Perfetto file (pass the
/// capture's report vector *before* `write_telemetry`). Returns the path
/// written.
///
/// The `count_fingerprint` in the file covers phase paths, call counts and
/// deterministic counters only — never wall-clock times — so same-seed
/// runs produce byte-identical `counts` sections.
///
/// # Errors
///
/// Propagates filesystem errors (`results/` not creatable, disk full, …).
pub fn write_prof(
    exp: &str,
    seed: u64,
    report: &ProfReport,
    merge_into: Option<&mut Vec<TelemetryReport>>,
) -> std::io::Result<String> {
    header("Hot-loop time attribution (simulator self-profile)");
    print!("{}", report.table());
    let path = format!("results/prof_{exp}.json");
    let mut doc = results_doc("gcopss-prof-v1", exp, seed, []);
    if let (Json::Object(pairs), Json::Object(fields)) = (&mut doc, report.to_json()) {
        pairs.extend(fields);
    }
    write_results(&path, &doc)?;
    println!(
        "prof written to {path} ({} phases, count fingerprint {:016x})",
        report.phases.len(),
        report.count_fingerprint()
    );
    if let Some(reports) = merge_into {
        let pid = reports.len() as u64;
        reports.push(TelemetryReport {
            label: "prof".to_string(),
            summary: Json::obj([
                ("label", Json::str("prof")),
                ("kind", Json::str("self-profile")),
                ("wall_ns", Json::from(report.wall_ns)),
                ("coverage", Json::from(report.coverage())),
                (
                    "count_fingerprint",
                    Json::str(format!("{:016x}", report.count_fingerprint())),
                ),
            ]),
            trace_events: report.trace_events_json(pid),
            fingerprint: report.count_fingerprint(),
        });
    }
    Ok(path)
}

/// Formats bytes as the paper's GB unit.
#[must_use]
pub fn gb(bytes: u64) -> f64 {
    bytes as f64 / 1e9
}

/// Looks up a key in a JSON object (`None` for non-objects and missing
/// keys).
#[must_use]
pub fn json_get<'a>(j: &'a Json, key: &str) -> Option<&'a Json> {
    match j {
        Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn as_u64(j: &Json) -> u64 {
    match j {
        Json::UInt(v) => *v,
        Json::Int(v) if *v >= 0 => *v as u64,
        _ => 0,
    }
}

/// Sums both directions of every per-link byte counter in a report's
/// summary. `None` when the report carries no link table (e.g. the
/// trace-characterization pseudo-run, which has no simulator).
#[must_use]
pub fn per_link_byte_sum(r: &TelemetryReport) -> Option<u64> {
    let Json::Array(items) = json_get(&r.summary, "links")? else {
        return None;
    };
    Some(
        items
            .iter()
            .map(|l| {
                as_u64(json_get(l, "bytes_ab").unwrap_or(&Json::Null))
                    + as_u64(json_get(l, "bytes_ba").unwrap_or(&Json::Null))
            })
            .sum(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_math() {
        let o = ExpOptions {
            full: false,
            scale: 0.5,
            seed: 1,
        };
        assert_eq!(o.scaled(100, 1000), 50);
        let o = ExpOptions {
            full: true,
            scale: 0.5,
            seed: 1,
        };
        assert_eq!(o.scaled(100, 1000), 1000);
        assert_eq!(gb(2_000_000_000), 2.0);
    }
}
