//! Bench-trend tracking and regression gating.
//!
//! `write_bench` (PR 5) emits `results/BENCH_<label>.json`, but
//! `run_experiments.sh` overwrote each file in place — the perf
//! "trajectory" was one point long. This module turns it into a real
//! trajectory:
//!
//! * [`archive`] copies a `BENCH_<label>.json` into a history directory as
//!   `BENCH_<label>.r<NNN>.json`, where `NNN` is the next run index
//!   (monotonic per label, derived by scanning the directory — **no
//!   wall-clock timestamps**, so archives are reproducible and diffable;
//!   the seed is already inside each document).
//! * [`load_history`] reads the archived runs of one label back, sorted by
//!   run index (via `gcopss_sim::json::Json::parse`, the workspace's only
//!   JSON consumer).
//! * [`compare`] checks the newest run against the previous one
//!   per-benchmark: a regression is `current > previous * threshold` on
//!   the median. Medians of medians plus a generous default multiplier
//!   ([`DEFAULT_THRESHOLD`]) keep the gate non-flaky on shared hardware —
//!   it exists to catch 10× accidents (an O(n) scan reintroduced on a hot
//!   path), not 10% noise.
//! * [`write_trend`] emits `results/BENCH_TREND.json`
//!   (schema `gcopss-bench-trend-v1`) with every comparison row.
//!
//! The `bench_trend` binary wires these together and exits non-zero on
//! any regression — the gate `check_hermetic.sh` runs, and the
//! prerequisite for all future ROADMAP-item-1 (parallel simulation) work.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use gcopss_sim::json::{results_doc, write_results, Json};

/// Default regression threshold: fail when a benchmark's median grows past
/// this multiple of the previous run's. Generous by design (CI boxes are
/// noisy; the sims share cores): real regressions this gate targets are
/// order-of-magnitude, not percent-level.
pub const DEFAULT_THRESHOLD: f64 = 4.0;

/// One archived run of one bench label.
#[derive(Debug, Clone)]
pub struct HistoryRun {
    /// Monotonic per-label run index (the `NNN` in `BENCH_<label>.r<NNN>.json`).
    pub run: u32,
    /// Seed recorded in the document.
    pub seed: u64,
    /// `id → median_ns`, sorted by id.
    pub medians: BTreeMap<String, f64>,
}

/// One per-benchmark comparison row of a [`TrendReport`].
#[derive(Debug, Clone)]
pub struct TrendRow {
    /// Benchmark id.
    pub id: String,
    /// Median in the previous run, ns.
    pub prev_ns: f64,
    /// Median in the current run, ns.
    pub cur_ns: f64,
    /// `cur / prev` (0 when prev is 0).
    pub ratio: f64,
    /// Whether this row trips the threshold.
    pub regressed: bool,
}

/// The comparison of one label's two newest archived runs.
#[derive(Debug, Clone)]
pub struct TrendReport {
    /// Bench label (`micro`, `exp_scale`, …).
    pub label: String,
    /// Run index compared against.
    pub prev_run: u32,
    /// Newest run index.
    pub cur_run: u32,
    /// Threshold the rows were judged with.
    pub threshold: f64,
    /// Per-benchmark rows, sorted by id.
    pub rows: Vec<TrendRow>,
    /// Ids present now but not before (new benchmarks; never a failure).
    pub added: Vec<String>,
    /// Ids present before but gone now (removed benchmarks; reported, not
    /// failed — renames are legitimate).
    pub removed: Vec<String>,
}

impl TrendReport {
    /// Whether any row regressed.
    #[must_use]
    pub fn regressed(&self) -> bool {
        self.rows.iter().any(|r| r.regressed)
    }

    /// JSON form of this comparison (one element of `BENCH_TREND.json`'s
    /// `comparisons` array).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("label", Json::str(self.label.clone())),
            ("prev_run", Json::from(u64::from(self.prev_run))),
            ("cur_run", Json::from(u64::from(self.cur_run))),
            ("threshold", Json::from(self.threshold)),
            ("regressed", Json::from(self.regressed())),
            (
                "rows",
                Json::arr(self.rows.iter().map(|r| {
                    Json::obj([
                        ("id", Json::str(r.id.clone())),
                        ("prev_ns", Json::from(r.prev_ns)),
                        ("cur_ns", Json::from(r.cur_ns)),
                        ("ratio", Json::from(r.ratio)),
                        ("regressed", Json::from(r.regressed)),
                    ])
                })),
            ),
            ("added", Json::arr(self.added.iter().map(Json::str))),
            ("removed", Json::arr(self.removed.iter().map(Json::str))),
        ])
    }
}

/// Extracts the label and parsed content of a `BENCH_<label>.json` file.
fn parse_bench(path: &Path) -> Result<(String, Json), String> {
    let text = fs::read_to_string(path)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != "gcopss-bench-v1" {
        return Err(format!(
            "{}: schema {schema:?} is not gcopss-bench-v1",
            path.display()
        ));
    }
    let label = doc
        .get("exp")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{}: missing exp/label", path.display()))?
        .to_string();
    Ok((label, doc))
}

fn history_file_index(name: &str, label: &str) -> Option<u32> {
    // BENCH_<label>.r<NNN>.json
    let rest = name
        .strip_prefix("BENCH_")?
        .strip_prefix(label)?
        .strip_prefix(".r")?
        .strip_suffix(".json")?;
    rest.parse().ok()
}

/// Copies `bench_path` (a `results/BENCH_<label>.json`) into `history_dir`
/// as `BENCH_<label>.r<NNN>.json` with the next free run index. Returns
/// `(label, run_index, archived_path)`.
///
/// # Errors
///
/// Malformed input documents and filesystem failures.
pub fn archive(history_dir: &Path, bench_path: &Path) -> Result<(String, u32, PathBuf), String> {
    let (label, _doc) = parse_bench(bench_path)?;
    fs::create_dir_all(history_dir)
        .map_err(|e| format!("{}: {e}", history_dir.display()))?;
    let next = fs::read_dir(history_dir)
        .map_err(|e| format!("{}: {e}", history_dir.display()))?
        .filter_map(|entry| {
            let name = entry.ok()?.file_name();
            history_file_index(name.to_str()?, &label)
        })
        .max()
        .map_or(0, |m| m + 1);
    let dest = history_dir.join(format!("BENCH_{label}.r{next:03}.json"));
    fs::copy(bench_path, &dest).map_err(|e| format!("{}: {e}", dest.display()))?;
    Ok((label, next, dest))
}

/// Loads every archived run of `label` from `history_dir`, sorted by run
/// index (empty when the directory does not exist yet).
///
/// # Errors
///
/// Malformed archived documents and filesystem failures (a missing
/// directory is an empty history, not an error).
pub fn load_history(history_dir: &Path, label: &str) -> Result<Vec<HistoryRun>, String> {
    let entries = match fs::read_dir(history_dir) {
        Ok(e) => e,
        Err(_) => return Ok(Vec::new()),
    };
    let mut runs = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", history_dir.display()))?;
        let name = entry.file_name();
        let Some(run) = name.to_str().and_then(|n| history_file_index(n, label)) else {
            continue;
        };
        let (_, doc) = parse_bench(&entry.path())?;
        let seed = doc.get("seed").and_then(Json::as_u64).unwrap_or(0);
        let mut medians = BTreeMap::new();
        for e in doc
            .get("entries")
            .and_then(Json::as_array)
            .unwrap_or_default()
        {
            let (Some(id), Some(m)) = (
                e.get("id").and_then(Json::as_str),
                e.get("median_ns").and_then(Json::as_f64),
            ) else {
                return Err(format!("{}: malformed entry", entry.path().display()));
            };
            medians.insert(id.to_string(), m);
        }
        runs.push(HistoryRun { run, seed, medians });
    }
    runs.sort_by_key(|r| r.run);
    Ok(runs)
}

/// Compares the current run against the previous one benchmark-by-
/// benchmark. Only ids present in both runs are judged; additions and
/// removals are reported separately.
#[must_use]
pub fn compare(
    label: &str,
    prev: &HistoryRun,
    cur: &HistoryRun,
    threshold: f64,
) -> TrendReport {
    let mut rows = Vec::new();
    let mut removed = Vec::new();
    for (id, &prev_ns) in &prev.medians {
        let Some(&cur_ns) = cur.medians.get(id) else {
            removed.push(id.clone());
            continue;
        };
        let ratio = if prev_ns > 0.0 { cur_ns / prev_ns } else { 0.0 };
        rows.push(TrendRow {
            id: id.clone(),
            prev_ns,
            cur_ns,
            ratio,
            regressed: ratio > threshold,
        });
    }
    let added = cur
        .medians
        .keys()
        .filter(|id| !prev.medians.contains_key(*id))
        .cloned()
        .collect();
    TrendReport {
        label: label.to_string(),
        prev_run: prev.run,
        cur_run: cur.run,
        threshold,
        rows,
        added,
        removed,
    }
}

/// Writes `BENCH_TREND.json` from the per-label comparisons, plus labels
/// with too little history to compare yet. Returns the path written.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_trend(
    path: &str,
    seed: u64,
    comparisons: &[TrendReport],
    pending: &[(String, u32)],
) -> std::io::Result<String> {
    let doc = results_doc(
        "gcopss-bench-trend-v1",
        "bench_trend",
        seed,
        [
            (
                "comparisons",
                Json::arr(comparisons.iter().map(TrendReport::to_json)),
            ),
            (
                "pending",
                Json::arr(pending.iter().map(|(label, runs)| {
                    Json::obj([
                        ("label", Json::str(label.clone())),
                        ("runs", Json::from(u64::from(*runs))),
                    ])
                })),
            ),
            (
                "regressed",
                Json::from(comparisons.iter().any(TrendReport::regressed)),
            ),
        ],
    );
    write_results(path, &doc)?;
    Ok(path.to_string())
}

/// A label still waiting for a second archived run: `(label, runs so far)`.
pub type PendingRuns = (String, u32);

/// The whole gate: archive each input `BENCH_*.json`, reload each touched
/// label's history, compare the two newest runs where possible, and write
/// the trend file. Returns the comparisons (check
/// [`TrendReport::regressed`]) and the labels still waiting for a second
/// run.
///
/// # Errors
///
/// Malformed documents and filesystem failures.
pub fn run_gate(
    history_dir: &Path,
    bench_paths: &[PathBuf],
    trend_path: &str,
    threshold: f64,
) -> Result<(Vec<TrendReport>, Vec<PendingRuns>), String> {
    let mut labels = Vec::new();
    let mut seed = 0;
    for p in bench_paths {
        let (label, run, dest) = archive(history_dir, p)?;
        println!("bench_trend: archived {} -> {}", p.display(), dest.display());
        if !labels.contains(&label) {
            labels.push(label);
        }
        let _ = run;
    }
    let mut comparisons = Vec::new();
    let mut pending = Vec::new();
    for label in &labels {
        let runs = load_history(history_dir, label)?;
        if let [.., prev, cur] = runs.as_slice() {
            seed = cur.seed;
            comparisons.push(compare(label, prev, cur, threshold));
        } else {
            pending.push((label.clone(), runs.len() as u32));
        }
    }
    write_trend(trend_path, seed, &comparisons, &pending)
        .map_err(|e| format!("{trend_path}: {e}"))?;
    Ok((comparisons, pending))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BenchEntry;
    use std::sync::atomic::{AtomicU32, Ordering};

    /// A unique scratch directory per test (no wall clock, no PRNG).
    fn scratch(tag: &str) -> PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let d = std::env::temp_dir().join(format!(
            "gcopss_trend_{tag}_{}_{n}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    /// Writes a BENCH_<label>.json under `dir` via the production writer.
    fn bench_file(dir: &Path, label: &str, medians: &[(&str, f64)]) -> PathBuf {
        let entries: Vec<BenchEntry> = medians
            .iter()
            .map(|&(id, m)| BenchEntry::new(id, m, 100))
            .collect();
        // write_bench writes relative to cwd: build the doc directly here
        // instead, through the same serializer.
        let ids: Vec<&str> = entries.iter().map(|e| e.id.as_str()).collect();
        let fingerprint = gcopss_names::fnv1a(ids.join("\n").as_bytes());
        let doc = results_doc(
            "gcopss-bench-v1",
            label,
            42,
            [
                (
                    "entries",
                    Json::arr(entries.iter().map(|e| {
                        Json::obj([
                            ("id", Json::str(e.id.clone())),
                            ("median_ns", Json::Float(e.median_ns)),
                            ("iters", Json::UInt(e.iters)),
                        ])
                    })),
                ),
                ("fingerprint", Json::str(format!("{fingerprint:016x}"))),
            ],
        );
        let path = dir.join(format!("BENCH_{label}.json"));
        fs::write(&path, doc.to_string()).unwrap();
        path
    }

    #[test]
    fn archive_assigns_monotonic_indexes() {
        let d = scratch("archive");
        let hist = d.join("hist");
        let b = bench_file(&d, "micro", &[("a/b", 100.0)]);
        let (label, r0, p0) = archive(&hist, &b).unwrap();
        let (_, r1, p1) = archive(&hist, &b).unwrap();
        assert_eq!(label, "micro");
        assert_eq!((r0, r1), (0, 1));
        assert!(p0.file_name().unwrap() != p1.file_name().unwrap());
        // Another label gets its own index space.
        let b2 = bench_file(&d, "exp_scale", &[("st/match", 50.0)]);
        let (_, r, _) = archive(&hist, &b2).unwrap();
        assert_eq!(r, 0);
        let runs = load_history(&hist, "micro").unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].medians["a/b"], 100.0);
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn gate_passes_on_steady_medians_and_fails_on_10x() {
        let d = scratch("gate");
        let hist = d.join("hist");
        let trend = d.join("BENCH_TREND.json");
        let trend_s = trend.to_str().unwrap();

        // Run 1: baseline. One archived run -> pending, no comparison.
        let b = bench_file(&d, "micro", &[("st/match", 100.0), ("fib/lpm", 200.0)]);
        let (cmp, pending) =
            run_gate(&hist, std::slice::from_ref(&b), trend_s, DEFAULT_THRESHOLD).unwrap();
        assert!(cmp.is_empty());
        assert_eq!(pending, vec![("micro".to_string(), 1)]);

        // Run 2: small noise -> clean comparison, non-empty trend file.
        bench_file(&d, "micro", &[("st/match", 130.0), ("fib/lpm", 180.0)]);
        let (cmp, pending) =
            run_gate(&hist, std::slice::from_ref(&b), trend_s, DEFAULT_THRESHOLD).unwrap();
        assert!(pending.is_empty());
        assert_eq!(cmp.len(), 1);
        assert!(!cmp[0].regressed());
        assert_eq!(cmp[0].rows.len(), 2);
        let doc = Json::parse(&fs::read_to_string(&trend).unwrap()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("gcopss-bench-trend-v1")
        );
        assert_eq!(doc.get("regressed"), Some(&Json::Bool(false)));
        assert!(!doc.get("comparisons").unwrap().as_array().unwrap().is_empty());

        // Run 3: one benchmark regresses 10x -> the gate fails it.
        bench_file(&d, "micro", &[("st/match", 1300.0), ("fib/lpm", 190.0)]);
        let (cmp, _) = run_gate(&hist, &[b], trend_s, DEFAULT_THRESHOLD).unwrap();
        assert!(cmp[0].regressed());
        let bad: Vec<&str> = cmp[0]
            .rows
            .iter()
            .filter(|r| r.regressed)
            .map(|r| r.id.as_str())
            .collect();
        assert_eq!(bad, ["st/match"]);
        let doc = Json::parse(&fs::read_to_string(&trend).unwrap()).unwrap();
        assert_eq!(doc.get("regressed"), Some(&Json::Bool(true)));
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn compare_reports_added_and_removed_ids_without_failing() {
        let prev = HistoryRun {
            run: 0,
            seed: 42,
            medians: [("old".to_string(), 10.0), ("kept".to_string(), 10.0)].into(),
        };
        let cur = HistoryRun {
            run: 1,
            seed: 42,
            medians: [("new".to_string(), 99.0), ("kept".to_string(), 12.0)].into(),
        };
        let r = compare("micro", &prev, &cur, DEFAULT_THRESHOLD);
        assert!(!r.regressed());
        assert_eq!(r.added, ["new"]);
        assert_eq!(r.removed, ["old"]);
        assert_eq!(r.rows.len(), 1);
        assert!((r.rows[0].ratio - 1.2).abs() < 1e-9);
    }

    #[test]
    fn rejects_wrong_schema() {
        let d = scratch("schema");
        let p = d.join("BENCH_x.json");
        fs::write(&p, r#"{"schema":"other","exp":"x","seed":1}"#).unwrap();
        assert!(archive(&d.join("hist"), &p).unwrap_err().contains("schema"));
        let _ = fs::remove_dir_all(&d);
    }
}
