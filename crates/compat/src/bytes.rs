//! A cheap-clone immutable byte buffer, mirroring the `bytes` crate's
//! `Bytes` for the operations this workspace uses.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
///
/// Cloning is O(1): static payloads share the `'static` slice directly,
/// heap payloads bump an [`Arc`]. Equality and hashing are by content.
///
/// # Example
///
/// ```
/// use gcopss_compat::bytes::Bytes;
///
/// let a = Bytes::from_static(b"update");
/// let b = a.clone(); // no copy
/// assert_eq!(a, b);
/// assert_eq!(a.len(), 6);
/// assert_eq!(&a[..2], b"up");
/// ```
#[derive(Clone)]
pub struct Bytes(Repr);

#[derive(Clone)]
enum Repr {
    /// Borrowed from static memory — `from_static` is zero-copy.
    Static(&'static [u8]),
    /// Shared heap allocation.
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// An empty buffer (no allocation).
    #[must_use]
    pub const fn new() -> Self {
        Self(Repr::Static(&[]))
    }

    /// Wraps a `'static` slice without copying.
    #[must_use]
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Self(Repr::Static(bytes))
    }

    /// Copies a slice into a new shared buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self(Repr::Shared(Arc::from(data)))
    }

    /// Number of bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Returns `true` if the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// The underlying bytes.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Static(s) => s,
            Repr::Shared(a) => a,
        }
    }

    /// Returns `true` if `other` shares storage with `self` (both point at
    /// the same allocation or the same static slice). Used by tests to pin
    /// the clone-is-shallow guarantee.
    #[must_use]
    pub fn shares_storage_with(&self, other: &Bytes) -> bool {
        match (&self.0, &other.0) {
            (Repr::Static(a), Repr::Static(b)) => std::ptr::eq(*a, *b),
            (Repr::Shared(a), Repr::Shared(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Self::copy_from_slice(data)
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self(Repr::Shared(Arc::from(data)))
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Self::from_static(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    /// Renders as `b"…"` with escapes, like the real crate.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_len() {
        assert!(Bytes::new().is_empty());
        let s = Bytes::from_static(b"abc");
        assert_eq!(s.len(), 3);
        let c = Bytes::copy_from_slice(&[1, 2, 3, 4]);
        assert_eq!(c.len(), 4);
        let v = Bytes::from(vec![9u8; 5]);
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn equality_is_by_content_across_reprs() {
        let a = Bytes::from_static(b"xyz");
        let b = Bytes::copy_from_slice(b"xyz");
        assert_eq!(a, b);
        assert!(!a.shares_storage_with(&b));
    }

    #[test]
    fn deref_and_as_ref() {
        let b = Bytes::from_static(b"hello");
        assert_eq!(&b[1..3], b"el");
        assert_eq!(b.as_ref(), b"hello");
        assert!(b.iter().eq(b"hello".iter()));
    }

    #[test]
    fn debug_escapes() {
        let b = Bytes::from_static(b"a\"\n");
        assert_eq!(format!("{b:?}"), "b\"a\\\"\\n\"");
    }
}
