//! Weighted sampling, mirroring `rand::distributions`.

use std::fmt;

use crate::rng::{Rng, RngCore};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a [`WeightedIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightedError {
    /// The weight list was empty.
    NoItem,
    /// A weight was negative, NaN or infinite, or the total was zero.
    InvalidWeight,
}

impl fmt::Display for WeightedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoItem => write!(f, "weighted index needs at least one weight"),
            Self::InvalidWeight => write!(f, "weights must be finite, non-negative, and sum > 0"),
        }
    }
}

impl std::error::Error for WeightedError {}

/// Samples indices `0..n` with probability proportional to the given
/// weights, via a cumulative table and binary search (O(log n) per draw).
///
/// # Example
///
/// ```
/// use gcopss_compat::distributions::{Distribution, WeightedIndex};
/// use gcopss_compat::{SeedableRng, StdRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let w = WeightedIndex::new([1.0, 0.0, 3.0]).unwrap();
/// let i = w.sample(&mut rng);
/// assert!(i == 0 || i == 2); // index 1 has zero weight
/// ```
#[derive(Debug, Clone)]
pub struct WeightedIndex {
    /// `cumulative[i]` = sum of weights `0..=i`; strictly positive tail.
    cumulative: Vec<f64>,
    total: f64,
}

impl WeightedIndex {
    /// Builds the sampler from per-index weights.
    ///
    /// # Errors
    ///
    /// [`WeightedError::NoItem`] for an empty list;
    /// [`WeightedError::InvalidWeight`] if any weight is negative or
    /// non-finite, or all weights are zero.
    pub fn new<W: AsRef<[f64]>>(weights: W) -> Result<Self, WeightedError> {
        let weights = weights.as_ref();
        if weights.is_empty() {
            return Err(WeightedError::NoItem);
        }
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0.0f64;
        for &w in weights {
            if !w.is_finite() || w < 0.0 {
                return Err(WeightedError::InvalidWeight);
            }
            total += w;
            cumulative.push(total);
        }
        if !(total.is_finite() && total > 0.0) {
            return Err(WeightedError::InvalidWeight);
        }
        Ok(Self { cumulative, total })
    }
}

impl Distribution<usize> for WeightedIndex {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        let x = crate::rng::unit_f64(rng.next_u64()) * self.total;
        // First index whose cumulative weight exceeds x; zero-weight
        // entries have cumulative == predecessor and are never selected.
        let i = self.cumulative.partition_point(|&c| c <= x);
        i.min(self.cumulative.len() - 1)
    }
}

// Allow `rng.gen_range(..)`-style use of `sample` through the Rng trait
// without importing RngCore at call sites.
impl WeightedIndex {
    /// Convenience wrapper over [`Distribution::sample`] for call sites
    /// that have an [`Rng`] but did not import the trait.
    pub fn sample_with<R: Rng>(&self, rng: &mut R) -> usize {
        Distribution::sample(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SeedableRng, StdRng};

    #[test]
    fn rejects_bad_weights() {
        let empty: [f64; 0] = [];
        assert!(matches!(WeightedIndex::new(empty), Err(WeightedError::NoItem)));
        assert!(matches!(
            WeightedIndex::new([-1.0, 2.0]),
            Err(WeightedError::InvalidWeight)
        ));
        assert!(matches!(
            WeightedIndex::new([f64::NAN]),
            Err(WeightedError::InvalidWeight)
        ));
        assert!(matches!(
            WeightedIndex::new([0.0, 0.0]),
            Err(WeightedError::InvalidWeight)
        ));
    }

    #[test]
    fn zero_weight_entries_never_sampled() {
        let w = WeightedIndex::new([0.0, 1.0, 0.0, 1.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let i = w.sample(&mut rng);
            assert!(i == 1 || i == 3, "sampled zero-weight index {i}");
        }
    }

    #[test]
    fn frequencies_track_weights() {
        let w = WeightedIndex::new([1.0, 2.0, 7.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 3];
        let n = 100_000;
        for _ in 0..n {
            counts[w.sample(&mut rng)] += 1;
        }
        let f: Vec<f64> = counts.iter().map(|&c| f64::from(c) / f64::from(n)).collect();
        assert!((f[0] - 0.1).abs() < 0.01, "{f:?}");
        assert!((f[1] - 0.2).abs() < 0.01, "{f:?}");
        assert!((f[2] - 0.7).abs() < 0.01, "{f:?}");
    }
}
