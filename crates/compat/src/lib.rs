//! In-tree shims for the external crates the workspace used to depend on.
//!
//! The build environment has no registry access, and the paper's
//! trace-driven methodology wants bit-for-bit reproducible runs from a
//! seed — neither works with floating external crate versions. This crate
//! provides the small API surface the workspace actually uses:
//!
//! * [`rng`] — a seed-deterministic PRNG behind a `rand`-compatible
//!   surface ([`Rng`], [`SeedableRng`], [`StdRng`], [`SmallRng`]), plus
//!   [`distributions::WeightedIndex`] and [`seq::SliceRandom`];
//! * [`bytes`] — a cheap-clone [`bytes::Bytes`] buffer;
//! * [`prop`] — a minimal deterministic property-testing harness with
//!   seeded case generation and shrink-on-failure.
//!
//! The PRNG streams are part of the repo's compatibility contract: golden
//! sequences are pinned in `tests/golden.rs`, because every synthetic
//! trace (and therefore every experiment result) derives from them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bytes;
pub mod distributions;
pub mod prop;
pub mod rng;
pub mod seq;

pub use rng::{Rng, SeedableRng, SmallRng, StdRng};
