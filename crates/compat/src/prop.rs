//! A minimal deterministic property-testing harness: seeded case
//! generation plus a shrink-on-failure loop. Replaces `proptest` for this
//! workspace's `tests/properties.rs` suites.
//!
//! # Model
//!
//! A [`Strategy`] generates values from a seeded [`StdRng`] and can
//! propose *shrink candidates* — structurally smaller variants — for a
//! failing value. [`check`] runs the property over `cases` generated
//! inputs; on the first failure it greedily walks shrink candidates to a
//! locally minimal counterexample and panics with it, the seed, and the
//! case index, so the failure replays exactly.
//!
//! Unlike `proptest`, strategies generate plain data (integers, strings,
//! vectors, tuples); tests construct domain objects from that data inside
//! the property body. This keeps shrinking working end to end without a
//! `prop_map`-style reverse mapping.
//!
//! # Example
//!
//! ```
//! use gcopss_compat::prop;
//!
//! prop::check(0xB10B, 64, &prop::vec(prop::range(0u32..100), 0..=8), |xs| {
//!     let mut sorted = xs.clone();
//!     sorted.sort_unstable();
//!     assert_eq!(sorted.len(), xs.len());
//! });
//! ```

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::rng::{Rng, SampleRange, SampleUniform, SeedableRng, StdRng};

/// Upper bound on shrink iterations, so pathological strategies terminate.
const MAX_SHRINK_STEPS: usize = 2_000;

/// A generator of test inputs with optional shrinking.
pub trait Strategy {
    /// The generated input type.
    type Value: Debug + Clone;

    /// Generates one value from the given deterministic RNG.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Proposes strictly "smaller" variants of a failing value, most
    /// aggressive first. The default proposes nothing (no shrinking).
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

/// Runs `test` over `cases` inputs generated from `strategy`,
/// deterministically from `seed`.
///
/// The property fails by panicking (use `assert!` family). On failure the
/// input is shrunk to a locally minimal counterexample and the harness
/// panics with it; re-running with the same arguments reproduces it.
///
/// # Panics
///
/// Panics if any generated or shrunken case fails the property.
pub fn check<S, F>(seed: u64, cases: u32, strategy: &S, test: F)
where
    S: Strategy,
    F: Fn(&S::Value),
{
    for case in 0..cases {
        // Decorrelate cases: each gets its own stream, all derived from
        // the top-level seed.
        let mut rng = StdRng::seed_from_u64(seed ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)));
        let value = strategy.generate(&mut rng);
        if run_case(&test, &value).is_ok() {
            continue;
        }
        // Failure: shrink greedily, silencing the per-candidate panic
        // output (the final report re-raises with the minimal case).
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let mut minimal = value;
        let mut steps = 0;
        'outer: while steps < MAX_SHRINK_STEPS {
            for candidate in strategy.shrink(&minimal) {
                steps += 1;
                if run_case(&test, &candidate).is_err() {
                    minimal = candidate;
                    continue 'outer;
                }
                if steps >= MAX_SHRINK_STEPS {
                    break;
                }
            }
            break;
        }
        std::panic::set_hook(prev_hook);
        panic!(
            "property failed (seed={seed:#x}, case {case}/{cases}, {steps} shrink steps)\n\
             minimal counterexample: {minimal:?}"
        );
    }
}

fn run_case<V, F: Fn(&V)>(test: &F, value: &V) -> Result<(), ()> {
    catch_unwind(AssertUnwindSafe(|| test(value))).map_err(|_| ())
}

// ---------------------------------------------------------------------------
// Integer strategies
// ---------------------------------------------------------------------------

/// Integers (or floats) uniform over a range, shrinking toward the lower
/// bound. Accepts `a..b` and `a..=b`.
pub fn range<T, R>(r: R) -> RangeStrategy<T, R>
where
    R: SampleRange<T> + Clone,
{
    RangeStrategy {
        range: r,
        _marker: std::marker::PhantomData,
    }
}

/// See [`range`].
#[derive(Clone)]
pub struct RangeStrategy<T, R> {
    range: R,
    _marker: std::marker::PhantomData<T>,
}

/// Integer types that can halve toward a lower bound while shrinking.
pub trait ShrinkToward: Sized + Copy + PartialOrd {
    /// Candidates strictly between `lo` and `value`, most aggressive first.
    fn shrink_toward(lo: Self, value: Self) -> Vec<Self>;
}

macro_rules! shrink_int {
    ($($t:ty),*) => {$(
        impl ShrinkToward for $t {
            fn shrink_toward(lo: Self, value: Self) -> Vec<Self> {
                let mut out = Vec::new();
                if value > lo {
                    out.push(lo);
                    let mid = lo + (value - lo) / 2;
                    if mid != lo && mid != value {
                        out.push(mid);
                    }
                    out.push(value - 1);
                    out.dedup();
                }
                out
            }
        }
    )*};
}
shrink_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ShrinkToward for f64 {
    fn shrink_toward(lo: Self, value: Self) -> Vec<Self> {
        if value > lo {
            vec![lo, lo + (value - lo) / 2.0]
        } else {
            Vec::new()
        }
    }
}

impl<T> Strategy for RangeStrategy<T, Range<T>>
where
    T: SampleUniform + ShrinkToward + Debug + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.range.clone())
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        T::shrink_toward(self.range.start, *value)
    }
}

impl<T> Strategy for RangeStrategy<T, RangeInclusive<T>>
where
    T: SampleUniform + ShrinkToward + Debug + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.range.clone())
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        T::shrink_toward(*self.range.start(), *value)
    }
}

/// Fair booleans, shrinking toward `false`.
#[must_use]
pub fn bools() -> BoolStrategy {
    BoolStrategy
}

/// See [`bools`].
#[derive(Clone, Copy)]
pub struct BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;

    fn generate(&self, rng: &mut StdRng) -> bool {
        rng.gen()
    }

    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

// ---------------------------------------------------------------------------
// Strings
// ---------------------------------------------------------------------------

/// Strings of length `len` over the given alphabet, shrinking by
/// shortening and by replacing characters with the first alphabet symbol.
pub fn string(alphabet: &str, len: RangeInclusive<usize>) -> StringStrategy {
    assert!(!alphabet.is_empty(), "alphabet must be non-empty");
    StringStrategy {
        alphabet: alphabet.chars().collect(),
        len,
    }
}

/// See [`string`].
#[derive(Clone)]
pub struct StringStrategy {
    alphabet: Vec<char>,
    len: RangeInclusive<usize>,
}

impl Strategy for StringStrategy {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let n = rng.gen_range(self.len.clone());
        (0..n)
            .map(|_| self.alphabet[rng.gen_range(0..self.alphabet.len())])
            .collect()
    }

    fn shrink(&self, value: &String) -> Vec<String> {
        let min = *self.len.start();
        let mut out = Vec::new();
        if value.chars().count() > min {
            // Drop the last character.
            let mut s = value.clone();
            s.pop();
            out.push(s);
        }
        // Canonicalize one non-minimal character at a time.
        let zero = self.alphabet[0];
        for (i, c) in value.char_indices() {
            if c != zero {
                let mut s: Vec<char> = value.chars().collect();
                s[value[..i].chars().count()] = zero;
                out.push(s.into_iter().collect());
                break;
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Vectors and tuples
// ---------------------------------------------------------------------------

/// Vectors of `len` elements drawn from `element`, shrinking by removing
/// chunks/elements and shrinking individual elements.
pub fn vec<S: Strategy>(element: S, len: RangeInclusive<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

/// See [`vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: RangeInclusive<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.len.clone());
        (0..n).map(|_| self.element.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let min = *self.len.start();
        let mut out = Vec::new();
        let n = value.len();
        // Halve first (fast length reduction)...
        if n / 2 >= min && n / 2 < n {
            out.push(value[..n / 2].to_vec());
        }
        // ...then drop single elements...
        if n > min {
            for i in 0..n.min(8) {
                let mut v = value.clone();
                v.remove(i);
                out.push(v);
            }
        }
        // ...then shrink the first shrinkable element (later elements get
        // their turn on subsequent rounds, once earlier ones are minimal).
        for (i, e) in value.iter().enumerate().take(8) {
            let candidates = self.element.shrink(e);
            if !candidates.is_empty() {
                for smaller in candidates {
                    let mut v = value.clone();
                    v[i] = smaller;
                    out.push(v);
                }
                break;
            }
        }
        out
    }
}

macro_rules! tuple_strategy {
    ($($name:ident: $S:ident => $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut v = value.clone();
                        v.$idx = candidate;
                        out.push(v);
                    }
                )+
                out
            }
        }
    };
}

tuple_strategy!(a: A => 0);
tuple_strategy!(a: A => 0, b: B => 1);
tuple_strategy!(a: A => 0, b: B => 1, c: C => 2);
tuple_strategy!(a: A => 0, b: B => 1, c: C => 2, d: D => 3);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = std::cell::Cell::new(0u32);
        check(1, 37, &range(0u32..10), |x| {
            count.set(count.get() + 1);
            assert!(*x < 10);
        });
        assert_eq!(count.get_mut(), &37);
    }

    #[test]
    fn failing_property_shrinks_to_boundary() {
        // Property: x < 50. Minimal counterexample is exactly 50.
        let result = catch_unwind(|| {
            check(2, 200, &range(0u32..100), |x| assert!(*x < 50));
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(
            msg.contains("minimal counterexample: 50"),
            "unexpected report: {msg}"
        );
    }

    #[test]
    fn vec_shrinks_toward_minimal_length() {
        // Property: vec has no element >= 7. Minimal failing case: [7].
        let result = catch_unwind(|| {
            check(3, 300, &vec(range(0u32..10), 0..=12), |xs| {
                assert!(xs.iter().all(|&x| x < 7));
            });
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(
            msg.contains("minimal counterexample: [7]"),
            "unexpected report: {msg}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let collect = |seed| {
            let all = std::cell::RefCell::new(Vec::new());
            check(seed, 16, &vec(range(0u64..1000), 0..=6), |xs| {
                all.borrow_mut().push(xs.clone());
            });
            all.into_inner()
        };
        assert_eq!(collect(7), collect(7));
        assert_ne!(collect(7), collect(8));
    }

    #[test]
    fn string_strategy_respects_alphabet() {
        check(4, 64, &string("abc", 1..=5), |s| {
            assert!(!s.is_empty() && s.len() <= 5);
            assert!(s.chars().all(|c| "abc".contains(c)));
        });
    }

    #[test]
    fn tuple_strategy_generates_all_components() {
        check(5, 32, &(range(1u32..5), bools(), string("xy", 0..=3)), |(n, _b, s)| {
            assert!((1..5).contains(n));
            assert!(s.len() <= 3);
        });
    }
}
