//! Seed-deterministic pseudo-random number generation.
//!
//! [`StdRng`] is xoshiro256** (Blackman & Vigna), seeded through SplitMix64
//! as its authors recommend; [`SmallRng`] is a bare SplitMix64. Both are
//! fully determined by their seed on every platform — there is no
//! entropy-based construction at all, by design: every workload trace in
//! this repo must be reproducible from its seed alone.
//!
//! The API mirrors the subset of `rand` 0.8 the workspace uses
//! (`gen`, `gen_range`, `gen_bool`, `seed_from_u64`), so call sites read
//! identically. The produced *streams* differ from `rand`'s — they are
//! this repo's own, pinned by golden tests.

use std::ops::{Range, RangeInclusive};

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits (the high half of
    /// [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributed type: floats uniform
    /// in `[0, 1)`, integers uniform over their whole range, fair bools.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// `rand`-style module alias so call sites can keep `rngs::StdRng` paths.
pub mod rngs {
    pub use super::{SmallRng, StdRng};
}

/// SplitMix64 step: advances `state` and returns the next output.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The workspace's default generator: xoshiro256**.
///
/// 256 bits of state, period 2^256 − 1, passes BigCrush; statistically far
/// stronger than the workloads here need, and cheap (4 u64 ops + rotate
/// per draw).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, per the xoshiro authors' seeding guidance;
        // it guarantees a non-zero state for every seed.
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// A smaller, faster generator: bare SplitMix64 (64-bit state, period
/// 2^64). Good enough for tests and shuffles; use [`StdRng`] for
/// workload generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    state: u64,
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)` using the top 53
/// bits (the full mantissa width).
pub(crate) fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased uniform draw from `[0, n)` by rejection (threshold is
/// `2^64 mod n`, so the accepted span is an exact multiple of `n`).
fn below_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let threshold = n.wrapping_neg() % n;
    loop {
        let r = rng.next_u64();
        if r >= threshold {
            return r % n;
        }
    }
}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the type's standard distribution.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Top 24 bits: the f32 mantissa width.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer types with uniform range sampling.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                lo + below_u64(rng, (hi - lo) as u64) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + below_u64(rng, span + 1) as $t
            }
        }
    )*};
}
uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                lo.wrapping_add(below_u64(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(below_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
uniform_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
        let v = lo + (hi - lo) * unit_f64(rng.next_u64());
        // Guard against rounding up to `hi` when `hi - lo` underflows.
        if v < hi {
            v
        } else {
            lo
        }
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
        lo + (hi - lo) * ((rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64))
    }
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(10u32..=20);
            assert!((10..=20).contains(&y));
            let z = rng.gen_range(0usize..3);
            assert!(z < 3);
            let f = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
            let g = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&g));
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_f64_bounds() {
        assert_eq!(unit_f64(0), 0.0);
        assert!(unit_f64(u64::MAX) < 1.0);
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac = {frac}");
        let mut rng = StdRng::seed_from_u64(6);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn standard_f64_is_uniformish() {
        let mut rng = StdRng::seed_from_u64(9);
        let mean: f64 = (0..50_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 50_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_range(5u32..5);
    }

    #[test]
    fn small_rng_works() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        assert_eq!(a.next_u64(), b.next_u64());
        assert!(a.gen_range(0u32..10) < 10);
    }
}
