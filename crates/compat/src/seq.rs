//! Slice sampling and shuffling, mirroring `rand::seq`.

use crate::rng::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Returns a uniformly chosen reference, or `None` if empty.
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Shuffles the slice in place (Fisher–Yates, from the back).
    fn shuffle<R: Rng>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }
}

/// Draws a uniform index into a slice of length `len` — the free-function
/// form, for call sites that only need an index.
///
/// # Panics
///
/// Panics if `len` is zero.
pub fn index<R: RngCore>(rng: &mut R, len: usize) -> usize {
    Rng::gen_range(rng, 0..len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SeedableRng, StdRng};

    #[test]
    fn choose_empty_is_none() {
        let v: Vec<u32> = Vec::new();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(v.choose(&mut rng), None);
    }

    #[test]
    fn choose_is_uniformish() {
        let v = [0usize, 1, 2, 3];
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[*v.choose(&mut rng).unwrap()] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(3);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should move");
    }

    #[test]
    fn shuffle_deterministic_per_seed() {
        let shuffle_with = |seed| {
            let mut v: Vec<u32> = (0..20).collect();
            let mut rng = StdRng::seed_from_u64(seed);
            v.shuffle(&mut rng);
            v
        };
        assert_eq!(shuffle_with(9), shuffle_with(9));
        assert_ne!(shuffle_with(9), shuffle_with(10));
    }
}
