//! Golden-value tests pinning the exact output streams of the compat
//! PRNGs and samplers.
//!
//! Every synthetic trace in this repo — and therefore every experiment
//! number — derives from these streams. A change that alters any of them
//! silently invalidates all recorded results and cross-run comparisons,
//! so these tests fail loudly instead. If you change the generator on
//! purpose, update the constants AND regenerate everything under
//! `results/`.

use gcopss_compat::distributions::{Distribution, WeightedIndex};
use gcopss_compat::rng::RngCore;
use gcopss_compat::seq::SliceRandom;
use gcopss_compat::{bytes::Bytes, Rng, SeedableRng, SmallRng, StdRng};

#[test]
fn std_rng_golden_stream_seed_0() {
    let mut r = StdRng::seed_from_u64(0);
    let got: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
    assert_eq!(
        got,
        [
            11091344671253066420,
            13793997310169335082,
            1900383378846508768,
            7684712102626143532,
            13521403990117723737,
            18442103541295991498,
            7788427924976520344,
            9881088229871127103,
        ]
    );
}

#[test]
fn std_rng_golden_stream_seed_42() {
    let mut r = StdRng::seed_from_u64(42);
    let got: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
    assert_eq!(
        got,
        [
            1546998764402558742,
            6990951692964543102,
            12544586762248559009,
            17057574109182124193,
            18295552978065317476,
            14199186830065750584,
            13267978908934200754,
            15679888225317814407,
        ]
    );
}

#[test]
fn small_rng_golden_stream_seed_42() {
    let mut r = SmallRng::seed_from_u64(42);
    let got: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
    assert_eq!(
        got,
        [
            13679457532755275413,
            2949826092126892291,
            5139283748462763858,
            6349198060258255764,
            701532786141963250,
            16015981125662989062,
            4028864712777624925,
            14769051326987775908,
        ]
    );
}

#[test]
fn unit_f64_golden_stream() {
    let mut r = StdRng::seed_from_u64(7);
    let got: Vec<f64> = (0..4).map(|_| r.gen::<f64>()).collect();
    assert_eq!(
        got,
        [
            0.7005764821796896,
            0.2787512294737843,
            0.8396274618764198,
            0.9810977250149351,
        ]
    );
}

#[test]
fn gen_range_golden_stream() {
    let mut r = StdRng::seed_from_u64(7);
    let got: Vec<u32> = (0..8).map(|_| r.gen_range(0u32..=100)).collect();
    assert_eq!(got, [56, 77, 30, 8, 10, 7, 53, 9]);
}

#[test]
fn shuffle_golden_permutation() {
    let mut r = StdRng::seed_from_u64(9);
    let mut v: Vec<u32> = (0..10).collect();
    v.shuffle(&mut r);
    assert_eq!(v, [9, 2, 6, 4, 3, 5, 8, 7, 1, 0]);
}

#[test]
fn choose_golden_sequence() {
    let mut r = StdRng::seed_from_u64(9);
    let pool = [10u32, 20, 30, 40];
    let got: Vec<u32> = (0..6).map(|_| *pool.choose(&mut r).unwrap()).collect();
    assert_eq!(got, [10, 20, 40, 10, 20, 10]);
}

#[test]
fn weighted_index_golden_sequence() {
    let w = WeightedIndex::new([1.0, 2.0, 7.0]).unwrap();
    let mut r = StdRng::seed_from_u64(5);
    let got: Vec<usize> = (0..12).map(|_| w.sample(&mut r)).collect();
    assert_eq!(got, [1, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 1]);
}

#[test]
fn weighted_index_distribution_sanity() {
    // Long-run frequencies track the weights to within 1%.
    let w = WeightedIndex::new([3.0, 1.0, 6.0]).unwrap();
    let mut r = StdRng::seed_from_u64(17);
    let mut counts = [0u32; 3];
    let n = 200_000u32;
    for _ in 0..n {
        counts[w.sample(&mut r)] += 1;
    }
    let f: Vec<f64> = counts.iter().map(|&c| f64::from(c) / f64::from(n)).collect();
    assert!((f[0] - 0.3).abs() < 0.01, "{f:?}");
    assert!((f[1] - 0.1).abs() < 0.01, "{f:?}");
    assert!((f[2] - 0.6).abs() < 0.01, "{f:?}");
}

#[test]
fn shuffle_and_choose_are_deterministic() {
    let run = || {
        let mut r = StdRng::seed_from_u64(1234);
        let mut v: Vec<u64> = (0..256).collect();
        v.shuffle(&mut r);
        let picks: Vec<u64> = (0..32).map(|_| *v.choose(&mut r).unwrap()).collect();
        (v, picks)
    };
    assert_eq!(run(), run());
}

#[test]
fn bytes_clone_is_shallow() {
    // Heap-backed: clones share the same Arc allocation.
    let a = Bytes::copy_from_slice(&[1, 2, 3, 4, 5]);
    let b = a.clone();
    assert!(a.shares_storage_with(&b));
    assert_eq!(a, b);

    // Static-backed: clones point at the same static slice, no copy.
    let s = Bytes::from_static(b"static payload");
    let t = s.clone();
    assert!(s.shares_storage_with(&t));

    // Distinct allocations with equal content are equal but not shared.
    let c = Bytes::copy_from_slice(&[1, 2, 3, 4, 5]);
    assert_eq!(a, c);
    assert!(!a.shares_storage_with(&c));
}
