//! The router-local COPSS engine: subscription state + RP table + the
//! upstream-join reconciliation that keeps the multicast trees correct.

use std::collections::{BTreeMap, BTreeSet};

use gcopss_names::{Cd, CdSet, Name};
use gcopss_ndn::FaceId;

use crate::{RpId, RpTable, SubscriptionTable};

/// A join this router must propagate toward an RP: "send
/// `Subscribe{name, rp}` one hop toward `rp`".
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct JoinRequest {
    /// The RP whose multicast tree is being joined.
    pub rp: RpId,
    /// The subscribed CD name.
    pub name: Name,
}

/// A prune this router must propagate toward an RP: "send
/// `Unsubscribe{name, rp}` one hop toward `rp`".
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct PruneRequest {
    /// The RP whose multicast tree is being left.
    pub rp: RpId,
    /// The unsubscribed CD name.
    pub name: Name,
}

/// The COPSS half of a G-COPSS router (Fig. 2): the Subscription Table, the
/// router's copy of the RP table, and the record of joins it has sent
/// upstream.
///
/// Subscriptions are *tree-scoped*: every ST entry carries the RPs it was
/// joined toward, and a multicast travelling tree `T` only leaves through
/// faces whose matching entry is anchored at `T`. Host subscriptions arrive
/// untagged; the first-hop router derives their anchors from its RP table
/// (and re-derives them when CDs move between RPs).
///
/// The engine's central operation is *reconciliation*: after any change to
/// the ST or the RP table, [`CopssEngine::reconcile`] recomputes the set of
/// `(rp, name)` joins this router needs and returns the difference against
/// what is currently joined — new joins to send and stale joins to prune.
/// This one mechanism implements subscription propagation and aggregation
/// (§III-B), unsubscription pruning, and the re-anchoring of subscriptions
/// when CDs move to a new RP during hot-spot splits (§IV-B).
#[derive(Debug, Clone, Default)]
pub struct CopssEngine {
    st: SubscriptionTable,
    rp_table: RpTable,
    /// Joins currently propagated upstream, per RP.
    joined: BTreeMap<RpId, CdSet>,
    /// CDs subscribed by this node itself (brokers, monitors).
    local_subscriptions: CdSet,
}

impl CopssEngine {
    /// Creates an engine with empty tables.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The subscription table (read-only).
    #[must_use]
    pub fn st(&self) -> &SubscriptionTable {
        &self.st
    }

    /// This router's view of the CD → RP assignment.
    #[must_use]
    pub fn rp_table(&self) -> &RpTable {
        &self.rp_table
    }

    /// Mutable access to the RP table (initial configuration).
    pub fn rp_table_mut(&mut self) -> &mut RpTable {
        &mut self.rp_table
    }

    /// Records subscriptions arriving on `face` and returns the upstream
    /// joins that became necessary.
    ///
    /// `from_rp` is the RP tag carried by the Subscribe packet: `None` for
    /// host subscriptions (this router derives the anchors), `Some` for
    /// joins propagated by a downstream router.
    pub fn handle_subscribe(
        &mut self,
        face: FaceId,
        cds: &[Name],
        from_rp: Option<RpId>,
    ) -> Vec<JoinRequest> {
        for cd in cds {
            let (rps, auto) = match from_rp {
                Some(rp) => ([rp].into(), false),
                None => (
                    self.rp_table
                        .rps_for_subscription(cd)
                        .into_iter()
                        .collect::<BTreeSet<_>>(),
                    true,
                ),
            };
            self.st.subscribe(face, cd.clone(), rps, auto);
        }
        self.reconcile().0
    }

    /// Removes subscriptions from `face` and returns the upstream prunes
    /// (and, rarely, joins) that follow. `from_rp` mirrors
    /// [`CopssEngine::handle_subscribe`].
    pub fn handle_unsubscribe(
        &mut self,
        face: FaceId,
        cds: &[Name],
        from_rp: Option<RpId>,
    ) -> (Vec<JoinRequest>, Vec<PruneRequest>) {
        for cd in cds {
            self.st.unsubscribe(face, cd, from_rp);
        }
        self.reconcile()
    }

    /// Removes every subscription of a face (face teardown, e.g. a link or
    /// neighbor failure). Returns the CD names purged from the ST along
    /// with the upstream joins/prunes that follow, so the router can count
    /// the purge and repair the trees.
    pub fn handle_face_down(
        &mut self,
        face: FaceId,
    ) -> (Vec<Name>, Vec<JoinRequest>, Vec<PruneRequest>) {
        let purged = self.st.remove_face(face);
        let (joins, prunes) = self.reconcile();
        (purged, joins, prunes)
    }

    /// Registers interest of the local node itself (a broker subscribing to
    /// its serving area).
    pub fn subscribe_local(&mut self, cds: &[Name]) -> Vec<JoinRequest> {
        for cd in cds {
            self.local_subscriptions.insert(cd.clone());
        }
        self.reconcile().0
    }

    /// Withdraws local interest.
    pub fn unsubscribe_local(&mut self, cds: &[Name]) -> (Vec<JoinRequest>, Vec<PruneRequest>) {
        for cd in cds {
            self.local_subscriptions.remove(cd);
        }
        self.reconcile()
    }

    /// Returns `true` if the local node itself wants publications to `cd`.
    #[must_use]
    pub fn local_wants(&self, cd: &Cd) -> bool {
        self.local_subscriptions.matches_publication(cd.name())
    }

    /// Applies an `RpUpdate` (CDs moved to a new RP): updates the RP table,
    /// re-derives the anchors of host subscriptions, and returns the joins
    /// and prunes needed to re-anchor this router's upstream state.
    pub fn handle_rp_update(
        &mut self,
        moved: &[Name],
        new_rp: RpId,
    ) -> (Vec<JoinRequest>, Vec<PruneRequest>) {
        self.rp_table.apply_move(moved, new_rp);
        let table = self.rp_table.clone();
        self.st
            .retag_auto(|name| table.rps_for_subscription(name).into_iter().collect());
        self.reconcile()
    }

    /// The faces a multicast travelling `tree` must be forwarded to
    /// (Bloom-filter path), excluding the arrival face.
    #[must_use]
    pub fn multicast_faces(
        &self,
        cd: &Cd,
        arrival: Option<FaceId>,
        tree: Option<RpId>,
    ) -> Vec<FaceId> {
        self.st.matching_faces(cd, arrival, tree)
    }

    /// Ground-truth variant of [`CopssEngine::multicast_faces`] (exact
    /// sets, no Bloom false positives).
    #[must_use]
    pub fn multicast_faces_exact(
        &self,
        cd: &Cd,
        arrival: Option<FaceId>,
        tree: Option<RpId>,
    ) -> Vec<FaceId> {
        self.st.matching_faces_exact(cd, arrival, tree)
    }

    /// The RP a publication to `cd` must be sent to (unique by
    /// prefix-freeness).
    #[must_use]
    pub fn rp_for_publication(&self, cd: &Name) -> Option<RpId> {
        self.rp_table.rp_for(cd)
    }

    /// The joins currently held toward `rp`.
    #[must_use]
    pub fn joined_toward(&self, rp: RpId) -> Vec<Name> {
        self.joined
            .get(&rp)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Every `(rp, name)` join this engine believes it holds upstream, as
    /// re-sendable [`JoinRequest`]s. Used after a fault repair: the upstream
    /// may have purged this router's branch, so the joins are re-expressed
    /// along the (possibly new) path — subscriptions are idempotent, a
    /// refresh that was not needed is absorbed by the upstream ST.
    #[must_use]
    pub fn refresh_joins(&self) -> Vec<JoinRequest> {
        let mut out: Vec<JoinRequest> = self
            .joined
            .iter()
            .flat_map(|(rp, set)| {
                set.iter().map(|name| JoinRequest {
                    rp: *rp,
                    name: name.clone(),
                })
            })
            .collect();
        out.sort();
        out
    }

    /// Discards all soft state — the ST, local subscriptions and the
    /// upstream-join record — as happens when the hosting router crashes
    /// and restarts. The RP table survives (it is configuration, rebuilt
    /// from floods, not per-subscriber state).
    pub fn clear_soft_state(&mut self) {
        self.st = SubscriptionTable::default();
        self.local_subscriptions = CdSet::default();
        self.joined.clear();
    }

    /// Recomputes the needed `(rp, name)` joins from the current ST and
    /// local subscriptions, and diffs them against the joins already
    /// propagated. Returns `(new joins, stale prunes)` and updates the
    /// internal record.
    pub fn reconcile(&mut self) -> (Vec<JoinRequest>, Vec<PruneRequest>) {
        // 1. Collect every (name, anchor RP) pair the ST and local
        //    subscriptions require.
        let mut needed: BTreeMap<RpId, CdSet> = BTreeMap::new();
        for (name, rps) in self.st.all_subscriptions_tagged() {
            for rp in rps {
                needed.entry(rp).or_default().insert(name.clone());
            }
        }
        for name in self.local_subscriptions.iter() {
            for rp in self.rp_table.rps_for_subscription(name) {
                needed.entry(rp).or_default().insert(name.clone());
            }
        }

        // 2. Per RP, drop names covered by a broader needed name
        //    (subscription aggregation).
        for set in needed.values_mut() {
            let names: Vec<Name> = set.iter().cloned().collect();
            for n in &names {
                if names.iter().any(|m| m.is_strict_prefix_of(n)) {
                    set.remove(n);
                }
            }
        }
        needed.retain(|_, set| !set.is_empty());

        // 3. Diff against what is already joined.
        let mut joins = Vec::new();
        let mut prunes = Vec::new();
        for (rp, set) in &needed {
            let current = self.joined.get(rp);
            for name in set.iter() {
                if !current.is_some_and(|c| c.contains(name)) {
                    joins.push(JoinRequest {
                        rp: *rp,
                        name: name.clone(),
                    });
                }
            }
        }
        for (rp, current) in &self.joined {
            let target = needed.get(rp);
            for name in current.iter() {
                if !target.is_some_and(|s| s.contains(name)) {
                    prunes.push(PruneRequest {
                        rp: *rp,
                        name: name.clone(),
                    });
                }
            }
        }
        // 4. Commit.
        self.joined = needed;
        joins.sort();
        prunes.sort();
        (joins, prunes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse_lit(s)
    }

    fn engine_with_root_rp() -> CopssEngine {
        let mut e = CopssEngine::new();
        e.rp_table_mut().assign(Name::root(), RpId(0)).unwrap();
        e
    }

    #[test]
    fn host_subscribe_triggers_join() {
        let mut e = engine_with_root_rp();
        let joins = e.handle_subscribe(FaceId(1), &[n("/1/2")], None);
        assert_eq!(
            joins,
            vec![JoinRequest {
                rp: RpId(0),
                name: n("/1/2")
            }]
        );
        assert_eq!(e.joined_toward(RpId(0)), vec![n("/1/2")]);
    }

    #[test]
    fn tagged_subscribe_joins_only_that_rp() {
        let mut e = CopssEngine::new();
        e.rp_table_mut().assign(n("/1"), RpId(0)).unwrap();
        e.rp_table_mut().assign(n("/2"), RpId(1)).unwrap();
        // A downstream router joined / toward RP 1 specifically.
        let joins = e.handle_subscribe(FaceId(1), &[Name::root()], Some(RpId(1)));
        assert_eq!(
            joins,
            vec![JoinRequest {
                rp: RpId(1),
                name: Name::root()
            }]
        );
        assert!(e.joined_toward(RpId(0)).is_empty());
        // Tree scoping: RP 0's publications do not use this face.
        let cd = Cd::parse_lit("/1/5");
        assert!(e.multicast_faces(&cd, None, Some(RpId(0))).is_empty());
        assert_eq!(
            e.multicast_faces(&Cd::parse_lit("/2/5"), None, Some(RpId(1))),
            vec![FaceId(1)]
        );
    }

    #[test]
    fn second_identical_subscription_is_aggregated() {
        let mut e = engine_with_root_rp();
        e.handle_subscribe(FaceId(1), &[n("/1")], None);
        let joins = e.handle_subscribe(FaceId(2), &[n("/1")], None);
        assert!(joins.is_empty(), "aggregated at this router");
        let faces = e.multicast_faces(&Cd::parse_lit("/1/5"), None, Some(RpId(0)));
        assert_eq!(faces, vec![FaceId(1), FaceId(2)]);
    }

    #[test]
    fn broader_subscription_covers_narrower_join() {
        let mut e = engine_with_root_rp();
        e.handle_subscribe(FaceId(1), &[n("/1/2")], None);
        let joins = e.handle_subscribe(FaceId(2), &[n("/1")], None);
        assert_eq!(
            joins,
            vec![JoinRequest {
                rp: RpId(0),
                name: n("/1")
            }]
        );
        assert_eq!(e.joined_toward(RpId(0)), vec![n("/1")]);
    }

    #[test]
    fn unsubscribe_prunes_when_last() {
        let mut e = engine_with_root_rp();
        e.handle_subscribe(FaceId(1), &[n("/1")], None);
        e.handle_subscribe(FaceId(2), &[n("/1")], None);
        let (j, p) = e.handle_unsubscribe(FaceId(1), &[n("/1")], None);
        assert!(j.is_empty() && p.is_empty(), "face 2 still subscribed");
        let (j, p) = e.handle_unsubscribe(FaceId(2), &[n("/1")], None);
        assert!(j.is_empty());
        assert_eq!(
            p,
            vec![PruneRequest {
                rp: RpId(0),
                name: n("/1")
            }]
        );
    }

    #[test]
    fn subscription_spanning_multiple_rps() {
        let mut e = CopssEngine::new();
        e.rp_table_mut().assign(n("/1/1"), RpId(0)).unwrap();
        e.rp_table_mut().assign(n("/1/2"), RpId(1)).unwrap();
        e.rp_table_mut().assign(n("/2"), RpId(2)).unwrap();
        let joins = e.handle_subscribe(FaceId(1), &[n("/1")], None);
        assert_eq!(
            joins,
            vec![
                JoinRequest {
                    rp: RpId(0),
                    name: n("/1")
                },
                JoinRequest {
                    rp: RpId(1),
                    name: n("/1")
                },
            ]
        );
        // Tree scoping: the host face receives from both trees.
        let cd = Cd::parse_lit("/1/1/7");
        assert_eq!(e.multicast_faces(&cd, None, Some(RpId(0))), vec![FaceId(1)]);
        assert!(e.multicast_faces(&cd, None, Some(RpId(2))).is_empty());
    }

    #[test]
    fn rp_update_reanchors_joins_and_retags() {
        let mut e = CopssEngine::new();
        e.rp_table_mut().assign(n("/1"), RpId(0)).unwrap();
        e.rp_table_mut().assign(n("/2"), RpId(0)).unwrap();
        e.handle_subscribe(FaceId(1), &[n("/2/3")], None);
        assert_eq!(e.joined_toward(RpId(0)), vec![n("/2/3")]);
        // /2 moves to RP 1: the join must move too.
        let (j, p) = e.handle_rp_update(&[n("/2")], RpId(1));
        assert_eq!(
            j,
            vec![JoinRequest {
                rp: RpId(1),
                name: n("/2/3")
            }]
        );
        assert_eq!(
            p,
            vec![PruneRequest {
                rp: RpId(0),
                name: n("/2/3")
            }]
        );
        // The host face entry now lives on RP 1's tree.
        let cd = Cd::parse_lit("/2/3");
        assert_eq!(e.multicast_faces(&cd, None, Some(RpId(1))), vec![FaceId(1)]);
        assert!(e.multicast_faces(&cd, None, Some(RpId(0))).is_empty());
    }

    #[test]
    fn local_subscriptions_join_and_match() {
        let mut e = engine_with_root_rp();
        let joins = e.subscribe_local(&[n("/1")]);
        assert_eq!(joins.len(), 1);
        assert!(e.local_wants(&Cd::parse_lit("/1/2")));
        assert!(!e.local_wants(&Cd::parse_lit("/2")));
        let (_, p) = e.unsubscribe_local(&[n("/1")]);
        assert_eq!(p.len(), 1);
        assert!(!e.local_wants(&Cd::parse_lit("/1/2")));
    }

    #[test]
    fn face_down_prunes_everything_unique() {
        let mut e = engine_with_root_rp();
        e.handle_subscribe(FaceId(1), &[n("/1"), n("/2")], None);
        e.handle_subscribe(FaceId(2), &[n("/2")], None);
        let (purged, j, p) = e.handle_face_down(FaceId(1));
        assert_eq!(purged, vec![n("/1"), n("/2")]);
        assert!(j.is_empty());
        assert_eq!(
            p,
            vec![PruneRequest {
                rp: RpId(0),
                name: n("/1")
            }]
        );
        assert_eq!(e.joined_toward(RpId(0)), vec![n("/2")]);
    }

    #[test]
    fn no_rp_table_means_no_joins() {
        let mut e = CopssEngine::new();
        let joins = e.handle_subscribe(FaceId(1), &[n("/1")], None);
        assert!(joins.is_empty());
        // Subscription is still recorded for untagged matching.
        assert_eq!(
            e.multicast_faces(&Cd::parse_lit("/1/1"), None, None),
            vec![FaceId(1)]
        );
    }

    #[test]
    fn reconcile_is_idempotent() {
        let mut e = engine_with_root_rp();
        e.handle_subscribe(FaceId(1), &[n("/1"), n("/1/2"), n("/3")], None);
        let (j, p) = e.reconcile();
        assert!(j.is_empty(), "{j:?}");
        assert!(p.is_empty(), "{p:?}");
    }
}
