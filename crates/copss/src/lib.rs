//! COPSS: a Content-Oriented Publish/Subscribe System for content-centric
//! networks.
//!
//! COPSS (Chen et al., ANCS 2011) adds an efficient push-based
//! publish/subscribe capability to NDN by introducing three packet types —
//! `Subscribe`, `Unsubscribe` and `Multicast` — plus `FibAdd`/`FibRemove`
//! control packets, a per-face *Subscription Table* (ST), and *Rendezvous
//! Points* (RPs) that root core-based multicast trees for hierarchical
//! *Content Descriptors* (CDs). G-COPSS (the paper reproduced by this
//! workspace) builds its gaming infrastructure directly on these primitives.
//!
//! This crate provides the router-local machinery:
//!
//! * [`CopssPacket`] / [`MulticastPacket`] — the wire messages.
//! * [`SubscriptionTable`] — per-face CD sets stored both exactly and as
//!   counting Bloom filters (the paper's representation), with the
//!   hierarchical match rule: a multicast with CD *c* leaves through every
//!   face subscribed to any prefix of *c*.
//! * [`RpTable`] — the prefix-free CD-prefix → RP assignment (§III-B
//!   "Rendezvous Point Setup"), with the overlap queries subscription
//!   propagation needs and a split operation for hot-spot offloading.
//! * [`TrafficWindow`] — the sliding window of recent per-CD traffic an RP
//!   monitors, and the load-balancing split planner (§IV-B).
//! * [`CopssEngine`] — ties ST + RP table + upstream-join bookkeeping into
//!   the hop-level decisions a G-COPSS router makes. Like the NDN engine it
//!   is sandboxed: it returns decisions, the host executes them.
//!
//! # Example
//!
//! ```
//! use gcopss_copss::{CopssEngine, RpId};
//! use gcopss_names::{Cd, Name};
//! use gcopss_ndn::FaceId;
//!
//! let mut e = CopssEngine::new();
//! e.rp_table_mut().assign(Name::root(), RpId(0)).unwrap();
//!
//! // A downstream host subscribes to region /1.
//! let joins = e.handle_subscribe(FaceId(3), &[Name::parse_lit("/1")], None);
//! assert_eq!(joins.len(), 1, "must join toward RP 0");
//!
//! // A publication to /1/2 travelling RP 0's tree leaves through that face.
//! let cd = Cd::parse_lit("/1/2");
//! assert_eq!(e.multicast_faces(&cd, None, Some(RpId(0))), vec![FaceId(3)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod packet;
mod rp;
mod st;
mod traffic;

pub use engine::{CopssEngine, JoinRequest, PruneRequest};
pub use packet::{CopssPacket, MulticastPacket, RpId};
pub use rp::{RpAssignError, RpTable};
pub use st::SubscriptionTable;
pub use traffic::{SplitPlan, TrafficWindow};
