//! COPSS wire messages.

use std::fmt;

use gcopss_compat::bytes::Bytes;
use gcopss_names::{Cd, Name};

/// Identifier of a Rendezvous Point.
///
/// On the wire an RP is addressed by the NDN name `/rp/<id>`; routers hold
/// FIB entries for those prefixes so encapsulated multicasts can reach the
/// RP (§III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RpId(pub u32);

impl RpId {
    /// The NDN name prefix addressing this RP (`/rp/<id>`).
    #[must_use]
    pub fn ndn_prefix(self) -> Name {
        Name::parse_lit("/rp").child_index(self.0)
    }
}

impl fmt::Display for RpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rp{}", self.0)
    }
}

/// A published update: the one-step COPSS data path (the paper uses the
/// one-step model because gaming packets are small, §III-B).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MulticastPacket {
    /// The Content Descriptor this publication targets (a leaf CD of the
    /// game map).
    pub cd: Cd,
    /// Application payload (the game update).
    pub payload: Bytes,
    /// Globally unique publication id, used by receivers to deduplicate and
    /// by the metrics layer to compute update latency.
    pub id: u64,
    /// The RP tree this packet is travelling (set by the serving RP when it
    /// starts the downstream multicast; `None` on the publisher→RP leg).
    /// Keeps each publication on its own core-based tree.
    pub tree: Option<RpId>,
}

impl MulticastPacket {
    /// Creates a multicast packet (not yet assigned to a tree).
    #[must_use]
    pub fn new(cd: Cd, payload: Bytes, id: u64) -> Self {
        Self {
            cd,
            payload,
            id,
            tree: None,
        }
    }

    /// Returns a copy of this packet travelling RP `rp`'s tree.
    #[must_use]
    pub fn on_tree(&self, rp: RpId) -> Self {
        Self {
            tree: Some(rp),
            ..self.clone()
        }
    }

    /// Approximate wire size: CD name + per-level hashes (the first-hop
    /// hash optimization ships one u64 per level) + payload + header.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        self.cd.name().encoded_len() + 8 * self.cd.hashes().len() + self.payload.len() + 12
    }
}

impl fmt::Display for MulticastPacket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Multicast({}, id={}, {} bytes)",
            self.cd,
            self.id,
            self.payload.len()
        )
    }
}

/// The COPSS packet types exchanged between G-COPSS routers and hosts.
///
/// `Subscribe`/`Unsubscribe`/`Multicast` are the three additions of §III-C;
/// `FibAdd`/`FibRemove` manipulate the co-located NDN engine's FIB (each may
/// carry multiple names "for efficiency", as the paper notes);
/// `RpHandoff`/`RpUpdate` implement the dynamic RP rebalancing control plane
/// of §IV-B.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CopssPacket {
    /// Join the multicast groups for these CDs.
    Subscribe {
        /// Subscribed CD names (may be inner nodes of the hierarchy).
        cds: Vec<Name>,
        /// The RP tree being joined: `None` from hosts (the first-hop
        /// router derives the anchors), `Some` between routers.
        rp: Option<RpId>,
    },
    /// Leave the multicast groups for these CDs.
    Unsubscribe {
        /// Unsubscribed CD names.
        cds: Vec<Name>,
        /// The RP tree being left (mirrors `Subscribe::rp`).
        rp: Option<RpId>,
    },
    /// A published update, pushed along the subscription tree.
    Multicast(MulticastPacket),
    /// Install FIB routes for the given prefixes pointing back toward the
    /// sender.
    FibAdd {
        /// Announced prefixes.
        prefixes: Vec<Name>,
    },
    /// Withdraw FIB routes for the given prefixes from the sender's
    /// direction.
    FibRemove {
        /// Withdrawn prefixes.
        prefixes: Vec<Name>,
    },
    /// Old RP → new RP: transfer responsibility for these CD prefixes
    /// (§IV-B stage "Reverse the FIB & ST entries").
    RpHandoff {
        /// CD prefixes the receiving router must now serve as RP.
        cds: Vec<Name>,
        /// The RP id the receiver assumes for these CDs.
        new_rp: RpId,
        /// The overloaded RP handing off — during the transition the new
        /// RP tunnels served publications back to it so the old tree keeps
        /// delivering (§IV-B: "R' forwards the multicast packets to R").
        old_rp: RpId,
    },
    /// Network-wide announcement that `cds` are now served by `new_rp`
    /// (§IV-B stage "Propagate new RP information"). Routers update their
    /// RP tables and re-anchor affected subscriptions.
    RpUpdate {
        /// Moved CD prefixes.
        cds: Vec<Name>,
        /// Their new RP.
        new_rp: RpId,
    },
}

impl CopssPacket {
    /// Approximate wire size in bytes, for network-load accounting.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        match self {
            Self::Subscribe { cds, .. } | Self::Unsubscribe { cds, .. } => {
                8 + cds.iter().map(Name::encoded_len).sum::<usize>()
            }
            Self::Multicast(m) => m.encoded_len(),
            Self::FibAdd { prefixes } | Self::FibRemove { prefixes } => {
                4 + prefixes.iter().map(Name::encoded_len).sum::<usize>()
            }
            Self::RpHandoff { cds, .. } | Self::RpUpdate { cds, .. } => {
                8 + cds.iter().map(Name::encoded_len).sum::<usize>()
            }
        }
    }

    /// Short human-readable tag for logs and traces.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Subscribe { .. } => "subscribe",
            Self::Unsubscribe { .. } => "unsubscribe",
            Self::Multicast(_) => "multicast",
            Self::FibAdd { .. } => "fib-add",
            Self::FibRemove { .. } => "fib-remove",
            Self::RpHandoff { .. } => "rp-handoff",
            Self::RpUpdate { .. } => "rp-update",
        }
    }

    /// The lineage id of the publication this packet carries, if it
    /// carries one. Control traffic (subscriptions, FIB and RP
    /// maintenance) is untraced.
    #[must_use]
    pub fn lineage_id(&self) -> Option<u64> {
        match self {
            Self::Multicast(m) => Some(m.id),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rp_ndn_prefix() {
        assert_eq!(RpId(7).ndn_prefix(), Name::parse_lit("/rp/7"));
        assert_eq!(RpId(7).to_string(), "rp7");
    }

    #[test]
    fn multicast_encoded_len_counts_hashes_and_payload() {
        let m = MulticastPacket::new(Cd::parse_lit("/1/2"), Bytes::from_static(b"0123"), 1);
        // name 5 ("/1/2" = 1 + 2*2), hashes 3*8, payload 4, header 12
        assert_eq!(m.encoded_len(), 5 + 24 + 4 + 12);
    }

    #[test]
    fn packet_kinds() {
        let p = CopssPacket::Subscribe {
            cds: vec![Name::parse_lit("/1")],
            rp: None,
        };
        assert_eq!(p.kind(), "subscribe");
        assert!(p.encoded_len() > 4);
        let m = CopssPacket::Multicast(MulticastPacket::new(
            Cd::parse_lit("/1"),
            Bytes::new(),
            9,
        ));
        assert_eq!(m.kind(), "multicast");
    }
}
