//! The prefix-free Rendezvous Point table.

use std::error::Error;
use std::fmt;

use gcopss_names::{Name, NameTree};

use crate::RpId;

/// Error returned when an RP assignment would violate prefix-freeness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RpAssignError {
    /// The prefix that was being assigned.
    pub prefix: Name,
    /// The existing served prefix it conflicts with.
    pub conflicts_with: Name,
}

impl fmt::Display for RpAssignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "prefix {} conflicts with served prefix {}",
            self.prefix, self.conflicts_with
        )
    }
}

impl Error for RpAssignError {}

/// The CD-prefix → RP assignment, kept **prefix-free**: no served prefix is
/// a strict prefix of another (§III-B "Rendezvous Point Setup"). This
/// guarantees every publication CD is covered by *exactly one* RP.
///
/// Every G-COPSS router holds a copy of this table (distributed via
/// `RpUpdate` packets); first-hop routers use it to pick the RP a
/// publication is encapsulated toward, and subscription propagation uses
/// the overlap query to find all RPs a subscription must join.
///
/// # Example
///
/// ```
/// # use gcopss_copss::{RpTable, RpId};
/// # use gcopss_names::Name;
/// let mut t = RpTable::new();
/// t.assign(Name::parse_lit("/1"), RpId(0)).unwrap();
/// t.assign(Name::parse_lit("/2"), RpId(1)).unwrap();
/// assert_eq!(t.rp_for(&Name::parse_lit("/1/4")), Some(RpId(0)));
/// // /1 is served, so serving / or /1/2 would break prefix-freeness:
/// assert!(t.assign(Name::root(), RpId(2)).is_err());
/// assert!(t.assign(Name::parse_lit("/1/2"), RpId(2)).is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct RpTable {
    served: NameTree<RpId>,
}

impl RpTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Assigns `prefix` to `rp`.
    ///
    /// # Errors
    ///
    /// Returns [`RpAssignError`] if `prefix` is a prefix of, or prefixed by,
    /// an already-served prefix (assigned to a *different* RP or the same
    /// one — re-assigning the exact same prefix to a new RP is allowed, as
    /// that is how handoff works).
    pub fn assign(&mut self, prefix: Name, rp: RpId) -> Result<(), RpAssignError> {
        // Exact re-assignment (handoff) is fine.
        if self.served.get(&prefix).is_some() {
            self.served.insert(prefix, rp);
            return Ok(());
        }
        if let Some((conflict, _)) = self.served.longest_prefix(&prefix) {
            return Err(RpAssignError {
                prefix,
                conflicts_with: conflict,
            });
        }
        if let Some((conflict, _)) = self.served.descendants(&prefix).first() {
            return Err(RpAssignError {
                prefix,
                conflicts_with: conflict.clone(),
            });
        }
        self.served.insert(prefix, rp);
        Ok(())
    }

    /// Removes the assignment for exactly `prefix`, returning its RP.
    pub fn unassign(&mut self, prefix: &Name) -> Option<RpId> {
        self.served.remove(prefix)
    }

    /// Replaces the single served prefix `prefix` by `children` (all direct
    /// or indirect extensions of it), keeping the same RP. This is the
    /// refinement step before a split can offload part of a served prefix.
    ///
    /// # Panics
    ///
    /// Panics if `prefix` is not served or some child does not extend it.
    pub fn refine(&mut self, prefix: &Name, children: &[Name]) {
        let rp = self
            .served
            .remove(prefix)
            .unwrap_or_else(|| panic!("prefix {prefix} not served"));
        for c in children {
            assert!(
                prefix.is_strict_prefix_of(c),
                "{c} does not refine {prefix}"
            );
            self.served.insert(c.clone(), rp);
        }
    }

    /// The unique RP serving publication CD `cd`, if any. Because the table
    /// is prefix-free, at most one served prefix covers `cd`.
    #[must_use]
    pub fn rp_for(&self, cd: &Name) -> Option<RpId> {
        self.served.longest_prefix(cd).map(|(_, rp)| *rp)
    }

    /// The served prefix covering `cd`, with its RP.
    #[must_use]
    pub fn serving_prefix(&self, cd: &Name) -> Option<(Name, RpId)> {
        self.served.longest_prefix(cd).map(|(p, rp)| (p, *rp))
    }

    /// All RPs a *subscription* to `name` must join: RPs whose served
    /// prefix covers `name` **or** lies below it (a subscriber of `/1`
    /// must join the RPs serving `/1/1`, `/1/2`, … — the paper's
    /// subscription-aggregation rule).
    ///
    /// Deduplicated, deterministic order.
    #[must_use]
    pub fn rps_for_subscription(&self, name: &Name) -> Vec<RpId> {
        let mut out: Vec<RpId> = Vec::new();
        if let Some((_, rp)) = self.served.longest_prefix(name) {
            out.push(*rp);
        }
        for (_, rp) in self.served.descendants(name) {
            if !out.contains(rp) {
                out.push(*rp);
            }
        }
        out.sort_unstable();
        out
    }

    /// The served prefixes (with RPs) relevant to a subscription to `name`:
    /// the covering prefix and/or all served prefixes below `name`.
    #[must_use]
    pub fn prefixes_for_subscription(&self, name: &Name) -> Vec<(Name, RpId)> {
        let mut out: Vec<(Name, RpId)> = Vec::new();
        if let Some((p, rp)) = self.served.longest_prefix(name) {
            out.push((p, *rp));
        }
        for (p, rp) in self.served.descendants(name) {
            if !out.iter().any(|(q, _)| *q == p) {
                out.push((p, *rp));
            }
        }
        out
    }

    /// All prefixes currently served by `rp`.
    #[must_use]
    pub fn prefixes_of(&self, rp: RpId) -> Vec<Name> {
        self.served
            .iter()
            .into_iter()
            .filter(|(_, r)| **r == rp)
            .map(|(p, _)| p)
            .collect()
    }

    /// Every `(prefix, rp)` assignment in deterministic order.
    #[must_use]
    pub fn assignments(&self) -> Vec<(Name, RpId)> {
        self.served
            .iter()
            .into_iter()
            .map(|(p, rp)| (p, *rp))
            .collect()
    }

    /// All distinct RPs in the table.
    #[must_use]
    pub fn rps(&self) -> Vec<RpId> {
        let mut out: Vec<RpId> = self.assignments().into_iter().map(|(_, rp)| rp).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Number of served prefixes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.served.len()
    }

    /// Returns `true` if nothing is served.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.served.is_empty()
    }

    /// Checks the prefix-free invariant (for tests and debug assertions).
    #[must_use]
    pub fn is_prefix_free(&self) -> bool {
        let names: Vec<Name> = self.assignments().into_iter().map(|(p, _)| p).collect();
        for (i, a) in names.iter().enumerate() {
            for b in names.iter().skip(i + 1) {
                if a.is_prefix_of(b) || b.is_prefix_of(a) {
                    return false;
                }
            }
        }
        true
    }

    /// Applies an `RpUpdate`: the given CD prefixes move to `new_rp`. The
    /// moved prefixes may refine existing served prefixes (e.g. moving
    /// `/1/2` out of a served `/1` splits `/1` into its retained children),
    /// so callers provide the full retained refinement too.
    ///
    /// For the common case where `moved` are exactly existing served
    /// prefixes, this is a plain re-assignment.
    pub fn apply_move(&mut self, moved: &[Name], new_rp: RpId) {
        for m in moved {
            // If m is exactly served, re-assign. Otherwise it refines a
            // served ancestor; the caller must have refined already, but be
            // forgiving: refine on the fly using the moved name itself.
            // Either re-assign an exactly-served prefix, or insert the
            // moved prefix alongside a coarser served ancestor. The latter
            // shadows the ancestor for everything under `m` — `rp_for`
            // resolves by longest prefix, so routing stays consistent even
            // though the table is no longer strictly prefix-free during
            // the transition.
            self.served.insert(m.clone(), new_rp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse_lit(s)
    }

    #[test]
    fn unique_covering_rp() {
        let mut t = RpTable::new();
        t.assign(n("/1"), RpId(0)).unwrap();
        t.assign(n("/2"), RpId(1)).unwrap();
        assert_eq!(t.rp_for(&n("/1/1/1")), Some(RpId(0)));
        assert_eq!(t.rp_for(&n("/2")), Some(RpId(1)));
        assert_eq!(t.rp_for(&n("/3")), None);
        assert_eq!(t.serving_prefix(&n("/1/4")), Some((n("/1"), RpId(0))));
    }

    #[test]
    fn prefix_freeness_enforced() {
        let mut t = RpTable::new();
        t.assign(n("/1/1"), RpId(0)).unwrap();
        let e = t.assign(n("/1"), RpId(1)).unwrap_err();
        assert_eq!(e.conflicts_with, n("/1/1"));
        let e = t.assign(n("/1/1/1"), RpId(1)).unwrap_err();
        assert_eq!(e.conflicts_with, n("/1/1"));
        // Sibling is fine.
        t.assign(n("/1/2"), RpId(1)).unwrap();
        assert!(t.is_prefix_free());
    }

    #[test]
    fn exact_reassignment_is_handoff() {
        let mut t = RpTable::new();
        t.assign(n("/1"), RpId(0)).unwrap();
        t.assign(n("/1"), RpId(5)).unwrap();
        assert_eq!(t.rp_for(&n("/1/9")), Some(RpId(5)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn subscription_overlap_query() {
        let mut t = RpTable::new();
        t.assign(n("/1/1"), RpId(0)).unwrap();
        t.assign(n("/1/2"), RpId(1)).unwrap();
        t.assign(n("/2"), RpId(2)).unwrap();
        // Subscribing to /1 requires joining the RPs below it.
        assert_eq!(t.rps_for_subscription(&n("/1")), vec![RpId(0), RpId(1)]);
        // Subscribing to /1/1/5 requires only the covering RP.
        assert_eq!(t.rps_for_subscription(&n("/1/1/5")), vec![RpId(0)]);
        // Subscribing to / requires all.
        assert_eq!(
            t.rps_for_subscription(&Name::root()),
            vec![RpId(0), RpId(1), RpId(2)]
        );
        let pfx = t.prefixes_for_subscription(&n("/1"));
        assert_eq!(pfx.len(), 2);
    }

    #[test]
    fn refine_splits_prefix_in_place() {
        let mut t = RpTable::new();
        t.assign(Name::root(), RpId(0)).unwrap();
        t.refine(&Name::root(), &[n("/0"), n("/1"), n("/2")]);
        assert_eq!(t.len(), 3);
        assert!(t.is_prefix_free());
        assert_eq!(t.rp_for(&n("/1/5")), Some(RpId(0)));
        assert_eq!(t.rp_for(&n("/9")), None, "refinement narrows coverage");
    }

    #[test]
    #[should_panic(expected = "does not refine")]
    fn refine_rejects_non_descendants() {
        let mut t = RpTable::new();
        t.assign(n("/1"), RpId(0)).unwrap();
        t.refine(&n("/1"), &[n("/2/1")]);
    }

    #[test]
    fn apply_move_reassigns() {
        let mut t = RpTable::new();
        t.assign(n("/1"), RpId(0)).unwrap();
        t.assign(n("/2"), RpId(0)).unwrap();
        t.apply_move(&[n("/2")], RpId(1));
        assert_eq!(t.rp_for(&n("/2/3")), Some(RpId(1)));
        assert_eq!(t.rp_for(&n("/1/3")), Some(RpId(0)));
        assert_eq!(t.rps(), vec![RpId(0), RpId(1)]);
    }

    #[test]
    fn prefixes_of_lists_rp_assignments() {
        let mut t = RpTable::new();
        t.assign(n("/1"), RpId(0)).unwrap();
        t.assign(n("/2"), RpId(1)).unwrap();
        t.assign(n("/3"), RpId(0)).unwrap();
        assert_eq!(t.prefixes_of(RpId(0)), vec![n("/1"), n("/3")]);
        assert_eq!(t.assignments().len(), 3);
    }
}
