//! The Subscription Table.

use std::collections::{BTreeMap, BTreeSet};

use gcopss_names::{BloomParams, Cd, CdSet, CountingBloomFilter, Name};
use gcopss_ndn::FaceId;

use crate::RpId;

/// One face's subscription to one CD name.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SubEntry {
    /// `true` when the subscription came from a host (no RP tag on the
    /// wire): its anchor RPs are derived from the RP table and must be
    /// recomputed when CDs move between RPs.
    auto: bool,
    /// The RP trees this entry belongs to. A multicast travelling tree `T`
    /// leaves through this face only if `T` is in this set — this is what
    /// keeps each publication on its own core-based tree (§III-B) instead
    /// of leaking onto the trees of other RPs (which, on a cyclic
    /// topology, would loop).
    rps: BTreeSet<RpId>,
}

/// The COPSS Subscription Table: for every face, the set of CDs subscribed
/// through that face, each tagged with the RP trees it was joined toward.
///
/// Following §III-C, each face's CD set is also represented as a counting
/// Bloom filter so a multicast can be pre-matched with "simple bit
/// comparison" against the per-level hashes it carries; the exact entries
/// decide tree membership and make `Unsubscribe` exact.
///
/// The match rule is hierarchical: a multicast with CD `c` on tree `T` is
/// forwarded to face `f` iff `f` subscribed to some *prefix* of `c` with
/// `T` among its anchor RPs.
///
/// # Example
///
/// ```
/// # use gcopss_copss::{RpId, SubscriptionTable};
/// # use gcopss_names::{Cd, Name};
/// # use gcopss_ndn::FaceId;
/// let mut st = SubscriptionTable::default();
/// st.subscribe(FaceId(1), Name::parse_lit("/sports"), [RpId(0)].into(), true);
/// let out = st.matching_faces(&Cd::parse_lit("/sports/football"), None, Some(RpId(0)));
/// assert_eq!(out, vec![FaceId(1)]);
/// assert!(st
///     .matching_faces(&Cd::parse_lit("/sports/football"), None, Some(RpId(9)))
///     .is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct SubscriptionTable {
    faces: BTreeMap<FaceId, FaceTable>,
    bloom_params: BloomParams,
}

#[derive(Debug, Clone)]
struct FaceTable {
    entries: BTreeMap<Name, SubEntry>,
    bloom: CountingBloomFilter,
}

impl SubscriptionTable {
    /// Creates an empty table whose per-face Bloom filters use the given
    /// sizing.
    #[must_use]
    pub fn new(bloom_params: BloomParams) -> Self {
        Self {
            faces: BTreeMap::new(),
            bloom_params,
        }
    }

    /// Adds a subscription for `cd` through `face`, anchored at `rps`.
    /// Returns `true` if the face was not already subscribed to exactly
    /// `cd`; re-subscribing merges the anchor sets.
    pub fn subscribe(&mut self, face: FaceId, cd: Name, rps: BTreeSet<RpId>, auto: bool) -> bool {
        let params = self.bloom_params;
        let ft = self.faces.entry(face).or_insert_with(|| FaceTable {
            entries: BTreeMap::new(),
            bloom: CountingBloomFilter::new(params),
        });
        match ft.entries.get_mut(&cd) {
            Some(e) => {
                e.rps.extend(rps);
                e.auto |= auto;
                false
            }
            None => {
                ft.bloom.insert(cd.stable_hash());
                ft.entries.insert(cd, SubEntry { auto, rps });
                true
            }
        }
    }

    /// Removes the subscription for exactly `cd` from `face`. With
    /// `rp = Some(r)`, only the anchor `r` is removed and the entry stays
    /// while other anchors remain; with `None` the whole entry goes.
    /// Returns `true` if the entry was fully removed.
    pub fn unsubscribe(&mut self, face: FaceId, cd: &Name, rp: Option<RpId>) -> bool {
        let Some(ft) = self.faces.get_mut(&face) else {
            return false;
        };
        let Some(e) = ft.entries.get_mut(cd) else {
            return false;
        };
        let gone = match rp {
            Some(r) => {
                e.rps.remove(&r);
                e.rps.is_empty()
            }
            None => true,
        };
        if gone {
            ft.entries.remove(cd);
            ft.bloom.remove(cd.stable_hash());
            if ft.entries.is_empty() {
                self.faces.remove(&face);
            }
        }
        gone
    }

    /// Removes every subscription of `face` (e.g. the face went down),
    /// returning the removed CDs.
    pub fn remove_face(&mut self, face: FaceId) -> Vec<Name> {
        self.faces
            .remove(&face)
            .map(|ft| ft.entries.into_keys().collect())
            .unwrap_or_default()
    }

    /// Recomputes the anchor sets of host-derived (`auto`) entries from the
    /// current RP table — called after an `RpUpdate` moved CDs. (Hosts keep
    /// receiving from draining trees regardless: delivery to host faces is
    /// name-matched without a tree check, since leaves cannot loop.)
    pub fn retag_auto(&mut self, anchors_of: impl Fn(&Name) -> BTreeSet<RpId>) {
        for ft in self.faces.values_mut() {
            for (name, e) in &mut ft.entries {
                if e.auto {
                    e.rps = anchors_of(name);
                }
            }
        }
    }

    /// The faces a multicast with CD `cd` travelling tree `tree` must be
    /// forwarded to, excluding `arrival` — Bloom prefilter on the packet's
    /// precomputed per-level hashes, then the exact tree-membership check.
    /// `tree = None` matches any tree (host-side and hybrid tables).
    #[must_use]
    pub fn matching_faces(
        &self,
        cd: &Cd,
        arrival: Option<FaceId>,
        tree: Option<RpId>,
    ) -> Vec<FaceId> {
        let hashes = cd.hashes().as_slice();
        self.faces
            .iter()
            .filter(|(f, _)| Some(**f) != arrival)
            .filter(|(_, ft)| ft.bloom.contains_any(hashes))
            .filter(|(_, ft)| Self::face_matches(ft, cd.name(), tree))
            .map(|(f, _)| *f)
            .collect()
    }

    /// Like [`SubscriptionTable::matching_faces`] but skipping the Bloom
    /// prefilter (ground truth for tests).
    #[must_use]
    pub fn matching_faces_exact(
        &self,
        cd: &Cd,
        arrival: Option<FaceId>,
        tree: Option<RpId>,
    ) -> Vec<FaceId> {
        self.faces
            .iter()
            .filter(|(f, _)| Some(**f) != arrival)
            .filter(|(_, ft)| Self::face_matches(ft, cd.name(), tree))
            .map(|(f, _)| *f)
            .collect()
    }

    fn face_matches(ft: &FaceTable, cd: &Name, tree: Option<RpId>) -> bool {
        cd.prefixes().any(|p| {
            ft.entries
                .get(&p)
                .is_some_and(|e| tree.is_none() || tree.is_some_and(|t| e.rps.contains(&t)))
        })
    }

    /// Returns `true` if any face other than `excluding` holds a
    /// subscription at or below `prefix`.
    #[must_use]
    pub fn any_subscriber_under(&self, prefix: &Name, excluding: Option<FaceId>) -> bool {
        self.faces
            .iter()
            .filter(|(f, _)| Some(**f) != excluding)
            .any(|(_, ft)| {
                ft.entries
                    .range(prefix.clone()..)
                    .next()
                    .is_some_and(|(n, _)| prefix.is_prefix_of(n))
            })
    }

    /// Returns `true` if any face other than `excluding` holds a
    /// subscription that covers `cd` (is a prefix of it).
    #[must_use]
    pub fn any_subscriber_covering(&self, cd: &Name, excluding: Option<FaceId>) -> bool {
        self.faces
            .iter()
            .filter(|(f, _)| Some(**f) != excluding)
            .any(|(_, ft)| cd.prefixes().any(|p| ft.entries.contains_key(&p)))
    }

    /// The exact CDs subscribed through `face`.
    #[must_use]
    pub fn face_subscriptions(&self, face: FaceId) -> Vec<Name> {
        self.faces
            .get(&face)
            .map(|ft| ft.entries.keys().cloned().collect())
            .unwrap_or_default()
    }

    /// All faces with at least one subscription.
    #[must_use]
    pub fn faces(&self) -> Vec<FaceId> {
        self.faces.keys().copied().collect()
    }

    /// Every `(name, anchor RPs)` subscription across all faces, merged.
    #[must_use]
    pub fn all_subscriptions_tagged(&self) -> BTreeMap<Name, BTreeSet<RpId>> {
        let mut out: BTreeMap<Name, BTreeSet<RpId>> = BTreeMap::new();
        for ft in self.faces.values() {
            for (name, e) in &ft.entries {
                out.entry(name.clone()).or_default().extend(e.rps.iter());
            }
        }
        out
    }

    /// The union of all subscribed CD names across faces (untagged view).
    #[must_use]
    pub fn all_subscriptions(&self) -> CdSet {
        self.faces
            .values()
            .flat_map(|ft| ft.entries.keys().cloned())
            .collect()
    }

    /// Total number of (face, CD) subscription pairs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.faces.values().map(|ft| ft.entries.len()).sum()
    }

    /// Returns `true` if no face has any subscription.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faces.is_empty()
    }
}

impl Default for SubscriptionTable {
    fn default() -> Self {
        Self::new(BloomParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse_lit(s)
    }

    fn rps(ids: &[u32]) -> BTreeSet<RpId> {
        ids.iter().map(|&i| RpId(i)).collect()
    }

    #[test]
    fn hierarchical_matching() {
        let mut st = SubscriptionTable::default();
        st.subscribe(FaceId(1), n("/1"), rps(&[0]), true);
        st.subscribe(FaceId(2), n("/1/2"), rps(&[0]), true);
        st.subscribe(FaceId(3), n("/2"), rps(&[0]), true);

        // Publication to /1/2 reaches the /1 subscriber and the /1/2
        // subscriber, not the /2 subscriber.
        let out = st.matching_faces(&Cd::parse_lit("/1/2"), None, Some(RpId(0)));
        assert_eq!(out, vec![FaceId(1), FaceId(2)]);

        // Publication to /1 reaches only the /1 subscriber (the /1/2
        // subscription is more specific; it must NOT match /1 — that is the
        // whole point of the own-area CDs).
        let out = st.matching_faces(&Cd::parse_lit("/1"), None, Some(RpId(0)));
        assert_eq!(out, vec![FaceId(1)]);
    }

    #[test]
    fn tree_scoping_separates_rp_trees() {
        let mut st = SubscriptionTable::default();
        // Face 1 joined / toward RP 0 only; face 2 toward RP 1 only.
        st.subscribe(FaceId(1), Name::root(), rps(&[0]), false);
        st.subscribe(FaceId(2), Name::root(), rps(&[1]), false);
        let cd = Cd::parse_lit("/1/2");
        assert_eq!(st.matching_faces(&cd, None, Some(RpId(0))), vec![FaceId(1)]);
        assert_eq!(st.matching_faces(&cd, None, Some(RpId(1))), vec![FaceId(2)]);
        // Untagged matching sees both (host-side delivery).
        assert_eq!(
            st.matching_faces(&cd, None, None),
            vec![FaceId(1), FaceId(2)]
        );
    }

    #[test]
    fn arrival_face_excluded() {
        let mut st = SubscriptionTable::default();
        st.subscribe(FaceId(1), n("/1"), rps(&[0]), true);
        st.subscribe(FaceId(2), n("/1"), rps(&[0]), true);
        let out = st.matching_faces(&Cd::parse_lit("/1/5"), Some(FaceId(1)), Some(RpId(0)));
        assert_eq!(out, vec![FaceId(2)]);
    }

    #[test]
    fn bloom_is_superset_of_exact() {
        let mut st = SubscriptionTable::default();
        for i in 1..=5u32 {
            for j in 1..=5u32 {
                st.subscribe(FaceId(i), n(&format!("/{i}/{j}")), rps(&[0]), true);
            }
        }
        for i in 1..=5u32 {
            for j in 1..=5u32 {
                let cd = Cd::parse_lit(&format!("/{i}/{j}"));
                let exact = st.matching_faces_exact(&cd, None, Some(RpId(0)));
                let bloom = st.matching_faces(&cd, None, Some(RpId(0)));
                for f in &exact {
                    assert!(bloom.contains(f), "bloom missed subscribed face");
                }
            }
        }
    }

    #[test]
    fn unsubscribe_per_rp_and_whole() {
        let mut st = SubscriptionTable::default();
        st.subscribe(FaceId(1), n("/1"), rps(&[0, 1]), false);
        // Removing one anchor keeps the entry.
        assert!(!st.unsubscribe(FaceId(1), &n("/1"), Some(RpId(0))));
        assert_eq!(
            st.matching_faces(&Cd::parse_lit("/1/1"), None, Some(RpId(1))),
            vec![FaceId(1)]
        );
        assert!(st
            .matching_faces(&Cd::parse_lit("/1/1"), None, Some(RpId(0)))
            .is_empty());
        // Removing the last anchor removes the entry.
        assert!(st.unsubscribe(FaceId(1), &n("/1"), Some(RpId(1))));
        assert!(st.is_empty());
    }

    #[test]
    fn unsubscribe_untagged_removes_entry() {
        let mut st = SubscriptionTable::default();
        st.subscribe(FaceId(1), n("/1"), rps(&[0, 1]), true);
        st.subscribe(FaceId(1), n("/2"), rps(&[0]), true);
        assert!(st.unsubscribe(FaceId(1), &n("/1"), None));
        assert!(!st.unsubscribe(FaceId(1), &n("/1"), None));
        assert_eq!(st.len(), 1);
    }

    #[test]
    fn resubscribe_merges_anchors() {
        let mut st = SubscriptionTable::default();
        assert!(st.subscribe(FaceId(1), n("/1"), rps(&[0]), false));
        assert!(!st.subscribe(FaceId(1), n("/1"), rps(&[1]), false));
        for rp in [RpId(0), RpId(1)] {
            assert_eq!(
                st.matching_faces(&Cd::parse_lit("/1/9"), None, Some(rp)),
                vec![FaceId(1)]
            );
        }
    }

    #[test]
    fn counting_bloom_survives_unsubscribe_of_sibling() {
        let mut st = SubscriptionTable::default();
        st.subscribe(FaceId(1), n("/1/1"), rps(&[0]), true);
        st.subscribe(FaceId(1), n("/1/2"), rps(&[0]), true);
        st.unsubscribe(FaceId(1), &n("/1/2"), None);
        let out = st.matching_faces(&Cd::parse_lit("/1/1"), None, Some(RpId(0)));
        assert_eq!(out, vec![FaceId(1)]);
    }

    #[test]
    fn retag_auto_recomputes_host_entries() {
        let mut st = SubscriptionTable::default();
        st.subscribe(FaceId(1), n("/1"), rps(&[0]), true); // host
        st.subscribe(FaceId(2), n("/1"), rps(&[0]), false); // router join
        st.retag_auto(|_| rps(&[5]));
        let cd = Cd::parse_lit("/1/1");
        assert_eq!(st.matching_faces(&cd, None, Some(RpId(5))), vec![FaceId(1)]);
        assert_eq!(st.matching_faces(&cd, None, Some(RpId(0))), vec![FaceId(2)]);
    }

    #[test]
    fn any_subscriber_queries() {
        let mut st = SubscriptionTable::default();
        st.subscribe(FaceId(1), n("/1/2"), rps(&[0]), true);
        st.subscribe(FaceId(2), n("/3"), rps(&[0]), true);
        assert!(st.any_subscriber_under(&n("/1"), None));
        assert!(!st.any_subscriber_under(&n("/1"), Some(FaceId(1))));
        assert!(st.any_subscriber_covering(&n("/3/4"), None));
        assert!(!st.any_subscriber_covering(&n("/1"), None));
    }

    #[test]
    fn remove_face_returns_cds() {
        let mut st = SubscriptionTable::default();
        st.subscribe(FaceId(1), n("/a"), rps(&[0]), true);
        st.subscribe(FaceId(1), n("/b"), rps(&[0]), true);
        let mut cds = st.remove_face(FaceId(1));
        cds.sort();
        assert_eq!(cds, vec![n("/a"), n("/b")]);
        assert!(st.is_empty());
        assert!(st.remove_face(FaceId(1)).is_empty());
    }

    #[test]
    fn union_and_tagged_views() {
        let mut st = SubscriptionTable::default();
        st.subscribe(FaceId(1), n("/a"), rps(&[0]), true);
        st.subscribe(FaceId(2), n("/a"), rps(&[1]), true);
        st.subscribe(FaceId(2), n("/b"), rps(&[0]), true);
        assert_eq!(st.faces(), vec![FaceId(1), FaceId(2)]);
        assert_eq!(st.face_subscriptions(FaceId(2)).len(), 2);
        assert_eq!(st.all_subscriptions().len(), 2);
        let tagged = st.all_subscriptions_tagged();
        assert_eq!(tagged[&n("/a")], rps(&[0, 1]));
        assert_eq!(st.len(), 3);
    }
}
