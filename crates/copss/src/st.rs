//! The Subscription Table.

use std::collections::{BTreeMap, BTreeSet};

use gcopss_names::{BloomParams, Cd, CdSet, CountingBloomFilter, Name, NameTreeBitmap};
use gcopss_ndn::FaceId;

use crate::RpId;

/// One face's subscription to one CD name.
///
/// The two anchor sets record *who asserted* the anchors — host-derived
/// anchors are recomputed from the RP table on every `RpUpdate`
/// ([`SubscriptionTable::retag_auto`]), while router-join anchors are owned
/// by the joining router and must survive retagging untouched. Folding both
/// into one set with an `auto` flag (as this table originally did) lets a
/// host re-subscribe convert a router-join entry, after which the next
/// retag silently wipes the router's anchors and multicasts skip the face.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SubEntry {
    /// Anchors derived from the RP table for a host subscription (no RP tag
    /// on the wire). `Some` even when empty: a host subscription with no
    /// reachable RP still exists for untagged (host-side) delivery.
    host: Option<BTreeSet<RpId>>,
    /// Anchors asserted by explicit router joins, one per joined RP tree.
    router: Option<BTreeSet<RpId>>,
}

impl SubEntry {
    fn empty() -> Self {
        Self {
            host: None,
            router: None,
        }
    }

    fn is_gone(&self) -> bool {
        self.host.is_none() && self.router.is_none()
    }

    /// A multicast on tree `tree` may leave through this entry's face.
    /// `tree = None` matches any entry (host-side and hybrid delivery).
    fn matches_tree(&self, tree: Option<RpId>) -> bool {
        match tree {
            None => true,
            Some(t) => {
                self.host.as_ref().is_some_and(|s| s.contains(&t))
                    || self.router.as_ref().is_some_and(|s| s.contains(&t))
            }
        }
    }

    /// The union of both provenances' anchors.
    fn anchors(&self) -> impl Iterator<Item = &RpId> {
        self.host
            .iter()
            .flatten()
            .chain(self.router.iter().flatten())
    }
}

/// The COPSS Subscription Table: for every face, the set of CDs subscribed
/// through that face, each tagged with the RP trees it was joined toward.
///
/// The match rule is hierarchical: a multicast with CD `c` on tree `T` is
/// forwarded to face `f` iff `f` subscribed to some *prefix* of `c` with
/// `T` among its anchor RPs.
///
/// Internally the table keeps two synchronized views:
///
/// * a **shared match index** — one [`NameTreeBitmap`] over all faces'
///   subscription names, each node holding the per-face anchor entries for
///   that exact name. [`SubscriptionTable::matching_faces`] walks the
///   packet's CD down this index using the precomputed per-level hashes it
///   carries (§III-C), so the cost of a match is `O(depth)` regardless of
///   how many faces or subscriptions the table holds;
/// * **per-face tables** — each face's exact entry map plus the counting
///   Bloom filter of §III-C. The exact maps make `Unsubscribe` and
///   [`SubscriptionTable::matching_faces_exact`] (the brute-force oracle the
///   differential tests compare against) independent of the index; the
///   Bloom filters remain the wire-representable per-face CD summary
///   ([`SubscriptionTable::bloom_prematch`]).
///
/// # Example
///
/// ```
/// # use gcopss_copss::{RpId, SubscriptionTable};
/// # use gcopss_names::{Cd, Name};
/// # use gcopss_ndn::FaceId;
/// let mut st = SubscriptionTable::default();
/// st.subscribe(FaceId(1), Name::parse_lit("/sports"), [RpId(0)].into(), true);
/// let out = st.matching_faces(&Cd::parse_lit("/sports/football"), None, Some(RpId(0)));
/// assert_eq!(out, vec![FaceId(1)]);
/// assert!(st
///     .matching_faces(&Cd::parse_lit("/sports/football"), None, Some(RpId(9)))
///     .is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct SubscriptionTable {
    /// Shared match index: subscription name → per-face anchor entries.
    index: NameTreeBitmap<BTreeMap<FaceId, SubEntry>>,
    faces: BTreeMap<FaceId, FaceTable>,
    bloom_params: BloomParams,
}

#[derive(Debug, Clone)]
struct FaceTable {
    entries: BTreeMap<Name, SubEntry>,
    bloom: CountingBloomFilter,
}

impl SubscriptionTable {
    /// Creates an empty table whose per-face Bloom filters use the given
    /// sizing.
    #[must_use]
    pub fn new(bloom_params: BloomParams) -> Self {
        Self {
            index: NameTreeBitmap::new(),
            faces: BTreeMap::new(),
            bloom_params,
        }
    }

    /// Mirrors `face`'s entry for `name` into the shared index (or removes
    /// it when the entry is gone).
    fn sync_index(
        index: &mut NameTreeBitmap<BTreeMap<FaceId, SubEntry>>,
        name: &Name,
        face: FaceId,
        entry: Option<&SubEntry>,
    ) {
        match entry {
            Some(e) => {
                index
                    .get_or_insert_with(name, BTreeMap::new)
                    .insert(face, e.clone());
            }
            None => {
                if let Some(m) = index.get_mut(name) {
                    m.remove(&face);
                    if m.is_empty() {
                        index.remove(name);
                    }
                }
            }
        }
    }

    /// Adds a subscription for `cd` through `face`, anchored at `rps`.
    /// `auto = true` marks a host subscription whose anchors are derived
    /// from the RP table (and recomputed by
    /// [`SubscriptionTable::retag_auto`]); `auto = false` marks an explicit
    /// router join whose anchors are owned by the joining router. The two
    /// provenances accumulate independently on the same entry. Returns
    /// `true` if the face was not already subscribed to exactly `cd`;
    /// re-subscribing merges into the matching provenance's anchor set.
    pub fn subscribe(&mut self, face: FaceId, cd: Name, rps: BTreeSet<RpId>, auto: bool) -> bool {
        let params = self.bloom_params;
        let ft = self.faces.entry(face).or_insert_with(|| FaceTable {
            entries: BTreeMap::new(),
            bloom: CountingBloomFilter::new(params),
        });
        let mut created = false;
        let e = ft.entries.entry(cd.clone()).or_insert_with(|| {
            created = true;
            SubEntry::empty()
        });
        if created {
            ft.bloom.insert(cd.stable_hash());
        }
        let side = if auto { &mut e.host } else { &mut e.router };
        side.get_or_insert_with(BTreeSet::new).extend(rps);
        Self::sync_index(&mut self.index, &cd, face, Some(e));
        created
    }

    /// Removes the subscription for exactly `cd` from `face`. With
    /// `rp = Some(r)`, only the router-join anchor `r` is removed (a tagged
    /// `Unsubscribe` is a router-tree leave; host-derived anchors are not
    /// the leaving router's to retract) and the entry stays while any
    /// provenance remains; with `None` the whole entry goes. Returns `true`
    /// if the entry was fully removed.
    pub fn unsubscribe(&mut self, face: FaceId, cd: &Name, rp: Option<RpId>) -> bool {
        let Some(ft) = self.faces.get_mut(&face) else {
            return false;
        };
        let Some(e) = ft.entries.get_mut(cd) else {
            return false;
        };
        match rp {
            Some(r) => {
                if let Some(router) = &mut e.router {
                    router.remove(&r);
                    if router.is_empty() {
                        e.router = None;
                    }
                }
            }
            None => {
                e.host = None;
                e.router = None;
            }
        }
        let gone = e.is_gone();
        if gone {
            ft.entries.remove(cd);
            ft.bloom.remove(cd.stable_hash());
            Self::sync_index(&mut self.index, cd, face, None);
            if ft.entries.is_empty() {
                self.faces.remove(&face);
            }
        } else {
            Self::sync_index(&mut self.index, cd, face, Some(e));
        }
        gone
    }

    /// Removes every subscription of `face` (e.g. the face went down),
    /// returning the removed CDs.
    pub fn remove_face(&mut self, face: FaceId) -> Vec<Name> {
        let Some(ft) = self.faces.remove(&face) else {
            return Vec::new();
        };
        let cds: Vec<Name> = ft.entries.into_keys().collect();
        for cd in &cds {
            Self::sync_index(&mut self.index, cd, face, None);
        }
        cds
    }

    /// Recomputes the anchor sets of host-derived entries from the current
    /// RP table — called after an `RpUpdate` moved CDs. Router-join anchors
    /// are left untouched: they were asserted by explicit joins, not derived
    /// from the RP table, and wiping them here is exactly the
    /// anchor-clobbering bug this table used to have. (Hosts keep receiving
    /// from draining trees regardless: delivery to host faces is
    /// name-matched without a tree check, since leaves cannot loop.)
    pub fn retag_auto(&mut self, anchors_of: impl Fn(&Name) -> BTreeSet<RpId>) {
        for (face, ft) in &mut self.faces {
            for (name, e) in &mut ft.entries {
                if e.host.is_some() {
                    e.host = Some(anchors_of(name));
                    Self::sync_index(&mut self.index, name, *face, Some(e));
                }
            }
        }
    }

    /// The faces a multicast with CD `cd` travelling tree `tree` must be
    /// forwarded to, excluding `arrival`. Walks the shared index down the
    /// packet's precomputed per-level hashes — `O(depth)` bitmap descents,
    /// independent of table size — and applies the exact tree-membership
    /// check at each stored prefix. `tree = None` matches any tree
    /// (host-side and hybrid tables).
    #[must_use]
    pub fn matching_faces(
        &self,
        cd: &Cd,
        arrival: Option<FaceId>,
        tree: Option<RpId>,
    ) -> Vec<FaceId> {
        let mut out: Vec<FaceId> = Vec::new();
        for (_, face_map) in self
            .index
            .prefix_values_hashed(cd.name(), cd.hashes().as_slice())
        {
            for (f, e) in face_map {
                if Some(*f) != arrival && e.matches_tree(tree) {
                    out.push(*f);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Like [`SubscriptionTable::matching_faces`] but scanning every face's
    /// exact entry map, without the shared index (ground truth for the
    /// differential tests).
    #[must_use]
    pub fn matching_faces_exact(
        &self,
        cd: &Cd,
        arrival: Option<FaceId>,
        tree: Option<RpId>,
    ) -> Vec<FaceId> {
        self.faces
            .iter()
            .filter(|(f, _)| Some(**f) != arrival)
            .filter(|(_, ft)| Self::face_matches(ft, cd.name(), tree))
            .map(|(f, _)| *f)
            .collect()
    }

    /// The paper-literal per-face path: Bloom prefilter on the packet's
    /// per-level hashes ("simple bit comparison", §III-C), then the exact
    /// per-face check. Same result as [`SubscriptionTable::matching_faces`]
    /// (the filter admits no false negatives and the exact check runs
    /// after), but `O(faces)` per packet — kept as the baseline the
    /// `exp_scale` sweep measures the index against.
    #[must_use]
    pub fn matching_faces_bloom(
        &self,
        cd: &Cd,
        arrival: Option<FaceId>,
        tree: Option<RpId>,
    ) -> Vec<FaceId> {
        let hashes = cd.hashes().as_slice();
        self.faces
            .iter()
            .filter(|(f, _)| Some(**f) != arrival)
            .filter(|(_, ft)| ft.bloom.contains_any(hashes))
            .filter(|(_, ft)| Self::face_matches(ft, cd.name(), tree))
            .map(|(f, _)| *f)
            .collect()
    }

    /// The §III-C wire-level prematch: would `face`'s counting Bloom filter
    /// admit a packet carrying these per-level CD hashes? May err toward
    /// `true` (false positives), never toward `false` for a subscribed CD.
    #[must_use]
    pub fn bloom_prematch(&self, face: FaceId, hashes: &[u64]) -> bool {
        self.faces
            .get(&face)
            .is_some_and(|ft| ft.bloom.contains_any(hashes))
    }

    fn face_matches(ft: &FaceTable, cd: &Name, tree: Option<RpId>) -> bool {
        cd.prefixes()
            .any(|p| ft.entries.get(&p).is_some_and(|e| e.matches_tree(tree)))
    }

    /// Returns `true` if any face other than `excluding` holds a
    /// subscription at or below `prefix`.
    ///
    /// Answered from the index's subtree counters where possible: with no
    /// exclusion this is a single `O(depth)` descent. With an excluded face
    /// it falls back to comparing against that face's own entries — still
    /// bounded by the excluded face's subscriptions under `prefix`, not by
    /// table size.
    #[must_use]
    pub fn any_subscriber_under(&self, prefix: &Name, excluding: Option<FaceId>) -> bool {
        let total = self.index.count_under(prefix);
        if total == 0 {
            return false;
        }
        let Some(excluded) = excluding else {
            return true;
        };
        let Some(ft) = self.faces.get(&excluded) else {
            return true;
        };
        // Under the derived Name ordering, descendants of `prefix` form a
        // contiguous initial run of `range(prefix..)`: any non-descendant
        // name ≥ prefix differs from it at some component index before
        // prefix's end and therefore sorts after every descendant.
        let mine = ft
            .entries
            .range(prefix.clone()..)
            .take_while(|(n, _)| prefix.is_prefix_of(n));
        let mut mine_count = 0usize;
        for (name, _) in mine.clone() {
            mine_count += 1;
            // A name the excluded face shares with any other face counts.
            if self
                .index
                .get(name)
                .is_some_and(|m| m.keys().any(|f| *f != excluded))
            {
                return true;
            }
        }
        // More subscribed names under the prefix than the excluded face
        // holds ⇒ some other face subscribed a name of its own.
        total > mine_count
    }

    /// Returns `true` if any face other than `excluding` holds a
    /// subscription that covers `cd` (is a prefix of it) — one `O(depth)`
    /// walk of the shared index.
    #[must_use]
    pub fn any_subscriber_covering(&self, cd: &Name, excluding: Option<FaceId>) -> bool {
        self.index
            .prefix_values(cd)
            .iter()
            .any(|(_, m)| m.keys().any(|f| Some(*f) != excluding))
    }

    /// The exact CDs subscribed through `face`.
    #[must_use]
    pub fn face_subscriptions(&self, face: FaceId) -> Vec<Name> {
        self.faces
            .get(&face)
            .map(|ft| ft.entries.keys().cloned().collect())
            .unwrap_or_default()
    }

    /// All faces with at least one subscription.
    #[must_use]
    pub fn faces(&self) -> Vec<FaceId> {
        self.faces.keys().copied().collect()
    }

    /// Every `(name, anchor RPs)` subscription across all faces, merged
    /// over both provenances.
    #[must_use]
    pub fn all_subscriptions_tagged(&self) -> BTreeMap<Name, BTreeSet<RpId>> {
        let mut out: BTreeMap<Name, BTreeSet<RpId>> = BTreeMap::new();
        for ft in self.faces.values() {
            for (name, e) in &ft.entries {
                out.entry(name.clone()).or_default().extend(e.anchors());
            }
        }
        out
    }

    /// The union of all subscribed CD names across faces (untagged view).
    #[must_use]
    pub fn all_subscriptions(&self) -> CdSet {
        self.faces
            .values()
            .flat_map(|ft| ft.entries.keys().cloned())
            .collect()
    }

    /// Total number of (face, CD) subscription pairs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.faces.values().map(|ft| ft.entries.len()).sum()
    }

    /// Returns `true` if no face has any subscription.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faces.is_empty()
    }
}

impl Default for SubscriptionTable {
    fn default() -> Self {
        Self::new(BloomParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse_lit(s)
    }

    fn rps(ids: &[u32]) -> BTreeSet<RpId> {
        ids.iter().map(|&i| RpId(i)).collect()
    }

    #[test]
    fn hierarchical_matching() {
        let mut st = SubscriptionTable::default();
        st.subscribe(FaceId(1), n("/1"), rps(&[0]), true);
        st.subscribe(FaceId(2), n("/1/2"), rps(&[0]), true);
        st.subscribe(FaceId(3), n("/2"), rps(&[0]), true);

        // Publication to /1/2 reaches the /1 subscriber and the /1/2
        // subscriber, not the /2 subscriber.
        let out = st.matching_faces(&Cd::parse_lit("/1/2"), None, Some(RpId(0)));
        assert_eq!(out, vec![FaceId(1), FaceId(2)]);

        // Publication to /1 reaches only the /1 subscriber (the /1/2
        // subscription is more specific; it must NOT match /1 — that is the
        // whole point of the own-area CDs).
        let out = st.matching_faces(&Cd::parse_lit("/1"), None, Some(RpId(0)));
        assert_eq!(out, vec![FaceId(1)]);
    }

    #[test]
    fn tree_scoping_separates_rp_trees() {
        let mut st = SubscriptionTable::default();
        // Face 1 joined / toward RP 0 only; face 2 toward RP 1 only.
        st.subscribe(FaceId(1), Name::root(), rps(&[0]), false);
        st.subscribe(FaceId(2), Name::root(), rps(&[1]), false);
        let cd = Cd::parse_lit("/1/2");
        assert_eq!(st.matching_faces(&cd, None, Some(RpId(0))), vec![FaceId(1)]);
        assert_eq!(st.matching_faces(&cd, None, Some(RpId(1))), vec![FaceId(2)]);
        // Untagged matching sees both (host-side delivery).
        assert_eq!(
            st.matching_faces(&cd, None, None),
            vec![FaceId(1), FaceId(2)]
        );
    }

    #[test]
    fn arrival_face_excluded() {
        let mut st = SubscriptionTable::default();
        st.subscribe(FaceId(1), n("/1"), rps(&[0]), true);
        st.subscribe(FaceId(2), n("/1"), rps(&[0]), true);
        let out = st.matching_faces(&Cd::parse_lit("/1/5"), Some(FaceId(1)), Some(RpId(0)));
        assert_eq!(out, vec![FaceId(2)]);
    }

    #[test]
    fn bloom_is_superset_of_exact() {
        let mut st = SubscriptionTable::default();
        for i in 1..=5u32 {
            for j in 1..=5u32 {
                st.subscribe(FaceId(i), n(&format!("/{i}/{j}")), rps(&[0]), true);
            }
        }
        for i in 1..=5u32 {
            for j in 1..=5u32 {
                let cd = Cd::parse_lit(&format!("/{i}/{j}"));
                let exact = st.matching_faces_exact(&cd, None, Some(RpId(0)));
                let bloom = st.matching_faces_bloom(&cd, None, Some(RpId(0)));
                assert_eq!(bloom, exact, "bloom path diverged from exact");
                for f in &exact {
                    assert!(
                        st.bloom_prematch(*f, cd.hashes().as_slice()),
                        "bloom prematch missed subscribed face"
                    );
                }
            }
        }
    }

    #[test]
    fn index_path_matches_exact_path() {
        let mut st = SubscriptionTable::default();
        st.subscribe(FaceId(1), n("/1"), rps(&[0]), true);
        st.subscribe(FaceId(2), n("/1/2"), rps(&[1]), false);
        st.subscribe(FaceId(3), n("/1/2/3"), rps(&[0, 1]), true);
        for probe in ["/1", "/1/2", "/1/2/3", "/1/2/3/4", "/2", "/1/9"] {
            let cd = Cd::parse_lit(probe);
            for tree in [None, Some(RpId(0)), Some(RpId(1)), Some(RpId(9))] {
                for arrival in [None, Some(FaceId(1)), Some(FaceId(2))] {
                    assert_eq!(
                        st.matching_faces(&cd, arrival, tree),
                        st.matching_faces_exact(&cd, arrival, tree),
                        "index diverged at cd={probe} tree={tree:?} arrival={arrival:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn unsubscribe_per_rp_and_whole() {
        let mut st = SubscriptionTable::default();
        st.subscribe(FaceId(1), n("/1"), rps(&[0, 1]), false);
        // Removing one anchor keeps the entry.
        assert!(!st.unsubscribe(FaceId(1), &n("/1"), Some(RpId(0))));
        assert_eq!(
            st.matching_faces(&Cd::parse_lit("/1/1"), None, Some(RpId(1))),
            vec![FaceId(1)]
        );
        assert!(st
            .matching_faces(&Cd::parse_lit("/1/1"), None, Some(RpId(0)))
            .is_empty());
        // Removing the last anchor removes the entry.
        assert!(st.unsubscribe(FaceId(1), &n("/1"), Some(RpId(1))));
        assert!(st.is_empty());
    }

    #[test]
    fn unsubscribe_untagged_removes_entry() {
        let mut st = SubscriptionTable::default();
        st.subscribe(FaceId(1), n("/1"), rps(&[0, 1]), true);
        st.subscribe(FaceId(1), n("/2"), rps(&[0]), true);
        assert!(st.unsubscribe(FaceId(1), &n("/1"), None));
        assert!(!st.unsubscribe(FaceId(1), &n("/1"), None));
        assert_eq!(st.len(), 1);
    }

    #[test]
    fn resubscribe_merges_anchors() {
        let mut st = SubscriptionTable::default();
        assert!(st.subscribe(FaceId(1), n("/1"), rps(&[0]), false));
        assert!(!st.subscribe(FaceId(1), n("/1"), rps(&[1]), false));
        for rp in [RpId(0), RpId(1)] {
            assert_eq!(
                st.matching_faces(&Cd::parse_lit("/1/9"), None, Some(rp)),
                vec![FaceId(1)]
            );
        }
    }

    #[test]
    fn host_resubscribe_must_not_clobber_router_anchors() {
        // Regression (ISSUE 6): face 1 is a downstream router joined toward
        // RP 0. A host behind the same face then subscribes to the same CD
        // (anchors derived from the RP table: RP 5). With the old merged
        // `auto |= auto` entry, the re-subscribe converted the whole entry
        // to host provenance, and the retag after the next RpUpdate
        // replaced {0, 5} with {5} — multicasts on tree 0 silently stopped
        // leaving through face 1.
        let mut st = SubscriptionTable::default();
        st.subscribe(FaceId(1), n("/1"), rps(&[0]), false); // router join
        st.subscribe(FaceId(1), n("/1"), rps(&[5]), true); // host re-subscribe
        st.retag_auto(|_| rps(&[5])); // RpUpdate settles

        let cd = Cd::parse_lit("/1/9");
        assert_eq!(
            st.matching_faces(&cd, None, Some(RpId(0))),
            vec![FaceId(1)],
            "router-join anchor lost after host re-subscribe + retag"
        );
        assert_eq!(st.matching_faces(&cd, None, Some(RpId(5))), vec![FaceId(1)]);

        // And the reverse order: host first, router join second — the retag
        // must also leave the router's anchor alone.
        let mut st = SubscriptionTable::default();
        st.subscribe(FaceId(2), n("/1"), rps(&[5]), true);
        st.subscribe(FaceId(2), n("/1"), rps(&[0]), false);
        st.retag_auto(|_| rps(&[5]));
        assert_eq!(st.matching_faces(&cd, None, Some(RpId(0))), vec![FaceId(2)]);
    }

    #[test]
    fn tagged_unsubscribe_is_a_router_leave() {
        // A tagged Unsubscribe retracts a router join; host-derived anchors
        // are not the leaving router's to retract.
        let mut st = SubscriptionTable::default();
        st.subscribe(FaceId(1), n("/1"), rps(&[0]), false);
        st.subscribe(FaceId(1), n("/1"), rps(&[0, 5]), true);
        assert!(!st.unsubscribe(FaceId(1), &n("/1"), Some(RpId(0))));
        let cd = Cd::parse_lit("/1/9");
        // The host-derived anchor 0 still matches; only the join is gone.
        assert_eq!(st.matching_faces(&cd, None, Some(RpId(0))), vec![FaceId(1)]);
        // Retag drops the host's 0; now nothing anchors tree 0.
        st.retag_auto(|_| rps(&[5]));
        assert!(st.matching_faces(&cd, None, Some(RpId(0))).is_empty());
        assert_eq!(st.matching_faces(&cd, None, Some(RpId(5))), vec![FaceId(1)]);
    }

    #[test]
    fn counting_bloom_survives_unsubscribe_of_sibling() {
        let mut st = SubscriptionTable::default();
        st.subscribe(FaceId(1), n("/1/1"), rps(&[0]), true);
        st.subscribe(FaceId(1), n("/1/2"), rps(&[0]), true);
        st.unsubscribe(FaceId(1), &n("/1/2"), None);
        let out = st.matching_faces_bloom(&Cd::parse_lit("/1/1"), None, Some(RpId(0)));
        assert_eq!(out, vec![FaceId(1)]);
    }

    #[test]
    fn retag_auto_recomputes_host_entries() {
        let mut st = SubscriptionTable::default();
        st.subscribe(FaceId(1), n("/1"), rps(&[0]), true); // host
        st.subscribe(FaceId(2), n("/1"), rps(&[0]), false); // router join
        st.retag_auto(|_| rps(&[5]));
        let cd = Cd::parse_lit("/1/1");
        assert_eq!(st.matching_faces(&cd, None, Some(RpId(5))), vec![FaceId(1)]);
        assert_eq!(st.matching_faces(&cd, None, Some(RpId(0))), vec![FaceId(2)]);
    }

    #[test]
    fn any_subscriber_queries() {
        let mut st = SubscriptionTable::default();
        st.subscribe(FaceId(1), n("/1/2"), rps(&[0]), true);
        st.subscribe(FaceId(2), n("/3"), rps(&[0]), true);
        assert!(st.any_subscriber_under(&n("/1"), None));
        assert!(!st.any_subscriber_under(&n("/1"), Some(FaceId(1))));
        assert!(st.any_subscriber_covering(&n("/3/4"), None));
        assert!(!st.any_subscriber_covering(&n("/1"), None));
    }

    #[test]
    fn any_subscriber_under_sees_shared_names() {
        // Faces 1 and 2 subscribe the *same* name: excluding face 1 must
        // still report a subscriber (face 2 shares the name).
        let mut st = SubscriptionTable::default();
        st.subscribe(FaceId(1), n("/1/2"), rps(&[0]), true);
        st.subscribe(FaceId(2), n("/1/2"), rps(&[0]), true);
        assert!(st.any_subscriber_under(&n("/1"), Some(FaceId(1))));
        assert!(st.any_subscriber_under(&n("/1"), Some(FaceId(2))));
        assert!(!st.any_subscriber_under(&n("/2"), None));
    }

    #[test]
    fn remove_face_returns_cds() {
        let mut st = SubscriptionTable::default();
        st.subscribe(FaceId(1), n("/a"), rps(&[0]), true);
        st.subscribe(FaceId(1), n("/b"), rps(&[0]), true);
        let mut cds = st.remove_face(FaceId(1));
        cds.sort();
        assert_eq!(cds, vec![n("/a"), n("/b")]);
        assert!(st.is_empty());
        assert!(st.remove_face(FaceId(1)).is_empty());
        assert!(st.matching_faces(&Cd::parse_lit("/a/x"), None, None).is_empty());
    }

    #[test]
    fn union_and_tagged_views() {
        let mut st = SubscriptionTable::default();
        st.subscribe(FaceId(1), n("/a"), rps(&[0]), true);
        st.subscribe(FaceId(2), n("/a"), rps(&[1]), true);
        st.subscribe(FaceId(2), n("/b"), rps(&[0]), true);
        assert_eq!(st.faces(), vec![FaceId(1), FaceId(2)]);
        assert_eq!(st.face_subscriptions(FaceId(2)).len(), 2);
        assert_eq!(st.all_subscriptions().len(), 2);
        let tagged = st.all_subscriptions_tagged();
        assert_eq!(tagged[&n("/a")], rps(&[0, 1]));
        assert_eq!(st.len(), 3);
    }
}
