//! RP traffic monitoring and split planning (§IV-B).

use std::collections::{BTreeMap, VecDeque};

use gcopss_names::Name;

/// A sliding window over the CDs of the most recent `N` multicast packets
/// an RP has served, as described in §IV-B ("the router monitors the
/// traffic for each CD in a sliding window fashion of the recent N
/// packets").
///
/// # Example
///
/// ```
/// # use gcopss_copss::TrafficWindow;
/// # use gcopss_names::Name;
/// let mut w = TrafficWindow::new(100);
/// for _ in 0..10 { w.record(Name::parse_lit("/1/1")); }
/// for _ in 0..30 { w.record(Name::parse_lit("/1/2")); }
/// assert_eq!(w.count(&Name::parse_lit("/1/2")), 30);
/// ```
#[derive(Debug, Clone)]
pub struct TrafficWindow {
    capacity: usize,
    window: VecDeque<Name>,
    counts: BTreeMap<Name, u64>,
}

impl TrafficWindow {
    /// Creates a window remembering the last `capacity` packets.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        Self {
            capacity,
            window: VecDeque::with_capacity(capacity),
            counts: BTreeMap::new(),
        }
    }

    /// Records one served packet with publication CD `cd`.
    pub fn record(&mut self, cd: Name) {
        if self.window.len() == self.capacity {
            let old = self.window.pop_front().expect("window full");
            if let Some(c) = self.counts.get_mut(&old) {
                *c -= 1;
                if *c == 0 {
                    self.counts.remove(&old);
                }
            }
        }
        *self.counts.entry(cd.clone()).or_insert(0) += 1;
        self.window.push_back(cd);
    }

    /// Packets currently remembered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Returns `true` if nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Count of packets in the window published exactly to `cd`.
    #[must_use]
    pub fn count(&self, cd: &Name) -> u64 {
        self.counts.get(cd).copied().unwrap_or(0)
    }

    /// Count of packets in the window published at or below `prefix`.
    #[must_use]
    pub fn count_under(&self, prefix: &Name) -> u64 {
        self.counts
            .iter()
            .filter(|(cd, _)| prefix.is_prefix_of(cd))
            .map(|(_, c)| *c)
            .sum()
    }

    /// Per-CD counts (exact publication CDs), descending by count.
    #[must_use]
    pub fn hottest(&self) -> Vec<(Name, u64)> {
        let mut v: Vec<(Name, u64)> = self
            .counts
            .iter()
            .map(|(n, c)| (n.clone(), *c))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }

    /// Plans a load split of the served prefixes: returns the set of
    /// "atoms" to move to a new RP so that roughly `target_fraction` of the
    /// observed window traffic moves (§IV-B: "the CD selection function
    /// divides the CDs into 2 groups based on the capabilities of both the
    /// RPs"; we balance by observed load, a deterministic refinement of the
    /// paper's random selection).
    ///
    /// Atoms are: for each served prefix, its observed *direct children* in
    /// the window (or the prefix itself if traffic targets it exactly or it
    /// cannot be refined). The returned plan keeps both sides non-empty and
    /// prefix-free; returns `None` if the traffic cannot be split (all load
    /// on a single indivisible atom, or an empty window).
    #[must_use]
    pub fn plan_split(&self, served: &[Name], target_fraction: f64) -> Option<SplitPlan> {
        self.plan_split_where(served, target_fraction, |_| true)
    }

    /// Like [`TrafficWindow::plan_split`] but only considering window CDs
    /// for which `eligible` returns `true` — an RP uses this to exclude
    /// CDs it no longer owns or that are still settling from a previous
    /// handoff.
    #[must_use]
    pub fn plan_split_where(
        &self,
        served: &[Name],
        target_fraction: f64,
        eligible: impl Fn(&Name) -> bool,
    ) -> Option<SplitPlan> {
        // Build atoms with their loads.
        let mut atoms: Vec<(Name, u64)> = Vec::new();
        let mut seen_atoms: std::collections::BTreeSet<Name> = std::collections::BTreeSet::new();
        for p in served {
            // Group window CDs under p by their component right after p.
            let mut by_child: BTreeMap<Name, u64> = BTreeMap::new();
            let mut exact = 0u64;
            for (cd, c) in &self.counts {
                if !p.is_prefix_of(cd) || !eligible(cd) {
                    continue;
                }
                if cd.len() == p.len() {
                    exact += c;
                } else {
                    let child = cd.prefix(p.len() + 1);
                    *by_child.entry(child).or_insert(0) += c;
                }
            }
            if exact > 0 || by_child.is_empty() {
                // Publications directly to p (or none at all): p itself is
                // an atom and cannot be refined without splitting those.
                if exact > 0 && seen_atoms.insert(p.clone()) {
                    atoms.push((p.clone(), exact + by_child.values().sum::<u64>()));
                }
            } else {
                for (child, load) in by_child {
                    if seen_atoms.insert(child.clone()) {
                        atoms.push((child, load));
                    }
                }
            }
        }
        let total: u64 = atoms.iter().map(|(_, c)| c).sum();
        if total == 0 || atoms.len() < 2 {
            return None;
        }
        // Greedy: take atoms in descending load, move while below target.
        atoms.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let target = (total as f64 * target_fraction).round() as u64;
        let mut moved = Vec::new();
        let mut moved_load = 0u64;
        for (name, load) in &atoms {
            if moved.len() + 1 == atoms.len() {
                break; // keep at least one atom
            }
            if moved_load >= target {
                break;
            }
            // Skip an atom that would overshoot badly unless nothing moved.
            if moved_load + load > target + total / 10 && !moved.is_empty() {
                continue;
            }
            moved.push(name.clone());
            moved_load += load;
        }
        if moved.is_empty() {
            // Move the single hottest atom (other than the last remaining).
            moved.push(atoms[0].0.clone());
            moved_load = atoms[0].1;
        }
        let retained: Vec<Name> = atoms
            .iter()
            .map(|(n, _)| n.clone())
            .filter(|n| !moved.contains(n))
            .collect();
        if retained.is_empty() {
            return None;
        }
        Some(SplitPlan {
            moved,
            retained,
            moved_load,
            total_load: total,
        })
    }
}

/// The outcome of [`TrafficWindow::plan_split`]: which CD prefixes to move
/// to a new RP and which to retain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitPlan {
    /// Prefix-free CD prefixes to hand to the new RP.
    pub moved: Vec<Name>,
    /// Prefix-free CD prefixes the old RP keeps (replacing its previous
    /// served set).
    pub retained: Vec<Name>,
    /// Window packets covered by `moved`.
    pub moved_load: u64,
    /// Total window packets considered.
    pub total_load: u64,
}

impl SplitPlan {
    /// Fraction of observed load that moves.
    #[must_use]
    pub fn moved_fraction(&self) -> f64 {
        if self.total_load == 0 {
            0.0
        } else {
            self.moved_load as f64 / self.total_load as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse_lit(s)
    }

    #[test]
    fn window_slides() {
        let mut w = TrafficWindow::new(3);
        w.record(n("/a"));
        w.record(n("/a"));
        w.record(n("/b"));
        assert_eq!(w.count(&n("/a")), 2);
        w.record(n("/c")); // evicts the first /a
        assert_eq!(w.len(), 3);
        assert_eq!(w.count(&n("/a")), 1);
        assert_eq!(w.count(&n("/b")), 1);
        assert_eq!(w.count(&n("/c")), 1);
    }

    #[test]
    fn count_under_prefix() {
        let mut w = TrafficWindow::new(10);
        w.record(n("/1/1"));
        w.record(n("/1/2"));
        w.record(n("/2/1"));
        assert_eq!(w.count_under(&n("/1")), 2);
        assert_eq!(w.count_under(&Name::root()), 3);
        assert_eq!(w.count_under(&n("/3")), 0);
    }

    #[test]
    fn hottest_sorted_descending() {
        let mut w = TrafficWindow::new(10);
        for _ in 0..3 {
            w.record(n("/b"));
        }
        w.record(n("/a"));
        let h = w.hottest();
        assert_eq!(h[0], (n("/b"), 3));
        assert_eq!(h[1], (n("/a"), 1));
    }

    #[test]
    fn split_balances_roughly_half() {
        let mut w = TrafficWindow::new(1000);
        // Root served; traffic to 5 regions with skewed load.
        for (region, count) in [(1u32, 50), (2, 30), (3, 10), (4, 5), (5, 5)] {
            for _ in 0..count {
                w.record(Name::root().child_index(region).child_index(1));
            }
        }
        let plan = w.plan_split(&[Name::root()], 0.5).unwrap();
        // The hottest region (/1 with 50%) moves.
        assert!(plan.moved.contains(&n("/1")));
        assert!((0.3..=0.7).contains(&plan.moved_fraction()));
        // Both sides non-empty, atoms disjoint.
        assert!(!plan.retained.is_empty());
        for m in &plan.moved {
            assert!(!plan.retained.contains(m));
        }
    }

    #[test]
    fn split_refines_served_prefix_into_children() {
        let mut w = TrafficWindow::new(100);
        w.record(n("/1/1"));
        w.record(n("/1/2"));
        let plan = w.plan_split(&[n("/1")], 0.5).unwrap();
        let mut all: Vec<Name> = plan.moved.clone();
        all.extend(plan.retained.clone());
        all.sort();
        assert_eq!(all, vec![n("/1/1"), n("/1/2")]);
    }

    #[test]
    fn split_impossible_on_single_atom() {
        let mut w = TrafficWindow::new(100);
        for _ in 0..10 {
            w.record(n("/1"));
        }
        // All traffic directly to the only served prefix: indivisible.
        assert!(w.plan_split(&[n("/1")], 0.5).is_none());
    }

    #[test]
    fn split_empty_window_is_none() {
        let w = TrafficWindow::new(10);
        assert!(w.plan_split(&[Name::root()], 0.5).is_none());
    }

    #[test]
    fn split_with_exact_traffic_keeps_prefix_atomic() {
        let mut w = TrafficWindow::new(100);
        // Own-area publications go exactly to /1's own-area child /1/0 in
        // the real naming, but direct publications to a served prefix make
        // it atomic.
        for _ in 0..5 {
            w.record(n("/1"));
        }
        for _ in 0..5 {
            w.record(n("/2/1"));
        }
        let plan = w.plan_split(&[n("/1"), n("/2")], 0.5).unwrap();
        let mut all = plan.moved.clone();
        all.extend(plan.retained.clone());
        all.sort();
        assert_eq!(all, vec![n("/1"), n("/2/1")]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = TrafficWindow::new(0);
    }
}
