//! Property-based tests for the COPSS layer, on the deterministic
//! `gcopss_compat::prop` harness.

use gcopss_compat::prop::{self, Strategy};
use gcopss_copss::{CopssEngine, RpId, RpTable, SubscriptionTable, TrafficWindow};
use gcopss_names::{Cd, Component, Name};
use gcopss_ndn::FaceId;

const CASES: u32 = 64;

/// Raw name: 1–3 index components drawn from a 4-symbol space, so the
/// generated names overlap and nest heavily.
fn name_strategy() -> impl Strategy<Value = Vec<u32>> {
    prop::vec(prop::range(0u32..4), 1..=3)
}

fn name(parts: &[u32]) -> Name {
    Name::from_components(parts.iter().map(|&c| Component::index(c)))
}

/// Bloom-filter forwarding is a superset of exact forwarding (no false
/// negatives) under arbitrary subscribe/unsubscribe churn.
#[test]
fn bloom_superset_of_exact_under_churn() {
    let input = (
        prop::vec((prop::bools(), prop::range(0u32..6), name_strategy()), 1..=59),
        name_strategy(),
    );
    prop::check(0xC0501, CASES, &input, |(ops, probe_parts)| {
        let probe = name(probe_parts);
        let mut st = SubscriptionTable::default();
        let mut model: std::collections::BTreeSet<(u32, Name)> = Default::default();
        let anchor: std::collections::BTreeSet<RpId> = [RpId(0)].into();
        for (sub, face, parts) in ops {
            let n = name(parts);
            if *sub {
                st.subscribe(FaceId(*face), n.clone(), anchor.clone(), true);
                model.insert((*face, n));
            } else if model.remove(&(*face, n.clone())) {
                st.unsubscribe(FaceId(*face), &n, None);
            }
        }
        let cd = Cd::new(probe.clone());
        let exact = st.matching_faces_exact(&cd, None, Some(RpId(0)));
        let bloom = st.matching_faces(&cd, None, Some(RpId(0)));
        // exact must equal the model...
        let want: Vec<FaceId> = {
            let mut v: Vec<FaceId> = model
                .iter()
                .filter(|(_, s)| s.is_prefix_of(&probe))
                .map(|(f, _)| FaceId(*f))
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        assert_eq!(exact, want);
        // ...and bloom must contain every exact face.
        for f in &exact {
            assert!(bloom.contains(f));
        }
    });
}

/// Raw name over *string* components whose lexicographic order is tricky
/// ("1" < "12" < "2" < "b"), so range-based scans that assume numeric or
/// per-level ordering diverge if wrong. Length 0 generates the root name.
fn tricky_name_strategy() -> impl Strategy<Value = Vec<String>> {
    prop::vec(prop::string("ab12", 1..=2), 0..=4)
}

fn tricky_name(parts: &[String]) -> Name {
    Name::from_components(
        parts
            .iter()
            .map(|s| Component::new(s.as_str()).expect("valid component")),
    )
}

/// One randomized Subscription Table op: (kind, face, name, rp).
fn churn_ops() -> impl Strategy<Value = Vec<(u32, u32, Vec<String>, u32)>> {
    prop::vec(
        (
            prop::range(0u32..8),
            prop::range(0u32..5),
            tricky_name_strategy(),
            prop::range(0u32..3),
        ),
        1..=59,
    )
}

/// Applies one encoded op to `st`.
fn apply_op(st: &mut SubscriptionTable, op: &(u32, u32, Vec<String>, u32)) {
    let (kind, face, parts, rp) = op;
    let f = FaceId(*face);
    let nm = tricky_name(parts);
    let r = RpId(*rp);
    match kind {
        0 | 1 => {
            st.subscribe(f, nm, [r].into(), true);
        }
        2 | 3 => {
            st.subscribe(f, nm, [r].into(), false);
        }
        4 => {
            st.unsubscribe(f, &nm, None);
        }
        5 => {
            st.unsubscribe(f, &nm, Some(r));
        }
        6 => {
            // RpUpdate settled: host anchors recomputed by a name-dependent
            // (deterministic) RP table.
            st.retag_auto(|n| [RpId(n.len() as u32 % 3)].into());
        }
        _ => {
            st.remove_face(f);
        }
    }
}

/// Tentpole equivalence proof (ISSUE 6): after any sequence of
/// subscribe/unsubscribe/retag/remove-face ops, the tree-bitmap index path
/// is byte-identical to the brute-force per-face scan — for every name seen
/// in the run, every tree, every arrival face — and so is the paper-literal
/// Bloom-prefiltered path.
#[test]
fn index_match_identical_to_exact_under_churn() {
    prop::check(
        0xC0505,
        CASES,
        &(churn_ops(), tricky_name_strategy()),
        |(ops, probe_parts)| {
            let mut st = SubscriptionTable::default();
            for op in ops {
                apply_op(&mut st, op);
            }
            let mut probes: Vec<Name> = ops.iter().map(|(_, _, p, _)| tricky_name(p)).collect();
            probes.push(tricky_name(probe_parts));
            // Also probe below each subscribed name (hierarchical match).
            let deeper: Vec<Name> = probes
                .iter()
                .map(|p| p.child(Component::new("x").unwrap()))
                .collect();
            probes.extend(deeper);
            for probe in &probes {
                let cd = Cd::new(probe.clone());
                for tree in [None, Some(RpId(0)), Some(RpId(1)), Some(RpId(2))] {
                    for arrival in [None, Some(FaceId(0)), Some(FaceId(3))] {
                        let exact = st.matching_faces_exact(&cd, arrival, tree);
                        assert_eq!(
                            st.matching_faces(&cd, arrival, tree),
                            exact,
                            "index path diverged at cd={probe} tree={tree:?} arrival={arrival:?}"
                        );
                        assert_eq!(
                            st.matching_faces_bloom(&cd, arrival, tree),
                            exact,
                            "bloom path diverged at cd={probe} tree={tree:?} arrival={arrival:?}"
                        );
                    }
                }
            }
        },
    );
}

/// Satellite (ISSUE 6): `any_subscriber_under` / `any_subscriber_covering`
/// differenced against a brute-force scan of the per-face subscription
/// lists, over arbitrary (lexicographically tricky) name orderings and with
/// every exclusion choice.
#[test]
fn any_subscriber_queries_agree_with_brute_force() {
    prop::check(
        0xC0506,
        CASES,
        &(churn_ops(), tricky_name_strategy()),
        |(ops, probe_parts)| {
            let mut st = SubscriptionTable::default();
            for op in ops {
                apply_op(&mut st, op);
            }
            let mut probes: Vec<Name> = ops.iter().map(|(_, _, p, _)| tricky_name(p)).collect();
            probes.push(tricky_name(probe_parts));
            probes.push(Name::root());
            let faces = st.faces();
            let exclusions: Vec<Option<FaceId>> = std::iter::once(None)
                .chain((0..5).map(|f| Some(FaceId(f))))
                .collect();
            for probe in &probes {
                for &excluding in &exclusions {
                    let brute_under = faces
                        .iter()
                        .filter(|f| Some(**f) != excluding)
                        .any(|f| {
                            st.face_subscriptions(*f)
                                .iter()
                                .any(|n| probe.is_prefix_of(n))
                        });
                    assert_eq!(
                        st.any_subscriber_under(probe, excluding),
                        brute_under,
                        "any_subscriber_under diverged at prefix={probe} excluding={excluding:?}"
                    );
                    let brute_covering = faces
                        .iter()
                        .filter(|f| Some(**f) != excluding)
                        .any(|f| {
                            st.face_subscriptions(*f)
                                .iter()
                                .any(|n| n.is_prefix_of(probe))
                        });
                    assert_eq!(
                        st.any_subscriber_covering(probe, excluding),
                        brute_covering,
                        "any_subscriber_covering diverged at cd={probe} excluding={excluding:?}"
                    );
                }
            }
        },
    );
}

/// The RP table stays prefix-free under random valid assignment and
/// splitting, and publication coverage is unique.
#[test]
fn rp_table_invariants() {
    let input = (
        prop::vec(name_strategy(), 1..=11),
        prop::vec(name_strategy(), 1..=7),
    );
    prop::check(0xC0502, CASES, &input, |(raw_prefixes, raw_probes)| {
        let prefixes: std::collections::BTreeSet<Name> =
            raw_prefixes.iter().map(|p| name(p)).collect();
        let mut t = RpTable::new();
        let mut accepted = 0u32;
        for (i, p) in prefixes.iter().enumerate() {
            if t.assign(p.clone(), RpId(i as u32)).is_ok() {
                accepted += 1;
            }
        }
        assert!(accepted > 0);
        assert!(t.is_prefix_free());
        for raw in raw_probes {
            let probe = name(raw);
            // At most one served prefix covers the probe.
            let covering: Vec<_> = t
                .assignments()
                .into_iter()
                .filter(|(p, _)| p.is_prefix_of(&probe))
                .collect();
            assert!(covering.len() <= 1);
            assert_eq!(t.rp_for(&probe), covering.first().map(|(_, rp)| *rp));
        }
    });
}

/// After any sequence of subscriptions, reconcile() is a fixpoint and
/// the joined set covers exactly the subscribed names per overlapping RP.
#[test]
fn reconcile_reaches_fixpoint() {
    let input = prop::vec((prop::range(0u32..5), name_strategy()), 1..=19);
    prop::check(0xC0503, CASES, &input, |subs| {
        let mut e = CopssEngine::new();
        e.rp_table_mut().assign(Name::root(), RpId(0)).unwrap();
        for (f, parts) in subs {
            e.handle_subscribe(FaceId(*f), &[name(parts)], None);
        }
        let (j, p) = e.reconcile();
        assert!(j.is_empty());
        assert!(p.is_empty());
        // Every subscribed name is covered by some join.
        let joined = e.joined_toward(RpId(0));
        for (_, parts) in subs {
            let n = name(parts);
            assert!(
                joined.iter().any(|jn| jn.is_prefix_of(&n)),
                "subscription {} not covered by joins {:?}",
                n,
                joined
            );
        }
        // Joins are minimal: none covers another.
        for a in &joined {
            for b in &joined {
                assert!(!(a != b && a.is_strict_prefix_of(b)));
            }
        }
    });
}

/// Splitting a traffic window always produces two disjoint, non-empty,
/// prefix-free sides that jointly cover all observed traffic.
#[test]
fn split_plan_partitions_load() {
    let input = prop::vec(name_strategy(), 2..=79);
    prop::check(0xC0504, CASES, &input, |raw_cds| {
        let cds: Vec<Name> = raw_cds.iter().map(|p| name(p)).collect();
        let mut w = TrafficWindow::new(128);
        for cd in &cds {
            w.record(cd.clone());
        }
        if let Some(plan) = w.plan_split(&[Name::root()], 0.5) {
            assert!(!plan.moved.is_empty());
            assert!(!plan.retained.is_empty());
            let mut all = plan.moved.clone();
            all.extend(plan.retained.clone());
            // Pairwise prefix-free.
            for (i, a) in all.iter().enumerate() {
                for b in all.iter().skip(i + 1) {
                    assert!(!a.is_prefix_of(b) && !b.is_prefix_of(a));
                }
            }
            // Every observed CD is covered by exactly one side.
            for cd in &cds {
                let m = plan.moved.iter().filter(|p| p.is_prefix_of(cd)).count();
                let r = plan.retained.iter().filter(|p| p.is_prefix_of(cd)).count();
                assert_eq!(m + r, 1, "cd {} covered {}+{} times", cd, m, r);
            }
        }
    });
}
