//! Property-based tests for the COPSS layer.

use gcopss_copss::{CopssEngine, RpId, RpTable, SubscriptionTable, TrafficWindow};
use gcopss_names::{Cd, Component, Name};
use gcopss_ndn::FaceId;
use proptest::prelude::*;

fn name() -> impl Strategy<Value = Name> {
    prop::collection::vec(0u32..4, 1..4).prop_map(|cs| {
        Name::from_components(cs.into_iter().map(Component::index))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bloom-filter forwarding is a superset of exact forwarding (no false
    /// negatives) under arbitrary subscribe/unsubscribe churn.
    #[test]
    fn bloom_superset_of_exact_under_churn(
        ops in prop::collection::vec((any::<bool>(), 0u32..6, name()), 1..60),
        probe in name(),
    ) {
        let mut st = SubscriptionTable::default();
        let mut model: std::collections::BTreeSet<(u32, Name)> = Default::default();
        let anchor: std::collections::BTreeSet<RpId> = [RpId(0)].into();
        for (sub, face, n) in ops {
            if sub {
                st.subscribe(FaceId(face), n.clone(), anchor.clone(), true);
                model.insert((face, n));
            } else if model.remove(&(face, n.clone())) {
                st.unsubscribe(FaceId(face), &n, None);
            }
        }
        let cd = Cd::new(probe.clone());
        let exact = st.matching_faces_exact(&cd, None, Some(RpId(0)));
        let bloom = st.matching_faces(&cd, None, Some(RpId(0)));
        // exact must equal the model...
        let want: Vec<FaceId> = {
            let mut v: Vec<FaceId> = model
                .iter()
                .filter(|(_, s)| s.is_prefix_of(&probe))
                .map(|(f, _)| FaceId(*f))
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        prop_assert_eq!(&exact, &want);
        // ...and bloom must contain every exact face.
        for f in &exact {
            prop_assert!(bloom.contains(f));
        }
    }

    /// The RP table stays prefix-free under random valid assignment and
    /// splitting, and publication coverage is unique.
    #[test]
    fn rp_table_invariants(
        prefixes in prop::collection::btree_set(name(), 1..12),
        probes in prop::collection::vec(name(), 1..8),
    ) {
        let mut t = RpTable::new();
        let mut accepted = 0u32;
        for (i, p) in prefixes.iter().enumerate() {
            if t.assign(p.clone(), RpId(i as u32)).is_ok() {
                accepted += 1;
            }
        }
        prop_assert!(accepted > 0);
        prop_assert!(t.is_prefix_free());
        for probe in &probes {
            // At most one served prefix covers the probe.
            let covering: Vec<_> = t
                .assignments()
                .into_iter()
                .filter(|(p, _)| p.is_prefix_of(probe))
                .collect();
            prop_assert!(covering.len() <= 1);
            prop_assert_eq!(t.rp_for(probe), covering.first().map(|(_, rp)| *rp));
        }
    }

    /// After any sequence of subscriptions, reconcile() is a fixpoint and
    /// the joined set covers exactly the subscribed names per overlapping RP.
    #[test]
    fn reconcile_reaches_fixpoint(
        subs in prop::collection::vec((0u32..5, name()), 1..20),
    ) {
        let mut e = CopssEngine::new();
        e.rp_table_mut().assign(Name::root(), RpId(0)).unwrap();
        for (f, n) in &subs {
            e.handle_subscribe(FaceId(*f), &[n.clone()], None);
        }
        let (j, p) = e.reconcile();
        prop_assert!(j.is_empty());
        prop_assert!(p.is_empty());
        // Every subscribed name is covered by some join.
        let joined = e.joined_toward(RpId(0));
        for (_, n) in &subs {
            prop_assert!(
                joined.iter().any(|jn| jn.is_prefix_of(n)),
                "subscription {} not covered by joins {:?}", n, joined
            );
        }
        // Joins are minimal: none covers another.
        for a in &joined {
            for b in &joined {
                prop_assert!(!(a != b && a.is_strict_prefix_of(b)));
            }
        }
    }

    /// Splitting a traffic window always produces two disjoint, non-empty,
    /// prefix-free sides that jointly cover all observed traffic.
    #[test]
    fn split_plan_partitions_load(
        cds in prop::collection::vec(name(), 2..80),
    ) {
        let mut w = TrafficWindow::new(128);
        for cd in &cds {
            w.record(cd.clone());
        }
        if let Some(plan) = w.plan_split(&[Name::root()], 0.5) {
            prop_assert!(!plan.moved.is_empty());
            prop_assert!(!plan.retained.is_empty());
            let mut all = plan.moved.clone();
            all.extend(plan.retained.clone());
            // Pairwise prefix-free.
            for (i, a) in all.iter().enumerate() {
                for b in all.iter().skip(i + 1) {
                    prop_assert!(!a.is_prefix_of(b) && !b.is_prefix_of(a));
                }
            }
            // Every observed CD is covered by exactly one side.
            for cd in &cds {
                let m = plan.moved.iter().filter(|p| p.is_prefix_of(cd)).count();
                let r = plan.retained.iter().filter(|p| p.is_prefix_of(cd)).count();
                prop_assert_eq!(m + r, 1, "cd {} covered {}+{} times", cd, m, r);
            }
        }
    }
}
