//! Snapshot brokers and player movement (§IV-A, Table III).
//!
//! When a player moves into a new sub-world it must obtain the current
//! snapshot of the areas that just became visible. G-COPSS uses a
//! decentralized set of *brokers*, each subscribing to the leaf CDs of its
//! serving area and maintaining up-to-date object snapshots. Two retrieval
//! modes are evaluated:
//!
//! * **Query/response (QR)**: the mover queries `/snapshot/<cd>/…` with NDN
//!   Interests, pipelining a window of outstanding queries (Table III uses
//!   windows of 5 and 15); each Data carries one object.
//! * **Cyclic multicast**: the mover subscribes to `/snapcast/<cd>`; the
//!   broker, as the group's only publisher, multicasts the area's objects
//!   round-robin from the first join until the last leave, so simultaneous
//!   movers share one stream.
//!
//! Modeling notes (documented deviations):
//! * The "first Subscribe / last Unsubscribe" signal that starts/stops a
//!   cyclic stream is carried by explicit `/snapcastctl/<cd>/join|leave`
//!   Interests addressed to the broker (in COPSS the Subscribe itself would
//!   reach the broker's first-hop router).
//! * Update events keep following the trace's static placement while a
//!   player moves; movement drives subscriptions and snapshot retrieval.
//!   Convergence time depends on object counts/sizes, which the trace's
//!   updates fully determine.

use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};
use std::sync::Arc;

use gcopss_compat::bytes::Bytes;
use gcopss_copss::{CopssPacket, MulticastPacket};
use gcopss_game::trace::TraceEvent;
use gcopss_game::{AreaId, GameMap, MoveEvent, ObjectId, ObjectModel, PlayerId};
use gcopss_names::chunk::{ChunkId, ChunkStore, Chunker, Manifest};
use gcopss_names::{Cd, Component, Name};
use gcopss_ndn::{Data, Interest};
use gcopss_sim::{Ctx, NodeBehavior, NodeId, SimDuration, SimTime};

use crate::client::{DedupWindow, TraceCursor};
use crate::router::cs_prefix_key;
use crate::{payload_of, ConvergenceRecord, GPacket, GameWorld, SimParams};

/// The `/snapshot` QR namespace root.
#[must_use]
pub fn snapshot_ns() -> Name {
    Name::parse_lit("/snapshot")
}

/// The `/snapcast` cyclic-multicast namespace root.
#[must_use]
pub fn snapcast_ns() -> Name {
    Name::parse_lit("/snapcast")
}

/// The `/snapcastctl` join/leave control namespace root.
#[must_use]
pub fn snapcastctl_ns() -> Name {
    Name::parse_lit("/snapcastctl")
}

/// The `/snapmani` per-CD snapshot-manifest namespace root (content-addressed
/// delta distribution).
#[must_use]
pub fn snapmani_ns() -> Name {
    Name::parse_lit("/snapmani")
}

/// The `/chunk` content-addressed chunk namespace root. Chunk names embed
/// the hash of their bytes (`/chunk/<16-hex>`), so router Content Stores
/// caching by name automatically dedup identical content across CDs.
#[must_use]
pub fn chunk_ns() -> Name {
    Name::parse_lit("/chunk")
}

/// The NDN name of one chunk: `/chunk/<16-hex-digit id>`.
#[must_use]
pub fn chunk_name(id: ChunkId) -> Name {
    chunk_ns().child(Component::new(id.to_hex()).expect("hex is a valid component"))
}

/// Parses a [`chunk_name`] back into its id.
#[must_use]
pub fn parse_chunk_name(name: &Name) -> Option<ChunkId> {
    let comps = name.components();
    if comps.len() != 2 || comps[0].as_str() != "chunk" {
        return None;
    }
    ChunkId::from_hex(comps[1].as_str())
}

/// Bytes an update is allowed to rewrite inside an object's snapshot. Game
/// updates mutate a few fields (position, health), not the whole object, so
/// the synthetic content must keep most bytes stable across versions or
/// chunk-level delta sync would have nothing to dedup.
const OBJECT_DIRTY_WINDOW: usize = 64;

/// Deterministic synthetic content of one object's snapshot, `len` bytes
/// long: a stable FNV-1a base stream keyed by the object id alone, with a
/// small [`OBJECT_DIRTY_WINDOW`]-byte region (at a version-keyed offset)
/// rewritten per version. Unchanged objects reproduce identical bytes on
/// every call, a growing object extends its tail without disturbing earlier
/// bytes, and an update perturbs only a field-sized window — so
/// content-defined chunks away from the touched fields keep their ids.
#[must_use]
pub fn object_content(obj: ObjectId, version: u64, len: usize) -> Vec<u8> {
    let seed = gcopss_names::fnv1a(&u64::from(obj.0).to_le_bytes());
    let mut out = Vec::with_capacity(len);
    let mut h = seed;
    for i in 0..len {
        h = gcopss_names::fnv1a(&(h ^ i as u64).to_le_bytes());
        out.push((h >> 24) as u8);
    }
    if version > 0 && len > 0 {
        let w = OBJECT_DIRTY_WINDOW.min(len);
        let span = (len - w + 1) as u64;
        let vkey = gcopss_names::fnv1a_extend(seed, &version.to_le_bytes());
        let start = (vkey % span) as usize;
        let mut h = gcopss_names::fnv1a_extend(vkey, b"dirty");
        for b in &mut out[start..start + w] {
            h = gcopss_names::fnv1a(&h.to_le_bytes());
            *b = (h >> 24) as u8;
        }
    }
    out
}

/// The full snapshot blob of one leaf CD (concatenated object contents,
/// pristine objects omitted) and its *epoch* — the sum of the CD's object
/// versions, strictly monotonic under updates, so equal epochs imply equal
/// blobs.
#[must_use]
pub fn cd_snapshot_content(objects: &ObjectModel, cd: &Name) -> (u64, Vec<u8>) {
    let mut epoch = 0u64;
    let mut blob = Vec::new();
    for &o in objects.objects_in(cd) {
        let st = objects.state(o);
        epoch += st.version;
        let len = st.snapshot_bytes() as usize;
        if len > 0 {
            blob.extend_from_slice(&object_content(o, st.version, len));
        }
    }
    (epoch, blob)
}

/// How a moving player retrieves snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotMode {
    /// NDN query/response with a pipelining window.
    QueryResponse {
        /// Maximum outstanding object queries.
        window: u32,
    },
    /// Cyclic multicast groups.
    CyclicMulticast,
}

/// A snapshot broker host: subscribes to its serving leaf CDs, applies
/// every update to its object model, and serves snapshots in both modes.
pub struct SnapshotBroker {
    params: SimParams,
    edge: NodeId,
    /// Leaf CDs this broker is responsible for.
    serving: Vec<Name>,
    objects: ObjectModel,
    /// The shared trace: publication id → (object, size), to apply updates.
    trace: Arc<Vec<TraceEvent>>,
    dedup: DedupWindow,
    /// Active cyclic streams: cd index → (subscriber count, next object).
    cyclic: BTreeMap<usize, CyclicStream>,
    /// Monotonic id source for snapshot multicasts (distinct from update
    /// publication ids).
    next_snap_id: u64,
    /// Content-addressed chunk cache for the manifest/chunk serve path.
    chunks: BrokerChunkCache,
    /// Prefix keys currently classified *hot* by the adaptive cache policy:
    /// snapshot Data under these prefixes is stamped with a longer freshness
    /// so path content stores absorb flash crowds. Empty unless
    /// [`SimParams::cache_adaptive`] is set and metric streams are running.
    hot: BTreeSet<u64>,
}

/// The broker's lazily rebuilt chunk view of its serving CDs. Manifests are
/// regenerated when a CD's epoch (object-version sum) moves; the chunk store
/// only grows, so chunks of superseded manifests stay servable while
/// stragglers finish fetching them.
struct BrokerChunkCache {
    chunker: Chunker,
    /// serving index → (epoch, manifest) of the last build.
    manifests: BTreeMap<usize, (u64, Manifest)>,
    store: ChunkStore,
}

impl BrokerChunkCache {
    fn new() -> Self {
        Self {
            chunker: Chunker::default(),
            manifests: BTreeMap::new(),
            store: ChunkStore::new(),
        }
    }

    /// Returns the current manifest of serving CD `idx`, rebuilding (and
    /// absorbing the new chunks) if updates moved the CD's epoch.
    fn manifest_of(&mut self, objects: &ObjectModel, cd: &Name, idx: usize) -> &Manifest {
        let (epoch, blob) = cd_snapshot_content(objects, cd);
        let stale = self
            .manifests
            .get(&idx)
            .is_none_or(|(cached, _)| *cached != epoch);
        if stale {
            let manifest = self.chunker.manifest(epoch, &blob);
            for c in self.chunker.chunks(&blob) {
                self.store.insert(c);
            }
            self.manifests.insert(idx, (epoch, manifest));
        }
        &self.manifests.get(&idx).expect("just built").1
    }
}

#[derive(Debug, Clone, Copy)]
struct CyclicStream {
    subscribers: u32,
    next_obj: u32,
}

impl SnapshotBroker {
    /// Creates a broker serving `serving` (leaf CDs), attached to `edge`.
    #[must_use]
    pub fn new(
        params: SimParams,
        edge: NodeId,
        serving: Vec<Name>,
        objects: ObjectModel,
        trace: Arc<Vec<TraceEvent>>,
    ) -> Self {
        Self {
            params,
            edge,
            serving,
            objects,
            trace,
            dedup: DedupWindow::new(1024),
            cyclic: BTreeMap::new(),
            next_snap_id: 1 << 60,
            chunks: BrokerChunkCache::new(),
            hot: BTreeSet::new(),
        }
    }

    /// The FIB prefixes the network must route toward this broker.
    #[must_use]
    pub fn fib_prefixes(serving: &[Name]) -> Vec<Name> {
        serving
            .iter()
            .flat_map(|cd| [snapshot_ns().join(cd), snapcastctl_ns().join(cd)])
            .collect()
    }

    /// The additional FIB prefixes of the chunked-delta path: per-CD
    /// manifest names plus the shared `/chunk` namespace. `/chunk` routes
    /// to *every* broker (chunk names carry no CD), so an Interest fans out
    /// and brokers not holding the chunk answer with a tagged drop.
    #[must_use]
    pub fn chunk_fib_prefixes(serving: &[Name]) -> Vec<Name> {
        let mut out: Vec<Name> = serving.iter().map(|cd| snapmani_ns().join(cd)).collect();
        out.push(chunk_ns());
        out
    }

    fn serving_index(&self, cd: &Name) -> Option<usize> {
        self.serving.iter().position(|c| c == cd)
    }

    /// Parses `/snapshot/<cd>/meta` or `/snapshot/<cd>/obj/<k>`, returning
    /// the serving index and the request kind.
    fn parse_snapshot_name(&self, name: &Name) -> Option<(usize, SnapshotRequest)> {
        let comps = name.components();
        if comps.first()?.as_str() != "snapshot" {
            return None;
        }
        if comps.last()?.as_str() == "meta" {
            let cd = Name::from_components(comps[1..comps.len() - 1].iter().cloned());
            return Some((self.serving_index(&cd)?, SnapshotRequest::Meta));
        }
        if comps.len() >= 3 && comps[comps.len() - 2].as_str() == "obj" {
            let k: u32 = comps.last()?.as_str().parse().ok()?;
            let cd = Name::from_components(comps[1..comps.len() - 2].iter().cloned());
            return Some((self.serving_index(&cd)?, SnapshotRequest::Object(k)));
        }
        None
    }

    /// Parses `/snapmani/<cd>`, returning the serving index.
    fn parse_manifest_name(&self, name: &Name) -> Option<usize> {
        let comps = name.components();
        if comps.first()?.as_str() != "snapmani" {
            return None;
        }
        let cd = Name::from_components(comps[1..].iter().cloned());
        self.serving_index(&cd)
    }

    fn parse_ctl_name(&self, name: &Name) -> Option<(usize, bool)> {
        let comps = name.components();
        if comps.first()?.as_str() != "snapcastctl" {
            return None;
        }
        let join = match comps.last()?.as_str() {
            "join" => true,
            "leave" => false,
            _ => return None,
        };
        let cd = Name::from_components(comps[1..comps.len() - 1].iter().cloned());
        Some((self.serving_index(&cd)?, join))
    }

    fn send_data(&self, ctx: &mut Ctx<'_, GPacket, GameWorld>, name: Name, payload: Bytes) {
        // Snapshot data ages out quickly in a gaming scenario (§V-B): keep
        // freshness short so concurrent movers may share router caches but
        // stale state does not linger. Under the adaptive cache policy,
        // prefixes the popularity stream classifies hot get a longer
        // freshness so path content stores absorb flash crowds.
        let mut freshness: u64 = 50_000_000;
        if let Some(ac) = &self.params.cache_adaptive {
            if self.hot.contains(&cs_prefix_key(&name)) {
                freshness = freshness.saturating_mul(u64::from(ac.hot_freshness_mul));
            }
        }
        let data = Data::with_freshness(name, payload, freshness);
        let g = GPacket::Data(data);
        let size = g.wire_size();
        ctx.send(self.edge, g, size);
    }

    /// Re-classifies `key` as hot/cold from the live `qr-pop` popularity
    /// sketch. Entry requires the sketch to have seen a full warm-up window
    /// and the key to hold at least `hot_num/hot_den` of the monitored mass;
    /// exit fires at half that share (hysteresis, so a prefix straddling the
    /// threshold does not flap its cache class every request).
    fn update_hot(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>, key: u64) {
        let Some(ac) = self.params.cache_adaptive.clone() else {
            return;
        };
        if !ctx.streams_enabled() {
            return;
        }
        let (monitored, _offered) = ctx.stream_mass("qr-pop");
        let count = ctx.stream_count("qr-pop", key).map_or(0, |(c, _)| c);
        let num = ac.hot_num;
        let den = ac.hot_den;
        if self.hot.contains(&key) {
            if count * den * 2 < monitored * num {
                self.hot.remove(&key);
                ctx.world().bump("cache-class-demotions");
                if ctx.telemetry_enabled() {
                    ctx.counter("cache-class-demotions", 1);
                }
            }
        } else if monitored >= ac.min_window && count * den >= monitored * num {
            self.hot.insert(key);
            ctx.world().bump("cache-class-promotions");
            if ctx.telemetry_enabled() {
                ctx.counter("cache-class-promotions", 1);
            }
        }
    }

    fn send_chunk(&self, ctx: &mut Ctx<'_, GPacket, GameWorld>, name: Name, payload: Bytes) {
        // Chunks are immutable — the name commits to the bytes — so they
        // can outlive mutable snapshot data in router caches by orders of
        // magnitude, letting every rejoiner of a storm share one copy per
        // chunk for the storm's whole duration (prewarm plus rejoin phases
        // span minutes of simulated time).
        let data = Data::with_freshness(name, payload, 600_000_000_000);
        let g = GPacket::Data(data);
        let size = g.wire_size();
        ctx.send(self.edge, g, size);
    }

    fn object_payload(&self, serving_idx: usize, k: u32) -> Bytes {
        let cd = &self.serving[serving_idx];
        let objs = self.objects.objects_in(cd);
        let size = objs
            .get(k as usize)
            .map_or(0, |&o| self.objects.state(o).snapshot_bytes());
        // Pristine objects are not shipped: a 1-byte marker stands in.
        payload_of((size.max(1) as usize).min(4096))
    }

    fn emit_cyclic(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>, idx: usize) {
        let Some(stream) = self.cyclic.get_mut(&idx) else {
            return;
        };
        if stream.subscribers == 0 {
            self.cyclic.remove(&idx);
            return;
        }
        let cd = &self.serving[idx];
        let total = self.objects.objects_in(cd).len() as u32;
        if total == 0 {
            return;
        }
        let k = stream.next_obj % total;
        stream.next_obj = (stream.next_obj + 1) % total;
        // Payload carries [k, total] so receivers can detect a full cycle;
        // padded to the object's snapshot size.
        let obj_size = {
            let objs = self.objects.objects_in(cd);
            self.objects.state(objs[k as usize]).snapshot_bytes()
        };
        let mut body = vec![0u8; (obj_size.max(8) as usize).min(4096)];
        body[..4].copy_from_slice(&k.to_le_bytes());
        body[4..8].copy_from_slice(&total.to_le_bytes());
        let id = self.next_snap_id;
        self.next_snap_id += 1;
        let m = MulticastPacket::new(Cd::new(snapcast_ns().join(cd)), Bytes::from(body), id);
        let g = GPacket::Copss(CopssPacket::Multicast(m));
        let size = g.wire_size();
        ctx.send(self.edge, g, size);
        if ctx.telemetry_enabled() {
            ctx.counter("broker-cyclic-sent", 1);
            ctx.observe("broker-snapshot-bytes", u64::from(size));
        }
        ctx.world().bump("broker-cyclic-sent");
        ctx.schedule(self.params.cyclic_gap, idx as u64);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SnapshotRequest {
    Meta,
    Object(u32),
}

impl NodeBehavior<GPacket, GameWorld> for SnapshotBroker {
    fn on_start(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>) {
        let _p = gcopss_sim::prof::scope("broker/start");
        // Subscribe to the serving areas to keep snapshots current (§IV-A:
        // "it only subscribes to the leaf CDs representing its serving
        // area").
        let g = GPacket::Copss(CopssPacket::Subscribe {
            cds: self.serving.clone(),
            rp: None,
        });
        let size = g.wire_size();
        ctx.send(self.edge, g, size);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>, key: u64) {
        let _p = gcopss_sim::prof::scope("broker/timer");
        self.emit_cyclic(ctx, key as usize);
    }

    fn on_packet(
        &mut self,
        ctx: &mut Ctx<'_, GPacket, GameWorld>,
        _from: Option<NodeId>,
        pkt: GPacket,
    ) {
        let _p = gcopss_sim::prof::scope("broker/packet");
        match pkt {
            // Updates for the serving areas: apply to the object model.
            GPacket::Copss(CopssPacket::Multicast(m)) => {
                if !self.dedup.insert(m.id) {
                    return;
                }
                if let Some(e) = self.trace.get(m.id as usize) {
                    self.objects.apply_update(e.object, e.size);
                    ctx.world().bump("broker-updates-applied");
                }
            }
            GPacket::Interest(i) => {
                if let Some((idx, req)) = self.parse_snapshot_name(&i.name) {
                    ctx.consume(self.params.broker_per_object);
                    let key = cs_prefix_key(&i.name);
                    ctx.stream_offer("qr-pop", key, 1);
                    self.update_hot(ctx, key);
                    match req {
                        SnapshotRequest::Meta => {
                            let total = self.objects.objects_in(&self.serving[idx]).len() as u32;
                            self.send_data(
                                ctx,
                                i.name,
                                Bytes::copy_from_slice(&total.to_le_bytes()),
                            );
                        }
                        SnapshotRequest::Object(k) => {
                            let payload = self.object_payload(idx, k);
                            self.send_data(ctx, i.name, payload);
                        }
                    }
                    if ctx.telemetry_enabled() {
                        ctx.counter("broker-qr-served", 1);
                    }
                    ctx.world().bump("broker-qr-served");
                } else if let Some((idx, join)) = self.parse_ctl_name(&i.name) {
                    if join {
                        let starting = !self.cyclic.contains_key(&idx);
                        let s = self.cyclic.entry(idx).or_insert(CyclicStream {
                            subscribers: 0,
                            next_obj: 0,
                        });
                        s.subscribers += 1;
                        if starting {
                            ctx.schedule(self.params.cyclic_gap, idx as u64);
                        }
                        ctx.world().bump("broker-cyclic-joins");
                    } else if let Some(s) = self.cyclic.get_mut(&idx) {
                        s.subscribers = s.subscribers.saturating_sub(1);
                        // The stream stops at the next tick when empty; the
                        // packets sent meanwhile are the paper's "wasted"
                        // tail transmissions.
                    }
                    // Acknowledge so the PIT breadcrumbs are consumed.
                    self.send_data(ctx, i.name, payload_of(1));
                } else if let Some(idx) = self.parse_manifest_name(&i.name) {
                    ctx.consume(self.params.broker_per_object);
                    let cd = self.serving[idx].clone();
                    let wire = self.chunks.manifest_of(&self.objects, &cd, idx).encode();
                    self.send_data(ctx, i.name, Bytes::from(wire));
                    if ctx.telemetry_enabled() {
                        ctx.counter("broker-manifest-served", 1);
                    }
                    ctx.world().bump("broker-manifest-served");
                } else if let Some(id) = parse_chunk_name(&i.name) {
                    let held = self.chunks.store.get(id).map(|b| Bytes::from(b.to_vec()));
                    if let Some(payload) = held {
                        ctx.consume(self.params.broker_per_object);
                        self.send_chunk(ctx, i.name, payload);
                        if ctx.telemetry_enabled() {
                            ctx.counter("broker-chunk-served", 1);
                        }
                        ctx.world().bump("broker-chunk-served");
                    } else {
                        // /chunk routes to every broker and chunk names
                        // carry no CD: the fan-out is expected to miss at
                        // every broker but the holder.
                        ctx.emit(
                            gcopss_sim::TraceEvent::Drop,
                            crate::drops::BROKER_CHUNK_MISS,
                            i.encoded_len() as u32,
                        );
                        ctx.world().bump(crate::drops::BROKER_CHUNK_MISS);
                    }
                } else {
                    ctx.emit(
                        gcopss_sim::TraceEvent::Drop,
                        crate::drops::BROKER_UNKNOWN_INTEREST,
                        i.encoded_len() as u32,
                    );
                    ctx.world().bump(crate::drops::BROKER_UNKNOWN_INTEREST);
                }
            }
            _ => {}
        }
    }

    fn service_time(&self, _pkt: &GPacket) -> SimDuration {
        SimDuration::ZERO
    }
}

/// Per-CD progress of an in-flight snapshot fetch.
#[derive(Debug)]
enum CdFetch {
    Qr {
        total: Option<u32>,
        received: u32,
    },
    Cyclic {
        total: Option<u32>,
        received: HashSet<u32>,
    },
}

impl CdFetch {
    fn done(&self) -> bool {
        match self {
            Self::Qr {
                total: Some(t),
                received,
            } => received >= t,
            Self::Cyclic {
                total: Some(t),
                received,
            } => received.len() as u32 >= *t,
            _ => false,
        }
    }
}

/// An in-flight post-move snapshot fetch.
struct FetchState {
    move_type: gcopss_game::MoveType,
    started: SimTime,
    per_cd: BTreeMap<Name, CdFetch>,
    bytes: u64,
    outstanding: u32,
    /// (cd, k) object queries not yet issued (QR mode).
    queue: VecDeque<(Name, u32)>,
}

/// A player client that additionally executes a movement schedule,
/// re-subscribing and fetching snapshots of newly visible areas; records a
/// [`ConvergenceRecord`] per move (Table III).
pub struct MovingPlayerClient {
    player: PlayerId,
    edge: NodeId,
    area: AreaId,
    map: Arc<GameMap>,
    cursor: TraceCursor,
    moves: Vec<MoveEvent>,
    next_move: usize,
    warmup: SimDuration,
    mode: SnapshotMode,
    dedup: DedupWindow,
    fetch: Option<FetchState>,
    next_nonce: u64,
    /// §IV-A offline support: until this instant the player is offline —
    /// not subscribed, not publishing. Coming online subscribes and fetches
    /// the snapshot of the entire current view.
    online_at: Option<SimTime>,
    fetch_is_join: bool,
}

/// Timer keys: publications use 0 (like the base client), moves use 1,
/// coming online uses 2.
const TIMER_PUBLISH: u64 = 0;
const TIMER_MOVE: u64 = 1;
const TIMER_ONLINE: u64 = 2;

impl MovingPlayerClient {
    /// Creates a moving client. `moves` is this player's movement schedule
    /// (trace-relative times).
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn new(
        player: PlayerId,
        edge: NodeId,
        area: AreaId,
        map: Arc<GameMap>,
        cursor: TraceCursor,
        moves: Vec<MoveEvent>,
        warmup: SimDuration,
        mode: SnapshotMode,
    ) -> Self {
        Self {
            player,
            edge,
            area,
            map,
            cursor,
            moves,
            next_move: 0,
            warmup,
            mode,
            dedup: DedupWindow::new(1024),
            fetch: None,
            next_nonce: u64::from(player.0) << 32,
            online_at: None,
            fetch_is_join: false,
        }
    }

    /// Makes this player start *offline*: it neither subscribes nor
    /// publishes until `online_at`, then joins the game at its area —
    /// subscribing, fetching the snapshot of everything it can see, and
    /// starting to publish (§IV-A: "besides the general pub/sub support
    /// provided in COPSS for offline users").
    #[must_use]
    pub fn offline_until(mut self, online_at: SimTime) -> Self {
        self.online_at = Some(online_at);
        self
    }

    fn send(&self, ctx: &mut Ctx<'_, GPacket, GameWorld>, g: GPacket) {
        let size = g.wire_size();
        ctx.send(self.edge, g, size);
    }

    fn nonce(&mut self) -> u64 {
        self.next_nonce += 1;
        self.next_nonce
    }

    fn schedule_publish(&self, ctx: &mut Ctx<'_, GPacket, GameWorld>) {
        if let Some(at) = self.cursor.next_time() {
            ctx.schedule(at.saturating_duration_since(ctx.now()), TIMER_PUBLISH);
        }
    }

    fn schedule_move(&self, ctx: &mut Ctx<'_, GPacket, GameWorld>) {
        if let Some(m) = self.moves.get(self.next_move) {
            let at = SimTime::from_nanos(m.time_ns) + self.warmup;
            ctx.schedule(at.saturating_duration_since(ctx.now()), TIMER_MOVE);
        }
    }

    fn begin_move(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>) {
        let Some(mv) = self.moves.get(self.next_move).cloned() else {
            return;
        };
        self.next_move += 1;
        // Re-subscribe for the new location.
        let old = self.map.subscription_cds(self.area);
        let new = self.map.subscription_cds(mv.to);
        self.area = mv.to;
        self.send(ctx, GPacket::Copss(CopssPacket::Unsubscribe { cds: old, rp: None }));
        self.send(
            ctx,
            GPacket::Copss(CopssPacket::Subscribe { cds: new, rp: None }),
        );

        // Abort any unfinished fetch (superseded by the new move); leave
        // any cyclic groups it was still draining.
        if let Some(old_fetch) = self.fetch.take() {
            if self.mode == SnapshotMode::CyclicMulticast {
                for cd in old_fetch.per_cd.keys() {
                    self.send(
                        ctx,
                        GPacket::Copss(CopssPacket::Unsubscribe {
                            cds: vec![snapcast_ns().join(cd)],
                            rp: None,
                        }),
                    );
                    let name = snapcastctl_ns()
                        .join(cd)
                        .child(Component::new("leave").expect("valid"));
                    let nonce = self.nonce();
                    self.send(ctx, GPacket::Interest(Interest::new(name, nonce)));
                }
            }
            ctx.world().bump("mover-fetch-superseded");
            if ctx.telemetry_enabled() {
                ctx.emit(gcopss_sim::TraceEvent::Mark, "mover-fetch-superseded", 0);
            }
        }

        if mv.snapshot_cds.is_empty() {
            // Descending: the view only narrows, nothing to download.
            ctx.world().convergence.push(ConvergenceRecord {
                player: self.player,
                move_type: mv.move_type,
                leaf_cds: 0,
                convergence: SimDuration::ZERO,
                bytes: 0,
                online_join: false,
            });
            self.schedule_move(ctx);
            return;
        }

        self.start_fetch(ctx, mv.move_type, &mv.snapshot_cds, false);
        self.schedule_move(ctx);
    }

    /// Begins fetching the snapshots of `cds`, recording completion under
    /// `move_type` (and the `online_join` flag).
    fn start_fetch(
        &mut self,
        ctx: &mut Ctx<'_, GPacket, GameWorld>,
        move_type: gcopss_game::MoveType,
        cds: &[Name],
        is_join: bool,
    ) {
        self.fetch_is_join = is_join;
        let mut st = FetchState {
            move_type,
            started: ctx.now(),
            per_cd: BTreeMap::new(),
            bytes: 0,
            outstanding: 0,
            queue: VecDeque::new(),
        };
        for cd in cds {
            match self.mode {
                SnapshotMode::QueryResponse { .. } => {
                    st.per_cd.insert(
                        cd.clone(),
                        CdFetch::Qr {
                            total: None,
                            received: 0,
                        },
                    );
                    let name = snapshot_ns()
                        .join(cd)
                        .child(Component::new("meta").expect("valid"));
                    let nonce = self.nonce();
                    st.outstanding += 1;
                    self.send(ctx, GPacket::Interest(Interest::new(name, nonce)));
                }
                SnapshotMode::CyclicMulticast => {
                    st.per_cd.insert(
                        cd.clone(),
                        CdFetch::Cyclic {
                            total: None,
                            received: HashSet::new(),
                        },
                    );
                    self.send(
                        ctx,
                        GPacket::Copss(CopssPacket::Subscribe {
                            cds: vec![snapcast_ns().join(cd)],
                            rp: None,
                        }),
                    );
                    let name = snapcastctl_ns()
                        .join(cd)
                        .child(Component::new("join").expect("valid"));
                    let nonce = self.nonce();
                    self.send(ctx, GPacket::Interest(Interest::new(name, nonce)));
                }
            }
        }
        self.fetch = Some(st);
    }

    /// Pipelines further QR object queries up to the window.
    fn refill_qr_window(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>) {
        let SnapshotMode::QueryResponse { window } = self.mode else {
            return;
        };
        let mut to_send = Vec::new();
        if let Some(st) = self.fetch.as_mut() {
            while st.outstanding < window {
                let Some((cd, k)) = st.queue.pop_front() else {
                    break;
                };
                st.outstanding += 1;
                to_send.push((cd, k));
            }
        }
        for (cd, k) in to_send {
            let name = snapshot_ns()
                .join(&cd)
                .child(Component::new("obj").expect("valid"))
                .child_index(k);
            let nonce = self.nonce();
            self.send(ctx, GPacket::Interest(Interest::new(name, nonce)));
        }
    }

    fn finish_if_done(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>) {
        let done = self
            .fetch
            .as_ref()
            .is_some_and(|st| st.per_cd.values().all(CdFetch::done) && st.outstanding == 0);
        if !done {
            return;
        }
        let st = self.fetch.take().expect("fetch present");
        // Cyclic mode: leave the groups now that the snapshot is complete.
        if self.mode == SnapshotMode::CyclicMulticast {
            for cd in st.per_cd.keys() {
                self.send(
                    ctx,
                    GPacket::Copss(CopssPacket::Unsubscribe {
                        cds: vec![snapcast_ns().join(cd)],
                        rp: None,
                    }),
                );
                let name = snapcastctl_ns()
                    .join(cd)
                    .child(Component::new("leave").expect("valid"));
                let nonce = self.nonce();
                self.send(ctx, GPacket::Interest(Interest::new(name, nonce)));
            }
        }
        let now = ctx.now();
        let online_join = self.fetch_is_join;
        self.fetch_is_join = false;
        ctx.world().convergence.push(ConvergenceRecord {
            player: self.player,
            move_type: st.move_type,
            leaf_cds: st.per_cd.len(),
            convergence: now.saturating_duration_since(st.started),
            bytes: st.bytes,
            online_join,
        });
    }

    fn come_online(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>) {
        let cds = self.map.subscription_cds(self.area);
        self.send(ctx, GPacket::Copss(CopssPacket::Subscribe { cds, rp: None }));
        self.schedule_publish(ctx);
        self.schedule_move(ctx);
        // A joining player has no prior view: fetch every visible leaf CD
        // (classified as the broadest movement type for reporting).
        let visible = self.map.visible_leaf_cds(self.area);
        ctx.world().bump("online-joins");
        self.start_fetch(ctx, gcopss_game::MoveType::RegionToWorld, &visible, true);
    }

    fn on_snapshot_data(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>, d: &Data) {
        let comps = d.name.components();
        if comps.first().map(Component::as_str) != Some("snapshot") {
            return;
        }
        let Some(st) = self.fetch.as_mut() else {
            return;
        };
        if comps.last().map(Component::as_str) == Some("meta") {
            let cd = Name::from_components(comps[1..comps.len() - 1].iter().cloned());
            st.bytes += d.payload.len() as u64;
            st.outstanding = st.outstanding.saturating_sub(1);
            let total = d
                .payload
                .get(..4)
                .map_or(0, |b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]));
            if let Some(CdFetch::Qr { total: t, .. }) = st.per_cd.get_mut(&cd) {
                if t.is_none() {
                    *t = Some(total);
                    for k in 0..total {
                        st.queue.push_back((cd.clone(), k));
                    }
                }
            }
        } else if comps.len() >= 3 && comps[comps.len() - 2].as_str() == "obj" {
            let cd = Name::from_components(comps[1..comps.len() - 2].iter().cloned());
            st.bytes += d.payload.len() as u64;
            st.outstanding = st.outstanding.saturating_sub(1);
            if let Some(CdFetch::Qr { received, .. }) = st.per_cd.get_mut(&cd) {
                *received += 1;
            }
        }
        self.refill_qr_window(ctx);
        self.finish_if_done(ctx);
    }

    fn on_snapcast(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>, m: &MulticastPacket) {
        let comps = m.cd.name().components();
        let cd = Name::from_components(comps[1..].iter().cloned());
        let Some(st) = self.fetch.as_mut() else {
            return;
        };
        let Some(CdFetch::Cyclic { total, received }) = st.per_cd.get_mut(&cd) else {
            return;
        };
        let k = m
            .payload
            .get(..4)
            .map_or(0, |b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]));
        let t = m
            .payload
            .get(4..8)
            .map_or(0, |b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]));
        if total.is_none() {
            *total = Some(t);
        }
        if received.insert(k) {
            st.bytes += m.payload.len() as u64;
        }
        self.finish_if_done(ctx);
    }

    fn publish(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>) {
        let Some((id, e)) = self.cursor.pop() else {
            return;
        };
        let (cd, size) = (e.cd.clone(), e.size);
        let now = ctx.now();
        ctx.world().metrics.publish(id, self.player, now);
        self.dedup.insert(id);
        let m = MulticastPacket::new(Cd::new(cd), payload_of(size as usize), id);
        self.send(ctx, GPacket::Copss(CopssPacket::Multicast(m)));
        self.schedule_publish(ctx);
    }
}

impl NodeBehavior<GPacket, GameWorld> for MovingPlayerClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>) {
        let _p = gcopss_sim::prof::scope("moving_client/start");
        if let Some(at) = self.online_at {
            // Offline: stay silent until the join instant.
            ctx.schedule(at.saturating_duration_since(ctx.now()), TIMER_ONLINE);
            return;
        }
        let cds = self.map.subscription_cds(self.area);
        self.send(ctx, GPacket::Copss(CopssPacket::Subscribe { cds, rp: None }));
        self.schedule_publish(ctx);
        self.schedule_move(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>, key: u64) {
        let _p = gcopss_sim::prof::scope("moving_client/timer");
        match key {
            TIMER_PUBLISH => self.publish(ctx),
            TIMER_MOVE => self.begin_move(ctx),
            TIMER_ONLINE => self.come_online(ctx),
            _ => {}
        }
    }

    fn on_packet(
        &mut self,
        ctx: &mut Ctx<'_, GPacket, GameWorld>,
        _from: Option<NodeId>,
        pkt: GPacket,
    ) {
        let _p = gcopss_sim::prof::scope("moving_client/packet");
        match pkt {
            GPacket::Copss(CopssPacket::Multicast(m)) => {
                if !self.dedup.insert(m.id) {
                    ctx.emit(
                        gcopss_sim::TraceEvent::Drop,
                        crate::drops::CLIENT_DUPLICATE_DROPPED,
                        m.encoded_len() as u32,
                    );
                    ctx.world().bump(crate::drops::CLIENT_DUPLICATE_DROPPED);
                    return;
                }
                if m.cd.name().get(0).map(Component::as_str) == Some("snapcast") {
                    self.on_snapcast(ctx, &m);
                } else {
                    let now = ctx.now();
                    ctx.world().record_delivery(m.id, self.player, now);
                    ctx.lineage_deliver(self.player.0);
                    if ctx.telemetry_enabled() {
                        ctx.counter("delivered", 1);
                    }
                }
            }
            GPacket::Data(d) => self.on_snapshot_data(ctx, &d),
            _ => {}
        }
    }

    fn service_time(&self, _pkt: &GPacket) -> SimDuration {
        SimDuration::ZERO
    }
}

/// Round-robin partition of the map's leaf CDs across `broker_count`
/// brokers (the paper's movement experiment uses 3 brokers).
#[must_use]
pub fn partition_cds_to_brokers(map: &GameMap, broker_count: usize) -> Vec<Vec<Name>> {
    let mut out = vec![Vec::new(); broker_count.max(1)];
    for (i, cd) in map.leaf_cds().iter().enumerate() {
        out[i % broker_count.max(1)].push(cd.clone());
    }
    out
}

/// The extra RP-table prefixes a movement scenario needs: the whole
/// `/snapcast` namespace, anchored at one RP.
#[must_use]
pub fn snapcast_rp_prefixes() -> Vec<Name> {
    vec![snapcast_ns()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcopss_game::{ObjectModelParams, PlayerPopulation};

    #[test]
    fn broker_partition_covers_map() {
        let map = GameMap::paper_map();
        let serving = partition_cds_to_brokers(&map, 3);
        let total: usize = serving.iter().map(Vec::len).sum();
        assert_eq!(total, 31);
        assert_eq!(serving.len(), 3);
        // Disjoint.
        let mut seen = std::collections::BTreeSet::new();
        for cds in &serving {
            for cd in cds {
                assert!(seen.insert(cd.clone()));
            }
        }
        let _ = PlayerPopulation::uniform_per_area(&map, 1);
    }

    #[test]
    fn snapshot_name_parsing() {
        let map = GameMap::paper_map();
        let objects = ObjectModel::generate(1, &map, &ObjectModelParams::default());
        let trace = Arc::new(Vec::new());
        let broker = SnapshotBroker::new(
            SimParams::default(),
            NodeId(0),
            vec![Name::parse_lit("/1/2"), Name::parse_lit("/1/0")],
            objects,
            trace,
        );
        assert_eq!(
            broker.parse_snapshot_name(&Name::parse_lit("/snapshot/1/2/meta")),
            Some((0, SnapshotRequest::Meta))
        );
        assert_eq!(
            broker.parse_snapshot_name(&Name::parse_lit("/snapshot/1/0/obj/17")),
            Some((1, SnapshotRequest::Object(17)))
        );
        assert_eq!(
            broker.parse_snapshot_name(&Name::parse_lit("/snapshot/9/9/meta")),
            None
        );
        assert_eq!(
            broker.parse_ctl_name(&Name::parse_lit("/snapcastctl/1/2/join")),
            Some((0, true))
        );
        assert_eq!(
            broker.parse_ctl_name(&Name::parse_lit("/snapcastctl/1/2/leave")),
            Some((0, false))
        );
        assert_eq!(
            broker.parse_ctl_name(&Name::parse_lit("/snapcastctl/1/2/bogus")),
            None
        );
    }

    #[test]
    fn fib_prefixes_cover_both_namespaces() {
        let serving = vec![Name::parse_lit("/1/2")];
        let p = SnapshotBroker::fib_prefixes(&serving);
        assert!(p.contains(&Name::parse_lit("/snapshot/1/2")));
        assert!(p.contains(&Name::parse_lit("/snapcastctl/1/2")));
        let cp = SnapshotBroker::chunk_fib_prefixes(&serving);
        assert!(cp.contains(&Name::parse_lit("/snapmani/1/2")));
        assert!(cp.contains(&chunk_ns()));
    }

    #[test]
    fn chunk_names_roundtrip() {
        let id = ChunkId::of(b"some chunk");
        let name = chunk_name(id);
        assert_eq!(parse_chunk_name(&name), Some(id));
        assert_eq!(parse_chunk_name(&Name::parse_lit("/chunk/nothex")), None);
        assert_eq!(parse_chunk_name(&Name::parse_lit("/snapshot/1/2/meta")), None);
    }

    #[test]
    fn snapshot_content_is_deterministic_and_update_local() {
        let map = GameMap::paper_map();
        let mut objects = ObjectModel::generate(1, &map, &ObjectModelParams::default());
        let cd = map.leaf_cds()[0].clone();
        let (e0, b0) = cd_snapshot_content(&objects, &cd);
        assert_eq!(e0, 0, "pristine CD has epoch 0");
        assert!(b0.is_empty(), "pristine objects ship nothing");

        // Update every object once to materialize the blob.
        let objs: Vec<ObjectId> = objects.objects_in(&cd).to_vec();
        for &o in &objs {
            objects.apply_update(o, 500);
        }
        let (e1, b1) = cd_snapshot_content(&objects, &cd);
        let (e1b, b1b) = cd_snapshot_content(&objects, &cd);
        assert_eq!((e1, b1.clone()), (e1b, b1b), "content is a pure function");
        assert_eq!(e1, objs.len() as u64);

        // One more update to one object changes only that object's region.
        objects.apply_update(objs[0], 100);
        let (e2, b2) = cd_snapshot_content(&objects, &cd);
        assert!(e2 > e1);
        assert_ne!(b1, b2);
        // The chunker should reuse most chunks of the old blob.
        let chunker = Chunker::default();
        let mut store = ChunkStore::new();
        for c in chunker.chunks(&b1) {
            store.insert(c);
        }
        let manifest = chunker.manifest(e2, &b2);
        let missing = store.missing(&manifest);
        assert!(
            missing.len() < manifest.chunks.len(),
            "a one-object update must not dirty every chunk"
        );
    }

    #[test]
    fn broker_serves_manifest_and_chunks() {
        // Drive the cache directly (no simulator): build, mutate, rebuild.
        let map = GameMap::paper_map();
        let mut objects = ObjectModel::generate(1, &map, &ObjectModelParams::default());
        let cd = map.leaf_cds()[0].clone();
        for &o in &objects.objects_in(&cd).to_vec() {
            objects.apply_update(o, 800);
        }
        let mut cache = BrokerChunkCache::new();
        let m1 = cache.manifest_of(&objects, &cd, 0).clone();
        assert!(!m1.chunks.is_empty());
        // Every referenced chunk is servable.
        for c in &m1.chunks {
            assert!(cache.store.contains(c.id));
        }
        // Same epoch: no rebuild, identical manifest.
        assert_eq!(cache.manifest_of(&objects, &cd, 0), &m1);
        // Epoch moves: manifest changes, old chunks stay servable.
        let first = objects.objects_in(&cd)[0];
        objects.apply_update(first, 100);
        let m2 = cache.manifest_of(&objects, &cd, 0).clone();
        assert_ne!(m1, m2);
        for c in m1.chunks.iter().chain(&m2.chunks) {
            assert!(cache.store.contains(c.id));
        }
    }
}
