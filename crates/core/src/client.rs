//! The G-COPSS game client (player host) behavior.

use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};
use std::sync::Arc;

use gcopss_compat::{Rng, SeedableRng, SmallRng};
use gcopss_copss::{CopssPacket, MulticastPacket};
use gcopss_game::trace::TraceEvent;
use gcopss_game::{AreaId, GameMap, PlayerId};
use gcopss_names::chunk::{ChunkId, ChunkStore, Manifest};
use gcopss_names::{Cd, Component, Name};
use gcopss_ndn::{Data, Interest};
use gcopss_sim::{Ctx, FaultNotice, NodeBehavior, NodeId, SimDuration, SimTime};

use crate::broker::{chunk_name, parse_chunk_name, snapmani_ns, snapshot_ns};
use crate::{
    payload_of, CatchUpMode, CatchUpRecord, GPacket, GameWorld, RateAdaptConfig, RecoveryConfig,
};

/// Timer key of trace-driven publishing.
const TIMER_PUBLISH: u64 = 0;
/// Timer key of the silence watchdog (recovery mode only).
const TIMER_WATCHDOG: u64 = 1;
/// Timer key of the catch-up stall/retry sweep.
const TIMER_CATCHUP_RETRY: u64 = 2;
/// Timer key of the scheduled initial (prewarm) catch-up.
const TIMER_CATCHUP_START: u64 = 3;
/// Timer key of the periodic soft-state Subscribe refresh
/// ([`RecoveryConfig::subscribe_refresh`]).
const TIMER_REFRESH: u64 = 4;

/// Client-side recovery state: a silence watchdog with capped exponential
/// backoff and seeded per-client jitter. Shared by the G-COPSS player
/// client and the IP baseline client.
pub(crate) struct ClientRecovery {
    pub(crate) cfg: RecoveryConfig,
    pub(crate) rng: SmallRng,
    pub(crate) last_activity: SimTime,
    pub(crate) backoff: SimDuration,
}

impl ClientRecovery {
    pub(crate) fn new(cfg: RecoveryConfig, player: PlayerId) -> Self {
        let rng = SmallRng::seed_from_u64(cfg.seed ^ u64::from(player.0));
        let backoff = cfg.backoff_base;
        Self {
            cfg,
            rng,
            last_activity: SimTime::ZERO,
            backoff,
        }
    }

    pub(crate) fn jitter(&mut self) -> SimDuration {
        let max = self.cfg.jitter.as_nanos();
        if max == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.rng.gen_range(0..=max))
        }
    }
}

/// Client-side congestion-feedback pacer: capped multiplicative rate
/// reduction of the publish cadence, driven by sojourn marks on deliveries
/// (see [`RateAdaptConfig`]). Shared by the G-COPSS player client and the
/// IP baseline client.
///
/// The pacer is *off* (gap zero) until the first marked delivery installs
/// `min_gap`; every further marked delivery doubles the gap up to `cap`,
/// and every clean delivery halves it until it decays below `min_gap` and
/// switches back off. Publishes attempted inside the gap are shed at the
/// source with the `"rate-limited"` tag: under overload, a stale position
/// update sent late is worse than one not sent at all.
pub(crate) struct RatePacer {
    pub(crate) cfg: RateAdaptConfig,
    /// Current enforced publish gap; `ZERO` means the pacer is off.
    pub(crate) gap: SimDuration,
    /// When the last admitted publish went out.
    pub(crate) last_pub: SimTime,
}

impl RatePacer {
    pub(crate) fn new(cfg: RateAdaptConfig) -> Self {
        Self {
            cfg,
            gap: SimDuration::ZERO,
            last_pub: SimTime::ZERO,
        }
    }

    /// Gates a publish attempt at `now`: admitted attempts stamp
    /// `last_pub`; attempts inside the gap are rejected (shed by the
    /// caller).
    pub(crate) fn allow(&mut self, now: SimTime) -> bool {
        if self.gap > SimDuration::ZERO && now < self.last_pub + self.gap {
            return false;
        }
        self.last_pub = now;
        true
    }

    /// A congestion-marked delivery arrived: stretch the gap.
    pub(crate) fn on_marked(&mut self) {
        self.gap = if self.gap == SimDuration::ZERO {
            self.cfg.min_gap
        } else {
            self.gap.saturating_mul(2).min(self.cfg.cap)
        };
    }

    /// A clean delivery arrived: decay the gap toward off.
    pub(crate) fn on_clean(&mut self) {
        if self.gap == SimDuration::ZERO {
            return;
        }
        let halved = self.gap / 2;
        self.gap = if halved < self.cfg.min_gap {
            SimDuration::ZERO
        } else {
            halved
        };
    }

    /// Feeds one delivery's mark bit into the pacer.
    pub(crate) fn on_delivery(&mut self, marked: bool) {
        if marked {
            self.on_marked();
        } else {
            self.on_clean();
        }
    }
}

/// A bounded duplicate-suppression window, used by receivers to drop the
/// duplicate deliveries that can occur while both the old and the new RP
/// tree are live during a split (§IV-B guarantees no *loss*; duplicates are
/// the receivers' job).
#[derive(Debug, Default)]
pub struct DedupWindow {
    seen: HashSet<u64>,
    order: VecDeque<u64>,
    capacity: usize,
}

impl DedupWindow {
    /// Creates a window remembering the last `capacity` ids.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            seen: HashSet::with_capacity(capacity),
            order: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Records `id`; returns `true` if it was not seen recently (i.e. the
    /// packet should be processed).
    pub fn insert(&mut self, id: u64) -> bool {
        if self.capacity == 0 {
            return true;
        }
        if !self.seen.insert(id) {
            return false;
        }
        self.order.push_back(id);
        if self.order.len() > self.capacity {
            let old = self.order.pop_front().expect("non-empty");
            self.seen.remove(&old);
        }
        true
    }
}

/// A client's view into the shared trace: the whole trace is kept once
/// (`Arc`), each client walks its own event indices. The publication id of
/// an event is its global index in the trace.
#[derive(Debug, Clone)]
pub struct TraceCursor {
    trace: Arc<Vec<TraceEvent>>,
    indices: Vec<u32>,
    next: usize,
    /// Offset added to all trace times (lets subscriptions settle first).
    warmup: SimDuration,
}

impl TraceCursor {
    /// Creates a cursor over `player`'s events in `trace`.
    #[must_use]
    pub fn for_player(
        trace: Arc<Vec<TraceEvent>>,
        player: PlayerId,
        warmup: SimDuration,
    ) -> Self {
        let indices = trace
            .iter()
            .enumerate()
            .filter(|(_, e)| e.player == player)
            .map(|(i, _)| u32::try_from(i).expect("trace fits in u32 indices"))
            .collect();
        Self {
            trace,
            indices,
            next: 0,
            warmup,
        }
    }

    /// Absolute publish time of the next event, if any.
    #[must_use]
    pub fn next_time(&self) -> Option<SimTime> {
        self.indices.get(self.next).map(|&i| {
            SimTime::from_nanos(self.trace[i as usize].time_ns) + self.warmup
        })
    }

    /// Pops the next event, returning `(publication id, event)`.
    pub fn pop(&mut self) -> Option<(u64, &TraceEvent)> {
        let &i = self.indices.get(self.next)?;
        self.next += 1;
        Some((u64::from(i), &self.trace[i as usize]))
    }

    /// Remaining events.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.indices.len() - self.next
    }
}

/// Client-side catch-up tunables (snapshot refresh on join/recovery).
#[derive(Debug, Clone)]
pub struct CatchUpConfig {
    /// Retrieval strategy.
    pub mode: CatchUpMode,
    /// Maximum outstanding fetch Interests.
    pub window: u32,
    /// When set, runs an initial (prewarm) catch-up at this sim time, so
    /// the chunk store is warm before any fault hits.
    pub initial_at: Option<SimTime>,
    /// Stall threshold: with no catch-up progress for this long, every
    /// outstanding Interest is re-expressed (the owed items are unchanged —
    /// a retry is not a new debt).
    pub retry: SimDuration,
}

impl Default for CatchUpConfig {
    fn default() -> Self {
        Self {
            mode: CatchUpMode::ChunkedDelta,
            window: 15,
            initial_at: None,
            retry: SimDuration::from_secs(2),
        }
    }
}

/// A stable item key for non-chunk catch-up fetches (manifests, snapshot
/// meta/objects), hashed from the Interest name.
fn name_key(name: &Name) -> u64 {
    let mut h = gcopss_names::fnv1a(b"catchup");
    for c in name.components() {
        h = gcopss_names::fnv1a_extend(h, c.as_str().as_bytes());
    }
    h
}

/// Cap on the catch-up resend backoff exponent: the longest wait between
/// re-expressions is `retry << BACKOFF_CAP`.
const CATCHUP_BACKOFF_CAP: u32 = 3;

/// Builds one catch-up Interest. The lifetime is deliberately *shorter*
/// than the stall-retry interval: PIT aggregation refreshes entry
/// lifetimes, so a re-expression that lands in a still-live entry whose
/// upstream Data was lost is swallowed without being forwarded — the name
/// stays wedged for as long as retries keep arriving faster than the
/// entries expire. Expiring the previous round first guarantees every
/// retry is actually re-forwarded toward the producer.
fn catchup_interest(name: Name, nonce: u64, retry: SimDuration) -> Interest {
    Interest::with_lifetime(name, nonce, retry.as_nanos() * 3 / 4)
}

/// One in-flight catch-up.
struct CatchUpFetch {
    recovery: bool,
    started: SimTime,
    last_progress: SimTime,
    bytes: u64,
    chunks_fetched: u64,
    chunks_held: u64,
    cds: usize,
    /// Item key → Interest name, for everything sent but unanswered.
    outstanding: BTreeMap<u64, Name>,
    /// Fetches not yet issued (window pacing).
    queue: VecDeque<(u64, Name)>,
    /// Chunk ids already queued/sent this catch-up (cross-CD dedup).
    requested_chunks: BTreeSet<u64>,
    /// Consecutive stall resends without progress (backoff exponent).
    backoff: u32,
    /// Earliest time the next stall resend may fire.
    next_resend: SimTime,
}

/// Persistent catch-up state of one client: config, the chunk store that
/// survives across catch-ups (and across node restarts — it models on-disk
/// content), and the active fetch.
struct CatchUpRunner {
    cfg: CatchUpConfig,
    store: ChunkStore,
    /// Manifests fetched by the active catch-up (reassembly check at end).
    manifests: Vec<Manifest>,
    active: Option<CatchUpFetch>,
    next_nonce: u64,
}

/// The G-COPSS player client: subscribes according to its map position at
/// start-up, publishes its trace slice, and records delivery latencies of
/// everything it receives.
pub struct GamePlayerClient {
    player: PlayerId,
    edge: NodeId,
    area: AreaId,
    map: Arc<GameMap>,
    cursor: TraceCursor,
    dedup: DedupWindow,
    recovery: Option<ClientRecovery>,
    pacer: Option<RatePacer>,
    catch_up: Option<CatchUpRunner>,
    /// Whether any multicast delivery arrived yet. Watchdog silence before
    /// the first delivery means the trace has not started, not that state
    /// was lost — it must not trigger a (cold, maximally expensive)
    /// recovery catch-up.
    seen_delivery: bool,
    /// Whether the client is currently inside a deaf episode: the watchdog
    /// found sustained silence after traffic had been flowing.
    was_deaf: bool,
    /// A deaf episode ended (deliveries resumed) and the missed state has
    /// not been re-fetched yet. The resync runs at the rejoin moment — or,
    /// if a fetch is already in flight, chains right after it — never
    /// *during* deafness: while cut off the client would only hammer a
    /// congested or broken path, and permanent silence (end of game) must
    /// not turn into a refetch loop.
    pending_resync: bool,
}

impl GamePlayerClient {
    /// Creates a client attached to edge router `edge`, located at `area`.
    #[must_use]
    pub fn new(
        player: PlayerId,
        edge: NodeId,
        area: AreaId,
        map: Arc<GameMap>,
        cursor: TraceCursor,
    ) -> Self {
        Self {
            player,
            edge,
            area,
            map,
            cursor,
            dedup: DedupWindow::new(1024),
            recovery: None,
            pacer: None,
            catch_up: None,
            seen_delivery: false,
            was_deaf: false,
            pending_resync: false,
        }
    }

    /// Enables snapshot catch-up: the client refreshes its world view from
    /// the brokers at `cfg.initial_at` (prewarm) and on every recovery
    /// trigger (first silent watchdog firing, link-up, restart). In
    /// [`CatchUpMode::ChunkedDelta`] the client keeps a persistent
    /// [`ChunkStore`] and fetches only chunks it does not hold.
    #[must_use]
    pub fn with_catch_up(mut self, cfg: CatchUpConfig) -> Self {
        self.catch_up = Some(CatchUpRunner {
            cfg,
            store: ChunkStore::new(),
            manifests: Vec::new(),
            active: None,
            next_nonce: u64::from(self.player.0) << 32,
        });
        self
    }

    /// Enables the silence watchdog: after `cfg.watchdog` without any
    /// delivery the client assumes its subscription state was lost upstream
    /// and re-Subscribes, backing off exponentially (capped) while silence
    /// persists. The watchdog re-arms forever, so recovery-enabled
    /// simulations must run with [`gcopss_sim::Simulator::run_until`].
    #[must_use]
    pub fn with_recovery(mut self, cfg: RecoveryConfig) -> Self {
        self.recovery = Some(ClientRecovery::new(cfg, self.player));
        self
    }

    /// Enables congestion-feedback rate adaptation: congestion-marked
    /// deliveries (see [`gcopss_sim::Ctx::congestion_marked`]) stretch the
    /// client's own publish cadence multiplicatively up to `cfg.cap`, and
    /// clean deliveries decay it back. Publishes falling inside the gap are
    /// shed at the source with the `"rate-limited"` tag.
    #[must_use]
    pub fn with_rate_adapt(mut self, cfg: RateAdaptConfig) -> Self {
        self.pacer = Some(RatePacer::new(cfg));
        self
    }

    fn resubscribe(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>) {
        let cds = self.map.subscription_cds(self.area);
        let g = GPacket::Copss(CopssPacket::Subscribe { cds, rp: None });
        let size = g.wire_size();
        ctx.send(self.edge, g, size);
        ctx.world().bump("client-resubscribes");
    }

    fn schedule_next(&self, ctx: &mut Ctx<'_, GPacket, GameWorld>) {
        if let Some(at) = self.cursor.next_time() {
            ctx.schedule(at.saturating_duration_since(ctx.now()), 0);
        }
    }

    fn publish(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>) {
        let Some((id, e)) = self.cursor.pop() else {
            return;
        };
        let (cd, size) = (e.cd.clone(), e.size);
        let now = ctx.now();
        if let Some(p) = &mut self.pacer {
            if !p.allow(now) {
                // Shed at the source: the update is never published (the
                // auditor sees it as unpublished, not lost), but the trace
                // keeps advancing — position updates are superseded by the
                // next one, not worth queueing.
                ctx.emit(
                    gcopss_sim::TraceEvent::Drop,
                    crate::drops::RATE_LIMITED,
                    size,
                );
                ctx.lineage_shed(id, crate::drops::RATE_LIMITED);
                ctx.world().bump(crate::drops::RATE_LIMITED);
                self.schedule_next(ctx);
                return;
            }
        }
        ctx.world().metrics.publish(id, self.player, now);
        // Don't wait for our own copy to come back.
        self.dedup.insert(id);
        let m = MulticastPacket::new(Cd::new(cd), payload_of(size as usize), id);
        let g = GPacket::Copss(CopssPacket::Multicast(m));
        let wire = g.wire_size();
        ctx.send(self.edge, g, wire);
        self.schedule_next(ctx);
    }

    /// Starts a catch-up over every visible leaf CD, unless one is already
    /// in flight (recovery triggers can storm; one fetch at a time).
    /// Returns whether a fetch actually started.
    fn maybe_start_catchup(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>, recovery: bool) -> bool {
        let player = self.player.0;
        let edge = self.edge;
        let cds = self.map.visible_leaf_cds(self.area);
        let Some(cu) = &mut self.catch_up else {
            return false;
        };
        if cu.active.is_some() {
            return false;
        }
        let now = ctx.now();
        let mut fetch = CatchUpFetch {
            recovery,
            started: now,
            last_progress: now,
            bytes: 0,
            chunks_fetched: 0,
            chunks_held: 0,
            cds: cds.len(),
            outstanding: BTreeMap::new(),
            queue: VecDeque::new(),
            requested_chunks: BTreeSet::new(),
            backoff: 0,
            next_resend: now,
        };
        cu.manifests.clear();
        for cd in &cds {
            let name = match cu.cfg.mode {
                CatchUpMode::ChunkedDelta => snapmani_ns().join(cd),
                CatchUpMode::FullSnapshot => snapshot_ns()
                    .join(cd)
                    .child(Component::new("meta").expect("valid")),
            };
            let key = name_key(&name);
            ctx.world().catchup_ledger.owe(key, player);
            fetch.outstanding.insert(key, name.clone());
            cu.next_nonce += 1;
            let g = GPacket::Interest(catchup_interest(name, cu.next_nonce, cu.cfg.retry));
            let size = g.wire_size();
            ctx.send(edge, g, size);
        }
        cu.active = Some(fetch);
        ctx.world().bump(if recovery {
            "client-catchups-recovery"
        } else {
            "client-catchups-initial"
        });
        ctx.schedule(cu.cfg.retry, TIMER_CATCHUP_RETRY);
        true
    }

    /// Issues queued fetches up to the window.
    fn refill_catchup(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>) {
        let player = self.player.0;
        let edge = self.edge;
        let Some(cu) = &mut self.catch_up else {
            return;
        };
        let Some(fetch) = &mut cu.active else {
            return;
        };
        while (fetch.outstanding.len() as u32) < cu.cfg.window {
            let Some((key, name)) = fetch.queue.pop_front() else {
                break;
            };
            ctx.world().catchup_ledger.owe(key, player);
            fetch.outstanding.insert(key, name.clone());
            cu.next_nonce += 1;
            let g = GPacket::Interest(catchup_interest(name, cu.next_nonce, cu.cfg.retry));
            let size = g.wire_size();
            ctx.send(edge, g, size);
        }
    }

    /// Consumes one catch-up Data (manifest, chunk, or snapshot meta/obj).
    fn on_catchup_data(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>, d: &Data) {
        // Any Data arrival proves the access path works.
        let now = ctx.now();
        if let Some(r) = &mut self.recovery {
            r.last_activity = now;
        }
        let late = |ctx: &mut Ctx<'_, GPacket, GameWorld>, d: &Data| {
            ctx.emit(
                gcopss_sim::TraceEvent::Drop,
                crate::drops::CLIENT_LATE_CATCHUP,
                d.encoded_len() as u32,
            );
            ctx.world().bump(crate::drops::CLIENT_LATE_CATCHUP);
        };
        // Content-addressed integrity: a chunk whose bytes do not hash to
        // its name is rejected before any state is touched.
        let chunk_id = parse_chunk_name(&d.name);
        if let Some(id) = chunk_id {
            if ChunkId::of(&d.payload) != id {
                ctx.emit(
                    gcopss_sim::TraceEvent::Drop,
                    crate::drops::CLIENT_CHUNK_CORRUPT,
                    d.encoded_len() as u32,
                );
                ctx.world().bump(crate::drops::CLIENT_CHUNK_CORRUPT);
                return;
            }
        }
        let player = self.player.0;
        let Some(cu) = &mut self.catch_up else {
            late(ctx, d);
            return;
        };
        let Some(fetch) = &mut cu.active else {
            late(ctx, d);
            return;
        };
        let key = chunk_id.map_or_else(|| name_key(&d.name), |id| id.0);
        if fetch.outstanding.remove(&key).is_none() {
            // A retransmit raced its original, or the data is stale.
            late(ctx, d);
            return;
        }
        fetch.bytes += d.payload.len() as u64;
        fetch.last_progress = now;
        fetch.backoff = 0;
        fetch.next_resend = now;
        ctx.world().catchup_ledger.deliver(key, player);

        let comps = d.name.components();
        match comps.first().map(Component::as_str) {
            Some("chunk") => {
                cu.store.insert(&d.payload);
                fetch.chunks_fetched += 1;
            }
            Some("snapmani") => {
                if let Ok(m) = Manifest::decode(&d.payload) {
                    let distinct: BTreeSet<u64> = m.chunks.iter().map(|c| c.id.0).collect();
                    let missing = cu.store.missing(&m);
                    fetch.chunks_held += (distinct.len() - missing.len()) as u64;
                    for r in missing {
                        if fetch.requested_chunks.insert(r.id.0) {
                            fetch.queue.push_back((r.id.0, chunk_name(r.id)));
                        }
                    }
                    cu.manifests.push(m);
                }
            }
            Some("snapshot") if comps.last().map(Component::as_str) == Some("meta") => {
                let cd = Name::from_components(comps[1..comps.len() - 1].iter().cloned());
                let total = d
                    .payload
                    .get(..4)
                    .map_or(0, |b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]));
                for k in 0..total {
                    let name = snapshot_ns()
                        .join(&cd)
                        .child(Component::new("obj").expect("valid"))
                        .child_index(k);
                    fetch.queue.push_back((name_key(&name), name));
                }
            }
            // Snapshot object payloads need no further handling: the byte
            // and ledger accounting above is the point.
            _ => {}
        }
        self.refill_catchup(ctx);
        self.finish_catchup_if_done(ctx);
    }

    fn finish_catchup_if_done(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>) {
        let player = self.player;
        let Some(cu) = &mut self.catch_up else {
            return;
        };
        let done = cu
            .active
            .as_ref()
            .is_some_and(|f| f.outstanding.is_empty() && f.queue.is_empty());
        if !done {
            return;
        }
        let f = cu.active.take().expect("active checked");
        // Integrity gate: every fetched manifest must reassemble exactly
        // from the (now complete) store.
        for m in cu.manifests.drain(..) {
            let key = if cu.store.reassemble(&m).is_ok() {
                "catchup-reassembly-ok"
            } else {
                "catchup-reassembly-failed"
            };
            ctx.world().bump(key);
        }
        let now = ctx.now();
        let mode = cu.cfg.mode;
        ctx.world().catchups.push(CatchUpRecord {
            player,
            mode,
            recovery: f.recovery,
            latency: now.saturating_duration_since(f.started),
            bytes: f.bytes,
            chunks_fetched: f.chunks_fetched,
            chunks_held: f.chunks_held,
            cds: f.cds,
        });
        // A rejoin happened while this fetch was in flight: run the owed
        // resync now that the pipeline is free.
        if self.pending_resync && self.maybe_start_catchup(ctx, true) {
            self.pending_resync = false;
        }
    }

    /// Stall sweep: re-expresses every outstanding fetch when no progress
    /// was made for a full retry interval (lost Interests/Data).
    ///
    /// Resends back off exponentially (capped) and the sweep itself is
    /// jittered per player: a mass-rejoin storm stalls every client at
    /// once, and lockstep retry waves from hundreds of clients are exactly
    /// the load that keeps the network collapsed.
    fn catchup_retry_tick(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>) {
        let edge = self.edge;
        let player = self.player.0;
        let Some(cu) = &mut self.catch_up else {
            return;
        };
        let Some(fetch) = &mut cu.active else {
            return; // done — let the timer lapse
        };
        let now = ctx.now();
        let stalled = now.saturating_duration_since(fetch.last_progress) >= cu.cfg.retry;
        if stalled && now >= fetch.next_resend {
            let resend: Vec<Name> = fetch.outstanding.values().cloned().collect();
            for name in resend {
                cu.next_nonce += 1;
                let g = GPacket::Interest(catchup_interest(name, cu.next_nonce, cu.cfg.retry));
                let size = g.wire_size();
                ctx.send(edge, g, size);
            }
            fetch.backoff = (fetch.backoff + 1).min(CATCHUP_BACKOFF_CAP);
            fetch.next_resend = now + cu.cfg.retry * (1u64 << fetch.backoff);
            ctx.world().bump("client-catchup-retries");
        }
        // Deterministic per-player jitter, rolled forward by the nonce so
        // successive sweeps of one client decorrelate too.
        let jitter_ns = gcopss_names::fnv1a_extend(
            gcopss_names::fnv1a(&u64::from(player).to_le_bytes()),
            &cu.next_nonce.to_le_bytes(),
        ) % (cu.cfg.retry.as_nanos() / 4).max(1);
        ctx.schedule(
            cu.cfg.retry + SimDuration::from_nanos(jitter_ns),
            TIMER_CATCHUP_RETRY,
        );
    }
}

impl NodeBehavior<GPacket, GameWorld> for GamePlayerClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>) {
        let _p = gcopss_sim::prof::scope("copss_client/start");
        let cds = self.map.subscription_cds(self.area);
        let g = GPacket::Copss(CopssPacket::Subscribe { cds, rp: None });
        let size = g.wire_size();
        ctx.send(self.edge, g, size);
        self.schedule_next(ctx);
        let now = ctx.now();
        if let Some(r) = &mut self.recovery {
            r.last_activity = now;
            let delay = r.cfg.watchdog + r.jitter();
            ctx.schedule(delay, TIMER_WATCHDOG);
            if let Some(iv) = r.cfg.subscribe_refresh {
                let delay = iv + r.jitter();
                ctx.schedule(delay, TIMER_REFRESH);
            }
        }
        if let Some(cu) = &self.catch_up {
            if let Some(at) = cu.cfg.initial_at {
                ctx.schedule(at.saturating_duration_since(now), TIMER_CATCHUP_START);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>, key: u64) {
        let _p = gcopss_sim::prof::scope("copss_client/timer");
        match key {
            TIMER_PUBLISH => self.publish(ctx),
            TIMER_WATCHDOG => {
                let now = ctx.now();
                let Some(r) = &mut self.recovery else { return };
                let silent = now.saturating_duration_since(r.last_activity) >= r.cfg.watchdog;
                let next = if silent {
                    // Still deaf: re-express the subscription and back off.
                    let delay = r.backoff + r.jitter();
                    r.backoff = (r.backoff + r.backoff).min(r.cfg.backoff_cap);
                    self.resubscribe(ctx);
                    // Silence after traffic was flowing means state is
                    // being missed; the resync itself waits for the rejoin
                    // moment (deliveries resuming). Silence before the
                    // first delivery is just a not-yet-started trace.
                    if self.seen_delivery {
                        self.was_deaf = true;
                    }
                    delay
                } else {
                    let r = self.recovery.as_mut().expect("recovery enabled");
                    r.backoff = r.cfg.backoff_base;
                    r.cfg.watchdog + r.jitter()
                };
                ctx.schedule(next, TIMER_WATCHDOG);
            }
            TIMER_CATCHUP_RETRY => self.catchup_retry_tick(ctx),
            TIMER_CATCHUP_START => {
                self.maybe_start_catchup(ctx, false);
            }
            TIMER_REFRESH => {
                // Soft-state refresh: re-express the subscription on a
                // period, deliveries or not — COPSS ST entries are soft
                // state, and under overload this keeps real control
                // traffic contending with bulk data in the queues.
                let Some(iv) = self.recovery.as_ref().and_then(|r| r.cfg.subscribe_refresh)
                else {
                    return;
                };
                self.resubscribe(ctx);
                let r = self.recovery.as_mut().expect("refresh implies recovery");
                let delay = iv + r.jitter();
                ctx.schedule(delay, TIMER_REFRESH);
            }
            _ => {}
        }
    }

    fn on_packet(
        &mut self,
        ctx: &mut Ctx<'_, GPacket, GameWorld>,
        _from: Option<NodeId>,
        pkt: GPacket,
    ) {
        let _p = gcopss_sim::prof::scope("copss_client/packet");
        match pkt {
            GPacket::Copss(CopssPacket::Multicast(m)) => {
                // Any arrival (even a duplicate) proves the tree is
                // delivering.
                let now = ctx.now();
                self.seen_delivery = true;
                if self.was_deaf {
                    // Rejoin moment: the tree delivers again after a deaf
                    // episode — whatever was missed must be re-fetched.
                    self.was_deaf = false;
                    self.pending_resync = true;
                }
                if self.pending_resync && self.maybe_start_catchup(ctx, true) {
                    self.pending_resync = false;
                }
                if let Some(r) = &mut self.recovery {
                    r.last_activity = now;
                }
                if let Some(p) = &mut self.pacer {
                    // Every arrival is a congestion sample — duplicates
                    // traversed the network too.
                    p.on_delivery(ctx.congestion_marked());
                }
                if self.dedup.insert(m.id) {
                    let now = ctx.now();
                    ctx.world().record_delivery(m.id, self.player, now);
                    ctx.lineage_deliver(self.player.0);
                    if ctx.telemetry_enabled() {
                        ctx.counter("delivered", 1);
                    }
                } else {
                    ctx.emit(
                        gcopss_sim::TraceEvent::Drop,
                        crate::drops::CLIENT_DUPLICATE_DROPPED,
                        m.encoded_len() as u32,
                    );
                    ctx.world().bump(crate::drops::CLIENT_DUPLICATE_DROPPED);
                }
            }
            GPacket::Data(d) => self.on_catchup_data(ctx, &d),
            _ => {}
        }
    }

    fn service_time(&self, _pkt: &GPacket) -> SimDuration {
        SimDuration::ZERO
    }

    fn on_fault(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>, notice: FaultNotice) {
        let _p = gcopss_sim::prof::scope("copss_client/fault");
        if self.recovery.is_none() {
            return;
        }
        match notice {
            // The access link is back (or we restarted): the edge may have
            // purged our branch while we were cut off — re-anchor now
            // rather than waiting out the watchdog.
            FaultNotice::LinkUp { .. } | FaultNotice::Restarted => {
                let now = ctx.now();
                let r = self.recovery.as_mut().expect("recovery enabled");
                r.backoff = r.cfg.backoff_base;
                r.last_activity = now;
                self.resubscribe(ctx);
                if matches!(notice, FaultNotice::Restarted) {
                    // Crash killed all pending timers (stale epoch): re-arm
                    // both the publisher and the watchdog.
                    self.schedule_next(ctx);
                    let r = self.recovery.as_mut().expect("recovery enabled");
                    let delay = r.cfg.watchdog + r.jitter();
                    ctx.schedule(delay, TIMER_WATCHDOG);
                    // The crash killed the retry timer too. An in-flight
                    // fetch (and the chunk store — it models on-disk
                    // content) survives in behavior state; re-arm the
                    // sweep so its outstanding items are re-expressed and
                    // the catch-up ledger still balances.
                    if let Some(cu) = &mut self.catch_up {
                        if cu.active.is_some() {
                            ctx.schedule(cu.cfg.retry, TIMER_CATCHUP_RETRY);
                        }
                    }
                }
                // Re-anchored: the world may have moved while we were cut
                // off — refresh the snapshot view (deferred until the
                // current fetch finishes if one is in flight). This resync
                // covers any deaf episode the watchdog flagged meanwhile.
                self.was_deaf = false;
                if !self.maybe_start_catchup(ctx, true) {
                    self.pending_resync = true;
                }
            }
            FaultNotice::LinkDown { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcopss_names::Name;

    #[test]
    fn dedup_window_basics() {
        let mut d = DedupWindow::new(2);
        assert!(d.insert(1));
        assert!(!d.insert(1));
        assert!(d.insert(2));
        assert!(d.insert(3)); // evicts 1
        assert!(d.insert(1), "evicted id accepted again");
    }

    #[test]
    fn zero_capacity_accepts_everything() {
        let mut d = DedupWindow::new(0);
        assert!(d.insert(7));
        assert!(d.insert(7));
    }

    #[test]
    fn rate_pacer_grows_caps_and_decays() {
        let cfg = RateAdaptConfig {
            min_gap: SimDuration::from_millis(20),
            cap: SimDuration::from_millis(80),
        };
        let mut p = RatePacer::new(cfg);
        // Off: back-to-back publishes pass.
        assert!(p.allow(SimTime::ZERO));
        assert!(p.allow(SimTime::from_millis(1)));
        // Marks: install min_gap, then double to the cap.
        p.on_marked();
        assert_eq!(p.gap, SimDuration::from_millis(20));
        p.on_marked();
        p.on_marked();
        p.on_marked();
        assert_eq!(p.gap, SimDuration::from_millis(80), "capped");
        // In-gap publish shed; the gap boundary admits.
        assert!(!p.allow(SimTime::from_millis(50)));
        assert!(p.allow(SimTime::from_millis(81)));
        // Clean deliveries halve the gap until it switches off.
        p.on_clean();
        assert_eq!(p.gap, SimDuration::from_millis(40));
        p.on_clean();
        assert_eq!(p.gap, SimDuration::from_millis(20));
        p.on_clean();
        assert_eq!(p.gap, SimDuration::ZERO, "decayed below min_gap: off");
        assert!(p.allow(SimTime::from_millis(82)), "off admits immediately");
    }

    #[test]
    fn rate_pacer_mixed_feedback() {
        let mut p = RatePacer::new(RateAdaptConfig::default());
        p.on_delivery(true);
        let after_mark = p.gap;
        assert_eq!(after_mark, RateAdaptConfig::default().min_gap);
        p.on_delivery(false);
        assert_eq!(p.gap, SimDuration::ZERO);
        // Clean deliveries while off stay off.
        p.on_delivery(false);
        assert_eq!(p.gap, SimDuration::ZERO);
    }

    #[test]
    fn cursor_walks_only_own_events() {
        let mk = |t: u64, p: u32| TraceEvent {
            time_ns: t,
            player: PlayerId(p),
            cd: Name::parse_lit("/1/1"),
            object: gcopss_game::ObjectId(0),
            size: 100,
        };
        let trace = Arc::new(vec![mk(10, 0), mk(20, 1), mk(30, 0)]);
        let mut c = TraceCursor::for_player(trace, PlayerId(0), SimDuration::from_millis(1));
        assert_eq!(c.remaining(), 2);
        assert_eq!(
            c.next_time(),
            Some(SimTime::from_nanos(10) + SimDuration::from_millis(1))
        );
        let (id, e) = c.pop().unwrap();
        assert_eq!(id, 0);
        assert_eq!(e.time_ns, 10);
        let (id, e) = c.pop().unwrap();
        assert_eq!(id, 2);
        assert_eq!(e.time_ns, 30);
        assert!(c.pop().is_none());
    }
}
