//! The G-COPSS game client (player host) behavior.

use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

use gcopss_compat::{Rng, SeedableRng, SmallRng};
use gcopss_copss::{CopssPacket, MulticastPacket};
use gcopss_game::trace::TraceEvent;
use gcopss_game::{AreaId, GameMap, PlayerId};
use gcopss_names::Cd;
use gcopss_sim::{Ctx, FaultNotice, NodeBehavior, NodeId, SimDuration, SimTime};

use crate::{payload_of, GPacket, GameWorld, RecoveryConfig};

/// Timer key of trace-driven publishing.
const TIMER_PUBLISH: u64 = 0;
/// Timer key of the silence watchdog (recovery mode only).
const TIMER_WATCHDOG: u64 = 1;

/// Client-side recovery state: a silence watchdog with capped exponential
/// backoff and seeded per-client jitter. Shared by the G-COPSS player
/// client and the IP baseline client.
pub(crate) struct ClientRecovery {
    pub(crate) cfg: RecoveryConfig,
    pub(crate) rng: SmallRng,
    pub(crate) last_activity: SimTime,
    pub(crate) backoff: SimDuration,
}

impl ClientRecovery {
    pub(crate) fn new(cfg: RecoveryConfig, player: PlayerId) -> Self {
        let rng = SmallRng::seed_from_u64(cfg.seed ^ u64::from(player.0));
        let backoff = cfg.backoff_base;
        Self {
            cfg,
            rng,
            last_activity: SimTime::ZERO,
            backoff,
        }
    }

    pub(crate) fn jitter(&mut self) -> SimDuration {
        let max = self.cfg.jitter.as_nanos();
        if max == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.rng.gen_range(0..=max))
        }
    }
}

/// A bounded duplicate-suppression window, used by receivers to drop the
/// duplicate deliveries that can occur while both the old and the new RP
/// tree are live during a split (§IV-B guarantees no *loss*; duplicates are
/// the receivers' job).
#[derive(Debug, Default)]
pub struct DedupWindow {
    seen: HashSet<u64>,
    order: VecDeque<u64>,
    capacity: usize,
}

impl DedupWindow {
    /// Creates a window remembering the last `capacity` ids.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            seen: HashSet::with_capacity(capacity),
            order: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Records `id`; returns `true` if it was not seen recently (i.e. the
    /// packet should be processed).
    pub fn insert(&mut self, id: u64) -> bool {
        if self.capacity == 0 {
            return true;
        }
        if !self.seen.insert(id) {
            return false;
        }
        self.order.push_back(id);
        if self.order.len() > self.capacity {
            let old = self.order.pop_front().expect("non-empty");
            self.seen.remove(&old);
        }
        true
    }
}

/// A client's view into the shared trace: the whole trace is kept once
/// (`Arc`), each client walks its own event indices. The publication id of
/// an event is its global index in the trace.
#[derive(Debug, Clone)]
pub struct TraceCursor {
    trace: Arc<Vec<TraceEvent>>,
    indices: Vec<u32>,
    next: usize,
    /// Offset added to all trace times (lets subscriptions settle first).
    warmup: SimDuration,
}

impl TraceCursor {
    /// Creates a cursor over `player`'s events in `trace`.
    #[must_use]
    pub fn for_player(
        trace: Arc<Vec<TraceEvent>>,
        player: PlayerId,
        warmup: SimDuration,
    ) -> Self {
        let indices = trace
            .iter()
            .enumerate()
            .filter(|(_, e)| e.player == player)
            .map(|(i, _)| u32::try_from(i).expect("trace fits in u32 indices"))
            .collect();
        Self {
            trace,
            indices,
            next: 0,
            warmup,
        }
    }

    /// Absolute publish time of the next event, if any.
    #[must_use]
    pub fn next_time(&self) -> Option<SimTime> {
        self.indices.get(self.next).map(|&i| {
            SimTime::from_nanos(self.trace[i as usize].time_ns) + self.warmup
        })
    }

    /// Pops the next event, returning `(publication id, event)`.
    pub fn pop(&mut self) -> Option<(u64, &TraceEvent)> {
        let &i = self.indices.get(self.next)?;
        self.next += 1;
        Some((u64::from(i), &self.trace[i as usize]))
    }

    /// Remaining events.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.indices.len() - self.next
    }
}

/// The G-COPSS player client: subscribes according to its map position at
/// start-up, publishes its trace slice, and records delivery latencies of
/// everything it receives.
pub struct GamePlayerClient {
    player: PlayerId,
    edge: NodeId,
    area: AreaId,
    map: Arc<GameMap>,
    cursor: TraceCursor,
    dedup: DedupWindow,
    recovery: Option<ClientRecovery>,
}

impl GamePlayerClient {
    /// Creates a client attached to edge router `edge`, located at `area`.
    #[must_use]
    pub fn new(
        player: PlayerId,
        edge: NodeId,
        area: AreaId,
        map: Arc<GameMap>,
        cursor: TraceCursor,
    ) -> Self {
        Self {
            player,
            edge,
            area,
            map,
            cursor,
            dedup: DedupWindow::new(1024),
            recovery: None,
        }
    }

    /// Enables the silence watchdog: after `cfg.watchdog` without any
    /// delivery the client assumes its subscription state was lost upstream
    /// and re-Subscribes, backing off exponentially (capped) while silence
    /// persists. The watchdog re-arms forever, so recovery-enabled
    /// simulations must run with [`gcopss_sim::Simulator::run_until`].
    #[must_use]
    pub fn with_recovery(mut self, cfg: RecoveryConfig) -> Self {
        self.recovery = Some(ClientRecovery::new(cfg, self.player));
        self
    }

    fn resubscribe(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>) {
        let cds = self.map.subscription_cds(self.area);
        let g = GPacket::Copss(CopssPacket::Subscribe { cds, rp: None });
        let size = g.wire_size();
        ctx.send(self.edge, g, size);
        ctx.world().bump("client-resubscribes");
    }

    fn schedule_next(&self, ctx: &mut Ctx<'_, GPacket, GameWorld>) {
        if let Some(at) = self.cursor.next_time() {
            ctx.schedule(at.saturating_duration_since(ctx.now()), 0);
        }
    }

    fn publish(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>) {
        let Some((id, e)) = self.cursor.pop() else {
            return;
        };
        let (cd, size) = (e.cd.clone(), e.size);
        let now = ctx.now();
        ctx.world().metrics.publish(id, self.player, now);
        // Don't wait for our own copy to come back.
        self.dedup.insert(id);
        let m = MulticastPacket::new(Cd::new(cd), payload_of(size as usize), id);
        let g = GPacket::Copss(CopssPacket::Multicast(m));
        let wire = g.wire_size();
        ctx.send(self.edge, g, wire);
        self.schedule_next(ctx);
    }
}

impl NodeBehavior<GPacket, GameWorld> for GamePlayerClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>) {
        let _p = gcopss_sim::prof::scope("copss_client/start");
        let cds = self.map.subscription_cds(self.area);
        let g = GPacket::Copss(CopssPacket::Subscribe { cds, rp: None });
        let size = g.wire_size();
        ctx.send(self.edge, g, size);
        self.schedule_next(ctx);
        let now = ctx.now();
        if let Some(r) = &mut self.recovery {
            r.last_activity = now;
            let delay = r.cfg.watchdog + r.jitter();
            ctx.schedule(delay, TIMER_WATCHDOG);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>, key: u64) {
        let _p = gcopss_sim::prof::scope("copss_client/timer");
        match key {
            TIMER_PUBLISH => self.publish(ctx),
            TIMER_WATCHDOG => {
                let now = ctx.now();
                let Some(r) = &mut self.recovery else { return };
                let silent = now.saturating_duration_since(r.last_activity) >= r.cfg.watchdog;
                let next = if silent {
                    // Still deaf: re-express the subscription and back off.
                    let delay = r.backoff + r.jitter();
                    r.backoff = (r.backoff + r.backoff).min(r.cfg.backoff_cap);
                    self.resubscribe(ctx);
                    delay
                } else {
                    let r = self.recovery.as_mut().expect("recovery enabled");
                    r.backoff = r.cfg.backoff_base;
                    r.cfg.watchdog + r.jitter()
                };
                ctx.schedule(next, TIMER_WATCHDOG);
            }
            _ => {}
        }
    }

    fn on_packet(
        &mut self,
        ctx: &mut Ctx<'_, GPacket, GameWorld>,
        _from: Option<NodeId>,
        pkt: GPacket,
    ) {
        let _p = gcopss_sim::prof::scope("copss_client/packet");
        if let GPacket::Copss(CopssPacket::Multicast(m)) = pkt {
            // Any arrival (even a duplicate) proves the tree is delivering.
            let now = ctx.now();
            if let Some(r) = &mut self.recovery {
                r.last_activity = now;
            }
            if self.dedup.insert(m.id) {
                let now = ctx.now();
                ctx.world().record_delivery(m.id, self.player, now);
                ctx.lineage_deliver(self.player.0);
                if ctx.telemetry_enabled() {
                    ctx.counter("delivered", 1);
                }
            } else {
                ctx.emit(
                    gcopss_sim::TraceEvent::Drop,
                    crate::drops::CLIENT_DUPLICATE_DROPPED,
                    m.encoded_len() as u32,
                );
                ctx.world().bump(crate::drops::CLIENT_DUPLICATE_DROPPED);
            }
        }
    }

    fn service_time(&self, _pkt: &GPacket) -> SimDuration {
        SimDuration::ZERO
    }

    fn on_fault(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>, notice: FaultNotice) {
        let _p = gcopss_sim::prof::scope("copss_client/fault");
        if self.recovery.is_none() {
            return;
        }
        match notice {
            // The access link is back (or we restarted): the edge may have
            // purged our branch while we were cut off — re-anchor now
            // rather than waiting out the watchdog.
            FaultNotice::LinkUp { .. } | FaultNotice::Restarted => {
                let now = ctx.now();
                let r = self.recovery.as_mut().expect("recovery enabled");
                r.backoff = r.cfg.backoff_base;
                r.last_activity = now;
                self.resubscribe(ctx);
                if matches!(notice, FaultNotice::Restarted) {
                    // Crash killed all pending timers (stale epoch): re-arm
                    // both the publisher and the watchdog.
                    self.schedule_next(ctx);
                    let r = self.recovery.as_mut().expect("recovery enabled");
                    let delay = r.cfg.watchdog + r.jitter();
                    ctx.schedule(delay, TIMER_WATCHDOG);
                }
            }
            FaultNotice::LinkDown { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcopss_names::Name;

    #[test]
    fn dedup_window_basics() {
        let mut d = DedupWindow::new(2);
        assert!(d.insert(1));
        assert!(!d.insert(1));
        assert!(d.insert(2));
        assert!(d.insert(3)); // evicts 1
        assert!(d.insert(1), "evicted id accepted again");
    }

    #[test]
    fn zero_capacity_accepts_everything() {
        let mut d = DedupWindow::new(0);
        assert!(d.insert(7));
        assert!(d.insert(7));
    }

    #[test]
    fn cursor_walks_only_own_events() {
        let mk = |t: u64, p: u32| TraceEvent {
            time_ns: t,
            player: PlayerId(p),
            cd: Name::parse_lit("/1/1"),
            object: gcopss_game::ObjectId(0),
            size: 100,
        };
        let trace = Arc::new(vec![mk(10, 0), mk(20, 1), mk(30, 0)]);
        let mut c = TraceCursor::for_player(trace, PlayerId(0), SimDuration::from_millis(1));
        assert_eq!(c.remaining(), 2);
        assert_eq!(
            c.next_time(),
            Some(SimTime::from_nanos(10) + SimDuration::from_millis(1))
        );
        let (id, e) = c.pop().unwrap();
        assert_eq!(id, 0);
        assert_eq!(e.time_ns, 10);
        let (id, e) = c.pop().unwrap();
        assert_eq!(id, 2);
        assert_eq!(e.time_ns, 30);
        assert!(c.pop().is_none());
    }
}
