//! The G-COPSS game client (player host) behavior.

use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

use gcopss_copss::{CopssPacket, MulticastPacket};
use gcopss_game::trace::TraceEvent;
use gcopss_game::{AreaId, GameMap, PlayerId};
use gcopss_names::Cd;
use gcopss_sim::{Ctx, NodeBehavior, NodeId, SimDuration, SimTime};

use crate::{payload_of, GPacket, GameWorld};

/// A bounded duplicate-suppression window, used by receivers to drop the
/// duplicate deliveries that can occur while both the old and the new RP
/// tree are live during a split (§IV-B guarantees no *loss*; duplicates are
/// the receivers' job).
#[derive(Debug, Default)]
pub struct DedupWindow {
    seen: HashSet<u64>,
    order: VecDeque<u64>,
    capacity: usize,
}

impl DedupWindow {
    /// Creates a window remembering the last `capacity` ids.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            seen: HashSet::with_capacity(capacity),
            order: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Records `id`; returns `true` if it was not seen recently (i.e. the
    /// packet should be processed).
    pub fn insert(&mut self, id: u64) -> bool {
        if self.capacity == 0 {
            return true;
        }
        if !self.seen.insert(id) {
            return false;
        }
        self.order.push_back(id);
        if self.order.len() > self.capacity {
            let old = self.order.pop_front().expect("non-empty");
            self.seen.remove(&old);
        }
        true
    }
}

/// A client's view into the shared trace: the whole trace is kept once
/// (`Arc`), each client walks its own event indices. The publication id of
/// an event is its global index in the trace.
#[derive(Debug, Clone)]
pub struct TraceCursor {
    trace: Arc<Vec<TraceEvent>>,
    indices: Vec<u32>,
    next: usize,
    /// Offset added to all trace times (lets subscriptions settle first).
    warmup: SimDuration,
}

impl TraceCursor {
    /// Creates a cursor over `player`'s events in `trace`.
    #[must_use]
    pub fn for_player(
        trace: Arc<Vec<TraceEvent>>,
        player: PlayerId,
        warmup: SimDuration,
    ) -> Self {
        let indices = trace
            .iter()
            .enumerate()
            .filter(|(_, e)| e.player == player)
            .map(|(i, _)| u32::try_from(i).expect("trace fits in u32 indices"))
            .collect();
        Self {
            trace,
            indices,
            next: 0,
            warmup,
        }
    }

    /// Absolute publish time of the next event, if any.
    #[must_use]
    pub fn next_time(&self) -> Option<SimTime> {
        self.indices.get(self.next).map(|&i| {
            SimTime::from_nanos(self.trace[i as usize].time_ns) + self.warmup
        })
    }

    /// Pops the next event, returning `(publication id, event)`.
    pub fn pop(&mut self) -> Option<(u64, &TraceEvent)> {
        let &i = self.indices.get(self.next)?;
        self.next += 1;
        Some((u64::from(i), &self.trace[i as usize]))
    }

    /// Remaining events.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.indices.len() - self.next
    }
}

/// The G-COPSS player client: subscribes according to its map position at
/// start-up, publishes its trace slice, and records delivery latencies of
/// everything it receives.
pub struct GamePlayerClient {
    player: PlayerId,
    edge: NodeId,
    area: AreaId,
    map: Arc<GameMap>,
    cursor: TraceCursor,
    dedup: DedupWindow,
}

impl GamePlayerClient {
    /// Creates a client attached to edge router `edge`, located at `area`.
    #[must_use]
    pub fn new(
        player: PlayerId,
        edge: NodeId,
        area: AreaId,
        map: Arc<GameMap>,
        cursor: TraceCursor,
    ) -> Self {
        Self {
            player,
            edge,
            area,
            map,
            cursor,
            dedup: DedupWindow::new(1024),
        }
    }

    fn schedule_next(&self, ctx: &mut Ctx<'_, GPacket, GameWorld>) {
        if let Some(at) = self.cursor.next_time() {
            ctx.schedule(at.saturating_duration_since(ctx.now()), 0);
        }
    }

    fn publish(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>) {
        let Some((id, e)) = self.cursor.pop() else {
            return;
        };
        let (cd, size) = (e.cd.clone(), e.size);
        let now = ctx.now();
        ctx.world().metrics.publish(id, self.player, now);
        // Don't wait for our own copy to come back.
        self.dedup.insert(id);
        let m = MulticastPacket::new(Cd::new(cd), payload_of(size as usize), id);
        let g = GPacket::Copss(CopssPacket::Multicast(m));
        let wire = g.wire_size();
        ctx.send(self.edge, g, wire);
        self.schedule_next(ctx);
    }
}

impl NodeBehavior<GPacket, GameWorld> for GamePlayerClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>) {
        let cds = self.map.subscription_cds(self.area);
        let g = GPacket::Copss(CopssPacket::Subscribe { cds, rp: None });
        let size = g.wire_size();
        ctx.send(self.edge, g, size);
        self.schedule_next(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>, _key: u64) {
        self.publish(ctx);
    }

    fn on_packet(
        &mut self,
        ctx: &mut Ctx<'_, GPacket, GameWorld>,
        _from: Option<NodeId>,
        pkt: GPacket,
    ) {
        if let GPacket::Copss(CopssPacket::Multicast(m)) = pkt {
            if self.dedup.insert(m.id) {
                let now = ctx.now();
                ctx.world().record_delivery(m.id, self.player, now);
            } else {
                ctx.emit(
                    gcopss_sim::TraceEvent::Drop,
                    "client-duplicate-dropped",
                    m.encoded_len() as u32,
                );
                ctx.world().bump("client-duplicate-dropped");
            }
        }
    }

    fn service_time(&self, _pkt: &GPacket) -> SimDuration {
        SimDuration::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcopss_names::Name;

    #[test]
    fn dedup_window_basics() {
        let mut d = DedupWindow::new(2);
        assert!(d.insert(1));
        assert!(!d.insert(1));
        assert!(d.insert(2));
        assert!(d.insert(3)); // evicts 1
        assert!(d.insert(1), "evicted id accepted again");
    }

    #[test]
    fn zero_capacity_accepts_everything() {
        let mut d = DedupWindow::new(0);
        assert!(d.insert(7));
        assert!(d.insert(7));
    }

    #[test]
    fn cursor_walks_only_own_events() {
        let mk = |t: u64, p: u32| TraceEvent {
            time_ns: t,
            player: PlayerId(p),
            cd: Name::parse_lit("/1/1"),
            object: gcopss_game::ObjectId(0),
            size: 100,
        };
        let trace = Arc::new(vec![mk(10, 0), mk(20, 1), mk(30, 0)]);
        let mut c = TraceCursor::for_player(trace, PlayerId(0), SimDuration::from_millis(1));
        assert_eq!(c.remaining(), 2);
        assert_eq!(
            c.next_time(),
            Some(SimTime::from_nanos(10) + SimDuration::from_millis(1))
        );
        let (id, e) = c.pop().unwrap();
        assert_eq!(id, 0);
        assert_eq!(e.time_ns, 10);
        let (id, e) = c.pop().unwrap();
        assert_eq!(id, 2);
        assert_eq!(e.time_ns, 30);
        assert!(c.pop().is_none());
    }
}
