//! Registry of every drop-reason tag the engines emit.
//!
//! Each intentional packet drop in the workspace is tagged with one of the
//! constants below (behavior-level drops via `Ctx::emit`, engine-level
//! fault drops with the two `gcopss_sim` tags). Centralizing the strings
//! does two things:
//!
//! * emit sites can't typo a tag into a new, untracked bucket;
//! * the drop-reason coverage test walks [`ALL`] and asserts every tag
//!   shows up in at least one telemetry export from the experiment suite,
//!   so a new drop site cannot ship silently untagged (add its constant
//!   here and the gate forces an exercising experiment).
//!
//! Per-reason counts appear in every telemetry summary (`Ctx::emit` bumps
//! a counter named by the tag alongside the aggregate `"drop"`), and the
//! same strings tag lineage drop records, so the delivery auditor's
//! explanations use this vocabulary too.

/// A COPSS `ToRp` packet reached a router with no FIB route toward the RP.
pub const TORP_NO_ROUTE: &str = "torp-no-route";
/// A `ToRp` publication reached its RP but the RP does not serve the CD.
pub const TORP_UNSERVED_CD: &str = "torp-unserved-cd";
/// A host publication arrived at a first-hop router that maps its CD to no
/// known RP.
pub const PUBLICATION_UNSERVED_CD: &str = "publication-unserved-cd";
/// PIT entries aged out by the periodic expiry sweep.
pub const PIT_EXPIRED: &str = "pit-expired";
/// Subscription-table entries purged when their face died.
pub const ST_PURGED: &str = "st-purged";
/// PIT entries purged when their face died.
pub const PIT_PURGED: &str = "pit-purged";
/// An NDN interest batch expired before its Data arrived.
pub const NDN_BATCH_EXPIRED: &str = "ndn-batch-expired";
/// A client discarded a multicast copy it had already applied
/// (post-failover re-subscription overlap).
pub const CLIENT_DUPLICATE_DROPPED: &str = "client-duplicate-dropped";
/// An IP datagram reached a hop with no route to its destination.
pub const IP_NO_ROUTE: &str = "ip-no-route";
/// A hybrid endpoint filtered a delivery it has no subscription for.
pub const HYBRID_FILTERED_UNWANTED: &str = "hybrid-filtered-unwanted";
/// A hybrid endpoint received a packet kind it never expects.
pub const HYBRID_UNEXPECTED_PACKET: &str = "hybrid-unexpected-packet";
/// A snapshot broker received an interest for unknown content.
pub const BROKER_UNKNOWN_INTEREST: &str = "broker-unknown-interest";
/// The IP server received a packet kind it never expects.
pub const SERVER_UNEXPECTED_PACKET: &str = "server-unexpected-packet";
/// The IP server dropped an update destined to a disconnected player.
pub const SERVER_DISCONNECTED_PLAYER: &str = "server-disconnected-player";
/// An IP client had no connected server to send to.
pub const IP_CLIENT_NO_SERVER: &str = "ip-client-no-server";
/// A snapshot broker received a `/chunk` Interest for a chunk it does not
/// hold. Expected in fan-out: `/chunk` routes to every broker and the name
/// carries no CD, so all brokers but the holder miss.
pub const BROKER_CHUNK_MISS: &str = "broker-chunk-miss";
/// A client received catch-up Data (manifest, chunk or snapshot object) it
/// has no active catch-up waiting for — e.g. a retransmitted fetch raced
/// its original, or the fetch was superseded.
pub const CLIENT_LATE_CATCHUP: &str = "client-late-catchup";
/// A client rejected a `/chunk` Data whose payload does not hash to the id
/// in its name (content-addressed integrity check).
pub const CLIENT_CHUNK_CORRUPT: &str = "client-chunk-corrupt";
/// Engine fault injection: the packet died on a down/lossy link
/// (tagged by `gcopss_sim`'s transmit path, listed here for coverage).
pub const LINK_LOST: &str = "link-lost";
/// Engine fault injection: the packet was queued at (or destined to) a
/// crashed node (tagged by `gcopss_sim`, listed here for coverage).
pub const NODE_LOST: &str = "node-lost";
/// Engine overload control: an arrival was rejected by (or a queued packet
/// evicted from) a full bounded service queue (tagged by `gcopss_sim`).
pub const QUEUE_FULL: &str = "queue-full";
/// Engine overload control: the CoDel-style AQM shed a packet whose
/// head-of-queue sojourn proved a standing queue (tagged by `gcopss_sim`).
pub const AQM_SHED: &str = "aqm-shed";
/// Engine overload control: a queued position update was evicted in favor
/// of a newer arrival with the same supersede key (tagged by `gcopss_sim`).
pub const STALE_SUPERSEDED: &str = "stale-superseded";
/// A client shed a publish at the source because congestion feedback
/// stretched its allowed cadence (capped multiplicative rate reduction).
pub const RATE_LIMITED: &str = "rate-limited";

/// Every registered drop reason. The coverage test iterates this; keep it
/// in sync when adding a constant above.
pub const ALL: &[&str] = &[
    TORP_NO_ROUTE,
    TORP_UNSERVED_CD,
    PUBLICATION_UNSERVED_CD,
    PIT_EXPIRED,
    ST_PURGED,
    PIT_PURGED,
    NDN_BATCH_EXPIRED,
    CLIENT_DUPLICATE_DROPPED,
    IP_NO_ROUTE,
    HYBRID_FILTERED_UNWANTED,
    HYBRID_UNEXPECTED_PACKET,
    BROKER_UNKNOWN_INTEREST,
    SERVER_UNEXPECTED_PACKET,
    SERVER_DISCONNECTED_PLAYER,
    IP_CLIENT_NO_SERVER,
    BROKER_CHUNK_MISS,
    CLIENT_LATE_CATCHUP,
    CLIENT_CHUNK_CORRUPT,
    LINK_LOST,
    NODE_LOST,
    QUEUE_FULL,
    AQM_SHED,
    STALE_SUPERSEDED,
    RATE_LIMITED,
];

#[cfg(test)]
mod tests {
    use super::ALL;

    #[test]
    fn tags_are_unique_nonempty_kebab() {
        let mut seen = std::collections::BTreeSet::new();
        for &tag in ALL {
            assert!(!tag.is_empty());
            assert!(
                tag.bytes().all(|b| b.is_ascii_lowercase() || b == b'-'),
                "tag {tag:?} is not kebab-case"
            );
            assert!(seen.insert(tag), "duplicate tag {tag:?}");
        }
        assert_eq!(ALL.len(), 24);
    }
}
