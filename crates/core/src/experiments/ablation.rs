//! Ablations of the design choices the paper discusses qualitatively:
//!
//! * the hybrid CD→IP-multicast-group mapping density (§III-D trade-off),
//! * the RP split queue threshold (§IV-B trigger),
//! * the NDN baseline's accumulation interval `t` (§V-A: "if we set t
//!   large enough … saves some bandwidth, but the update latency will be
//!   longer"),
//! * the QR pipelining window (§V-B: "no further benefit for a higher
//!   window size beyond 15").

use gcopss_sim::{SimDuration, SimTime};

use crate::broker::SnapshotMode;
use crate::ndn_baseline::NdnClientConfig;
use crate::scenario::{HybridConfig, NdnBaselineConfig, NetworkSpec, ScenarioSpec};
use crate::{MetricsMode, SimParams};

use super::movement::{run_mode_with, MovementConfig};
use super::rp_sweep::{run_gcopss_once_with, summarize};
use super::{RunSummary, TelemetryCapture, Workload, WorkloadParams};

/// Hybrid group-count sweep: fewer groups = more CD sharing = more
/// filtered (wasted) traffic.
#[must_use]
pub fn hybrid_group_sweep(
    workload: &WorkloadParams,
    net_seed: u64,
    group_counts: &[u32],
) -> Vec<(u32, RunSummary)> {
    hybrid_group_sweep_with(workload, net_seed, group_counts, None)
}

/// [`hybrid_group_sweep`] with optional telemetry capture.
#[must_use]
pub fn hybrid_group_sweep_with(
    workload: &WorkloadParams,
    net_seed: u64,
    group_counts: &[u32],
    mut telemetry: Option<&mut TelemetryCapture>,
) -> Vec<(u32, RunSummary)> {
    let w = Workload::counter_strike(workload);
    let net = NetworkSpec::default_backbone(net_seed);
    group_counts
        .iter()
        .map(|&g| {
            let cfg = HybridConfig {
                metrics_mode: MetricsMode::StatsOnly,
                group_count: g,
                ..HybridConfig::default()
            };
            let mut built = ScenarioSpec::new(&net, &w.map, &w.population, &w.trace)
                .hybrid(cfg)
                .build()
                .into_hybrid();
            if let Some(cap) = telemetry.as_mut() {
                cap.arm(&mut built.sim);
            }
            built.sim.run();
            let bytes = built.sim.total_link_bytes();
            if let Some(cap) = telemetry.as_mut() {
                cap.collect(&built.sim, &format!("hybrid-{g}g"));
            }
            (
                g,
                summarize(format!("hybrid {g} groups"), &built.sim.into_world(), bytes),
            )
        })
        .collect()
}

/// RP split-threshold sweep under a single initially-overloaded RP:
/// smaller thresholds split earlier (more splits, quicker recovery).
#[must_use]
pub fn split_threshold_sweep(
    workload: &WorkloadParams,
    net_seed: u64,
    thresholds: &[usize],
) -> Vec<(usize, usize, RunSummary)> {
    split_threshold_sweep_with(workload, net_seed, thresholds, None)
}

/// [`split_threshold_sweep`] with optional telemetry capture.
#[must_use]
pub fn split_threshold_sweep_with(
    workload: &WorkloadParams,
    net_seed: u64,
    thresholds: &[usize],
    mut telemetry: Option<&mut TelemetryCapture>,
) -> Vec<(usize, usize, RunSummary)> {
    let w = Workload::counter_strike(workload);
    let net = NetworkSpec::default_backbone(net_seed);
    thresholds
        .iter()
        .map(|&t| {
            let label = format!("auto-thr{t}");
            let cap = telemetry.as_mut().map(|c| (&mut **c, label.as_str()));
            let (world, bytes) =
                run_gcopss_once_with(&w, &net, 1, Some(t), MetricsMode::StatsOnly, cap);
            let splits = world.splits.len();
            (
                t,
                splits,
                summarize(format!("auto thr={t}"), &world, bytes),
            )
        })
        .collect()
}

/// NDN accumulation-interval sweep: latency/bandwidth trade-off of the
/// VoCCN-style baseline.
#[must_use]
pub fn ndn_accumulation_sweep(
    seed: u64,
    duration: SimDuration,
    intervals: &[SimDuration],
) -> Vec<(SimDuration, RunSummary)> {
    ndn_accumulation_sweep_with(seed, duration, intervals, None)
}

/// [`ndn_accumulation_sweep`] with optional telemetry capture.
#[must_use]
pub fn ndn_accumulation_sweep_with(
    seed: u64,
    duration: SimDuration,
    intervals: &[SimDuration],
    mut telemetry: Option<&mut TelemetryCapture>,
) -> Vec<(SimDuration, RunSummary)> {
    let w = Workload::microbenchmark(seed, duration);
    let net = NetworkSpec::Testbed;
    intervals
        .iter()
        .map(|&t| {
            let cfg = NdnBaselineConfig {
                params: SimParams::microbenchmark(),
                metrics_mode: MetricsMode::StatsOnly,
                client: NdnClientConfig {
                    accum_interval: t,
                    ..NdnClientConfig::default()
                },
                ..NdnBaselineConfig::default()
            };
            let warmup = cfg.warmup;
            let mut built = ScenarioSpec::new(&net, &w.map, &w.population, &w.trace)
                .ndn_baseline(cfg)
                .build()
                .into_ndn_baseline();
            if let Some(cap) = telemetry.as_mut() {
                cap.arm(&mut built.sim);
            }
            let horizon = SimTime::ZERO + warmup + duration + SimDuration::from_secs(120);
            built.sim.run_until(horizon);
            let bytes = built.sim.total_link_bytes();
            if let Some(cap) = telemetry.as_mut() {
                cap.collect(&built.sim, &format!("ndn-t{:.0}ms", t.as_millis_f64()));
            }
            (
                t,
                summarize(
                    format!("ndn t={}ms", t.as_millis_f64()),
                    &built.sim.into_world(),
                    bytes,
                ),
            )
        })
        .collect()
}

/// QR window sweep for snapshot retrieval: converges by window ≈ 15.
#[must_use]
pub fn qr_window_sweep(
    base: &MovementConfig,
    windows: &[u32],
) -> Vec<(u32, SimDuration)> {
    qr_window_sweep_with(base, windows, None)
}

/// [`qr_window_sweep`] with optional telemetry capture.
#[must_use]
pub fn qr_window_sweep_with(
    base: &MovementConfig,
    windows: &[u32],
    mut telemetry: Option<&mut TelemetryCapture>,
) -> Vec<(u32, SimDuration)> {
    windows
        .iter()
        .map(|&win| {
            let out = run_mode_with(
                base,
                SnapshotMode::QueryResponse { window: win },
                telemetry.as_deref_mut(),
            );
            (win, out.total_mean)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hybrid_sweep_monotone_load() {
        let rows = hybrid_group_sweep(
            &WorkloadParams {
                updates: 1_500,
                players: 80,
                ..WorkloadParams::default()
            },
            5,
            &[1, 6],
        );
        assert_eq!(rows.len(), 2);
        // 1 group must carry at least as much traffic as 6 groups.
        assert!(rows[0].1.network_bytes > rows[1].1.network_bytes);
    }

    #[test]
    fn split_threshold_sweep_fires() {
        let rows = split_threshold_sweep(
            &WorkloadParams {
                updates: 2_000,
                players: 100,
                ..WorkloadParams::default()
            },
            5,
            &[30],
        );
        assert_eq!(rows.len(), 1);
        assert!(rows[0].1 >= 1, "a low threshold must trigger a split");
    }
}
