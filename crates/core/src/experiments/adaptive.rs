//! Adaptive-control sweep (`exp_adaptive`): closing the observability
//! loop — the streaming metric pipeline drives control decisions inside
//! the simulation, ablated against the static policies it replaces.
//!
//! Two adaptive consumers are exercised, each under a scenario engineered
//! to defeat its static counterpart:
//!
//! * **RP auto-balancing** under a mid-trace *hotspot*: a fraction of all
//!   updates is remapped onto the leaf CDs of one level-1 zone, so one RP's
//!   queue saturates while the others idle. The static policy splits when
//!   the instantaneous queue length crosses a hand-tuned threshold; the
//!   adaptive policy ([`crate::AdaptiveRpConfig`]) watches the queue-depth
//!   EWMA and the per-RP served-rate skew from the metric streams and fires
//!   with hysteresis — earlier, and only when the load is actually
//!   *skewed* (a uniformly overloaded system gains nothing from moving
//!   CDs). Headline: bounded-queue overflow drops and p99 latency,
//!   adaptive < static < off.
//! * **Cache-class selection** under a *flash crowd*: a burst of movers
//!   enters the same area and fetches its snapshot via QR. Statically,
//!   snapshot Data carries a short freshness (mutable state must not
//!   linger), so concurrent movers stampede the broker. Adaptively, the
//!   broker watches the live per-prefix popularity sketch and promotes the
//!   crowd's prefix to a long-freshness cache class
//!   ([`crate::AdaptiveCacheConfig`]), letting on-path content stores
//!   absorb the crowd. Headline: router CS hit-rate and broker load,
//!   adaptive ≫ static.
//!
//! Both arms run the same seed for every policy, so differences are
//! attributable to the policy alone; the RP arm replays under the lineage
//! tracer and the delivery auditor must explain every owed pair (overload
//! sheds included) — adaptation must not *silently* lose traffic.

use std::sync::Arc;

use gcopss_game::{MoveEvent, PlayerId};
use gcopss_names::Name;
use gcopss_sim::{
    AdmissionPolicy, LineageConfig, OverloadConfig, SimDuration, SimTime, StreamConfig,
    TelemetryConfig,
};

use crate::broker::{
    partition_cds_to_brokers, snapshot_ns, MovingPlayerClient, SnapshotBroker, SnapshotMode,
};
use crate::router::cs_prefix_key;
use crate::scenario::{
    expected_deliveries, ClientFactory, ExtraHost, GcopssConfig, NetworkSpec, ScenarioSpec,
};
use crate::{AdaptiveCacheConfig, AdaptiveRpConfig, MetricsMode, SimParams};

use super::audit::register_expectations;
use super::{TelemetryCapture, Workload, WorkloadParams};

/// RP-balancing policy of one run arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpPolicy {
    /// No balancing at all: the hot RP keeps everything (control arm).
    Off,
    /// The fixed queue-length threshold of §IV-B
    /// ([`SimParams::rp_split_queue_threshold`]).
    Static,
    /// Telemetry-driven trigger: queue EWMA + served-rate skew with
    /// hysteresis ([`crate::AdaptiveRpConfig`]).
    Adaptive,
}

impl RpPolicy {
    /// Stable label fragment.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Off => "off",
            Self::Static => "static",
            Self::Adaptive => "adaptive",
        }
    }
}

/// Cache-class policy of one run arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachePolicy {
    /// One fixed short freshness for all snapshot Data.
    Static,
    /// Popularity-driven per-prefix promotion
    /// ([`crate::AdaptiveCacheConfig`]).
    Adaptive,
}

impl CachePolicy {
    /// Stable label fragment.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Static => "static",
            Self::Adaptive => "adaptive",
        }
    }
}

/// Configuration of the adaptive-control sweep.
#[derive(Debug, Clone)]
pub struct AdaptiveSweepConfig {
    /// Workload shape (players, updates, seed). `mean_interarrival` is
    /// overridden per arm ([`Self::rp_interarrival`] /
    /// [`Self::cache_interarrival`]).
    pub workload: WorkloadParams,
    /// Topology seed.
    pub net_seed: u64,
    /// Initial RPs.
    pub rp_count: usize,
    /// Index of the hot level-1 zone (into the sorted level-1 prefixes).
    pub hot_top: usize,
    /// Hotspot onset as a fraction (num, den) of the trace span.
    pub hot_onset: (u64, u64),
    /// Fraction (num, den) of post-onset events remapped onto the hot
    /// zone's leaf CDs.
    pub hot_share: (u32, u32),
    /// Network-wide mean update inter-arrival of the RP arm — fast enough
    /// that the concentrated hotspot saturates one RP.
    pub rp_interarrival: SimDuration,
    /// Network-wide mean update inter-arrival of the cache arm — benign,
    /// so snapshot traffic dominates the router content stores.
    pub cache_interarrival: SimDuration,
    /// Bounded queue depth of the RP arm (drop-tail with control-class
    /// priority: overflow sheds data, never the split protocol).
    pub queue_capacity: usize,
    /// The static policy's split threshold (instantaneous queue length).
    pub static_threshold: usize,
    /// Adaptive RP trigger tunables.
    pub rp_adaptive: AdaptiveRpConfig,
    /// Adaptive cache-class tunables.
    pub cache_adaptive: AdaptiveCacheConfig,
    /// Metric-stream pipeline config of the adaptive arms (a vacuous
    /// config would blind every adaptive consumer).
    pub stream: StreamConfig,
    /// Flash-crowd size (movers entering the hot area).
    pub crowd_size: usize,
    /// Spacing between consecutive crowd arrivals.
    pub crowd_gap: SimDuration,
    /// QR pipelining window of the movers.
    pub qr_window: u32,
    /// Settling period before the first trace event.
    pub warmup: SimDuration,
    /// Extra simulated time after the last trace event.
    pub drain: SimDuration,
    /// When `Some`, RP-arm runs replay under the lineage tracer and the
    /// delivery auditor must account for every owed pair.
    pub lineage: Option<LineageConfig>,
}

impl Default for AdaptiveSweepConfig {
    fn default() -> Self {
        Self {
            workload: WorkloadParams {
                players: 150,
                updates: 20_000,
                ..WorkloadParams::default()
            },
            net_seed: 7,
            rp_count: 3,
            hot_top: 1,
            hot_onset: (1, 4),
            hot_share: (3, 4),
            // 3.3 ms RP service; concentrating 3/4 of this on one RP runs
            // it at ρ ≈ 2 while the aggregate stays near capacity.
            rp_interarrival: SimDuration::from_micros(1_200),
            cache_interarrival: SimDuration::from_micros(2_400),
            queue_capacity: 64,
            // Below the drop point but deep: the static trigger only fires
            // once the queue is already 3/4 full.
            static_threshold: 48,
            rp_adaptive: AdaptiveRpConfig {
                // ≈1 s of fresh window at the hot RP's service rate — the
                // escalation hysteresis does the pacing.
                cooldown_packets: 300,
                ..AdaptiveRpConfig::default()
            },
            cache_adaptive: AdaptiveCacheConfig::default(),
            // 25 ms rolls: the EWMA tracks a saturating queue within a few
            // service times instead of lagging a 50 ms grid.
            stream: StreamConfig::every(SimDuration::from_millis(25)),
            crowd_size: 36,
            crowd_gap: SimDuration::from_millis(150),
            qr_window: 5,
            warmup: SimDuration::from_secs(2),
            drain: SimDuration::from_secs(15),
            // The full-scale RP arm emits ~3.7M spans per run (hotspot
            // fan-out × 150 players); the default 2M capacity would
            // truncate the log and fail the audit.
            lineage: Some(LineageConfig {
                capacity: 1 << 23,
                ..LineageConfig::default()
            }),
        }
    }
}

/// One RP-arm run's outcome.
#[derive(Debug, Clone)]
pub struct RpRow {
    /// Run label (`rp-adaptive`, …).
    pub label: String,
    /// Balancing policy of the run.
    pub policy: RpPolicy,
    /// Updates published.
    pub published: u64,
    /// Non-self deliveries recorded.
    pub delivered: u64,
    /// Deliveries the AoI model expects for the full trace.
    pub expected: u64,
    /// `delivered / expected`.
    pub delivery_ratio: f64,
    /// Median delivery latency.
    pub p50: SimDuration,
    /// 99th-percentile delivery latency.
    pub p99: SimDuration,
    /// Arrivals rejected (or victims evicted) at full queues.
    pub queue_full: u64,
    /// RP splits executed (handoffs recorded).
    pub splits: u64,
    /// When each split fired (simulated time).
    pub split_times: Vec<SimTime>,
    /// Splits fired by the adaptive trigger specifically.
    pub triggered: u64,
    /// Aggregate network load in bytes.
    pub network_bytes: u64,
    /// Lineage audit (accounting JSON, span-log fingerprint) when armed.
    pub audit: Option<(gcopss_sim::json::Json, u64)>,
    /// Whether the armed audit explained every owed pair.
    pub audit_clean: Option<bool>,
}

impl RpRow {
    /// One formatted table row.
    #[must_use]
    pub fn row(&self) -> String {
        format!(
            "{:<14} {:>8.4} {:>9.2} {:>9.2} {:>8} {:>4} {:>4}",
            self.label,
            self.delivery_ratio,
            self.p50.as_millis_f64(),
            self.p99.as_millis_f64(),
            self.queue_full,
            self.splits,
            self.triggered,
        )
    }
}

/// One cache-arm run's outcome.
#[derive(Debug, Clone)]
pub struct CacheRow {
    /// Run label (`cache-adaptive`, …).
    pub label: String,
    /// Cache-class policy of the run.
    pub policy: CachePolicy,
    /// Moves completed (convergence records).
    pub moves: usize,
    /// Mean snapshot convergence time across completed moves.
    pub mean_convergence: SimDuration,
    /// Router content-store hits (all routers, all lookups).
    pub cs_hit: u64,
    /// Router content-store misses.
    pub cs_miss: u64,
    /// `cs_hit / (cs_hit + cs_miss)`.
    pub hit_rate: f64,
    /// Hit-rate on the hotspot prefix, from the live popularity sketches
    /// (`cs-hit-pop` / `cs-req-pop`), sampled at the crowd peak — the
    /// sketches are recency-biased and decay to empty by the horizon.
    /// `None` when streams are off.
    pub hot_hit_rate: Option<f64>,
    /// Snapshot objects served by brokers (QR responses).
    pub broker_served: u64,
    /// Cache-class promotions the broker executed.
    pub promotions: u64,
    /// Cache-class demotions.
    pub demotions: u64,
    /// Aggregate network load in bytes.
    pub network_bytes: u64,
}

impl CacheRow {
    /// One formatted table row.
    #[must_use]
    pub fn row(&self) -> String {
        format!(
            "{:<16} {:>5} {:>9.2} {:>8.4} {:>8} {:>8} {:>4} {:>4}",
            self.label,
            self.moves,
            self.mean_convergence.as_millis_f64(),
            self.hit_rate,
            self.cs_hit,
            self.broker_served,
            self.promotions,
            self.demotions,
        )
    }
}

/// The sweep's full output.
#[derive(Debug, Clone)]
pub struct AdaptiveOutput {
    /// RP arm: off / static / adaptive, same seed.
    pub rp_rows: Vec<RpRow>,
    /// Cache arm: static / adaptive, same seed.
    pub cache_rows: Vec<CacheRow>,
}

/// The sorted level-1 prefixes of the map, and the chosen hot one.
fn hot_prefix(map: &gcopss_game::GameMap, hot_top: usize) -> Name {
    let mut tops: Vec<Name> = map.leaf_cds().iter().map(|cd| cd.prefix(1)).collect();
    tops.sort();
    tops.dedup();
    tops[hot_top % tops.len()].clone()
}

/// Builds the RP arm's workload: a counter-strike trace whose post-onset
/// events are partially remapped onto the hot zone's leaf CDs (publishers
/// are remapped with them, onto viewers of the target CD, so the AoI
/// delivery model stays exact).
fn hotspot_workload(cfg: &AdaptiveSweepConfig) -> (Workload, Name) {
    let mut w = Workload::counter_strike(&WorkloadParams {
        mean_interarrival: cfg.rp_interarrival,
        ..cfg.workload.clone()
    });
    let hot = hot_prefix(&w.map, cfg.hot_top);
    let hot_cds: Vec<Name> = w
        .map
        .leaf_cds()
        .iter()
        .filter(|cd| hot.is_prefix_of(cd))
        .cloned()
        .collect();
    let viewers: Vec<Vec<PlayerId>> = hot_cds
        .iter()
        .map(|cd| {
            let area = w.map.area_of_leaf_cd(cd).expect("leaf CD");
            w.population
                .players()
                .filter(|p| w.map.can_see(w.population.area_of(*p), area))
                .collect()
        })
        .collect();
    let span = w.trace.last().map_or(0, |e| e.time_ns);
    let onset = span / cfg.hot_onset.1 * cfg.hot_onset.0;
    let (num, den) = cfg.hot_share;
    let mut trace = (*w.trace).clone();
    for (i, e) in trace.iter_mut().enumerate() {
        if e.time_ns < onset || (i as u32) % den >= num {
            continue;
        }
        let k = i % hot_cds.len();
        if viewers[k].is_empty() {
            continue;
        }
        e.cd = hot_cds[k].clone();
        e.player = viewers[k][i % viewers[k].len()];
    }
    w.trace = Arc::new(trace);
    (w, hot)
}

/// Runs the full sweep.
#[must_use]
pub fn run(cfg: &AdaptiveSweepConfig) -> AdaptiveOutput {
    run_with(cfg, None)
}

/// Runs the full sweep, optionally harvesting one telemetry report per
/// run.
#[must_use]
pub fn run_with(
    cfg: &AdaptiveSweepConfig,
    mut telemetry: Option<&mut TelemetryCapture>,
) -> AdaptiveOutput {
    let rp_rows = run_rp_arm(cfg, telemetry.as_deref_mut());
    let cache_rows = run_cache_arm(cfg, telemetry);
    AdaptiveOutput { rp_rows, cache_rows }
}

/// The RP arm: hotspot trace, bounded queues, three balancing policies.
fn run_rp_arm(
    cfg: &AdaptiveSweepConfig,
    mut telemetry: Option<&mut TelemetryCapture>,
) -> Vec<RpRow> {
    let (w, _hot) = hotspot_workload(cfg);
    let net = NetworkSpec::default_backbone(cfg.net_seed);
    let span = SimDuration::from_nanos(w.trace.last().map_or(0, |e| e.time_ns));
    let horizon = SimTime::ZERO + cfg.warmup + span + cfg.drain;
    let expected = expected_deliveries(&w.map, &w.population, &w.trace);
    // Bounded queues with control-class priority: overflow sheds data
    // (recorded on the lineage), never the Subscribe/split protocol — so
    // the ablation compares balancing policies, not control-plane luck.
    let overload = OverloadConfig {
        queue_capacity: Some(cfg.queue_capacity),
        policy: AdmissionPolicy::DropTail,
        priority: true,
        mark_sojourn: None,
    };

    let mut rows = Vec::new();
    for policy in [RpPolicy::Off, RpPolicy::Static, RpPolicy::Adaptive] {
        let label = format!("rp-{}", policy.as_str());
        let mut params = SimParams::default();
        match policy {
            RpPolicy::Off => {}
            RpPolicy::Static => params = params.with_auto_balancing(cfg.static_threshold),
            RpPolicy::Adaptive => params = params.with_adaptive_rp(cfg.rp_adaptive.clone()),
        }
        let sys = GcopssConfig {
            params,
            metrics_mode: MetricsMode::StatsOnly,
            rp_count: cfg.rp_count,
            warmup: cfg.warmup,
            overload: Some(overload.clone()),
            stream: if policy == RpPolicy::Adaptive {
                cfg.stream.clone()
            } else {
                StreamConfig::default()
            },
            ..GcopssConfig::default()
        };
        let mut built = ScenarioSpec::new(&net, &w.map, &w.population, &w.trace)
            .gcopss(sys)
            .build()
            .into_gcopss();
        match telemetry.as_mut() {
            Some(cap) => cap.arm(&mut built.sim),
            None => built.sim.enable_telemetry(TelemetryConfig {
                journal_capacity: 0,
                journal_sample: 1,
            }),
        }
        if let Some(lineage) = &cfg.lineage {
            built.sim.enable_lineage(lineage.clone());
            register_expectations(&mut built.sim, &w, cfg.warmup);
        }
        built.sim.run_until(horizon);
        let audit = cfg.lineage.as_ref().map(|_| {
            // No faults are injected: every miss must be explained by an
            // overload drop record, so no damage window is granted.
            let report = built.sim.lineage().audit(horizon, None);
            (
                report.to_json(),
                built.sim.lineage().fingerprint(),
                report.is_clean(),
            )
        });
        let (queue_full, _, _) = built.sim.overload_drops();
        let network_bytes = built.sim.total_link_bytes();
        if let Some(cap) = telemetry.as_mut() {
            cap.collect(&built.sim, &label);
        }
        let world = built.sim.into_world();
        let hist = world.metrics.latency_hist();
        let q = |p: f64| SimDuration::from_nanos(hist.quantile(p));
        let delivered = world.metrics.delivered();
        rows.push(RpRow {
            policy,
            published: world.metrics.published(),
            delivered,
            expected,
            delivery_ratio: if expected == 0 {
                1.0
            } else {
                delivered as f64 / expected as f64
            },
            p50: q(0.50),
            p99: q(0.99),
            queue_full,
            splits: world.splits.len() as u64,
            split_times: world.splits.iter().map(|s| s.at).collect(),
            triggered: world.counter("rp-move-triggered"),
            network_bytes,
            audit_clean: audit.as_ref().map(|&(_, _, clean)| clean),
            audit: audit.map(|(json, fp, _)| (json, fp)),
            label,
        });
    }
    rows
}

/// The cache arm: flash crowd into one area, QR snapshots, two cache
/// policies.
fn run_cache_arm(
    cfg: &AdaptiveSweepConfig,
    mut telemetry: Option<&mut TelemetryCapture>,
) -> Vec<CacheRow> {
    let w = Workload::counter_strike(&WorkloadParams {
        mean_interarrival: cfg.cache_interarrival,
        ..cfg.workload.clone()
    });
    let net = NetworkSpec::default_backbone(cfg.net_seed);
    let span_ns = w.trace.last().map_or(0, |e| e.time_ns);
    let hot = hot_prefix(&w.map, cfg.hot_top);
    let hot_cd = w
        .map
        .leaf_cds()
        .iter()
        .find(|cd| hot.is_prefix_of(cd))
        .expect("hot zone has leaf CDs")
        .clone();
    let hot_area = w.map.area_of_leaf_cd(&hot_cd).expect("leaf CD");
    let hot_key = cs_prefix_key(&snapshot_ns().join(&hot_cd));

    // The flash crowd: `crowd_size` players (not already in the hot area,
    // spread over the population) move into it one `crowd_gap` apart,
    // starting a third into the trace.
    let mut moves: Vec<MoveEvent> = Vec::new();
    let mut t = span_ns / 3;
    for p in w.population.players() {
        if moves.len() == cfg.crowd_size {
            break;
        }
        let from = w.population.area_of(p);
        if from == hot_area {
            continue;
        }
        let Some(move_type) = w.map.classify_move(from, hot_area) else {
            continue;
        };
        let snapshot_cds = w.map.snapshot_cds_for_move(from, hot_area);
        if snapshot_cds.is_empty() {
            continue;
        }
        moves.push(MoveEvent {
            time_ns: t,
            player: p,
            from,
            to: hot_area,
            move_type,
            snapshot_cds,
        });
        t += cfg.crowd_gap.as_nanos();
    }
    let crowd_end = moves.last().map_or(span_ns, |m| m.time_ns);
    let horizon = SimTime::ZERO
        + cfg.warmup
        + SimDuration::from_nanos(span_ns.max(crowd_end))
        + cfg.drain;

    let mut rows = Vec::new();
    for policy in [CachePolicy::Static, CachePolicy::Adaptive] {
        let label = format!("cache-{}", policy.as_str());
        let mut params = SimParams::default();
        if policy == CachePolicy::Adaptive {
            params = params.with_adaptive_cache(cfg.cache_adaptive.clone());
        }

        // Brokers with prewarmed object models (snapshot sizes in the
        // end-of-trace regime from the first move).
        let mut broker_objects = w.objects.clone();
        for e in w.trace.iter() {
            broker_objects.apply_update(e.object, e.size);
        }
        let serving = partition_cds_to_brokers(&w.map, 3);
        let pool = net.rp_pool_preview();
        let mut extra_hosts = Vec::new();
        for (i, cds) in serving.into_iter().enumerate() {
            let routes = SnapshotBroker::fib_prefixes(&cds);
            let attach = pool[(cfg.rp_count + i) % pool.len()];
            let objects = broker_objects.clone();
            let trace = Arc::clone(&w.trace);
            let p = params.clone();
            extra_hosts.push(ExtraHost {
                attach_to: attach,
                routes,
                make: Box::new(move |_node, edge| {
                    Box::new(SnapshotBroker::new(p, edge, cds, objects, trace))
                }),
            });
        }

        let gcfg = GcopssConfig {
            params: params.clone(),
            metrics_mode: MetricsMode::StatsOnly,
            rp_count: cfg.rp_count,
            warmup: cfg.warmup,
            stream: if policy == CachePolicy::Adaptive {
                cfg.stream.clone()
            } else {
                StreamConfig::default()
            },
            ..GcopssConfig::default()
        };
        let warmup = gcfg.warmup;
        let map = Arc::clone(&w.map);
        let pop = &w.population;
        let moves_ref = &moves;
        let mode = SnapshotMode::QueryResponse {
            window: cfg.qr_window,
        };
        let factory: ClientFactory<'_> = Box::new(move |p, edge, cursor| {
            let my_moves: Vec<_> = moves_ref
                .iter()
                .filter(|m| m.player == p)
                .cloned()
                .collect();
            Box::new(MovingPlayerClient::new(
                p,
                edge,
                pop.area_of(p),
                Arc::clone(&map),
                cursor,
                my_moves,
                warmup,
                mode,
            ))
        });
        let mut built = ScenarioSpec::new(&net, &w.map, &w.population, &w.trace)
            .gcopss(gcfg)
            .extra_hosts(extra_hosts)
            .client_factory(factory)
            .build()
            .into_gcopss();
        if let Some(cap) = telemetry.as_mut() {
            cap.arm(&mut built.sim);
        }
        // Sample the live sketches at the crowd peak, not the horizon: the
        // space-saving sketches are recency-biased (halved every window),
        // so by the end of the drain the flash crowd has decayed out of
        // them — which is the point. Pausing to read them is pure.
        let peak = (SimTime::ZERO
            + cfg.warmup
            + SimDuration::from_nanos(crowd_end)
            + SimDuration::from_secs(2))
        .min(horizon);
        built.sim.run_until(peak);
        let hot_hit_rate = built.sim.streams_active().then(|| {
            let req = built
                .sim
                .streams()
                .sketch("cs-req-pop")
                .and_then(|s| s.count_of(hot_key))
                .map_or(0, |(c, _)| c);
            let hit = built
                .sim
                .streams()
                .sketch("cs-hit-pop")
                .and_then(|s| s.count_of(hot_key))
                .map_or(0, |(c, _)| c);
            if req == 0 {
                0.0
            } else {
                hit as f64 / req as f64
            }
        });
        built.sim.run_until(horizon);
        let network_bytes = built.sim.total_link_bytes();
        if let Some(cap) = telemetry.as_mut() {
            cap.collect(&built.sim, &label);
        }
        let world = built.sim.into_world();
        let done: Vec<SimDuration> = world
            .convergence
            .iter()
            .filter(|r| !r.online_join)
            .map(|r| r.convergence)
            .collect();
        let mean_convergence = if done.is_empty() {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(
                done.iter().map(|d| d.as_nanos()).sum::<u64>() / done.len() as u64,
            )
        };
        let cs_hit = world.counter("cs-hit");
        let cs_miss = world.counter("cs-miss");
        rows.push(CacheRow {
            label,
            policy,
            moves: done.len(),
            mean_convergence,
            cs_hit,
            cs_miss,
            hit_rate: if cs_hit + cs_miss == 0 {
                0.0
            } else {
                cs_hit as f64 / (cs_hit + cs_miss) as f64
            },
            hot_hit_rate,
            broker_served: world.counter("broker-qr-served"),
            promotions: world.counter("cache-class-promotions"),
            demotions: world.counter("cache-class-demotions"),
            network_bytes,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_cfg() -> AdaptiveSweepConfig {
        AdaptiveSweepConfig {
            workload: WorkloadParams {
                players: 80,
                updates: 8_000,
                ..WorkloadParams::default()
            },
            crowd_size: 16,
            drain: SimDuration::from_secs(10),
            ..AdaptiveSweepConfig::default()
        }
    }

    /// The ablation's headline: under the same seed, the adaptive RP
    /// trigger splits earlier than the static threshold (fewer overflow
    /// drops, no worse p99), and the adaptive cache class absorbs the
    /// flash crowd in the routers' content stores.
    #[test]
    fn adaptive_beats_static_under_hotspot() {
        let out = run(&mini_cfg());
        for r in &out.rp_rows {
            eprintln!("{} splits_at={:?}", r.row(), r.split_times);
        }
        for r in &out.cache_rows {
            eprintln!("{}", r.row());
        }
        assert_eq!(out.rp_rows.len(), 3);
        assert_eq!(out.cache_rows.len(), 2);
        let rp = |p: RpPolicy| {
            out.rp_rows
                .iter()
                .find(|r| r.policy == p)
                .expect("rp row")
        };
        let off = rp(RpPolicy::Off);
        let stat = rp(RpPolicy::Static);
        let adap = rp(RpPolicy::Adaptive);

        // The hotspot actually bites: without balancing the bounded queue
        // overflows.
        assert!(off.queue_full > 0, "hotspot never overflowed the queue");
        assert_eq!(off.splits, 0);
        // Both balancing policies split; only the adaptive one is
        // stream-triggered.
        assert!(stat.splits > 0, "static threshold never fired");
        assert!(adap.splits > 0, "adaptive trigger never fired");
        assert_eq!(stat.triggered, 0);
        assert!(adap.triggered > 0, "no stream-triggered move recorded");
        // The win: strictly fewer overflow drops than the static trigger
        // (the `off` arm's raw drop count is not comparable — a publication
        // dropped at the saturated RP *before* fan-out silently suppresses
        // its whole multicast tree, which is exactly what its delivery
        // ratio shows).
        assert!(
            adap.queue_full < stat.queue_full,
            "adaptive ({}) did not beat static ({}) on drops",
            adap.queue_full,
            stat.queue_full
        );
        assert!(
            adap.delivery_ratio > stat.delivery_ratio
                && stat.delivery_ratio > off.delivery_ratio,
            "delivery ratios not ordered: adaptive {} / static {} / off {}",
            adap.delivery_ratio,
            stat.delivery_ratio,
            off.delivery_ratio
        );
        // Audited runs explain every owed pair.
        for r in &out.rp_rows {
            assert_eq!(r.audit_clean, Some(true), "{}: audit not clean", r.label);
        }

        // Cache arm: promotion happened, and it paid.
        let cstat = &out.cache_rows[0];
        let cadap = &out.cache_rows[1];
        assert_eq!(cstat.policy, CachePolicy::Static);
        assert_eq!(cadap.policy, CachePolicy::Adaptive);
        assert!(cstat.moves > 0 && cadap.moves > 0, "no moves completed");
        assert!(cadap.promotions > 0, "no cache-class promotion");
        assert!(
            cadap.hit_rate > cstat.hit_rate,
            "adaptive hit rate {} <= static {}",
            cadap.hit_rate,
            cstat.hit_rate
        );
        assert!(
            cadap.broker_served < cstat.broker_served,
            "adaptive broker load {} >= static {}",
            cadap.broker_served,
            cstat.broker_served
        );
        assert!(cadap.hot_hit_rate.is_some());
        assert!(cstat.hot_hit_rate.is_none());
    }

    /// Equal seeds must produce byte-identical results, adaptive arms
    /// included — control decisions are made from deterministic streams.
    #[test]
    fn sweep_is_same_seed_deterministic() {
        let cfg = AdaptiveSweepConfig {
            workload: WorkloadParams {
                players: 50,
                updates: 4_000,
                ..WorkloadParams::default()
            },
            crowd_size: 10,
            drain: SimDuration::from_secs(8),
            ..AdaptiveSweepConfig::default()
        };
        let a = run(&cfg);
        let b = run(&cfg);
        for (x, y) in a.rp_rows.iter().zip(&b.rp_rows) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.delivered, y.delivered, "{}", x.label);
            assert_eq!(x.queue_full, y.queue_full, "{}", x.label);
            assert_eq!(x.splits, y.splits, "{}", x.label);
            assert_eq!(x.triggered, y.triggered, "{}", x.label);
            assert_eq!(x.network_bytes, y.network_bytes, "{}", x.label);
            match (&x.audit, &y.audit) {
                (Some((ja, fa)), Some((jb, fb))) => {
                    assert_eq!(fa, fb, "{}: lineage fingerprints differ", x.label);
                    assert_eq!(ja.to_string(), jb.to_string(), "{}", x.label);
                }
                (None, None) => {}
                _ => panic!("{}: audit presence differs", x.label),
            }
        }
        for (x, y) in a.cache_rows.iter().zip(&b.cache_rows) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.cs_hit, y.cs_hit, "{}", x.label);
            assert_eq!(x.cs_miss, y.cs_miss, "{}", x.label);
            assert_eq!(x.broker_served, y.broker_served, "{}", x.label);
            assert_eq!(x.promotions, y.promotions, "{}", x.label);
            assert_eq!(x.network_bytes, y.network_bytes, "{}", x.label);
            assert_eq!(x.hot_hit_rate, y.hot_hit_rate, "{}", x.label);
        }
    }
}
