//! Delivery audit (`exp_audit`): end-to-end causal accounting of every
//! publication on the chaos scenario.
//!
//! The failure sweep (`exp_failover`) reports delivery *ratios*; this
//! driver replays the same G-COPSS chaos runs under the lineage tracer
//! and demands a stronger property: every `(publication, owed subscriber)`
//! pair must be **explained** — delivered exactly once, dropped with a
//! recorded reason (dead link, dead node, Bernoulli loss, purged soft
//! state), lost to a subscription-tree gap inside the damage window, or
//! still in flight at the horizon. Duplicates and unexplained losses are
//! hard errors: a ratio can hide a duplicate cancelling a loss, the audit
//! cannot.
//!
//! The owed-subscriber set of a publication is its AoI viewer set at
//! publish time (players do not move in the chaos scenario), minus the
//! publisher. The damage window runs from the first scheduled fault to
//! the last repair plus the settle margin — the same window in which the
//! failure sweep tolerates under-delivery; with Bernoulli loss the whole
//! run is damaged, because loss draws are not confined to a window.

use std::collections::BTreeMap;

use gcopss_names::Name;
use gcopss_sim::json::Json;
use gcopss_sim::{
    AuditReport, LineageConfig, SimDuration, SimTime, Simulator, TelemetryConfig,
    TimeSeriesConfig,
};

use crate::scenario::{GcopssConfig, NetworkSpec, ScenarioSpec};
use crate::{GPacket, GameWorld, MetricsMode};

use super::failover::{chaos_plan, FailoverConfig};
use super::Workload;

/// Configuration of the delivery audit.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// The chaos scenario to audit (same knobs as the failure sweep; only
    /// the G-COPSS runs are audited — the baselines have no span hooks for
    /// their server/producer application state).
    pub failover: FailoverConfig,
    /// Lineage tracer settings (sampling keeps whole causal trees, but an
    /// audit over a sampled trace only accounts for the sampled lineages).
    pub lineage: LineageConfig,
    /// Optional periodic time-series sampler armed on every run.
    pub timeseries: Option<TimeSeriesConfig>,
}

impl Default for AuditConfig {
    fn default() -> Self {
        Self {
            failover: FailoverConfig::default(),
            lineage: LineageConfig::default(),
            timeseries: Some(TimeSeriesConfig {
                tick: SimDuration::from_millis(500),
                counters: vec!["delivered", "drop", "rp-failovers", "st-purged"],
                gauges: vec!["st-entries"],
                per_node: vec!["rp-served"],
                ..TimeSeriesConfig::default()
            }),
        }
    }
}

/// One audited run.
#[derive(Debug, Clone)]
pub struct AuditRun {
    /// Run label (`gcopss-loss0.01`, …).
    pub label: String,
    /// The swept loss rate.
    pub loss: f64,
    /// The auditor's per-class accounting.
    pub report: AuditReport,
    /// FNV-1a fingerprint over all span records (determinism witness:
    /// equal seeds must produce equal fingerprints).
    pub fingerprint: u64,
    /// Span records captured.
    pub spans: usize,
    /// Captured time-series frames, when the sampler was armed.
    pub timeseries: Option<Json>,
}

/// The audit's full output, one run per swept loss rate.
#[derive(Debug, Clone)]
pub struct AuditOutput {
    /// Audited runs in sweep order.
    pub runs: Vec<AuditRun>,
}

/// Registers one delivery expectation per trace event with the lineage
/// log: publication id `i` owes one copy to every AoI viewer of its CD
/// except the publisher. Must be called after [`Simulator::enable_lineage`]
/// and before the run.
pub fn register_expectations(
    sim: &mut Simulator<GPacket, GameWorld>,
    w: &Workload,
    warmup: SimDuration,
) {
    let mut viewers: BTreeMap<&Name, Vec<u32>> = BTreeMap::new();
    for cd in w.map.leaf_cds() {
        let area = w.map.area_of_leaf_cd(cd).expect("leaf CD");
        let who: Vec<u32> = w
            .population
            .players()
            .filter(|p| w.map.can_see(w.population.area_of(*p), area))
            .map(|p| p.0)
            .collect();
        viewers.insert(cd, who);
    }
    for (i, e) in w.trace.iter().enumerate() {
        let t_publish = SimTime::ZERO + warmup + SimDuration::from_nanos(e.time_ns);
        let entities: Vec<u32> = viewers
            .get(&e.cd)
            .map(|v| v.iter().copied().filter(|&p| p != e.player.0).collect())
            .unwrap_or_default();
        sim.lineage_mut()
            .expect(i as u64, t_publish, e.player.0, &entities);
    }
}

/// The fault damage window for a loss-free chaos plan: from just before
/// the first scheduled fault to the last repair plus the settle margin.
/// The window opens one second *before* the first fault because a message
/// published shortly before it can still be in flight when the damage
/// lands — a crash purges subscription-tree branches at the neighbors,
/// and an in-flight copy then vanishes into the gap without a drop
/// record. One second is far above any end-to-end delivery latency the
/// scenario produces.
#[must_use]
pub fn damage_window(
    first_fault: Option<SimTime>,
    last_repair: Option<SimTime>,
    settle: SimDuration,
) -> Option<(SimTime, SimTime)> {
    let (start, repair) = (first_fault?, last_repair?);
    let margin = SimDuration::from_secs(1);
    let open = SimTime::ZERO + start.saturating_duration_since(SimTime::ZERO + margin);
    Some((open, repair + settle))
}

/// Runs the audited sweep.
#[must_use]
pub fn run(cfg: &AuditConfig) -> AuditOutput {
    let f = &cfg.failover;
    let w = Workload::counter_strike(&f.workload);
    let net = NetworkSpec::default_backbone(f.net_seed);
    let links = net.core_links_preview();
    let pool = net.rp_pool_preview();
    let crash = if f.crash_infra {
        Some(pool[(f.rp_count.max(1) - 1) % pool.len()])
    } else {
        None
    };
    let span = SimDuration::from_nanos(w.trace.last().map_or(0, |e| e.time_ns));
    let horizon = SimTime::ZERO + f.warmup + span + f.drain;

    let mut runs = Vec::new();
    for &loss in &f.loss_rates {
        let plan = chaos_plan(f, loss, &links, crash, span);
        let first_fault = plan.schedule().iter().map(|&(t, _)| t).min();
        let sys = GcopssConfig {
            metrics_mode: MetricsMode::StatsOnly,
            rp_count: f.rp_count,
            warmup: f.warmup,
            recovery: Some(f.recovery.clone()),
            ..GcopssConfig::default()
        };
        let mut built = ScenarioSpec::new(&net, &w.map, &w.population, &w.trace)
            .gcopss(sys)
            .build()
            .into_gcopss();
        built.sim.enable_lineage(cfg.lineage.clone());
        register_expectations(&mut built.sim, &w, f.warmup);
        if let Some(ts) = &cfg.timeseries {
            // The sampler reads the metrics registry, so telemetry must be
            // on; the journal is not needed here.
            built.sim.enable_telemetry(TelemetryConfig {
                journal_capacity: 0,
                journal_sample: 1,
            });
            built.sim.enable_timeseries(ts.clone());
        }
        built.sim.install_faults(plan);
        built.sim.run_until(horizon);

        let damage = if loss > 0.0 {
            // Loss draws hit every transmission: the whole run is damaged.
            Some((SimTime::ZERO, horizon))
        } else {
            damage_window(first_fault, built.sim.last_repair_time(), f.settle)
        };
        let report = built.sim.lineage().audit(horizon, damage);
        runs.push(AuditRun {
            label: format!("gcopss-loss{loss:.2}"),
            loss,
            fingerprint: built.sim.lineage().fingerprint(),
            spans: built.sim.lineage().spans().len(),
            timeseries: built.sim.timeseries_json(),
            report,
        });
    }
    AuditOutput { runs }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature audited chaos run must account for 100 % of the owed
    /// pairs with zero duplicates and zero unexplained losses, and the
    /// span log must be same-seed reproducible.
    #[test]
    fn mini_audit_is_clean_and_reproducible() {
        let cfg = AuditConfig {
            failover: FailoverConfig {
                workload: super::super::WorkloadParams {
                    players: 60,
                    updates: 3_000,
                    ..super::super::WorkloadParams::default()
                },
                loss_rates: vec![0.0, 0.02],
                flaps: 2,
                outage: SimDuration::from_millis(500),
                settle: SimDuration::from_secs(2),
                drain: SimDuration::from_secs(10),
                ..FailoverConfig::default()
            },
            ..AuditConfig::default()
        };
        let out = run(&cfg);
        assert_eq!(out.runs.len(), 2);
        for r in &out.runs {
            assert!(r.spans > 0, "{}: no spans captured", r.label);
            assert!(
                r.report.is_clean(),
                "{}: audit not clean:\n{}\nerrors: {:?}",
                r.label,
                r.report.table(),
                r.report.errors
            );
            assert!(r.report.delivered > 0, "{}: nothing delivered", r.label);
            let ts = r.timeseries.as_ref().expect("sampler was armed");
            assert!(ts.to_string().contains("\"frames\""));
        }
        // The lossy run must have charged something to the fault machinery.
        let lossy = &out.runs[1];
        assert!(
            lossy.report.dropped_total() > 0,
            "lossy run recorded no drops:\n{}",
            lossy.report.table()
        );

        let again = run(&cfg);
        for (a, b) in out.runs.iter().zip(&again.runs) {
            assert_eq!(a.fingerprint, b.fingerprint, "{}: spans differ", a.label);
            assert_eq!(
                a.report.to_json().to_string(),
                b.report.to_json().to_string(),
                "{}: audit differs",
                a.label
            );
            assert_eq!(
                a.timeseries.as_ref().map(ToString::to_string),
                b.timeseries.as_ref().map(ToString::to_string),
                "{}: time series differ",
                a.label
            );
        }
    }
}
