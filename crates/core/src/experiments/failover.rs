//! Failure sweep (`exp_failover`): delivery ratio and recovery time under
//! injected faults for G-COPSS vs the IP-server and NDN baselines.
//!
//! Every run plays the same seeded chaos schedule — random core-link flaps
//! plus one infrastructure-node crash/restart — while the per-transmission
//! Bernoulli loss rate is swept. The crashed router hosts the
//! highest-numbered RP in the G-COPSS runs, so the sweep also exercises RP
//! failover; in the IP baseline the same router is the junction of a game
//! server, and in the NDN baseline it is a plain core router, so all three
//! systems face identical chaos.
//!
//! Because publication ids are dense trace-event indexes, the exact
//! delivery log supports per-publication accounting: the sweep reports the
//! overall delivery ratio, the ratio restricted to publications sent after
//! the last repair (which must return to 1.0 for a system that truly
//! recovers, absent residual loss), and the time from the last repair to
//! the last under-delivered publication.

use std::collections::BTreeMap;

use gcopss_names::Name;
use gcopss_game::PlayerId;
use gcopss_sim::{FaultPlan, NodeId, SimDuration, SimTime, Simulator};

use crate::scenario::{
    GcopssConfig, IpConfig, NdnBaselineConfig, NetworkSpec, ScenarioSpec,
};
use crate::{GPacket, GameWorld, MetricsMode, RecoveryConfig};

use super::{TelemetryCapture, Workload, WorkloadParams};

/// Configuration of the failure sweep.
#[derive(Debug, Clone)]
pub struct FailoverConfig {
    /// Workload (smaller than Table I by default: chaos runs use
    /// [`Simulator::run_until`] horizons, so event counts matter).
    pub workload: WorkloadParams,
    /// Topology seed.
    pub net_seed: u64,
    /// Chaos-schedule seed (flap times and loss draws).
    pub chaos_seed: u64,
    /// Initial RPs (G-COPSS) and game servers (IP baseline).
    pub rp_count: usize,
    /// Per-transmission Bernoulli loss rates to sweep.
    pub loss_rates: Vec<f64>,
    /// Random core-link flaps per run, drawn in the 20–60 % window of the
    /// trace span.
    pub flaps: usize,
    /// Outage length of each link flap.
    pub outage: SimDuration,
    /// Crash the router hosting the last RP at 30 % of the trace span and
    /// restart it at 50 %.
    pub crash_infra: bool,
    /// Recovery tunables applied to every system.
    pub recovery: RecoveryConfig,
    /// Settling period before the first trace event.
    pub warmup: SimDuration,
    /// Margin after the last repair before the post-repair window opens:
    /// publications racing the join/reconnect re-propagation right after a
    /// repair are charged to the outage, not to steady state. Must cover
    /// the recovery watchdog period.
    pub settle: SimDuration,
    /// Extra simulated time after the last trace event before the horizon.
    pub drain: SimDuration,
}

impl Default for FailoverConfig {
    fn default() -> Self {
        Self {
            workload: WorkloadParams {
                players: 120,
                updates: 10_000,
                ..WorkloadParams::default()
            },
            net_seed: 7,
            chaos_seed: 0x00c4_a055,
            rp_count: 3,
            loss_rates: vec![0.0, 0.01, 0.05],
            flaps: 6,
            outage: SimDuration::from_secs(2),
            crash_infra: true,
            recovery: RecoveryConfig::default(),
            warmup: SimDuration::from_secs(2),
            settle: SimDuration::from_secs(5),
            drain: SimDuration::from_secs(30),
        }
    }
}

/// One run's outcome.
#[derive(Debug, Clone)]
pub struct FailoverRow {
    /// Run label (`gcopss-loss0.01`, …).
    pub label: String,
    /// The swept loss rate.
    pub loss: f64,
    /// Publications registered.
    pub published: u64,
    /// Deliveries the AoI model expects over the whole trace.
    pub expected: u64,
    /// Distinct non-self deliveries recorded (capped per publication at the
    /// expected fan-out).
    pub delivered: u64,
    /// `delivered / expected`.
    pub delivery_ratio: f64,
    /// The same ratio restricted to publications sent after
    /// `last_repair + settle` — 1.0 means the system fully recovered.
    /// 1.0 trivially when the window is empty (chaos outlived the trace).
    pub post_repair_ratio: f64,
    /// Expected deliveries inside the post-repair window (0 means the
    /// window was empty and `post_repair_ratio` is vacuous).
    pub post_expected: u64,
    /// Time from the last repair to the last under-delivered publication:
    /// `Some(ZERO)` when nothing was ever lost, `None` when under-delivery
    /// persisted to the end of the trace (no settling observed — e.g.
    /// multicast under residual loss, which has no retransmission).
    pub recovery: Option<SimDuration>,
    /// When the last repair event was applied (`None` for vacuous plans).
    pub last_repair: Option<SimTime>,
    /// Packets dropped crossing dead links.
    pub link_lost: u64,
    /// Packets dropped at dead nodes.
    pub node_lost: u64,
    /// RP failovers executed (G-COPSS runs only).
    pub rp_failovers: u64,
    /// Client re-subscribes (G-COPSS) or server reconnects (IP).
    pub resubscribes: u64,
    /// Mean delivery latency.
    pub mean_latency: SimDuration,
    /// Aggregate network load in bytes.
    pub network_bytes: u64,
}

impl FailoverRow {
    /// One formatted table row.
    #[must_use]
    pub fn row(&self) -> String {
        let recovery = match self.recovery {
            Some(d) => format!("{:.2}s", d.as_millis_f64() / 1e3),
            None => "never".into(),
        };
        format!(
            "{:<18} {:>6.2} {:>9.4} {:>11.4} {:>9} {:>10} {:>7} {:>12.2}",
            self.label,
            self.loss,
            self.delivery_ratio,
            self.post_repair_ratio,
            recovery,
            self.link_lost + self.node_lost,
            self.resubscribes,
            self.mean_latency.as_millis_f64(),
        )
    }
}

/// The sweep's full output: one row per `(system, loss rate)` run, all
/// G-COPSS rows first, then IP, then NDN.
#[derive(Debug, Clone)]
pub struct FailoverOutput {
    /// Result rows in run order.
    pub rows: Vec<FailoverRow>,
}

/// What one chaotic run leaves behind.
struct ChaosRun {
    world: GameWorld,
    bytes: u64,
    link_lost: u64,
    node_lost: u64,
    last_repair: Option<SimTime>,
}

/// Installs the plan, runs to the horizon, and harvests fault bookkeeping.
fn run_chaos(
    mut sim: Simulator<GPacket, GameWorld>,
    plan: &FaultPlan,
    horizon: SimTime,
    telemetry: Option<(&mut TelemetryCapture, &str)>,
) -> ChaosRun {
    if let Some((cap, _)) = &telemetry {
        cap.arm(&mut sim);
    }
    sim.install_faults(plan.clone());
    sim.run_until(horizon);
    let bytes = sim.total_link_bytes();
    let (link_lost, node_lost) = sim.fault_drops();
    let last_repair = sim.last_repair_time();
    if let Some((cap, label)) = telemetry {
        cap.collect(&sim, label);
    }
    ChaosRun {
        world: sim.into_world(),
        bytes,
        link_lost,
        node_lost,
        last_repair,
    }
}

/// The shared chaos schedule at one loss rate: flaps in the 20–60 % window
/// of the span, the infrastructure crash at 30 % with restart at 50 %.
/// Shared with the delivery audit (`exp_audit`), which replays the same
/// chaos under the lineage tracer.
pub(crate) fn chaos_plan(
    cfg: &FailoverConfig,
    loss: f64,
    links: &[gcopss_sim::LinkId],
    crash: Option<NodeId>,
    span: SimDuration,
) -> FaultPlan {
    let at = |num: u64, den: u64| {
        SimTime::ZERO + cfg.warmup + SimDuration::from_nanos(span.as_nanos() * num / den)
    };
    let mut plan = FaultPlan::new(cfg.chaos_seed).with_loss(loss);
    if cfg.flaps > 0 && !links.is_empty() && span > SimDuration::ZERO {
        plan = plan.random_link_flaps(links, cfg.flaps, at(2, 10), at(6, 10), cfg.outage);
    }
    if let Some(node) = crash {
        plan = plan.node_down(at(3, 10), node).node_up(at(5, 10), node);
    }
    plan
}

struct Deliverability {
    expected: u64,
    delivered: u64,
    ratio: f64,
    post_ratio: f64,
    post_expected: u64,
    recovery: Option<SimDuration>,
}

/// Per-publication delivery accounting against the AoI model.
fn deliverability(
    run: &ChaosRun,
    w: &Workload,
    warmup: SimDuration,
    settle: SimDuration,
) -> Deliverability {
    let mut viewers: BTreeMap<&Name, u64> = BTreeMap::new();
    for cd in w.map.leaf_cds() {
        let area = w.map.area_of_leaf_cd(cd).expect("leaf CD");
        let count = w
            .population
            .players()
            .filter(|p| w.map.can_see(w.population.area_of(*p), area))
            .count() as u64;
        viewers.insert(cd, count);
    }
    let log = run
        .world
        .delivery_log
        .as_ref()
        .expect("chaos runs keep a delivery log");
    let mut per_id = vec![0u64; w.trace.len()];
    for &(id, receiver) in log {
        // The log also records the publisher's own copy; `expected` follows
        // the `expected_deliveries` convention of excluding it.
        if run.world.metrics.publisher_of(id) == Some(PlayerId(receiver)) {
            continue;
        }
        if let Some(slot) = per_id.get_mut(id as usize) {
            *slot += 1;
        }
    }
    let (mut expected, mut delivered) = (0u64, 0u64);
    let (mut post_expected, mut post_delivered) = (0u64, 0u64);
    let mut last_bad: Option<usize> = None;
    let mut last_with_fanout: Option<usize> = None;
    for (i, e) in w.trace.iter().enumerate() {
        let want = viewers.get(&e.cd).copied().unwrap_or(0).saturating_sub(1);
        let got = per_id[i].min(want);
        expected += want;
        delivered += got;
        if want > 0 {
            last_with_fanout = Some(i);
            if got < want {
                last_bad = Some(i);
            }
        }
        let sent = SimTime::ZERO + warmup + SimDuration::from_nanos(e.time_ns);
        if run.last_repair.is_none_or(|r| sent > r + settle) {
            post_expected += want;
            post_delivered += got;
        }
    }
    let ratio = |d: u64, e: u64| if e == 0 { 1.0 } else { d as f64 / e as f64 };
    let recovery = match (last_bad, run.last_repair) {
        (None, _) => Some(SimDuration::ZERO),
        // Settled only if some later publication did reach full fan-out.
        (Some(i), Some(repair)) if last_bad != last_with_fanout => {
            let sent = SimTime::ZERO + warmup + SimDuration::from_nanos(w.trace[i].time_ns);
            Some(sent.saturating_duration_since(repair))
        }
        _ => None,
    };
    Deliverability {
        expected,
        delivered,
        ratio: ratio(delivered, expected),
        post_ratio: ratio(post_delivered, post_expected),
        post_expected,
        recovery,
    }
}

fn make_row(label: String, loss: f64, run: &ChaosRun, w: &Workload, cfg: &FailoverConfig) -> FailoverRow {
    let d = deliverability(run, w, cfg.warmup, cfg.settle);
    let counter = |k: &str| run.world.counters.get(k).copied().unwrap_or(0);
    FailoverRow {
        label,
        loss,
        published: run.world.metrics.published(),
        expected: d.expected,
        delivered: d.delivered,
        delivery_ratio: d.ratio,
        post_repair_ratio: d.post_ratio,
        post_expected: d.post_expected,
        recovery: d.recovery,
        last_repair: run.last_repair,
        link_lost: run.link_lost,
        node_lost: run.node_lost,
        rp_failovers: counter("rp-failovers"),
        resubscribes: counter("client-resubscribes") + counter("client-reconnects"),
        mean_latency: run.world.metrics.stats().mean(),
        network_bytes: run.bytes,
    }
}

/// Runs the full sweep.
#[must_use]
pub fn run(cfg: &FailoverConfig) -> FailoverOutput {
    run_with(cfg, None)
}

/// Runs the full sweep, optionally harvesting one telemetry report per run.
#[must_use]
pub fn run_with(
    cfg: &FailoverConfig,
    mut telemetry: Option<&mut TelemetryCapture>,
) -> FailoverOutput {
    let w = Workload::counter_strike(&cfg.workload);
    let net = NetworkSpec::default_backbone(cfg.net_seed);
    let links = net.core_links_preview();
    let pool = net.rp_pool_preview();
    let crash = if cfg.crash_infra {
        Some(pool[(cfg.rp_count.max(1) - 1) % pool.len()])
    } else {
        None
    };
    let span = SimDuration::from_nanos(w.trace.last().map_or(0, |e| e.time_ns));
    let horizon = SimTime::ZERO + cfg.warmup + span + cfg.drain;

    let mut rows = Vec::new();
    for &loss in &cfg.loss_rates {
        let plan = chaos_plan(cfg, loss, &links, crash, span);
        let label = format!("gcopss-loss{loss:.2}");
        let sys = GcopssConfig {
            metrics_mode: MetricsMode::StatsOnly,
            delivery_log: true,
            rp_count: cfg.rp_count,
            warmup: cfg.warmup,
            recovery: Some(cfg.recovery.clone()),
            ..GcopssConfig::default()
        };
        let built = ScenarioSpec::new(&net, &w.map, &w.population, &w.trace)
            .gcopss(sys)
            .build()
            .into_gcopss();
        let t = telemetry.as_mut().map(|c| (&mut **c, label.as_str()));
        let run = run_chaos(built.sim, &plan, horizon, t);
        rows.push(make_row(label, loss, &run, &w, cfg));
    }

    for &loss in &cfg.loss_rates {
        let plan = chaos_plan(cfg, loss, &links, crash, span);
        let label = format!("ip-loss{loss:.2}");
        let sys = IpConfig {
            metrics_mode: MetricsMode::StatsOnly,
            delivery_log: true,
            server_count: cfg.rp_count,
            warmup: cfg.warmup,
            recovery: Some(cfg.recovery.clone()),
            ..IpConfig::default()
        };
        let built = ScenarioSpec::new(&net, &w.map, &w.population, &w.trace)
            .ip_server(sys)
            .build()
            .into_ip_server();
        let t = telemetry.as_mut().map(|c| (&mut **c, label.as_str()));
        let run = run_chaos(built.sim, &plan, horizon, t);
        rows.push(make_row(label, loss, &run, &w, cfg));
    }

    for &loss in &cfg.loss_rates {
        let plan = chaos_plan(cfg, loss, &links, crash, span);
        let label = format!("ndn-loss{loss:.2}");
        let sys = NdnBaselineConfig {
            metrics_mode: MetricsMode::StatsOnly,
            delivery_log: true,
            warmup: cfg.warmup,
            recovery: Some(cfg.recovery.clone()),
            ..NdnBaselineConfig::default()
        };
        let built = ScenarioSpec::new(&net, &w.map, &w.population, &w.trace)
            .ndn_baseline(sys)
            .build()
            .into_ndn_baseline();
        let t = telemetry.as_mut().map(|c| (&mut **c, label.as_str()));
        let run = run_chaos(built.sim, &plan, horizon, t);
        rows.push(make_row(label, loss, &run, &w, cfg));
    }

    FailoverOutput { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature failure sweep: the chaos must bite (drops observed, RP
    /// failover fires) and loss-free G-COPSS must fully recover after the
    /// last repair.
    #[test]
    fn mini_sweep_recovers_when_lossless() {
        // Span ≈ 9.6 s: the chaos window ([20 %, 60 %] plus a 0.5 s outage)
        // ends around t = 8.3 s, leaving a non-vacuous post-repair window
        // after the 2 s settle margin.
        let cfg = FailoverConfig {
            workload: WorkloadParams {
                players: 60,
                updates: 4_000,
                ..WorkloadParams::default()
            },
            loss_rates: vec![0.0],
            flaps: 2,
            outage: SimDuration::from_millis(500),
            settle: SimDuration::from_secs(2),
            drain: SimDuration::from_secs(10),
            ..FailoverConfig::default()
        };
        let out = run(&cfg);
        assert_eq!(out.rows.len(), 3);
        for r in &out.rows {
            assert!(r.delivered > 0, "{}: nothing delivered", r.label);
            assert!(
                (0.0..=1.0).contains(&r.delivery_ratio),
                "{}: ratio {}",
                r.label,
                r.delivery_ratio
            );
            assert!(r.last_repair.is_some(), "{}: chaos never played", r.label);
        }
        let g = &out.rows[0];
        assert!(g.label.starts_with("gcopss"));
        assert!(
            g.link_lost + g.node_lost > 0,
            "chaos drew no blood ({} link, {} node)",
            g.link_lost,
            g.node_lost
        );
        assert!(g.rp_failovers >= 1, "RP crash did not trigger failover");
        assert!(g.post_expected > 0, "post-repair window is vacuous");
        assert!(
            (g.post_repair_ratio - 1.0).abs() < 1e-9,
            "G-COPSS did not fully recover: post-repair ratio {} over {} expected",
            g.post_repair_ratio,
            g.post_expected
        );
    }
}
