//! Table II: the whole event trace on IP (6 servers), G-COPSS (6 RPs) and
//! hybrid-G-COPSS (6 IP multicast groups), when there is no congestion.

use crate::scenario::{HybridConfig, NetworkSpec, ScenarioSpec};
use crate::MetricsMode;

use super::rp_sweep::{run_gcopss_once_with, run_ip_once_with, summarize};
use super::{RunSummary, TelemetryCapture, Workload, WorkloadParams};

/// Configuration of the Table II run.
#[derive(Debug, Clone)]
pub struct FullTraceConfig {
    /// Workload; the paper uses the full 1,686,905-update trace — set
    /// `updates` accordingly, or smaller for quick runs.
    pub workload: WorkloadParams,
    /// Topology seed.
    pub net_seed: u64,
    /// RPs / servers / IP multicast groups (paper: 6 of each).
    pub cores: usize,
}

impl Default for FullTraceConfig {
    fn default() -> Self {
        Self {
            workload: WorkloadParams {
                updates: 1_686_905,
                ..WorkloadParams::default()
            },
            net_seed: 7,
            cores: 6,
        }
    }
}

/// Table II output: one row per system.
#[derive(Debug, Clone)]
pub struct FullTraceOutput {
    /// `IP Server` row.
    pub ip: RunSummary,
    /// `G-COPSS` row.
    pub gcopss: RunSummary,
    /// `hybrid-G-COPSS` row.
    pub hybrid: RunSummary,
}

/// Runs the three systems over the same workload.
#[must_use]
pub fn run(cfg: &FullTraceConfig) -> FullTraceOutput {
    run_with(cfg, None)
}

/// Runs the three systems, optionally harvesting one telemetry report per
/// system run.
#[must_use]
pub fn run_with(
    cfg: &FullTraceConfig,
    mut telemetry: Option<&mut TelemetryCapture>,
) -> FullTraceOutput {
    let w = Workload::counter_strike(&cfg.workload);
    let net = NetworkSpec::default_backbone(cfg.net_seed);

    let t = telemetry.as_mut().map(|c| (&mut **c, "ip"));
    let (world, bytes) = run_ip_once_with(&w, &net, cfg.cores, MetricsMode::StatsOnly, t);
    let ip = summarize(format!("IP server x{}", cfg.cores), &world, bytes);

    let t = telemetry.as_mut().map(|c| (&mut **c, "gcopss"));
    let (world, bytes) = run_gcopss_once_with(&w, &net, cfg.cores, None, MetricsMode::StatsOnly, t);
    let gcopss = summarize(format!("G-COPSS {} RPs", cfg.cores), &world, bytes);

    let hybrid = {
        let c = HybridConfig {
            metrics_mode: MetricsMode::StatsOnly,
            group_count: cfg.cores as u32,
            ..HybridConfig::default()
        };
        let mut built = ScenarioSpec::new(&net, &w.map, &w.population, &w.trace)
            .hybrid(c)
            .build()
            .into_hybrid();
        if let Some(cap) = telemetry.as_mut() {
            cap.arm(&mut built.sim);
        }
        built.sim.run();
        let bytes = built.sim.total_link_bytes();
        if let Some(cap) = telemetry.as_mut() {
            cap.collect(&built.sim, "hybrid");
        }
        summarize(
            format!("hybrid-G-COPSS {} groups", cfg.cores),
            &built.sim.into_world(),
            bytes,
        )
    };

    FullTraceOutput { ip, gcopss, hybrid }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Miniature Table II: the paper's two orderings must hold —
    /// latency: hybrid ≤ G-COPSS < IP; load: G-COPSS < hybrid < IP.
    #[test]
    fn mini_full_trace_orderings() {
        let cfg = FullTraceConfig {
            workload: WorkloadParams {
                updates: 6_000,
                players: 150,
                ..WorkloadParams::default()
            },
            ..FullTraceConfig::default()
        };
        let out = run(&cfg);
        // Latency: hybrid best (fast IP core, no RP detour), IP worst.
        assert!(
            out.hybrid.mean_latency <= out.gcopss.mean_latency,
            "hybrid {} vs gcopss {}",
            out.hybrid.mean_latency,
            out.gcopss.mean_latency
        );
        assert!(
            out.gcopss.mean_latency < out.ip.mean_latency,
            "gcopss {} vs ip {}",
            out.gcopss.mean_latency,
            out.ip.mean_latency
        );
        // Network load: G-COPSS least, hybrid in between, IP most.
        assert!(
            out.gcopss.network_bytes < out.hybrid.network_bytes,
            "gcopss {} vs hybrid {}",
            out.gcopss.network_bytes,
            out.hybrid.network_bytes
        );
        assert!(
            out.hybrid.network_bytes < out.ip.network_bytes,
            "hybrid {} vs ip {}",
            out.hybrid.network_bytes,
            out.ip.network_bytes
        );
    }
}
