//! Fig. 4: microbenchmark latency CDFs of G-COPSS, the NDN baseline, and
//! the IP server, on the 6-router testbed with 62 players.

use gcopss_sim::{SimDuration, SimTime};

use crate::ndn_baseline::NdnClientConfig;
use crate::scenario::{
    GcopssConfig, IpConfig, NdnBaselineConfig, NetworkSpec, ScenarioSpec,
};
use crate::{MetricsMode, SimParams};

use super::{rp_sweep::summarize, RunSummary, TelemetryCapture, Workload};

/// Configuration of the microbenchmark (paper defaults: 1 minute, 12,440
/// events; scale `duration` down for quick runs).
#[derive(Debug, Clone)]
pub struct MicrobenchConfig {
    /// Workload seed.
    pub seed: u64,
    /// Trace duration (paper: 60 s).
    pub duration: SimDuration,
    /// NDN baseline pipelining window (paper: 3).
    pub ndn_window: u32,
    /// NDN baseline accumulation interval `t`.
    pub ndn_accum: SimDuration,
    /// CDF resolution.
    pub cdf_points: usize,
}

impl Default for MicrobenchConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            duration: SimDuration::from_secs(60),
            ndn_window: 3,
            ndn_accum: SimDuration::from_millis(100),
            cdf_points: 100,
        }
    }
}

/// One system's microbenchmark result.
#[derive(Debug, Clone)]
pub struct SystemResult {
    /// Table row.
    pub summary: RunSummary,
    /// Latency CDF `(ms, cumulative fraction)`.
    pub cdf: Vec<(f64, f64)>,
    /// Fraction of deliveries above 55 ms (the paper's tail remark).
    pub frac_over_55ms: f64,
}

/// The full Fig. 4 output.
#[derive(Debug, Clone)]
pub struct MicrobenchOutput {
    /// G-COPSS on the testbed (1 RP at R1).
    pub gcopss: SystemResult,
    /// The IP server baseline (1 server at R1).
    pub ip: SystemResult,
    /// The VoCCN-style NDN baseline.
    pub ndn: SystemResult,
}

fn system_result(label: &str, mut world: crate::GameWorld, bytes: u64, points: usize) -> SystemResult {
    let summary = summarize(label.to_string(), &world, bytes);
    let over = 1.0
        - world
            .metrics
            .samples_mut()
            .fraction_at_most(SimDuration::from_millis(55));
    let cdf = world
        .metrics
        .samples_mut()
        .cdf(points)
        .into_iter()
        .map(|(d, f)| (d.as_millis_f64(), f))
        .collect();
    SystemResult {
        summary,
        cdf,
        frac_over_55ms: over,
    }
}

/// Runs all three systems on the testbed and returns their CDFs.
#[must_use]
pub fn run(cfg: &MicrobenchConfig) -> MicrobenchOutput {
    run_with(cfg, None)
}

/// Runs all three systems, optionally harvesting one telemetry report per
/// system run.
#[must_use]
pub fn run_with(
    cfg: &MicrobenchConfig,
    mut telemetry: Option<&mut TelemetryCapture>,
) -> MicrobenchOutput {
    let w = Workload::microbenchmark(cfg.seed, cfg.duration);
    let net = NetworkSpec::Testbed;

    // G-COPSS: RP at R1 (one RP, as in the paper's testbed).
    let gcopss = {
        let c = GcopssConfig {
            params: SimParams::microbenchmark(),
            metrics_mode: MetricsMode::Full,
            rp_count: 1,
            ..GcopssConfig::default()
        };
        let mut built = ScenarioSpec::new(&net, &w.map, &w.population, &w.trace)
            .gcopss(c)
            .build()
            .into_gcopss();
        if let Some(cap) = telemetry.as_mut() {
            cap.arm(&mut built.sim);
        }
        built.sim.run();
        let bytes = built.sim.total_link_bytes();
        if let Some(cap) = telemetry.as_mut() {
            cap.collect(&built.sim, "gcopss");
        }
        system_result("G-COPSS", built.sim.into_world(), bytes, cfg.cdf_points)
    };

    // IP server at R1.
    let ip = {
        let c = IpConfig {
            params: SimParams::microbenchmark(),
            metrics_mode: MetricsMode::Full,
            server_count: 1,
            ..IpConfig::default()
        };
        let mut built = ScenarioSpec::new(&net, &w.map, &w.population, &w.trace)
            .ip_server(c)
            .build()
            .into_ip_server();
        if let Some(cap) = telemetry.as_mut() {
            cap.arm(&mut built.sim);
        }
        built.sim.run();
        let bytes = built.sim.total_link_bytes();
        if let Some(cap) = telemetry.as_mut() {
            cap.collect(&built.sim, "ip");
        }
        system_result("IP server", built.sim.into_world(), bytes, cfg.cdf_points)
    };

    // NDN baseline: bounded horizon because consumers poll forever.
    let ndn = {
        let c = NdnBaselineConfig {
            params: SimParams::microbenchmark(),
            metrics_mode: MetricsMode::Full,
            client: NdnClientConfig {
                window: cfg.ndn_window,
                accum_interval: cfg.ndn_accum,
                ..NdnClientConfig::default()
            },
            ..NdnBaselineConfig::default()
        };
        let warmup = c.warmup;
        let mut built = ScenarioSpec::new(&net, &w.map, &w.population, &w.trace)
            .ndn_baseline(c)
            .build()
            .into_ndn_baseline();
        if let Some(cap) = telemetry.as_mut() {
            cap.arm(&mut built.sim);
        }
        let horizon = SimTime::ZERO + warmup + cfg.duration + SimDuration::from_secs(120);
        built.sim.run_until(horizon);
        let bytes = built.sim.total_link_bytes();
        if let Some(cap) = telemetry.as_mut() {
            cap.collect(&built.sim, "ndn");
        }
        system_result("NDN", built.sim.into_world(), bytes, cfg.cdf_points)
    };

    MicrobenchOutput { gcopss, ip, ndn }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Miniature Fig. 4: the qualitative ordering must hold.
    #[test]
    fn mini_microbench_ordering() {
        let cfg = MicrobenchConfig {
            duration: SimDuration::from_secs(4),
            ..MicrobenchConfig::default()
        };
        let out = run(&cfg);
        let g = out.gcopss.summary.mean_latency;
        let i = out.ip.summary.mean_latency;
        let n = out.ndn.summary.mean_latency;
        assert!(g < i, "G-COPSS ({g}) must beat IP ({i})");
        assert!(i < n, "IP ({i}) must beat NDN ({n})");
        // Queueing at the melted-down NDN routers builds with trace length;
        // even this short run must show an order of magnitude vs G-COPSS.
        assert!(n > g * 10, "NDN should melt down ({n} vs G-COPSS {g})");
        // CDFs are monotone and end at 1.0.
        for s in [&out.gcopss, &out.ip, &out.ndn] {
            assert!(!s.cdf.is_empty(), "{}", s.summary.label);
            assert!((s.cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
        }
        // G-COPSS delivered everything it should.
        assert!(out.gcopss.summary.delivered > 0);
    }
}
