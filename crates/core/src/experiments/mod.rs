//! Experiment drivers: one per table/figure of the paper's §V.
//!
//! Every driver is a pure function from a (scalable) configuration to
//! structured results; the `gcopss-bench` binaries print them in the
//! paper's row/series format. All drivers are deterministic given their
//! seeds.
//!
//! | Paper artifact | Driver |
//! |---|---|
//! | Fig. 3c/3d (trace characterization) | [`trace_stats`] |
//! | Fig. 4 (microbenchmark latency CDFs) | [`microbench`] |
//! | Table I + Fig. 5 (RPs vs servers, congestion, auto-balancing) | [`rp_sweep`] |
//! | Fig. 6 (scalability in #players) | [`player_sweep`] |
//! | Table II (full trace: IP vs G-COPSS vs hybrid) | [`full_trace`] |
//! | Table III (player movement, QR vs cyclic multicast) | [`movement`] |
//! | Design-choice sweeps (groups, thresholds, windows) | [`ablation`] |
//! | Failure sweep (delivery ratio + recovery under chaos) | [`failover`] |
//! | Delivery audit (per-pair causal accounting under chaos) | [`audit`] |
//! | Rejoin storm (chunked-delta vs full-snapshot catch-up) | [`rejoin`] |
//! | ST/FIB lookup scaling, 1k → 1M(+) entries | [`scale`] |
//! | Overload sweep (0.5×–4× load, queue regimes, rate adapt) | [`overload`] |
//! | Adaptive control (streams-driven RP moves + cache classes) | [`adaptive`] |

pub mod ablation;
pub mod adaptive;
pub mod audit;
pub mod failover;
pub mod full_trace;
pub mod microbench;
pub mod movement;
pub mod overload;
pub mod player_sweep;
pub mod rejoin;
pub mod rp_sweep;
pub mod scale;
pub mod trace_stats;

use std::sync::Arc;

use gcopss_game::trace::{CsTraceGenerator, CsTraceParams, TraceEvent};
use gcopss_game::{GameMap, ObjectModel, ObjectModelParams, PlayerPopulation};
use gcopss_sim::json::Json;
use gcopss_sim::{SimDuration, Simulator, TelemetryConfig, TelemetryReport, TimeSeriesConfig};

use crate::{GPacket, GameWorld};

/// Collects one [`TelemetryReport`] per simulator run of a driver.
///
/// Drivers take `Option<&mut TelemetryCapture>`: `None` keeps telemetry off
/// (zero cost), `Some` arms every simulator before it runs and harvests a
/// report after. Reports are numbered in run order; the index becomes the
/// Chrome-trace process id, so all runs of one experiment share a single
/// trace file with one "process" lane per run.
#[derive(Debug, Default)]
pub struct TelemetryCapture {
    cfg: TelemetryConfig,
    timeseries: Option<TimeSeriesConfig>,
    /// Harvested reports, in run order.
    pub reports: Vec<TelemetryReport>,
    /// Harvested time-series documents, `(label, frames)` per run that had
    /// the sampler armed.
    pub series: Vec<(String, Json)>,
}

impl TelemetryCapture {
    /// Creates a capture applying `cfg` to every run.
    #[must_use]
    pub fn new(cfg: TelemetryConfig) -> Self {
        Self {
            cfg,
            timeseries: None,
            reports: Vec::new(),
            series: Vec::new(),
        }
    }

    /// Additionally arms the periodic time-series sampler on every run;
    /// the captured frames land in [`TelemetryCapture::series`].
    #[must_use]
    pub fn with_timeseries(mut self, cfg: TimeSeriesConfig) -> Self {
        self.timeseries = Some(cfg);
        self
    }

    /// Enables telemetry on a simulator about to run.
    pub fn arm(&self, sim: &mut Simulator<GPacket, GameWorld>) {
        sim.enable_telemetry(self.cfg.clone());
        if let Some(ts) = &self.timeseries {
            sim.enable_timeseries(ts.clone());
        }
    }

    /// Harvests the report of a finished run (call before `into_world`).
    pub fn collect(&mut self, sim: &Simulator<GPacket, GameWorld>, label: &str) {
        let pid = self.reports.len() as u64;
        self.reports.push(sim.telemetry_report(label, pid));
        if let Some(frames) = sim.timeseries_json() {
            self.series.push((label.to_string(), frames));
        }
    }
}

/// Workload shared by the large-scale experiments (§V-B): the paper's map,
/// a 414-player population and a synthetic Counter-Strike trace.
pub struct Workload {
    /// The 5×5 hierarchical map.
    pub map: Arc<GameMap>,
    /// The object placement (for brokers and statistics).
    pub objects: ObjectModel,
    /// Player placement.
    pub population: PlayerPopulation,
    /// The shared trace.
    pub trace: Arc<Vec<TraceEvent>>,
}

/// Parameters of [`Workload::counter_strike`].
#[derive(Debug, Clone)]
pub struct WorkloadParams {
    /// Master seed.
    pub seed: u64,
    /// Number of players (paper: 414).
    pub players: usize,
    /// Number of update events to generate.
    pub updates: usize,
    /// Network-wide mean inter-arrival (paper: ≈2.4 ms at peak).
    pub mean_interarrival: SimDuration,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        Self {
            seed: 42,
            players: 414,
            updates: 100_000,
            mean_interarrival: SimDuration::from_micros(2_400),
        }
    }
}

impl Workload {
    /// Builds the §V-B workload: 414 players (4–20 per area), heavy-tailed
    /// per-player update rates, objects 80–120 per area.
    #[must_use]
    pub fn counter_strike(p: &WorkloadParams) -> Self {
        let map = Arc::new(GameMap::paper_map());
        let objects = ObjectModel::generate(p.seed ^ 0x0b, &map, &ObjectModelParams::default());
        let population =
            PlayerPopulation::random_per_area(p.seed ^ 0x17, &map, (4, 20)).resize(p.players);
        let gen = CsTraceGenerator::new(
            p.seed ^ 0x23,
            &population,
            CsTraceParams {
                total_updates: p.updates,
                mean_interarrival_ns: p.mean_interarrival.as_nanos(),
                ..CsTraceParams::default()
            },
        );
        let trace = Arc::new(gen.generate(p.seed ^ 0x31, &map, &objects, &population));
        Self {
            map,
            objects,
            population,
            trace,
        }
    }

    /// Builds the §V-A microbenchmark workload: 62 players (2 per area),
    /// `duration` of publishing at 100–500 ms intervals.
    #[must_use]
    pub fn microbenchmark(seed: u64, duration: SimDuration) -> Self {
        use gcopss_game::trace::{microbenchmark_trace, MicrobenchParams};
        let map = Arc::new(GameMap::paper_map());
        let objects = ObjectModel::generate(seed ^ 0x0b, &map, &ObjectModelParams::default());
        let population = PlayerPopulation::uniform_per_area(&map, 2);
        let trace = Arc::new(microbenchmark_trace(
            seed ^ 0x23,
            &map,
            &objects,
            &population,
            &MicrobenchParams {
                duration_ns: duration.as_nanos(),
                ..MicrobenchParams::default()
            },
        ));
        Self {
            map,
            objects,
            population,
            trace,
        }
    }
}

/// Summary of one system run: the quantities the paper tabulates.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Row label (system + configuration).
    pub label: String,
    /// Updates published.
    pub published: u64,
    /// Deliveries recorded (excluding self-deliveries).
    pub delivered: u64,
    /// Mean end-to-end update latency.
    pub mean_latency: SimDuration,
    /// Largest observed latency.
    pub max_latency: SimDuration,
    /// Aggregate network load in bytes (sum over all links).
    pub network_bytes: u64,
}

impl RunSummary {
    /// Network load in the paper's GB unit.
    #[must_use]
    pub fn network_gb(&self) -> f64 {
        self.network_bytes as f64 / 1e9
    }

    /// One formatted table row: `label  latency_ms  load_gb`.
    #[must_use]
    pub fn row(&self) -> String {
        format!(
            "{:<28} {:>14.2} {:>12.3}",
            self.label,
            self.mean_latency.as_millis_f64(),
            self.network_gb()
        )
    }
}
