//! Table III: snapshot convergence time for moving players, comparing the
//! query/response (QR, windows 5 and 15) and cyclic-multicast dissemination
//! modes, with 3 brokers.

use std::sync::Arc;

use gcopss_game::{MoveType, MovementModel, MovementParams};
use gcopss_names::Name;
use gcopss_sim::{SimDuration, SimTime};

use crate::broker::{partition_cds_to_brokers, MovingPlayerClient, SnapshotBroker, SnapshotMode};
use crate::scenario::{ClientFactory, ExtraHost, GcopssConfig, NetworkSpec, ScenarioSpec};
use crate::{MetricsMode, SimParams};

use super::{TelemetryCapture, Workload, WorkloadParams};

/// Configuration of the movement experiment.
#[derive(Debug, Clone)]
pub struct MovementConfig {
    /// The update workload running underneath the movements.
    pub workload: WorkloadParams,
    /// Topology seed.
    pub net_seed: u64,
    /// RPs for the update plane (paper: 3).
    pub rp_count: usize,
    /// Snapshot brokers (paper: 3).
    pub broker_count: usize,
    /// Per-player interval between moves. The paper uses 5–35 min over a
    /// 7-hour trace; scale this with the trace length so every run sees
    /// enough moves.
    pub move_interval: (SimDuration, SimDuration),
    /// How many players execute movement schedules (the rest stay put).
    /// Scaled-down traces must also scale the *move rate* — the paper's
    /// 414 movers over 7 hours average ≈0.35 moves/s network-wide; pushing
    /// all 414 through a 40 s trace would melt the brokers' access links
    /// instead of measuring dissemination.
    pub mover_count: usize,
    /// Pre-apply the whole trace to the brokers' object models so snapshot
    /// sizes are in the paper's end-of-trace regime (579–1,740 B) from the
    /// first move.
    pub prewarm: bool,
    /// Extra simulated time after the last trace event for fetches to
    /// finish.
    pub drain: SimDuration,
}

impl Default for MovementConfig {
    fn default() -> Self {
        Self {
            workload: WorkloadParams::default(),
            net_seed: 7,
            rp_count: 3,
            broker_count: 3,
            move_interval: (
                SimDuration::from_secs(300),
                SimDuration::from_secs(2_100),
            ),
            mover_count: 80,
            prewarm: true,
            drain: SimDuration::from_secs(60),
        }
    }
}

/// One Table III row: statistics of one movement type under one mode.
#[derive(Debug, Clone, PartialEq)]
pub struct MoveTypeRow {
    /// The movement classification.
    pub move_type: MoveType,
    /// Moves of this type observed.
    pub count: usize,
    /// Mean number of leaf-CD snapshots downloaded.
    pub leaf_cds: f64,
    /// Mean convergence time.
    pub mean: SimDuration,
    /// Half-width of the 95% confidence interval.
    pub ci95: SimDuration,
    /// Snapshot payload bytes received by the movers (sum).
    pub bytes: u64,
}

/// The result of one mode's run.
#[derive(Debug, Clone)]
pub struct MovementOutput {
    /// Mode label (`QR, window = 5` / `Cyclic-Multicast` …).
    pub label: String,
    /// Rows in Table III order.
    pub rows: Vec<MoveTypeRow>,
    /// Overall convergence mean across all snapshot-requiring moves.
    pub total_mean: SimDuration,
    /// Overall 95% CI half-width.
    pub total_ci95: SimDuration,
    /// Total moves completed.
    pub moves: usize,
    /// Total snapshot payload bytes received by movers.
    pub snapshot_bytes: u64,
    /// Aggregate network load of the whole run (updates + snapshots).
    pub network_bytes: u64,
    /// Snapshot objects served by brokers (QR responses or cyclic sends).
    pub broker_served: u64,
}

fn mean_ci(samples: &[SimDuration]) -> (SimDuration, SimDuration) {
    if samples.is_empty() {
        return (SimDuration::ZERO, SimDuration::ZERO);
    }
    let n = samples.len() as f64;
    let mean = samples.iter().map(|d| d.as_secs_f64()).sum::<f64>() / n;
    let var = samples
        .iter()
        .map(|d| (d.as_secs_f64() - mean).powi(2))
        .sum::<f64>()
        / n.max(1.0);
    let ci = 1.96 * (var / n).sqrt();
    (
        SimDuration::from_secs_f64(mean),
        SimDuration::from_secs_f64(ci),
    )
}

/// Runs one snapshot mode.
#[must_use]
pub fn run_mode(cfg: &MovementConfig, mode: SnapshotMode) -> MovementOutput {
    run_mode_with(cfg, mode, None)
}

/// Runs one snapshot mode, optionally harvesting a telemetry report.
#[must_use]
pub fn run_mode_with(
    cfg: &MovementConfig,
    mode: SnapshotMode,
    mut telemetry: Option<&mut TelemetryCapture>,
) -> MovementOutput {
    let w = Workload::counter_strike(&cfg.workload);
    let net = NetworkSpec::default_backbone(cfg.net_seed);
    let trace_span = w.trace.last().map_or(0, |e| e.time_ns);

    // Movement schedule for every player.
    let model = MovementModel::new(MovementParams {
        interval_ns: (cfg.move_interval.0.as_nanos(), cfg.move_interval.1.as_nanos()),
        ..MovementParams::default()
    });
    let mut moves = model.generate(cfg.workload.seed ^ 0x77, &w.map, &w.population, trace_span);
    // Spread the movers across the whole population (player ids are
    // assigned area by area, so a prefix would bias toward upper layers).
    let stride = (w.population.len() / cfg.mover_count.max(1)).max(1);
    moves.retain(|m| m.player.index() % stride == 0);

    // Brokers with (optionally prewarmed) object models.
    let mut broker_objects = w.objects.clone();
    if cfg.prewarm {
        for e in w.trace.iter() {
            broker_objects.apply_update(e.object, e.size);
        }
    }
    let serving = partition_cds_to_brokers(&w.map, cfg.broker_count);
    let pool = net.rp_pool_preview();
    let params = SimParams::default();
    let mut extra_hosts = Vec::new();
    let mut extra_rps = Vec::new();
    for (i, cds) in serving.into_iter().enumerate() {
        let routes = SnapshotBroker::fib_prefixes(&cds);
        // Offset past the game-RP placements so brokers get their own
        // cores, and anchor each broker's /snapcast groups at a dedicated
        // RP on that same core: bulk snapshot streams never queue behind
        // the latency-critical game RPs.
        let attach = pool[(cfg.rp_count + i) % pool.len()];
        let snapcast_prefixes: Vec<Name> = cds
            .iter()
            .map(|cd| crate::broker::snapcast_ns().join(cd))
            .collect();
        extra_rps.push((snapcast_prefixes, attach));
        let objects = broker_objects.clone();
        let trace = Arc::clone(&w.trace);
        let p = params.clone();
        extra_hosts.push(ExtraHost {
            attach_to: attach,
            routes,
            make: Box::new(move |_node, edge| {
                Box::new(SnapshotBroker::new(p, edge, cds, objects, trace))
            }),
        });
    }

    let gcfg = GcopssConfig {
        params: params.clone(),
        metrics_mode: MetricsMode::StatsOnly,
        rp_count: cfg.rp_count,
        extra_rps,
        ..GcopssConfig::default()
    };
    let warmup = gcfg.warmup;
    let map = Arc::clone(&w.map);
    let pop = &w.population;
    let moves_ref = &moves;
    let factory: ClientFactory<'_> = Box::new(move |p, edge, cursor| {
        let my_moves: Vec<_> = moves_ref
            .iter()
            .filter(|m| m.player == p)
            .cloned()
            .collect();
        Box::new(MovingPlayerClient::new(
            p,
            edge,
            pop.area_of(p),
            Arc::clone(&map),
            cursor,
            my_moves,
            warmup,
            mode,
        ))
    });
    let mut built = ScenarioSpec::new(&net, &w.map, &w.population, &w.trace)
        .gcopss(gcfg)
        .extra_hosts(extra_hosts)
        .client_factory(factory)
        .build()
        .into_gcopss();
    if let Some(cap) = telemetry.as_mut() {
        cap.arm(&mut built.sim);
    }
    let horizon = SimTime::ZERO + warmup + SimDuration::from_nanos(trace_span) + cfg.drain;
    built.sim.run_until(horizon);
    let network_bytes = built.sim.total_link_bytes();
    let label = match mode {
        SnapshotMode::QueryResponse { window } => format!("qr-w{window}"),
        SnapshotMode::CyclicMulticast => "cyclic".to_string(),
    };
    if let Some(cap) = telemetry.as_mut() {
        cap.collect(&built.sim, &label);
    }
    let world = built.sim.into_world();

    // Group records by movement type.
    let mut rows = Vec::new();
    let mut all = Vec::new();
    let mut snapshot_bytes = 0u64;
    for t in MoveType::all() {
        let recs: Vec<_> = world
            .convergence
            .iter()
            .filter(|r| r.move_type == t && !r.online_join)
            .collect();
        let samples: Vec<SimDuration> = recs.iter().map(|r| r.convergence).collect();
        let bytes: u64 = recs.iter().map(|r| r.bytes).sum();
        snapshot_bytes += bytes;
        // Descending moves converge instantly and are excluded from the
        // total (the paper's total covers snapshot-requiring moves).
        if t != MoveType::ToLowerLayer {
            all.extend(samples.iter().copied());
        }
        let (mean, ci95) = mean_ci(&samples);
        rows.push(MoveTypeRow {
            move_type: t,
            count: recs.len(),
            leaf_cds: if recs.is_empty() {
                0.0
            } else {
                recs.iter().map(|r| r.leaf_cds as f64).sum::<f64>() / recs.len() as f64
            },
            mean,
            ci95,
            bytes,
        });
    }
    let (total_mean, total_ci95) = mean_ci(&all);
    let label = match mode {
        SnapshotMode::QueryResponse { window } => format!("QR, window = {window}"),
        SnapshotMode::CyclicMulticast => "Cyclic-Multicast".to_string(),
    };
    MovementOutput {
        label,
        rows,
        total_mean,
        total_ci95,
        moves: world.convergence.len(),
        snapshot_bytes,
        network_bytes,
        broker_served: world.counter("broker-qr-served") + world.counter("broker-cyclic-sent"),
    }
}

/// Runs the paper's three modes: QR window 5, QR window 15, cyclic.
#[must_use]
pub fn run_all(cfg: &MovementConfig) -> Vec<MovementOutput> {
    run_all_with(cfg, None)
}

/// [`run_all`] with optional telemetry capture (one report per mode).
#[must_use]
pub fn run_all_with(
    cfg: &MovementConfig,
    mut telemetry: Option<&mut TelemetryCapture>,
) -> Vec<MovementOutput> {
    [
        SnapshotMode::QueryResponse { window: 5 },
        SnapshotMode::QueryResponse { window: 15 },
        SnapshotMode::CyclicMulticast,
    ]
    .into_iter()
    .map(|mode| run_mode_with(cfg, mode, telemetry.as_deref_mut()))
    .collect()
}

/// The extra CD namespaces the movement scenario anchors at RP 0.
#[must_use]
pub fn extra_namespaces() -> Vec<Name> {
    crate::broker::snapcast_rp_prefixes()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_cfg() -> MovementConfig {
        MovementConfig {
            workload: WorkloadParams {
                updates: 3_000,
                players: 100,
                ..WorkloadParams::default()
            },
            // Trace spans ~7.2 s; 12 movers, one move each every 2–4 s.
            move_interval: (SimDuration::from_secs(2), SimDuration::from_secs(4)),
            mover_count: 12,
            drain: SimDuration::from_secs(120),
            ..MovementConfig::default()
        }
    }

    #[test]
    fn qr_mode_completes_moves() {
        let out = run_mode(&mini_cfg(), SnapshotMode::QueryResponse { window: 15 });
        assert!(out.moves > 0, "no moves completed");
        assert!(out.snapshot_bytes > 0);
        assert!(out.total_mean > SimDuration::ZERO);
        // Snapshot-requiring rows have positive convergence.
        let any_fetch = out
            .rows
            .iter()
            .any(|r| r.move_type != MoveType::ToLowerLayer && r.count > 0);
        assert!(any_fetch);
    }

    #[test]
    fn cyclic_mode_completes_moves() {
        let out = run_mode(&mini_cfg(), SnapshotMode::CyclicMulticast);
        assert!(out.moves > 0, "no moves completed");
        assert!(out.snapshot_bytes > 0);
        assert!(out.total_mean > SimDuration::ZERO);
    }

    #[test]
    fn wider_qr_window_is_faster() {
        let cfg = mini_cfg();
        let qr5 = run_mode(&cfg, SnapshotMode::QueryResponse { window: 5 });
        let qr15 = run_mode(&cfg, SnapshotMode::QueryResponse { window: 15 });
        assert!(
            qr15.total_mean < qr5.total_mean,
            "window 15 ({}) should beat window 5 ({})",
            qr15.total_mean,
            qr5.total_mean
        );
    }
}
