//! Overload sweep (`exp_overload`): graceful degradation under offered
//! loads from 0.5× to 4× the infrastructure's service capacity.
//!
//! Every run drives the same synthetic workload shape at a scaled update
//! rate (offered load × the aggregate RP service rate) through one of the
//! evaluated systems, under one of three queue regimes:
//!
//! * **unbounded** — the pre-overload engine: queues grow without limit,
//!   nothing is dropped, latency diverges. The control arm.
//! * **droptail** — bounded FIFO queues with tail rejection and no
//!   priority: overload drops whatever arrives last, control plane
//!   included, so recovery traffic dies exactly when it is needed.
//! * **aqm** — bounded queues with the CoDel-style sojourn AQM, priority
//!   classes (control preempts bulk, stale position updates shed first),
//!   sojourn marking, and client-side multiplicative rate adaptation.
//!
//! The headline numbers are the control-plane survival ratio (the
//! fraction of control-class queue admissions not matched by a
//! control-class overload drop — the AQM+priority regime must hold it at
//! ≈1.0 while drop-tail degrades), the data-plane delivery ratio against
//! the AoI model, latency percentiles, and the per-class drop accounting
//! (`queue-full` / `aqm-shed` / `stale-superseded` / `rate-limited`).
//! G-COPSS AQM runs can additionally be audited end-to-end: with every
//! overload drop recorded on the packet's lineage (source sheds included,
//! via `Ctx::lineage_shed`), the delivery auditor must explain 100 % of
//! the owed pairs with zero unexplained losses — overload degrades
//! *gracefully*, never *silently*.

use gcopss_sim::{
    AdmissionPolicy, LineageConfig, OverloadConfig, SimDuration, SimTime, Simulator,
    TelemetryConfig,
};

use crate::scenario::{
    expected_deliveries, GcopssConfig, IpConfig, NdnBaselineConfig, NetworkSpec, ScenarioSpec,
};
use crate::{GPacket, GameWorld, MetricsMode, RateAdaptConfig, RecoveryConfig};

use super::audit::register_expectations;
use super::{TelemetryCapture, Workload, WorkloadParams};

/// The queue regime of one run arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueRegime {
    /// Unbounded queues, no overload control (the pre-overload engine).
    Unbounded,
    /// Bounded queues, tail rejection, no priorities, no marking.
    DropTail,
    /// Bounded queues, CoDel-style AQM, priority classes, sojourn marks,
    /// and client rate adaptation where the system's clients support it.
    Aqm,
}

impl QueueRegime {
    /// Stable label fragment.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Unbounded => "unbounded",
            Self::DropTail => "droptail",
            Self::Aqm => "aqm",
        }
    }
}

/// Configuration of the overload sweep.
#[derive(Debug, Clone)]
pub struct OverloadSweepConfig {
    /// Workload shape (players, updates, seed). `mean_interarrival` is
    /// overridden per run: offered load × [`Self::capacity_interarrival`].
    pub workload: WorkloadParams,
    /// Topology seed.
    pub net_seed: u64,
    /// Initial RPs (G-COPSS) and game servers (IP baseline).
    pub rp_count: usize,
    /// Offered loads as multiples of service capacity (paper-style sweep:
    /// 0.5×, 1×, 2×, 4×).
    pub loads: Vec<f64>,
    /// The network-wide mean update inter-arrival that saturates the
    /// aggregate RP service rate — offered load 1×. The default derives
    /// from the §V-B calibration: `rp_proc / rp_count`.
    pub capacity_interarrival: SimDuration,
    /// Bounded queue depth (waiting packets) of the droptail and aqm
    /// regimes.
    pub queue_capacity: usize,
    /// CoDel target sojourn (aqm regime).
    pub codel_target: SimDuration,
    /// CoDel control interval (aqm regime).
    pub codel_interval: SimDuration,
    /// Sojourn above which delivered packets carry a congestion mark (aqm
    /// regime).
    pub mark_sojourn: SimDuration,
    /// Client-side rate adaptation, applied in the aqm regime to systems
    /// whose clients push (G-COPSS, IP; the NDN baseline's consumers pull
    /// and need no pacer).
    pub rate_adapt: RateAdaptConfig,
    /// Recovery tunables applied to every system. The default enables the
    /// periodic soft-state Subscribe refresh so real control traffic keeps
    /// contending with bulk data *during* overload — which is exactly what
    /// the priority lattice must protect (and what plain drop-tail loses).
    pub recovery: RecoveryConfig,
    /// Settling period before the first trace event.
    pub warmup: SimDuration,
    /// Extra simulated time after the last trace event before the horizon.
    pub drain: SimDuration,
    /// When `Some`, G-COPSS aqm runs replay under the lineage tracer and
    /// the delivery auditor must account for every owed pair.
    pub lineage: Option<LineageConfig>,
}

impl Default for OverloadSweepConfig {
    fn default() -> Self {
        Self {
            workload: WorkloadParams {
                players: 120,
                updates: 10_000,
                ..WorkloadParams::default()
            },
            net_seed: 7,
            rp_count: 3,
            loads: vec![0.5, 1.0, 2.0, 4.0],
            // 3.3 ms RP service / 3 RPs.
            capacity_interarrival: SimDuration::from_micros(1_100),
            queue_capacity: 64,
            // ≈4.5 RP service times: transient bursts at ρ≤0.5 stay under
            // it, a standing queue (ρ>1 pins sojourn at cap × service ≈
            // 210 ms) overruns it immediately.
            codel_target: SimDuration::from_millis(15),
            codel_interval: SimDuration::from_millis(100),
            // ≈9 service times: essentially never reached below capacity,
            // saturated above it — marks are an overload signal, not a
            // burst detector.
            mark_sojourn: SimDuration::from_millis(30),
            rate_adapt: RateAdaptConfig::default(),
            recovery: RecoveryConfig {
                subscribe_refresh: Some(SimDuration::from_millis(200)),
                ..RecoveryConfig::default()
            },
            warmup: SimDuration::from_secs(2),
            drain: SimDuration::from_secs(10),
            lineage: Some(LineageConfig::default()),
        }
    }
}

impl OverloadSweepConfig {
    /// The per-run mean inter-arrival at offered load `load`.
    #[must_use]
    pub fn interarrival_at(&self, load: f64) -> SimDuration {
        let ns = (self.capacity_interarrival.as_nanos() as f64 / load).round() as u64;
        SimDuration::from_nanos(ns.max(1))
    }

    /// The engine overload config of one regime, or `None` for unbounded.
    #[must_use]
    pub fn engine_config(&self, regime: QueueRegime) -> Option<OverloadConfig> {
        match regime {
            QueueRegime::Unbounded => None,
            QueueRegime::DropTail => Some(OverloadConfig {
                queue_capacity: Some(self.queue_capacity),
                policy: AdmissionPolicy::DropTail,
                priority: false,
                mark_sojourn: None,
            }),
            QueueRegime::Aqm => Some(OverloadConfig {
                queue_capacity: Some(self.queue_capacity),
                policy: AdmissionPolicy::CoDel {
                    target: self.codel_target,
                    interval: self.codel_interval,
                },
                priority: true,
                mark_sojourn: Some(self.mark_sojourn),
            }),
        }
    }
}

/// One run's outcome.
#[derive(Debug, Clone)]
pub struct OverloadRow {
    /// Run label (`gcopss-aqm-x4.0`, …).
    pub label: String,
    /// System under test (`"gcopss"`, `"ip"`, `"ndn"`).
    pub system: &'static str,
    /// Queue regime of the run.
    pub regime: QueueRegime,
    /// Offered load as a multiple of service capacity.
    pub load: f64,
    /// Updates published (rate-limited source sheds never publish).
    pub published: u64,
    /// Non-self deliveries recorded.
    pub delivered: u64,
    /// Deliveries the AoI model expects for the full trace.
    pub expected: u64,
    /// `delivered / expected` — the data-plane delivery ratio.
    pub delivery_ratio: f64,
    /// Median delivery latency (log-histogram bucket bound).
    pub p50: SimDuration,
    /// 95th-percentile delivery latency.
    pub p95: SimDuration,
    /// 99th-percentile delivery latency.
    pub p99: SimDuration,
    /// Mean delivery latency.
    pub mean_latency: SimDuration,
    /// Control-class queue admissions, summed over all nodes.
    pub ctl_in: u64,
    /// Control-class overload drops (rejections + evictions).
    pub ctl_drop: u64,
    /// `1 − ctl_drop / (ctl_in + ctl_drop)` — the fraction of control
    /// traffic surviving the queues. ≈1.0 under AQM+priority.
    pub ctl_ratio: f64,
    /// Arrivals rejected (or victims evicted) at full queues.
    pub queue_full: u64,
    /// Packets shed by the sojourn AQM.
    pub aqm_shed: u64,
    /// Stale position updates evicted by a fresher same-key arrival.
    pub stale_superseded: u64,
    /// Publishes shed at the source by client rate adaptation.
    pub rate_limited: u64,
    /// Congestion marks applied at dequeue.
    pub marks: u64,
    /// Aggregate network load in bytes.
    pub network_bytes: u64,
    /// Lineage audit of the run, when the tracer was armed: the auditor's
    /// per-class accounting JSON and the span-log fingerprint.
    pub audit: Option<(gcopss_sim::json::Json, u64)>,
    /// Whether the armed audit explained every owed pair.
    pub audit_clean: Option<bool>,
}

impl OverloadRow {
    /// One formatted table row.
    #[must_use]
    pub fn row(&self) -> String {
        format!(
            "{:<22} {:>4.1} {:>8.4} {:>8.4} {:>9.2} {:>9.2} {:>8} {:>8} {:>7} {:>8} {:>7}",
            self.label,
            self.load,
            self.delivery_ratio,
            self.ctl_ratio,
            self.p50.as_millis_f64(),
            self.p99.as_millis_f64(),
            self.queue_full,
            self.aqm_shed,
            self.stale_superseded,
            self.rate_limited,
            self.marks,
        )
    }
}

/// The sweep's full output: rows grouped by load, then
/// gcopss-{aqm,unbounded,droptail}, ip-aqm, ndn-aqm.
#[derive(Debug, Clone)]
pub struct OverloadOutput {
    /// Result rows in run order.
    pub rows: Vec<OverloadRow>,
}

/// Runs the full sweep.
#[must_use]
pub fn run(cfg: &OverloadSweepConfig) -> OverloadOutput {
    run_with(cfg, None)
}

/// Harvest of one finished run.
struct RunHarvest {
    world: GameWorld,
    bytes: u64,
    drops: (u64, u64, u64),
    marks: u64,
    ctl_in: u64,
    ctl_drop: u64,
    audit: Option<(gcopss_sim::json::Json, u64, bool)>,
}

/// Runs one assembled simulator to the horizon and harvests everything.
fn run_one(
    mut sim: Simulator<GPacket, GameWorld>,
    horizon: SimTime,
    audited: Option<(&LineageConfig, &Workload, SimDuration)>,
    telemetry: Option<(&mut TelemetryCapture, &str)>,
) -> RunHarvest {
    match &telemetry {
        Some((cap, _)) => cap.arm(&mut sim),
        // The per-class control counters live in telemetry; arm the
        // journal-free minimal config so captureless runs still count.
        None => sim.enable_telemetry(TelemetryConfig {
            journal_capacity: 0,
            journal_sample: 1,
        }),
    }
    if let Some((lineage, w, warmup)) = audited {
        sim.enable_lineage(lineage.clone());
        register_expectations(&mut sim, w, warmup);
    }
    sim.run_until(horizon);
    let audit = audited.map(|_| {
        // No faults are injected: every miss must be explained by a drop
        // record (overload drops and source sheds land on the lineage), so
        // no damage window is granted.
        let report = sim.lineage().audit(horizon, None);
        (
            report.to_json(),
            sim.lineage().fingerprint(),
            report.is_clean(),
        )
    });
    let ctl_in = sim.telemetry().counter_total("ctl-in");
    let ctl_drop = sim.telemetry().counter_total("ctl-drop");
    let bytes = sim.total_link_bytes();
    let drops = sim.overload_drops();
    let marks = sim.congestion_marks();
    if let Some((cap, label)) = telemetry {
        cap.collect(&sim, label);
    }
    RunHarvest {
        world: sim.into_world(),
        bytes,
        drops,
        marks,
        ctl_in,
        ctl_drop,
        audit,
    }
}

fn make_row(
    label: String,
    system: &'static str,
    regime: QueueRegime,
    load: f64,
    h: RunHarvest,
    w: &Workload,
) -> OverloadRow {
    let expected = expected_deliveries(&w.map, &w.population, &w.trace);
    let delivered = h.world.metrics.delivered();
    let hist = h.world.metrics.latency_hist();
    let q = |p: f64| SimDuration::from_nanos(hist.quantile(p));
    let (queue_full, aqm_shed, stale_superseded) = h.drops;
    let offered_ctl = h.ctl_in + h.ctl_drop;
    OverloadRow {
        label,
        system,
        regime,
        load,
        published: h.world.metrics.published(),
        delivered,
        expected,
        delivery_ratio: if expected == 0 {
            1.0
        } else {
            delivered as f64 / expected as f64
        },
        p50: q(0.50),
        p95: q(0.95),
        p99: q(0.99),
        mean_latency: h.world.metrics.stats().mean(),
        ctl_in: h.ctl_in,
        ctl_drop: h.ctl_drop,
        ctl_ratio: if offered_ctl == 0 {
            1.0
        } else {
            1.0 - h.ctl_drop as f64 / offered_ctl as f64
        },
        queue_full,
        aqm_shed,
        stale_superseded,
        rate_limited: h.world.counters.get("rate-limited").copied().unwrap_or(0),
        marks: h.marks,
        network_bytes: h.bytes,
        audit_clean: h.audit.as_ref().map(|&(_, _, clean)| clean),
        audit: h.audit.map(|(json, fp, _)| (json, fp)),
    }
}

/// Runs the full sweep, optionally harvesting one telemetry report per run.
#[must_use]
pub fn run_with(
    cfg: &OverloadSweepConfig,
    mut telemetry: Option<&mut TelemetryCapture>,
) -> OverloadOutput {
    let net = NetworkSpec::default_backbone(cfg.net_seed);
    let mut rows = Vec::new();

    for &load in &cfg.loads {
        let w = Workload::counter_strike(&WorkloadParams {
            mean_interarrival: cfg.interarrival_at(load),
            ..cfg.workload.clone()
        });
        let span = SimDuration::from_nanos(w.trace.last().map_or(0, |e| e.time_ns));
        let horizon = SimTime::ZERO + cfg.warmup + span + cfg.drain;

        // G-COPSS under all three regimes.
        for regime in [QueueRegime::Aqm, QueueRegime::Unbounded, QueueRegime::DropTail] {
            let label = format!("gcopss-{}-x{load:.1}", regime.as_str());
            let sys = GcopssConfig {
                metrics_mode: MetricsMode::StatsOnly,
                rp_count: cfg.rp_count,
                warmup: cfg.warmup,
                recovery: Some(cfg.recovery.clone()),
                overload: cfg.engine_config(regime),
                rate_adapt: (regime == QueueRegime::Aqm).then(|| cfg.rate_adapt.clone()),
                ..GcopssConfig::default()
            };
            let built = ScenarioSpec::new(&net, &w.map, &w.population, &w.trace)
                .gcopss(sys)
                .build()
                .into_gcopss();
            let audited = (regime == QueueRegime::Aqm)
                .then_some(())
                .and(cfg.lineage.as_ref())
                .map(|l| (l, &w, cfg.warmup));
            let t = telemetry.as_mut().map(|c| (&mut **c, label.as_str()));
            let h = run_one(built.sim, horizon, audited, t);
            rows.push(make_row(label, "gcopss", regime, load, h, &w));
        }

        // IP baseline under the AQM regime (with rate adaptation).
        {
            let label = format!("ip-aqm-x{load:.1}");
            let sys = IpConfig {
                metrics_mode: MetricsMode::StatsOnly,
                server_count: cfg.rp_count,
                warmup: cfg.warmup,
                recovery: Some(cfg.recovery.clone()),
                overload: cfg.engine_config(QueueRegime::Aqm),
                rate_adapt: Some(cfg.rate_adapt.clone()),
                ..IpConfig::default()
            };
            let built = ScenarioSpec::new(&net, &w.map, &w.population, &w.trace)
                .ip_server(sys)
                .build()
                .into_ip_server();
            let t = telemetry.as_mut().map(|c| (&mut **c, label.as_str()));
            let h = run_one(built.sim, horizon, None, t);
            rows.push(make_row(label, "ip", QueueRegime::Aqm, load, h, &w));
        }

        // NDN baseline under the AQM regime (pull-based: no client pacer).
        {
            let label = format!("ndn-aqm-x{load:.1}");
            let sys = NdnBaselineConfig {
                metrics_mode: MetricsMode::StatsOnly,
                warmup: cfg.warmup,
                recovery: Some(cfg.recovery.clone()),
                overload: cfg.engine_config(QueueRegime::Aqm),
                ..NdnBaselineConfig::default()
            };
            let built = ScenarioSpec::new(&net, &w.map, &w.population, &w.trace)
                .ndn_baseline(sys)
                .build()
                .into_ndn_baseline();
            let t = telemetry.as_mut().map(|c| (&mut **c, label.as_str()));
            let h = run_one(built.sim, horizon, None, t);
            rows.push(make_row(label, "ndn", QueueRegime::Aqm, load, h, &w));
        }
    }

    OverloadOutput { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature sweep at sub-capacity and heavy overload: the bounded
    /// regimes must shed under overload, AQM+priority must keep the
    /// control plane near-lossless where drop-tail degrades, and the
    /// audited run must explain every owed pair.
    #[test]
    fn mini_sweep_degrades_gracefully() {
        let cfg = OverloadSweepConfig {
            workload: WorkloadParams {
                players: 60,
                updates: 3_000,
                ..WorkloadParams::default()
            },
            loads: vec![0.5, 4.0],
            drain: SimDuration::from_secs(5),
            ..OverloadSweepConfig::default()
        };
        let out = run(&cfg);
        assert_eq!(out.rows.len(), 10);
        let find = |label: &str| {
            out.rows
                .iter()
                .find(|r| r.label == label)
                .unwrap_or_else(|| panic!("missing row {label}"))
        };

        for r in &out.rows {
            assert!(r.delivered > 0, "{}: nothing delivered", r.label);
            assert!(
                (0.0..=1.0).contains(&r.delivery_ratio),
                "{}: ratio {}",
                r.label,
                r.delivery_ratio
            );
            if r.regime == QueueRegime::Unbounded {
                assert_eq!(
                    r.queue_full + r.aqm_shed + r.stale_superseded + r.marks,
                    0,
                    "{}: unbounded regime must not shed or mark",
                    r.label
                );
            }
        }

        // Heavy overload bites the bounded regimes.
        let aqm4 = find("gcopss-aqm-x4.0");
        let tail4 = find("gcopss-droptail-x4.0");
        assert!(
            aqm4.aqm_shed + aqm4.queue_full + aqm4.stale_superseded > 0,
            "aqm at 4x shed nothing"
        );
        assert!(aqm4.marks > 0, "aqm at 4x marked nothing");
        assert!(tail4.queue_full > 0, "droptail at 4x dropped nothing");

        // The priority lattice protects the control plane: the refresh
        // keeps Subscribes contending with bulk, drop-tail loses some of
        // them, AQM+priority keeps ≥99 %.
        assert!(
            tail4.ctl_drop > 0,
            "droptail at 4x never dropped control — the comparison is vacuous"
        );
        assert!(
            aqm4.ctl_ratio >= 0.99,
            "aqm control survival {} < 0.99",
            aqm4.ctl_ratio
        );
        assert!(
            aqm4.ctl_ratio > tail4.ctl_ratio,
            "priority did not beat droptail: {} <= {}",
            aqm4.ctl_ratio,
            tail4.ctl_ratio
        );

        // Rate adaptation responded to marks.
        assert!(aqm4.rate_limited > 0, "no source sheds at 4x");

        // The audited runs explain every pair.
        for r in &out.rows {
            if let Some(clean) = r.audit_clean {
                assert!(clean, "{}: audit not clean: {:?}", r.label, r.audit);
            }
        }
        assert!(
            out.rows.iter().any(|r| r.audit_clean.is_some()),
            "no run was audited"
        );

        // Below aggregate capacity the AQM regime is near-benign. It is not
        // lossless: per-player rates are heavy-tailed, so one RP can run
        // locally hot at aggregate ρ = 0.5 and pace its publishers a little.
        let aqm05 = find("gcopss-aqm-x0.5");
        assert!(
            aqm05.delivery_ratio > 0.90,
            "sub-capacity delivery ratio {}",
            aqm05.delivery_ratio
        );
    }

    /// Equal seeds must produce byte-identical telemetry and audit
    /// exports, shed-heavy policies included.
    #[test]
    fn sweep_is_same_seed_deterministic() {
        let cfg = OverloadSweepConfig {
            workload: WorkloadParams {
                players: 40,
                updates: 1_500,
                ..WorkloadParams::default()
            },
            loads: vec![4.0],
            drain: SimDuration::from_secs(5),
            ..OverloadSweepConfig::default()
        };
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.rows.len(), b.rows.len());
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.published, y.published, "{}", x.label);
            assert_eq!(x.delivered, y.delivered, "{}", x.label);
            assert_eq!(
                (x.queue_full, x.aqm_shed, x.stale_superseded, x.rate_limited, x.marks),
                (y.queue_full, y.aqm_shed, y.stale_superseded, y.rate_limited, y.marks),
                "{}",
                x.label
            );
            assert_eq!(x.network_bytes, y.network_bytes, "{}", x.label);
            match (&x.audit, &y.audit) {
                (Some((ja, fa)), Some((jb, fb))) => {
                    assert_eq!(fa, fb, "{}: lineage fingerprints differ", x.label);
                    assert_eq!(
                        ja.to_string(),
                        jb.to_string(),
                        "{}: audit documents differ",
                        x.label
                    );
                }
                (None, None) => {}
                _ => panic!("{}: audit presence differs", x.label),
            }
        }
    }
}
