//! Fig. 6: response latency and aggregate network load as the number of
//! players grows, with 3 RPs vs 3 servers.

use gcopss_sim::SimDuration;

use crate::scenario::NetworkSpec;
use crate::MetricsMode;

use super::rp_sweep::{run_gcopss_once_with, run_ip_once_with, summarize};
use super::{RunSummary, TelemetryCapture, Workload, WorkloadParams};

/// Configuration of the player sweep.
#[derive(Debug, Clone)]
pub struct PlayerSweepConfig {
    /// Master seed.
    pub seed: u64,
    /// Topology seed.
    pub net_seed: u64,
    /// Player counts to evaluate (paper: 50 … 400).
    pub player_counts: Vec<usize>,
    /// Updates generated per player (total updates scale with players, so
    /// the aggregate rate grows — the source of the server knee).
    pub updates_per_player: usize,
    /// Mean inter-arrival at the 414-player reference point; scaled
    /// inversely with the player count so the per-player rate is constant.
    pub reference_interarrival: SimDuration,
    /// RPs for the G-COPSS series / servers for the IP series (paper: 3).
    pub cores: usize,
}

impl Default for PlayerSweepConfig {
    fn default() -> Self {
        Self {
            seed: 3,
            net_seed: 7,
            player_counts: vec![50, 100, 150, 200, 250, 300, 350, 400],
            updates_per_player: 120,
            reference_interarrival: SimDuration::from_micros(2_400),
            cores: 3,
        }
    }
}

/// One point of the Fig. 6 series.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Number of players.
    pub players: usize,
    /// The run's summary.
    pub summary: RunSummary,
}

/// The sweep output: one series per system.
#[derive(Debug, Clone)]
pub struct PlayerSweepOutput {
    /// G-COPSS (3 RPs) points.
    pub gcopss: Vec<SweepPoint>,
    /// IP server (3 servers) points.
    pub ip: Vec<SweepPoint>,
}

/// Runs the sweep.
#[must_use]
pub fn run(cfg: &PlayerSweepConfig) -> PlayerSweepOutput {
    run_with(cfg, None)
}

/// Runs the sweep, optionally harvesting one telemetry report per run.
#[must_use]
pub fn run_with(
    cfg: &PlayerSweepConfig,
    mut telemetry: Option<&mut TelemetryCapture>,
) -> PlayerSweepOutput {
    let net = NetworkSpec::default_backbone(cfg.net_seed);
    let mut gcopss = Vec::new();
    let mut ip = Vec::new();
    for &n in &cfg.player_counts {
        // Constant per-player rate: aggregate inter-arrival shrinks as the
        // population grows.
        let interarrival = SimDuration::from_nanos(
            cfg.reference_interarrival.as_nanos() * 414 / n.max(1) as u64,
        );
        let w = Workload::counter_strike(&WorkloadParams {
            seed: cfg.seed,
            players: n,
            updates: cfg.updates_per_player * n,
            mean_interarrival: interarrival,
        });
        let label = format!("gcopss-{n}p");
        let t = telemetry.as_mut().map(|c| (&mut **c, label.as_str()));
        let (world, bytes) =
            run_gcopss_once_with(&w, &net, cfg.cores, None, MetricsMode::StatsOnly, t);
        gcopss.push(SweepPoint {
            players: n,
            summary: summarize(format!("G-COPSS {n}p"), &world, bytes),
        });
        let label = format!("ip-{n}p");
        let t = telemetry.as_mut().map(|c| (&mut **c, label.as_str()));
        let (world, bytes) = run_ip_once_with(&w, &net, cfg.cores, MetricsMode::StatsOnly, t);
        ip.push(SweepPoint {
            players: n,
            summary: summarize(format!("IP {n}p"), &world, bytes),
        });
    }
    PlayerSweepOutput { gcopss, ip }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Miniature Fig. 6: the server latency must blow past G-COPSS at the
    /// high end while G-COPSS stays flat-ish.
    #[test]
    fn mini_sweep_shows_server_knee() {
        let cfg = PlayerSweepConfig {
            player_counts: vec![60, 300],
            updates_per_player: 25,
            ..PlayerSweepConfig::default()
        };
        let out = run(&cfg);
        assert_eq!(out.gcopss.len(), 2);
        assert_eq!(out.ip.len(), 2);

        let g_low = out.gcopss[0].summary.mean_latency;
        let g_high = out.gcopss[1].summary.mean_latency;
        let i_high = out.ip[1].summary.mean_latency;

        // At 300 players (per-player rate constant, so ~5x the load of 60),
        // the 3 servers are past their knee while G-COPSS is not.
        assert!(
            i_high > g_high * 2,
            "servers ({i_high}) should trail G-COPSS ({g_high})"
        );
        // G-COPSS latency grows sub-linearly with players.
        assert!(
            g_high < g_low * 20,
            "G-COPSS should stay in the same regime ({g_low} -> {g_high})"
        );
    }
}
