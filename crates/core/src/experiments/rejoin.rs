//! Mass-reconnect (rejoin) storm: an RP crash takes part of the update
//! plane down and, at the same instant, half the players lose their access
//! links (the flash-crowd disconnect the crash models). RP failover repairs
//! the delivery plane while they are gone; when the access links return the
//! whole cohort rejoins at once and every member triggers a recovery
//! catch-up against the snapshot brokers.
//! The experiment plays the identical storm twice, once with the naive
//! [`CatchUpMode::FullSnapshot`] strategy (re-fetch every object) and once
//! with [`CatchUpMode::ChunkedDelta`] (fetch per-CD manifests, diff against
//! the client's persistent chunk store, fetch only the missing chunks), and
//! compares the catch-up bytes moved and the catch-up latency.
//!
//! Every run also closes the catch-up ledger: each owed
//! (manifest | chunk | snapshot-object, subscriber) pair must be delivered
//! exactly once per owe, with nothing over-delivered — the app-level
//! exactly-once guarantee the network-level lineage auditor cannot provide
//! for this path (Content-Store hits break causal lineage).

use std::sync::Arc;

use gcopss_sim::{FaultPlan, SimDuration, SimTime};

use crate::broker::{partition_cds_to_brokers, SnapshotBroker};
use crate::scenario::{ExtraHost, GcopssConfig, NetworkSpec, ScenarioSpec};
use crate::{
    CatchUpAudit, CatchUpConfig, CatchUpMode, GameWorld, MetricsMode, RecoveryConfig, SimParams,
};

use super::{TelemetryCapture, Workload, WorkloadParams};

/// Configuration of the rejoin storm.
#[derive(Debug, Clone)]
pub struct RejoinConfig {
    /// Update workload running underneath the storm.
    pub workload: WorkloadParams,
    /// Topology seed.
    pub net_seed: u64,
    /// Chaos-schedule seed.
    pub chaos_seed: u64,
    /// Game RPs (at least 2). The crash takes out the router hosting the
    /// last one, silencing its share of the update plane until a surviving
    /// RP claims the orphaned prefixes — failover needs a survivor to hand
    /// them to, so a lone RP would leave the crash unrepairable.
    pub rp_count: usize,
    /// Snapshot brokers serving the chunk/manifest/snapshot namespaces.
    pub broker_count: usize,
    /// Catch-up fetch window (outstanding Interests).
    pub window: u32,
    /// Catch-up stall-retry interval.
    pub retry: SimDuration,
    /// Client recovery tunables. The primary storm trigger is the access
    /// link coming back (`LinkUp` → resubscribe + resync); the watchdog is
    /// the backstop that flags clients that went deaf without losing their
    /// link, so it must be shorter than the outage.
    pub recovery: RecoveryConfig,
    /// Settling period before the first trace event.
    pub warmup: SimDuration,
    /// Extra simulated time after the last trace event before the horizon
    /// (catch-ups must drain completely for the ledger to close).
    pub drain: SimDuration,
}

impl Default for RejoinConfig {
    fn default() -> Self {
        Self {
            workload: WorkloadParams {
                players: 120,
                updates: 8_000,
                // A calm background rate, not the paper's 2.4 ms peak: the
                // storm measures the catch-up plane, and the update plane
                // must leave it the link capacity (at peak rate both
                // catch-up modes become bandwidth-bound and the comparison
                // collapses). The world still drifts ~400 events per 5 % of
                // the span — the dedup signal the chunk store is up against.
                mean_interarrival: SimDuration::from_secs(1),
                ..WorkloadParams::default()
            },
            net_seed: 7,
            chaos_seed: 0x0e01_d007,
            rp_count: 2,
            broker_count: 3,
            window: 15,
            retry: SimDuration::from_secs(2),
            recovery: RecoveryConfig {
                // Far above the ~1.3 s inter-delivery gap of the calm
                // update rate (so healthy clients never look deaf), far
                // below the access outage (so cut-off clients always do).
                watchdog: SimDuration::from_secs(10),
                ..RecoveryConfig::default()
            },
            warmup: SimDuration::from_secs(2),
            // Generous: the full-snapshot baseline re-fetches the whole
            // visible object universe per client and the routers (not the
            // brokers) are the bottleneck, so its catch-up marathon takes
            // hundreds of simulated seconds to drain. Idle tail time is
            // nearly free in an event-driven simulator.
            drain: SimDuration::from_secs(600),
        }
    }
}

/// One mode's outcome.
#[derive(Debug, Clone)]
pub struct RejoinRow {
    /// Run label (`chunked-delta` / `full-snapshot`).
    pub label: String,
    /// The catch-up strategy.
    pub mode: CatchUpMode,
    /// Initial (prewarm) catch-ups completed before the crash.
    pub initial_catchups: u64,
    /// Recovery catch-ups completed after the crash — the storm size.
    pub recovery_catchups: u64,
    /// Catch-up payload bytes moved by the prewarm phase.
    pub initial_bytes: u64,
    /// Catch-up payload bytes moved by the recovery storm (the headline
    /// number: chunked-delta must move far fewer than full-snapshot).
    pub recovery_bytes: u64,
    /// Mean recovery catch-up latency (trigger to last byte).
    pub mean_latency: SimDuration,
    /// Worst recovery catch-up latency.
    pub max_latency: SimDuration,
    /// Chunks fetched over the network during recovery (`ChunkedDelta`).
    pub chunks_fetched: u64,
    /// Manifest chunks already held locally during recovery — the dedup win
    /// (`ChunkedDelta`).
    pub chunks_held: u64,
    /// Catch-up stall retries across the run.
    pub retries: u64,
    /// RP failovers executed (the crash must trigger at least one).
    pub rp_failovers: u64,
    /// Manifests whose chunks reassembled to exactly the manifest's bytes.
    pub reassembly_ok: u64,
    /// Reassembly integrity failures (must be zero).
    pub reassembly_failed: u64,
    /// The closed catch-up ledger.
    pub audit: CatchUpAudit,
    /// Deterministic fingerprint of the full ledger table.
    pub ledger_fingerprint: u64,
    /// Aggregate network load of the whole run.
    pub network_bytes: u64,
}

impl RejoinRow {
    /// One formatted table row.
    #[must_use]
    pub fn row(&self) -> String {
        format!(
            "{:<14} {:>8} {:>8} {:>12.1} {:>12.1} {:>10.1} {:>9} {:>9} {:>8}",
            self.label,
            self.initial_catchups,
            self.recovery_catchups,
            self.initial_bytes as f64 / 1e3,
            self.recovery_bytes as f64 / 1e3,
            self.mean_latency.as_millis_f64(),
            self.chunks_fetched,
            self.chunks_held,
            self.retries,
        )
    }
}

/// Both modes' outcomes over the identical storm.
#[derive(Debug, Clone)]
pub struct RejoinOutput {
    /// The chunked-delta run.
    pub chunked: RejoinRow,
    /// The full-snapshot baseline run.
    pub full: RejoinRow,
}

impl RejoinOutput {
    /// How many times more catch-up bytes the naive baseline moved during
    /// the recovery storm.
    #[must_use]
    pub fn recovery_byte_ratio(&self) -> f64 {
        self.full.recovery_bytes as f64 / (self.chunked.recovery_bytes as f64).max(1.0)
    }
}

fn summarize_mode(label: &str, mode: CatchUpMode, world: &GameWorld, bytes: u64) -> RejoinRow {
    let counter = |k: &str| world.counters.get(k).copied().unwrap_or(0);
    let (mut initial_catchups, mut recovery_catchups) = (0u64, 0u64);
    let (mut initial_bytes, mut recovery_bytes) = (0u64, 0u64);
    let (mut chunks_fetched, mut chunks_held) = (0u64, 0u64);
    let (mut lat_sum, mut lat_max, mut lat_n) = (SimDuration::ZERO, SimDuration::ZERO, 0u64);
    for r in &world.catchups {
        if r.recovery {
            recovery_catchups += 1;
            recovery_bytes += r.bytes;
            chunks_fetched += r.chunks_fetched;
            chunks_held += r.chunks_held;
            lat_sum += r.latency;
            lat_max = lat_max.max(r.latency);
            lat_n += 1;
        } else {
            initial_catchups += 1;
            initial_bytes += r.bytes;
        }
    }
    RejoinRow {
        label: label.to_string(),
        mode,
        initial_catchups,
        recovery_catchups,
        initial_bytes,
        recovery_bytes,
        mean_latency: if lat_n == 0 {
            SimDuration::ZERO
        } else {
            lat_sum / lat_n
        },
        max_latency: lat_max,
        chunks_fetched,
        chunks_held,
        retries: counter("client-catchup-retries"),
        rp_failovers: counter("rp-failovers"),
        reassembly_ok: counter("catchup-reassembly-ok"),
        reassembly_failed: counter("catchup-reassembly-failed"),
        audit: world.catchup_ledger.audit(),
        ledger_fingerprint: world.catchup_ledger.fingerprint(),
        network_bytes: bytes,
    }
}

fn run_mode(
    cfg: &RejoinConfig,
    w: &Workload,
    net: &NetworkSpec,
    mode: CatchUpMode,
    label: &str,
    telemetry: Option<(&mut TelemetryCapture, &str)>,
) -> RejoinRow {
    let span = SimDuration::from_nanos(w.trace.last().map_or(0, |e| e.time_ns));
    let at = |num: u64, den: u64| {
        SimTime::ZERO + cfg.warmup + SimDuration::from_nanos(span.as_nanos() * num / den)
    };

    // Brokers with prewarmed object models on their own cores, past the
    // game-RP placements, routing the snapshot QR namespaces plus the
    // chunked-delta namespaces (`/snapmani/<cd>` per broker, `/chunk` to
    // every broker).
    let mut broker_objects = w.objects.clone();
    for e in w.trace.iter() {
        broker_objects.apply_update(e.object, e.size);
    }
    let pool = net.rp_pool_preview();
    let params = SimParams::default();
    let mut extra_hosts = Vec::new();
    for (i, cds) in partition_cds_to_brokers(&w.map, cfg.broker_count)
        .into_iter()
        .enumerate()
    {
        let mut routes = SnapshotBroker::fib_prefixes(&cds);
        routes.extend(SnapshotBroker::chunk_fib_prefixes(&cds));
        let attach = pool[(cfg.rp_count + i) % pool.len()];
        let objects = broker_objects.clone();
        let trace = Arc::clone(&w.trace);
        let p = params.clone();
        extra_hosts.push(ExtraHost {
            attach_to: attach,
            routes,
            make: Box::new(move |_node, edge| {
                Box::new(SnapshotBroker::new(p, edge, cds, objects, trace))
            }),
        });
    }

    // The crash node hosts the last RP (the failover target set is the same
    // preview pool the scenario allocates from). At the crash instant the
    // storm cohort — every other player — also loses its access link; the
    // links return at 35 % of the span, after failover has repaired the
    // delivery plane, so the whole cohort rejoins at once with the world
    // drift of the outage window accumulated against its chunk store.
    let crash = pool[(cfg.rp_count.max(1) - 1) % pool.len()];
    let mut plan = FaultPlan::new(cfg.chaos_seed)
        .node_down(at(30, 100), crash)
        .node_up(at(50, 100), crash);
    for l in net
        .player_access_links(w.population.len())
        .into_iter()
        .step_by(2)
    {
        plan = plan.link_down(at(30, 100), l).link_up(at(35, 100), l);
    }

    let gcfg = GcopssConfig {
        params,
        metrics_mode: MetricsMode::StatsOnly,
        rp_count: cfg.rp_count,
        warmup: cfg.warmup,
        recovery: Some(cfg.recovery.clone()),
        ..GcopssConfig::default()
    };
    // Prewarm at 25 % of the span: every client completes an initial
    // catch-up (filling its chunk store in `ChunkedDelta` mode) before the
    // crash at 30 % cuts the storm cohort off. The dedup win scales with
    // how little the world moved between this fetch and the rejoin fetch,
    // so the prewarm sits close to the crash.
    let cu = CatchUpConfig {
        mode,
        window: cfg.window,
        initial_at: Some(at(25, 100)),
        retry: cfg.retry,
    };
    let mut built = ScenarioSpec::new(net, &w.map, &w.population, &w.trace)
        .gcopss(gcfg)
        .extra_hosts(extra_hosts)
        .catch_up(cu)
        .fault_plan(plan)
        .build()
        .into_gcopss();

    if let Some((cap, _)) = &telemetry {
        cap.arm(&mut built.sim);
    }
    let horizon = SimTime::ZERO + cfg.warmup + span + cfg.drain;
    built.sim.run_until(horizon);
    let bytes = built.sim.total_link_bytes();
    if let Some((cap, tlabel)) = telemetry {
        cap.collect(&built.sim, tlabel);
    }
    summarize_mode(label, mode, &built.sim.into_world(), bytes)
}

/// Runs the storm under both strategies.
#[must_use]
pub fn run(cfg: &RejoinConfig) -> RejoinOutput {
    run_with(cfg, None)
}

/// Runs the storm under both strategies, optionally harvesting one
/// telemetry report per run.
#[must_use]
pub fn run_with(cfg: &RejoinConfig, mut telemetry: Option<&mut TelemetryCapture>) -> RejoinOutput {
    let w = Workload::counter_strike(&cfg.workload);
    let net = NetworkSpec::default_backbone(cfg.net_seed);
    let t = telemetry.as_mut().map(|c| (&mut **c, "chunked-delta"));
    let chunked = run_mode(cfg, &w, &net, CatchUpMode::ChunkedDelta, "chunked-delta", t);
    let t = telemetry.as_mut().map(|c| (&mut **c, "full-snapshot"));
    let full = run_mode(cfg, &w, &net, CatchUpMode::FullSnapshot, "full-snapshot", t);
    RejoinOutput { chunked, full }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Miniature storm: both modes recover, books close, and the delta path
    /// moves strictly fewer recovery bytes than the naive baseline.
    #[test]
    fn mini_rejoin_storm_delta_beats_full() {
        let base = RejoinConfig::default();
        let cfg = RejoinConfig {
            workload: WorkloadParams {
                players: 60,
                updates: 4_000,
                ..base.workload
            },
            ..base
        };
        let out = run(&cfg);
        for r in [&out.chunked, &out.full] {
            assert!(r.initial_catchups > 0, "{}: no prewarm ran", r.label);
            assert!(r.recovery_catchups > 0, "{}: no storm", r.label);
            assert!(r.rp_failovers >= 1, "{}: crash did not fail over", r.label);
            assert!(
                r.audit.clean(),
                "{}: ledger dirty ({} outstanding, {} over-delivered)",
                r.label,
                r.audit.outstanding,
                r.audit.over_delivered
            );
        }
        assert_eq!(out.chunked.reassembly_failed, 0, "chunk integrity broke");
        assert!(out.chunked.reassembly_ok > 0, "no manifest reassembled");
        assert!(
            out.chunked.chunks_held > out.chunked.chunks_fetched,
            "warm store held {} vs fetched {} — the delta path isn't deduping",
            out.chunked.chunks_held,
            out.chunked.chunks_fetched
        );
        assert!(
            out.recovery_byte_ratio() > 2.0,
            "delta moved {} recovery bytes vs full {} (ratio {:.2})",
            out.chunked.recovery_bytes,
            out.full.recovery_bytes,
            out.recovery_byte_ratio()
        );
    }
}

#[cfg(test)]
mod content_model {
    use super::*;
    use crate::broker::cd_snapshot_content;
    use gcopss_names::chunk::{ChunkStore, Chunker};

    /// The chunk-level stability contract the delta path depends on: with a
    /// storm-sized slice of the trace (10 % of the events) applied between
    /// two snapshots of the whole map, well over half of the chunks keep
    /// their content-addressed ids. If this regresses (e.g. the synthetic
    /// object content starts rewriting whole objects per version, or the
    /// chunk grain creeps above the object size), the rejoin experiment's
    /// dedup win silently disappears.
    #[test]
    fn storm_window_drift_keeps_most_chunks() {
        let w = Workload::counter_strike(&WorkloadParams {
            players: 60,
            updates: 4_000,
            ..WorkloadParams::default()
        });
        // Broker state model: full trace pre-applied (converged sizes),
        // then live events re-applied — exactly what run_mode sets up.
        let mut objects = w.objects.clone();
        for e in w.trace.iter() {
            objects.apply_update(e.object, e.size);
        }
        let n25 = w.trace.len() * 25 / 100;
        let n35 = w.trace.len() * 35 / 100;
        for e in w.trace.iter().take(n25) {
            objects.apply_update(e.object, e.size);
        }
        let chunker = Chunker::default();
        let cds = w.map.leaf_cds();
        let mut store = ChunkStore::new();
        for cd in cds {
            let (_, blob) = cd_snapshot_content(&objects, cd);
            for c in chunker.chunks(&blob) {
                store.insert(c);
            }
        }
        // An unchanged world re-chunks to zero missing: the warm store
        // fully covers a re-fetch.
        for cd in cds {
            let (ep, blob) = cd_snapshot_content(&objects, cd);
            let m = chunker.manifest(ep, &blob);
            assert!(
                store.missing(&m).is_empty(),
                "unchanged world must not refetch ({cd})"
            );
        }
        for e in w.trace.iter().skip(n25).take(n35 - n25) {
            objects.apply_update(e.object, e.size);
        }
        let (mut total, mut miss) = (0usize, 0usize);
        for cd in cds {
            let (ep, blob) = cd_snapshot_content(&objects, cd);
            let m = chunker.manifest(ep, &blob);
            miss += store.missing(&m).len();
            total += m.chunks.len();
        }
        assert!(miss > 0, "the storm window must drift the world");
        assert!(
            miss * 2 < total,
            "storm-window drift dirtied {miss} of {total} chunks — \
             the content model lost its field-level update locality"
        );
    }
}
