//! Table I and Fig. 5: update latency and network load with different
//! numbers of RPs/servers, congestion timelines, and automatic RP
//! balancing.

use gcopss_sim::SimDuration;

use crate::scenario::{GcopssConfig, IpConfig, NetworkSpec, ScenarioSpec};
use crate::{GameWorld, MetricsMode, SimParams, SplitRecord};

use super::{RunSummary, TelemetryCapture, Workload, WorkloadParams};

/// Configuration of the RP/server sweep.
#[derive(Debug, Clone)]
pub struct RpSweepConfig {
    /// Workload (Table I uses the first 100,000 trace updates).
    pub workload: WorkloadParams,
    /// Topology seed.
    pub net_seed: u64,
    /// RP counts for the G-COPSS rows (paper: 1, 2, 3, 6).
    pub rp_counts: Vec<usize>,
    /// Include the automatic-balancing row (starts from 1 RP).
    pub include_auto: bool,
    /// RP queue-length threshold that triggers a split in the auto row.
    pub auto_threshold: usize,
    /// Server counts for the IP rows (paper: 1, 2, 3, 6).
    pub server_counts: Vec<usize>,
    /// Capture downsampled per-publication latency series (Fig. 5) for the
    /// interesting G-COPSS runs (2 RPs, 3 RPs, auto).
    pub fig5_detail: bool,
    /// Max points per Fig. 5 series after downsampling.
    pub fig5_points: usize,
}

impl Default for RpSweepConfig {
    fn default() -> Self {
        Self {
            workload: WorkloadParams::default(),
            net_seed: 7,
            rp_counts: vec![1, 2, 3, 6],
            include_auto: true,
            auto_threshold: 50,
            server_counts: vec![1, 2, 3, 6],
            fig5_detail: true,
            fig5_points: 400,
        }
    }
}

/// One Fig. 5 series: per-publication (id, min, mean, max) latency in ms.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Series {
    /// Run label (e.g. `gcopss-2rp`).
    pub label: String,
    /// Downsampled `(publication id, min ms, mean ms, max ms)` points.
    pub points: Vec<(u64, f64, f64, f64)>,
}

/// The sweep's full output.
#[derive(Debug, Clone)]
pub struct RpSweepOutput {
    /// G-COPSS rows of Table I (one per RP count, plus `auto`).
    pub gcopss_rows: Vec<RunSummary>,
    /// IP-server rows of Table I.
    pub server_rows: Vec<RunSummary>,
    /// Fig. 5 latency timelines.
    pub fig5: Vec<Fig5Series>,
    /// The automatic splits that occurred in the auto run (Fig. 5c shows
    /// two).
    pub auto_splits: Vec<SplitRecord>,
}

pub(crate) fn summarize(label: String, world: &GameWorld, network_bytes: u64) -> RunSummary {
    RunSummary {
        label,
        published: world.metrics.published(),
        delivered: world.metrics.delivered(),
        mean_latency: world.metrics.stats().mean(),
        max_latency: world.metrics.stats().max().unwrap_or(SimDuration::ZERO),
        network_bytes,
    }
}

fn downsample(
    rows: &[(u64, SimDuration, SimDuration, SimDuration)],
    max: usize,
) -> Vec<(u64, f64, f64, f64)> {
    let step = (rows.len() / max.max(1)).max(1);
    rows.iter()
        .step_by(step)
        .map(|&(id, min, mean, max)| {
            (
                id,
                min.as_millis_f64(),
                mean.as_millis_f64(),
                max.as_millis_f64(),
            )
        })
        .collect()
}

/// Runs one G-COPSS configuration over the workload; returns the world and
/// total link bytes.
#[must_use]
pub fn run_gcopss_once(
    w: &Workload,
    net: &NetworkSpec,
    rp_count: usize,
    auto_threshold: Option<usize>,
    mode: MetricsMode,
) -> (GameWorld, u64) {
    run_gcopss_once_with(w, net, rp_count, auto_threshold, mode, None)
}

/// [`run_gcopss_once`] with optional telemetry capture: when `telemetry` is
/// `Some((capture, label))`, the run is fully instrumented and a report is
/// harvested under `label`.
#[must_use]
pub fn run_gcopss_once_with(
    w: &Workload,
    net: &NetworkSpec,
    rp_count: usize,
    auto_threshold: Option<usize>,
    mode: MetricsMode,
    telemetry: Option<(&mut TelemetryCapture, &str)>,
) -> (GameWorld, u64) {
    let mut params = SimParams::default();
    if let Some(t) = auto_threshold {
        params = params.with_auto_balancing(t);
    }
    let cfg = GcopssConfig {
        params,
        metrics_mode: mode,
        rp_count,
        ..GcopssConfig::default()
    };
    let mut built = ScenarioSpec::new(net, &w.map, &w.population, &w.trace)
        .gcopss(cfg)
        .build()
        .into_gcopss();
    if let Some((cap, _)) = &telemetry {
        cap.arm(&mut built.sim);
    }
    built.sim.run();
    let bytes = built.sim.total_link_bytes();
    if let Some((cap, label)) = telemetry {
        cap.collect(&built.sim, label);
    }
    (built.sim.into_world(), bytes)
}

/// Runs one IP-server configuration over the workload.
#[must_use]
pub fn run_ip_once(
    w: &Workload,
    net: &NetworkSpec,
    server_count: usize,
    mode: MetricsMode,
) -> (GameWorld, u64) {
    run_ip_once_with(w, net, server_count, mode, None)
}

/// [`run_ip_once`] with optional telemetry capture.
#[must_use]
pub fn run_ip_once_with(
    w: &Workload,
    net: &NetworkSpec,
    server_count: usize,
    mode: MetricsMode,
    telemetry: Option<(&mut TelemetryCapture, &str)>,
) -> (GameWorld, u64) {
    let cfg = IpConfig {
        metrics_mode: mode,
        server_count,
        ..IpConfig::default()
    };
    let mut built = ScenarioSpec::new(net, &w.map, &w.population, &w.trace)
        .ip_server(cfg)
        .build()
        .into_ip_server();
    if let Some((cap, _)) = &telemetry {
        cap.arm(&mut built.sim);
    }
    built.sim.run();
    let bytes = built.sim.total_link_bytes();
    if let Some((cap, label)) = telemetry {
        cap.collect(&built.sim, label);
    }
    (built.sim.into_world(), bytes)
}

/// Runs the full sweep.
#[must_use]
pub fn run(cfg: &RpSweepConfig) -> RpSweepOutput {
    run_with(cfg, None)
}

/// Runs the full sweep, optionally harvesting one telemetry report per run.
#[must_use]
pub fn run_with(cfg: &RpSweepConfig, mut telemetry: Option<&mut TelemetryCapture>) -> RpSweepOutput {
    let w = Workload::counter_strike(&cfg.workload);
    let net = NetworkSpec::default_backbone(cfg.net_seed);

    let mut gcopss_rows = Vec::new();
    let mut fig5 = Vec::new();
    for &n in &cfg.rp_counts {
        let want_detail = cfg.fig5_detail && (n == 2 || n == 3);
        let mode = if want_detail {
            MetricsMode::PerPublication
        } else {
            MetricsMode::StatsOnly
        };
        let label = format!("gcopss-{n}rp");
        let t = telemetry.as_mut().map(|c| (&mut **c, label.as_str()));
        let (world, bytes) = run_gcopss_once_with(&w, &net, n, None, mode, t);
        gcopss_rows.push(summarize(format!("G-COPSS {n} RP"), &world, bytes));
        if want_detail {
            fig5.push(Fig5Series {
                label,
                points: downsample(&world.metrics.per_publication_rows(), cfg.fig5_points),
            });
        }
    }

    let mut auto_splits = Vec::new();
    if cfg.include_auto {
        let mode = if cfg.fig5_detail {
            MetricsMode::PerPublication
        } else {
            MetricsMode::StatsOnly
        };
        let t = telemetry.as_mut().map(|c| (&mut **c, "gcopss-auto"));
        let (world, bytes) = run_gcopss_once_with(&w, &net, 1, Some(cfg.auto_threshold), mode, t);
        auto_splits = world.splits.clone();
        gcopss_rows.push(summarize(
            format!("G-COPSS auto ({} splits)", world.splits.len()),
            &world,
            bytes,
        ));
        if cfg.fig5_detail {
            fig5.push(Fig5Series {
                label: "gcopss-auto".into(),
                points: downsample(&world.metrics.per_publication_rows(), cfg.fig5_points),
            });
        }
    }

    let mut server_rows = Vec::new();
    for &n in &cfg.server_counts {
        let label = format!("ip-{n}srv");
        let t = telemetry.as_mut().map(|c| (&mut **c, label.as_str()));
        let (world, bytes) = run_ip_once_with(&w, &net, n, MetricsMode::StatsOnly, t);
        server_rows.push(summarize(format!("IP server x{n}"), &world, bytes));
    }

    RpSweepOutput {
        gcopss_rows,
        server_rows,
        fig5,
        auto_splits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature Table I: congestion ordering must hold.
    #[test]
    fn mini_sweep_shows_congestion_ordering() {
        let cfg = RpSweepConfig {
            workload: WorkloadParams {
                updates: 4_000,
                players: 120,
                ..WorkloadParams::default()
            },
            rp_counts: vec![1, 3],
            include_auto: false,
            server_counts: vec![1],
            fig5_detail: false,
            ..RpSweepConfig::default()
        };
        let out = run(&cfg);
        assert_eq!(out.gcopss_rows.len(), 2);
        assert_eq!(out.server_rows.len(), 1);
        let rp1 = &out.gcopss_rows[0];
        let rp3 = &out.gcopss_rows[1];
        // 1 RP congests under the 2.4 ms inter-arrival (3.3 ms service);
        // 3 RPs must be far faster.
        assert!(
            rp1.mean_latency > rp3.mean_latency * 3,
            "1 RP {} vs 3 RP {}",
            rp1.mean_latency,
            rp3.mean_latency
        );
        // All rows delivered something and moved bytes.
        for r in out.gcopss_rows.iter().chain(&out.server_rows) {
            assert!(r.delivered > 0, "{}", r.label);
            assert!(r.network_bytes > 0, "{}", r.label);
        }
    }
}
