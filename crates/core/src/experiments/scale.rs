//! Million-entry scaling sweep of the two hot lookup structures
//! (`exp_scale`): Subscription Table matching and FIB longest-prefix match
//! on the stride-based tree-bitmap, against the `O(faces)` Bloom-scan and
//! pointer-chasing `NameTree` baselines they replaced.
//!
//! The claim under test (ROADMAP item 1): per-lookup cost on the
//! tree-bitmap paths is a function of name *depth*, not of table *size* —
//! near-flat from 1k to 1M (and, under `--full`, 10M) subscriptions.
//! Everything is deterministic given the seed: the subscription universe,
//! the face assignment and the probe sequence.

use std::collections::BTreeSet;
use std::hint::black_box;
use std::time::Instant;

use gcopss_compat::{Rng, SeedableRng, SmallRng};
use gcopss_copss::{RpId, SubscriptionTable};
use gcopss_names::{Cd, Name, NameTree};
use gcopss_ndn::{FaceId, Fib};
use gcopss_sim::prof;

/// Parameters of the sweep.
#[derive(Debug, Clone)]
pub struct ScaleParams {
    /// Master seed (probe selection).
    pub seed: u64,
    /// Table sizes to measure, in entries.
    pub sizes: Vec<usize>,
    /// Number of distinct faces subscriptions are spread over (a router's
    /// degree, not its subscriber count — stays bounded while tables grow).
    pub faces: u32,
    /// Number of distinct probe CDs per size.
    pub probes: usize,
    /// Timing rounds per benchmark; the reported figure is the median.
    pub rounds: usize,
}

impl Default for ScaleParams {
    fn default() -> Self {
        Self {
            seed: 42,
            sizes: vec![1_000, 10_000, 100_000, 1_000_000],
            faces: 256,
            probes: 512,
            rounds: 5,
        }
    }
}

/// Measured costs at one table size. All lookup figures are median
/// nanoseconds per lookup across the timing rounds.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Entries in the table (subscriptions / FIB prefixes).
    pub entries: usize,
    /// `SubscriptionTable::matching_faces` — the tree-bitmap index walk.
    pub st_match_ns: f64,
    /// `SubscriptionTable::matching_faces_bloom` — the paper-literal
    /// per-face Bloom-scan baseline (`O(faces)`).
    pub st_bloom_ns: f64,
    /// `Fib::lookup_hashed` — tree-bitmap LPM on the precomputed chain.
    pub fib_lpm_ns: f64,
    /// `NameTree::longest_prefix` on the same routes — the pointer-chasing
    /// baseline the FIB migrated off.
    pub fib_nametree_ns: f64,
    /// Wall time to build the Subscription Table, in milliseconds.
    pub st_build_ms: f64,
    /// Wall time to build the FIB, in milliseconds.
    pub fib_build_ms: f64,
}

/// The `i`-th name of the deterministic subscription universe: a three-level
/// hierarchy `/z/y/x` with per-level branching `branch`, filled
/// lowest-level-first so the top-level fanout grows with the table.
fn universe_name(i: usize, branch: usize) -> Name {
    let x = (i % branch) as u32;
    let y = ((i / branch) % branch) as u32;
    let z = (i / (branch * branch)) as u32;
    Name::root().child_index(z).child_index(y).child_index(x)
}

/// Per-level branching for `n` names: the cube root, so all three levels
/// carry comparable fanout.
fn branching(n: usize) -> usize {
    let mut b = 1usize;
    while b * b * b < n {
        b += 1;
    }
    b.max(2)
}

/// Times `f` over `rounds` rounds of `iters` calls each; returns the median
/// per-call nanoseconds.
fn measure<T>(rounds: usize, iters: usize, mut f: impl FnMut() -> T) -> f64 {
    black_box(f()); // warm caches before the first round
    let mut per_round: Vec<f64> = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        per_round.push(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    per_round.sort_by(f64::total_cmp);
    per_round[per_round.len() / 2]
}

/// Runs the sweep: one [`ScalePoint`] per requested size.
#[must_use]
pub fn run(p: &ScaleParams) -> Vec<ScalePoint> {
    p.sizes.iter().map(|&n| run_point(p, n)).collect()
}

fn run_point(p: &ScaleParams, n: usize) -> ScalePoint {
    let _pt = prof::scope("scale/point");
    let branch = branching(n);
    let anchors: BTreeSet<RpId> = [RpId(0)].into();
    let face_of = |i: usize| FaceId((i as u64).wrapping_mul(0x9e37_79b9) as u32 % p.faces);

    // Build the Subscription Table: n leaf subscriptions spread over the
    // faces, plus one shallow subscription per top-level region on face 0
    // so every probe also exercises the hierarchical (ancestor) match.
    let build = prof::scope("scale/build");
    let t = Instant::now();
    let mut st = SubscriptionTable::default();
    for i in 0..n {
        st.subscribe(face_of(i), universe_name(i, branch), anchors.clone(), true);
    }
    for z in 0..branch.min(8) {
        st.subscribe(
            FaceId(0),
            Name::root().child_index(z as u32),
            anchors.clone(),
            true,
        );
    }
    let st_build_ms = t.elapsed().as_secs_f64() * 1e3;

    // Build the FIB and the NameTree baseline over the same universe.
    let t = Instant::now();
    let mut fib = Fib::new();
    for i in 0..n {
        fib.add(universe_name(i, branch), face_of(i));
    }
    let fib_build_ms = t.elapsed().as_secs_f64() * 1e3;
    let mut nametree: NameTree<FaceId> = NameTree::new();
    for i in 0..n {
        nametree.insert(universe_name(i, branch), face_of(i));
    }
    drop(build);

    // Probes: one level below a subscribed leaf (publications land *in* a
    // subscribed area), with a miss sprinkled in every eighth probe.
    let mut rng = SmallRng::seed_from_u64(p.seed ^ n as u64);
    let probes: Vec<Cd> = (0..p.probes)
        .map(|k| {
            let name = if k % 8 == 7 {
                // No subscriber: a top-level region past the universe.
                Name::root()
                    .child_index((branch + 1 + k % 13) as u32)
                    .child_index(0)
            } else {
                universe_name(rng.gen_range(0..n), branch).child_index(7)
            };
            Cd::new(name)
        })
        .collect();
    let chains: Vec<(Name, Vec<u64>)> = probes
        .iter()
        .map(|cd| (cd.name().clone(), cd.name().hash_chain()))
        .collect();

    let mut k = 0usize;
    let st_match_ns = {
        let _m = prof::scope("scale/st_match");
        measure(p.rounds, 20_000, || {
            k = (k + 1) % probes.len();
            st.matching_faces(&probes[k], None, Some(RpId(0)))
        })
    };
    let st_bloom_ns = {
        let _m = prof::scope("scale/baselines");
        let mut k = 0usize;
        measure(p.rounds, 2_000, || {
            k = (k + 1) % probes.len();
            st.matching_faces_bloom(&probes[k], None, Some(RpId(0)))
        })
    };
    let fib_lpm_ns = {
        let _m = prof::scope("scale/fib_lpm");
        let mut k = 0usize;
        measure(p.rounds, 20_000, || {
            k = (k + 1) % chains.len();
            let (name, chain) = &chains[k];
            fib.lookup_hashed(name, chain).map(<[FaceId]>::len)
        })
    };
    let fib_nametree_ns = {
        let _m = prof::scope("scale/baselines");
        let mut k = 0usize;
        measure(p.rounds, 20_000, || {
            k = (k + 1) % chains.len();
            nametree.longest_prefix(&chains[k].0).map(|(_, f)| *f)
        })
    };

    ScalePoint {
        entries: n,
        st_match_ns,
        st_bloom_ns,
        fib_lpm_ns,
        fib_nametree_ns,
        st_build_ms,
        fib_build_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn universe_names_are_distinct() {
        let n = 5_000;
        let branch = branching(n);
        let names: BTreeSet<Name> = (0..n).map(|i| universe_name(i, branch)).collect();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn branching_covers_requested_size() {
        for n in [1, 10, 1_000, 999_983, 1_000_000] {
            let b = branching(n);
            assert!(b * b * b >= n, "branch {b} too small for {n}");
        }
    }

    #[test]
    fn sweep_produces_a_point_per_size() {
        let p = ScaleParams {
            sizes: vec![100, 1_000],
            probes: 64,
            rounds: 1,
            ..ScaleParams::default()
        };
        let points = run(&p);
        assert_eq!(points.len(), 2);
        for pt in &points {
            assert!(pt.st_match_ns > 0.0);
            assert!(pt.fib_lpm_ns > 0.0);
        }
    }
}
