//! Fig. 3c / Fig. 3d: characterization of the synthetic Counter-Strike
//! trace — updates per player (CDF) and players/objects per area.

use gcopss_game::stats::{per_area_stats, updates_per_player_cdf, AreaStats};
use gcopss_sim::json::Json;
use gcopss_sim::{LogHistogram, TelemetryReport};

use super::{Workload, WorkloadParams};

/// The trace characterization output.
#[derive(Debug, Clone)]
pub struct TraceStatsOutput {
    /// Fig. 3c: `(updates, cumulative fraction of players)`.
    pub updates_cdf: Vec<(u64, f64)>,
    /// Fig. 3d: per-leaf-CD players / objects / updates.
    pub per_area: Vec<AreaStats>,
    /// Total updates in the trace.
    pub total_updates: usize,
    /// Number of players.
    pub players: usize,
    /// Total objects.
    pub objects: usize,
}

/// Generates the workload and computes its statistics.
#[must_use]
pub fn run(p: &WorkloadParams) -> TraceStatsOutput {
    let w = Workload::counter_strike(p);
    TraceStatsOutput {
        updates_cdf: updates_per_player_cdf(&w.trace, w.population.len()),
        per_area: per_area_stats(&w.map, &w.objects, &w.population, &w.trace),
        total_updates: w.trace.len(),
        players: w.population.len(),
        objects: w.objects.object_count(),
    }
}

/// Builds a telemetry report from the trace characterization — there is no
/// simulator here, so the "run" is the workload itself: log-scale
/// histograms of updates per player, update sizes, and per-area
/// player/object/update counts.
#[must_use]
pub fn telemetry_report(p: &WorkloadParams, out: &TraceStatsOutput) -> TelemetryReport {
    let w = Workload::counter_strike(p);
    let mut per_player = LogHistogram::new();
    for &(updates, _) in &out.updates_cdf {
        per_player.record(updates);
    }
    let mut sizes = LogHistogram::new();
    for e in w.trace.iter() {
        sizes.record(u64::from(e.size));
    }
    let mut area_players = LogHistogram::new();
    let mut area_objects = LogHistogram::new();
    let mut area_updates = LogHistogram::new();
    for a in &out.per_area {
        area_players.record(a.players as u64);
        area_objects.record(a.objects as u64);
        area_updates.record(a.updates);
    }
    let hist = |name: &str, h: &LogHistogram| {
        Json::obj([("metric", Json::str(name)), ("hist", h.to_json())])
    };
    TelemetryReport {
        label: "trace-stats".to_string(),
        summary: Json::obj([
            ("label", Json::str("trace-stats")),
            ("players", Json::UInt(out.players as u64)),
            ("total_updates", Json::UInt(out.total_updates as u64)),
            ("objects", Json::UInt(out.objects as u64)),
            (
                "histograms",
                Json::arr([
                    hist("updates-per-player", &per_player),
                    hist("update-bytes", &sizes),
                    hist("area-players", &area_players),
                    hist("area-objects", &area_objects),
                    hist("area-updates", &area_updates),
                ]),
            ),
        ]),
        trace_events: Vec::new(),
        fingerprint: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_match_paper_shape() {
        let out = run(&WorkloadParams {
            updates: 30_000,
            ..WorkloadParams::default()
        });
        assert_eq!(out.players, 414);
        assert_eq!(out.per_area.len(), 31);
        assert_eq!(out.total_updates, 30_000);
        // Players per area within the configured 4..=20 (resize may trim
        // the last area slightly).
        let total_players: usize = out.per_area.iter().map(|a| a.players).sum();
        assert_eq!(total_players, 414);
        // Objects per area 80..=120; total near the paper's 3,197.
        for a in &out.per_area {
            assert!((80..=120).contains(&a.objects), "{:?}", a);
        }
        assert!((31 * 80..=31 * 120).contains(&out.objects));
        // The CDF covers all players and ends at 1.
        assert_eq!(out.updates_cdf.len(), 414);
        assert!((out.updates_cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
        // Heavy tail: the busiest player has far more updates than the
        // median.
        let median = out.updates_cdf[207].0;
        let max = out.updates_cdf.last().unwrap().0;
        assert!(max > median * 4, "median {median}, max {max}");
    }
}
