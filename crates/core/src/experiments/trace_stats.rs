//! Fig. 3c / Fig. 3d: characterization of the synthetic Counter-Strike
//! trace — updates per player (CDF) and players/objects per area.

use gcopss_game::stats::{per_area_stats, updates_per_player_cdf, AreaStats};

use super::{Workload, WorkloadParams};

/// The trace characterization output.
#[derive(Debug, Clone)]
pub struct TraceStatsOutput {
    /// Fig. 3c: `(updates, cumulative fraction of players)`.
    pub updates_cdf: Vec<(u64, f64)>,
    /// Fig. 3d: per-leaf-CD players / objects / updates.
    pub per_area: Vec<AreaStats>,
    /// Total updates in the trace.
    pub total_updates: usize,
    /// Number of players.
    pub players: usize,
    /// Total objects.
    pub objects: usize,
}

/// Generates the workload and computes its statistics.
#[must_use]
pub fn run(p: &WorkloadParams) -> TraceStatsOutput {
    let w = Workload::counter_strike(p);
    TraceStatsOutput {
        updates_cdf: updates_per_player_cdf(&w.trace, w.population.len()),
        per_area: per_area_stats(&w.map, &w.objects, &w.population, &w.trace),
        total_updates: w.trace.len(),
        players: w.population.len(),
        objects: w.objects.object_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_match_paper_shape() {
        let out = run(&WorkloadParams {
            updates: 30_000,
            ..WorkloadParams::default()
        });
        assert_eq!(out.players, 414);
        assert_eq!(out.per_area.len(), 31);
        assert_eq!(out.total_updates, 30_000);
        // Players per area within the configured 4..=20 (resize may trim
        // the last area slightly).
        let total_players: usize = out.per_area.iter().map(|a| a.players).sum();
        assert_eq!(total_players, 414);
        // Objects per area 80..=120; total near the paper's 3,197.
        for a in &out.per_area {
            assert!((80..=120).contains(&a.objects), "{:?}", a);
        }
        assert!((31 * 80..=31 * 120).contains(&out.objects));
        // The CDF covers all players and ends at 1.
        assert_eq!(out.updates_cdf.len(), 414);
        assert!((out.updates_cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
        // Heavy tail: the busiest player has far more updates than the
        // median.
        let median = out.updates_cdf[207].0;
        let max = out.updates_cdf.last().unwrap().0;
        assert!(max > median * 4, "median {median}, max {max}");
    }
}
