//! hybrid-G-COPSS: COPSS at the edge, IP (multicast) in the core (§III-D).
//!
//! The incremental-deployment mode maps the hierarchical CD space onto a
//! limited number of IP multicast groups by hashing *high-level* CDs (the
//! level-1 prefixes), so a message published to `/1/1/1` reaches the group
//! that also carries `/1/1` and `/1`. Because several CDs share one group,
//! edge routers receive unwanted messages and filter them before their
//! hosts (the paper's trade-off: better latency — no RP detour, fast IP
//! core — but more network load).

use std::collections::BTreeMap;
use std::sync::Arc;

use gcopss_copss::{CopssPacket, MulticastPacket, SubscriptionTable};
use gcopss_names::Name;
use gcopss_ndn::FaceId;
use gcopss_sim::{Ctx, FaultNotice, NodeBehavior, NodeId, SimDuration};

use crate::{GPacket, GameWorld, IpPacket, SimParams};
use crate::router::FaceMap;

/// The IP multicast group a CD maps to, among `group_count` groups.
///
/// High-level (level-1) prefixes are hashed, not leaf CDs, so that all CDs
/// under one region share a group and hierarchy-based delivery needs no
/// extra machinery.
#[must_use]
pub fn group_of(cd: &Name, group_count: u32) -> u32 {
    let level1 = if cd.is_empty() { cd.clone() } else { cd.prefix(1) };
    (level1.stable_hash() % u64::from(group_count.max(1))) as u32
}

/// The groups a *subscription* to `cd` must join: one group for a
/// subscription at or below a level-1 prefix, every group for the root
/// subscription `/` (a world-layer player sees all level-1 prefixes).
#[must_use]
pub fn groups_for_subscription(cd: &Name, group_count: u32) -> Vec<u32> {
    if cd.is_empty() {
        (0..group_count.max(1)).collect()
    } else {
        vec![group_of(cd, group_count)]
    }
}

/// Global IP-multicast group membership, kept in the shared world state
/// (standing in for IGMP).
#[derive(Debug, Default)]
pub struct McastGroups {
    members: BTreeMap<u32, Vec<NodeId>>,
}

impl McastGroups {
    /// Adds `edge` to `group`; idempotent.
    pub fn join(&mut self, group: u32, edge: NodeId) {
        let m = self.members.entry(group).or_default();
        if !m.contains(&edge) {
            m.push(edge);
            m.sort_unstable();
        }
    }

    /// Removes `edge` from `group`.
    pub fn leave(&mut self, group: u32, edge: NodeId) {
        if let Some(m) = self.members.get_mut(&group) {
            m.retain(|n| *n != edge);
        }
    }

    /// Current members of `group`.
    #[must_use]
    pub fn members(&self, group: u32) -> &[NodeId] {
        self.members.get(&group).map_or(&[], Vec::as_slice)
    }
}

/// Routes an IP packet at a plain (core) router: unicast packets follow
/// shortest paths; multicast packets are forwarded along the implicit
/// shortest-path tree, duplicating only where next hops diverge.
pub fn route_ip_at_router(ctx: &mut Ctx<'_, GPacket, GameWorld>, ip: IpPacket) {
    match ip {
        IpPacket::ToServer { server, .. } => {
            let g = GPacket::Ip(ip.clone());
            let size = g.wire_size();
            if ctx.send_toward(server, g, size).is_none() {
                ctx.emit(gcopss_sim::TraceEvent::Drop, crate::drops::IP_NO_ROUTE, size);
                ctx.world().bump(crate::drops::IP_NO_ROUTE);
            }
            let _ = ip;
        }
        IpPacket::ToClient { client, .. } => {
            let g = GPacket::Ip(ip.clone());
            let size = g.wire_size();
            if ctx.send_toward(client, g, size).is_none() {
                ctx.emit(gcopss_sim::TraceEvent::Drop, crate::drops::IP_NO_ROUTE, size);
                ctx.world().bump(crate::drops::IP_NO_ROUTE);
            }
        }
        IpPacket::Hello { server, .. } => {
            let g = GPacket::Ip(ip.clone());
            let size = g.wire_size();
            if ctx.send_toward(server, g, size).is_none() {
                ctx.emit(gcopss_sim::TraceEvent::Drop, crate::drops::IP_NO_ROUTE, size);
                ctx.world().bump(crate::drops::IP_NO_ROUTE);
            }
        }
        IpPacket::Mcast { group, dsts, inner } => {
            forward_mcast(ctx, group, &dsts, inner);
        }
    }
}

/// Splits the remaining destinations by next hop and sends one copy per
/// distinct next hop — the packet-level behavior of an IP multicast tree.
pub(crate) fn forward_mcast(
    ctx: &mut Ctx<'_, GPacket, GameWorld>,
    group: u32,
    dsts: &[NodeId],
    inner: MulticastPacket,
) {
    let me = ctx.node();
    let mut by_hop: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
    for &d in dsts {
        if d == me {
            continue;
        }
        if let Some(hop) = ctx.routing().next_hop(me, d) {
            by_hop.entry(hop).or_default().push(d);
        }
    }
    for (hop, subset) in by_hop {
        let g = GPacket::Ip(IpPacket::Mcast {
            group,
            dsts: Arc::new(subset),
            inner: inner.clone(),
        });
        let size = g.wire_size();
        ctx.send(hop, g, size);
    }
}

/// The hybrid-G-COPSS *edge* router: COPSS-aware toward its hosts, IP
/// multicast toward the core.
///
/// * Host `Subscribe`: record in the local ST and join the IP multicast
///   groups of the subscribed CDs' level-1 prefixes.
/// * Host `Multicast`: deliver locally, then send one IP multicast into the
///   core addressed to all member edges of the CD's group.
/// * Incoming `Mcast`: forward along the tree; where this edge is a
///   destination, *filter* — deliver only to host faces whose ST actually
///   matches the CD (unwanted messages caused by group sharing stop here).
pub struct HybridEdgeRouter {
    params: SimParams,
    faces: FaceMap,
    st: SubscriptionTable,
    group_count: u32,
    /// Level-1 prefixes this edge has joined groups for, with refcounts.
    joined: BTreeMap<u32, u32>,
}

impl HybridEdgeRouter {
    /// Creates a hybrid edge router with `group_count` available IP
    /// multicast groups (the paper's Table II uses 6).
    #[must_use]
    pub fn new(params: SimParams, faces: FaceMap, group_count: u32) -> Self {
        Self {
            params,
            faces,
            st: SubscriptionTable::default(),
            group_count,
            joined: BTreeMap::new(),
        }
    }

    fn deliver_to_hosts(
        &self,
        ctx: &mut Ctx<'_, GPacket, GameWorld>,
        m: &MulticastPacket,
        arrival: Option<FaceId>,
    ) {
        for face in self.st.matching_faces(&m.cd, arrival, None) {
            if let Some(node) = self.faces.node_of(face) {
                let g = GPacket::Copss(CopssPacket::Multicast(m.clone()));
                let size = g.wire_size();
                ctx.send(node, g, size);
            }
        }
    }
}

impl NodeBehavior<GPacket, GameWorld> for HybridEdgeRouter {
    fn on_fault(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>, notice: FaultNotice) {
        let _p = gcopss_sim::prof::scope("hybrid_edge/fault");
        match notice {
            FaultNotice::LinkDown { peer } => {
                // A dead host adjacency: drop its subscriptions and release
                // the IP groups they held.
                let Some(face) = self.faces.face_of(peer) else {
                    return;
                };
                let purged = self.st.remove_face(face);
                ctx.world().bump_by(crate::drops::ST_PURGED, purged.len() as u64);
                let me = ctx.node();
                for cd in &purged {
                    for group in groups_for_subscription(cd, self.group_count) {
                        if let Some(c) = self.joined.get_mut(&group) {
                            *c = c.saturating_sub(1);
                            if *c == 0 {
                                ctx.world().mcast_groups.leave(group, me);
                            }
                        }
                    }
                }
                self.joined.retain(|_, c| *c > 0);
            }
            FaultNotice::LinkUp { .. } => {}
            FaultNotice::Restarted => {
                // All edge soft state (ST and IGMP joins) is gone; hosts
                // must re-Subscribe.
                self.st = SubscriptionTable::default();
                let me = ctx.node();
                for &group in self.joined.keys() {
                    ctx.world().mcast_groups.leave(group, me);
                }
                self.joined.clear();
                ctx.world().bump("router-restarts");
            }
        }
    }

    fn service_time(&self, pkt: &GPacket) -> SimDuration {
        match pkt {
            // Edge does COPSS work: mapping/filtering on multicasts.
            GPacket::Copss(CopssPacket::Multicast(_)) | GPacket::Ip(IpPacket::Mcast { .. }) => {
                self.params.copss_multicast_proc
            }
            GPacket::Copss(_) => self.params.control_proc,
            _ => self.params.ip_proc,
        }
    }

    fn on_packet(
        &mut self,
        ctx: &mut Ctx<'_, GPacket, GameWorld>,
        from: Option<NodeId>,
        pkt: GPacket,
    ) {
        let _p = gcopss_sim::prof::scope("hybrid_edge/packet");
        let arrival = from.and_then(|n| self.faces.face_of(n));
        match pkt {
            GPacket::Copss(CopssPacket::Subscribe { cds, .. }) => {
                let Some(face) = arrival else { return };
                let me = ctx.node();
                for cd in cds {
                    for group in groups_for_subscription(&cd, self.group_count) {
                        *self.joined.entry(group).or_insert(0) += 1;
                        ctx.world().mcast_groups.join(group, me);
                    }
                    self.st
                        .subscribe(face, cd, std::collections::BTreeSet::new(), true);
                }
            }
            GPacket::Copss(CopssPacket::Unsubscribe { cds, .. }) => {
                let Some(face) = arrival else { return };
                let me = ctx.node();
                for cd in cds {
                    if self.st.unsubscribe(face, &cd, None) {
                        for group in groups_for_subscription(&cd, self.group_count) {
                            if let Some(c) = self.joined.get_mut(&group) {
                                *c = c.saturating_sub(1);
                                if *c == 0 {
                                    ctx.world().mcast_groups.leave(group, me);
                                }
                            }
                        }
                    }
                }
            }
            GPacket::Copss(CopssPacket::Multicast(m)) => {
                // From a host: local delivery + one multicast into the core.
                self.deliver_to_hosts(ctx, &m, arrival);
                let group = group_of(m.cd.name(), self.group_count);
                let me = ctx.node();
                let members: Vec<NodeId> = ctx
                    .world()
                    .mcast_groups
                    .members(group)
                    .iter()
                    .copied()
                    .filter(|n| *n != me)
                    .collect();
                if !members.is_empty() {
                    forward_mcast(ctx, group, &members, m);
                }
            }
            GPacket::Ip(IpPacket::Mcast { group, dsts, inner }) => {
                let me = ctx.node();
                if dsts.contains(&me) {
                    // Filter: only actually-subscribed hosts receive it.
                    if self.st.matching_faces(&inner.cd, None, None).is_empty() {
                        ctx.emit(
                            gcopss_sim::TraceEvent::Drop,
                            crate::drops::HYBRID_FILTERED_UNWANTED,
                            inner.encoded_len() as u32,
                        );
                        ctx.world().bump(crate::drops::HYBRID_FILTERED_UNWANTED);
                    } else {
                        self.deliver_to_hosts(ctx, &inner, None);
                    }
                }
                forward_mcast(ctx, group, &dsts, inner);
            }
            GPacket::Ip(other) => route_ip_at_router(ctx, other),
            _ => {
                ctx.emit(gcopss_sim::TraceEvent::Drop, crate::drops::HYBRID_UNEXPECTED_PACKET, 0);
                ctx.world().bump(crate::drops::HYBRID_UNEXPECTED_PACKET);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_mapping_uses_level1_prefix() {
        let g = 6;
        assert_eq!(
            group_of(&Name::parse_lit("/1/1/1"), g),
            group_of(&Name::parse_lit("/1/2"), g)
        );
        assert_eq!(
            group_of(&Name::parse_lit("/1"), g),
            group_of(&Name::parse_lit("/1/5"), g)
        );
        // Root own-area maps consistently.
        assert_eq!(
            group_of(&Name::parse_lit("/0"), g),
            group_of(&Name::parse_lit("/0"), g)
        );
    }

    #[test]
    fn group_mapping_within_bounds() {
        for i in 0..20u32 {
            let cd = Name::root().child_index(i);
            assert!(group_of(&cd, 6) < 6);
        }
        assert_eq!(group_of(&Name::parse_lit("/1"), 0), 0, "clamped");
    }

    #[test]
    fn mcast_groups_membership() {
        let mut g = McastGroups::default();
        g.join(1, NodeId(5));
        g.join(1, NodeId(3));
        g.join(1, NodeId(5));
        assert_eq!(g.members(1), &[NodeId(3), NodeId(5)]);
        g.leave(1, NodeId(3));
        assert_eq!(g.members(1), &[NodeId(5)]);
        assert!(g.members(2).is_empty());
    }
}
