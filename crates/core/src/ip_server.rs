//! The IP client/server baseline (§V): players unicast updates to a game
//! server, which determines the interested players and unicasts a copy to
//! each.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use gcopss_game::{AreaId, GameMap, PlayerId};
use gcopss_names::Name;
use gcopss_sim::{Ctx, FaultNotice, NodeBehavior, NodeId, SimDuration};

use crate::client::{ClientRecovery, RatePacer, TraceCursor};
use crate::{GPacket, GameWorld, IpPacket, IpUpdate, RateAdaptConfig, RecoveryConfig, SimParams};

/// Timer key of trace-driven publishing (IP client).
const TIMER_PUBLISH: u64 = 0;
/// Timer key of the IP client's silence watchdog (recovery mode only).
const TIMER_WATCHDOG: u64 = 1;

/// Global game knowledge a server needs: which player sits where, and which
/// players must receive an update to a given leaf CD.
#[derive(Debug)]
pub struct Roster {
    /// Host node of each player.
    pub player_nodes: Vec<NodeId>,
    /// Area of each player.
    pub player_areas: Vec<AreaId>,
    /// Precomputed: leaf CD → players whose subscriptions match it.
    viewers: BTreeMap<Name, Vec<PlayerId>>,
}

impl Roster {
    /// Builds the roster (and the per-CD viewer lists) from static player
    /// placements.
    #[must_use]
    pub fn new(map: &GameMap, player_nodes: Vec<NodeId>, player_areas: Vec<AreaId>) -> Self {
        let mut viewers: BTreeMap<Name, Vec<PlayerId>> = BTreeMap::new();
        for cd in map.leaf_cds() {
            let area = map.area_of_leaf_cd(cd).expect("leaf CD maps to an area");
            let list = (0..player_areas.len() as u32)
                .map(PlayerId)
                .filter(|p| map.can_see(player_areas[p.index()], area))
                .collect();
            viewers.insert(cd.clone(), list);
        }
        Self {
            player_nodes,
            player_areas,
            viewers,
        }
    }

    /// Players that must receive an update published to `cd`.
    #[must_use]
    pub fn viewers_of(&self, cd: &Name) -> &[PlayerId] {
        self.viewers.get(cd).map_or(&[], Vec::as_slice)
    }

    /// Number of players.
    #[must_use]
    pub fn len(&self) -> usize {
        self.player_nodes.len()
    }

    /// Returns `true` if there are no players.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.player_nodes.is_empty()
    }
}

/// The game server: receives one update, spends `server_proc` on game
/// logic, then unicasts a copy to every interested player (paying
/// `server_per_recipient` of send work each).
pub struct IpServer {
    params: SimParams,
    roster: Arc<Roster>,
    /// `Some` enables the connection model: the server only delivers to
    /// players that have (re-)established a session with a `Hello`, and a
    /// crash wipes the connection table (the TCP failure mode of a
    /// centralized game server).
    recovery: Option<RecoveryConfig>,
    connected: BTreeSet<PlayerId>,
}

impl IpServer {
    /// Creates a server with shared `roster` knowledge.
    #[must_use]
    pub fn new(params: SimParams, roster: Arc<Roster>) -> Self {
        Self {
            params,
            roster,
            recovery: None,
            connected: BTreeSet::new(),
        }
    }

    /// Enables the connection/reconnect model (see [`IpServer`]).
    #[must_use]
    pub fn with_recovery(mut self, cfg: RecoveryConfig) -> Self {
        self.recovery = Some(cfg);
        self
    }
}

impl NodeBehavior<GPacket, GameWorld> for IpServer {
    fn service_time(&self, pkt: &GPacket) -> SimDuration {
        match pkt {
            GPacket::Ip(IpPacket::ToServer { .. }) => self.params.server_proc,
            _ => self.params.ip_proc,
        }
    }

    fn on_packet(
        &mut self,
        ctx: &mut Ctx<'_, GPacket, GameWorld>,
        _from: Option<NodeId>,
        pkt: GPacket,
    ) {
        let _p = gcopss_sim::prof::scope("ip_server/packet");
        let update = match pkt {
            GPacket::Ip(IpPacket::ToServer { update, .. }) => update,
            GPacket::Ip(IpPacket::Hello { player, .. }) => {
                self.connected.insert(player);
                ctx.world().bump("server-hellos");
                return;
            }
            _ => {
                ctx.emit(gcopss_sim::TraceEvent::Drop, crate::drops::SERVER_UNEXPECTED_PACKET, 0);
                ctx.world().bump(crate::drops::SERVER_UNEXPECTED_PACKET);
                return;
            }
        };
        let publisher = ctx.world().metrics.publisher_of(update.id);
        let mut recipients = 0u64;
        for &p in self.roster.viewers_of(&update.cd) {
            if Some(p) == publisher {
                continue;
            }
            // Connection model: a player whose session was lost in a server
            // crash gets nothing until it re-hellos.
            if self.recovery.is_some() && !self.connected.contains(&p) {
                ctx.emit(
                    gcopss_sim::TraceEvent::Drop,
                    crate::drops::SERVER_DISCONNECTED_PLAYER,
                    update.encoded_len() as u32,
                );
                ctx.world().bump(crate::drops::SERVER_DISCONNECTED_PLAYER);
                continue;
            }
            let client = self.roster.player_nodes[p.index()];
            let g = GPacket::Ip(IpPacket::ToClient {
                client,
                update: update.clone(),
            });
            let size = g.wire_size();
            ctx.send_toward(client, g, size);
            recipients += 1;
        }
        if ctx.telemetry_enabled() {
            ctx.counter("server-updates-in", 1);
            ctx.counter("server-unicasts-out", recipients);
            ctx.observe("server-fanout", recipients);
        }
        ctx.consume(self.params.server_per_recipient.saturating_mul(recipients));
    }

    fn on_fault(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>, notice: FaultNotice) {
        let _p = gcopss_sim::prof::scope("ip_server/fault");
        if notice == FaultNotice::Restarted {
            // The crash dropped every TCP session; clients must reconnect.
            self.connected.clear();
            ctx.world().bump("server-restarts");
        }
    }
}

/// The IP baseline's player host: publishes its trace slice to the server
/// owning each CD, and records deliveries.
pub struct IpClient {
    player: PlayerId,
    edge: NodeId,
    /// CD → server node (servers partition the leaf CDs).
    server_of: Arc<BTreeMap<Name, NodeId>>,
    cursor: TraceCursor,
    recovery: Option<ClientRecovery>,
    pacer: Option<RatePacer>,
}

impl IpClient {
    /// Creates a client publishing its trace slice to the servers in
    /// `server_of`.
    #[must_use]
    pub fn new(
        player: PlayerId,
        edge: NodeId,
        server_of: Arc<BTreeMap<Name, NodeId>>,
        cursor: TraceCursor,
    ) -> Self {
        Self {
            player,
            edge,
            server_of,
            cursor,
            recovery: None,
            pacer: None,
        }
    }

    /// Enables session (re-)establishment: the client `Hello`s every server
    /// at start and again whenever deliveries go silent (capped exponential
    /// backoff) or its access link recovers. Requires
    /// [`gcopss_sim::Simulator::run_until`] — the watchdog re-arms forever.
    #[must_use]
    pub fn with_recovery(mut self, cfg: RecoveryConfig) -> Self {
        self.recovery = Some(ClientRecovery::new(cfg, self.player));
        self
    }

    /// Enables congestion-feedback rate adaptation, exactly as on the
    /// G-COPSS client: marked `ToClient` deliveries stretch the publish
    /// cadence multiplicatively (capped), clean deliveries decay it, and
    /// in-gap publishes are shed at the source (`"rate-limited"`).
    #[must_use]
    pub fn with_rate_adapt(mut self, cfg: RateAdaptConfig) -> Self {
        self.pacer = Some(RatePacer::new(cfg));
        self
    }

    fn schedule_next(&self, ctx: &mut Ctx<'_, GPacket, GameWorld>) {
        if let Some(at) = self.cursor.next_time() {
            ctx.schedule(at.saturating_duration_since(ctx.now()), TIMER_PUBLISH);
        }
    }

    /// Sends a session-establishment `Hello` to every distinct server.
    fn hello_servers(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>) {
        let me = ctx.node();
        let servers: BTreeSet<NodeId> = self.server_of.values().copied().collect();
        for server in servers {
            let g = GPacket::Ip(IpPacket::Hello {
                server,
                player: self.player,
                client: me,
            });
            let size = g.wire_size();
            ctx.send(self.edge, g, size);
        }
        ctx.world().bump("client-reconnects");
    }
}

impl NodeBehavior<GPacket, GameWorld> for IpClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>) {
        let _p = gcopss_sim::prof::scope("ip_client/start");
        self.schedule_next(ctx);
        let now = ctx.now();
        if self.recovery.is_some() {
            self.hello_servers(ctx);
            let r = self.recovery.as_mut().expect("recovery enabled");
            r.last_activity = now;
            let delay = r.cfg.watchdog + r.jitter();
            ctx.schedule(delay, TIMER_WATCHDOG);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>, key: u64) {
        let _p = gcopss_sim::prof::scope("ip_client/timer");
        if key == TIMER_WATCHDOG {
            let now = ctx.now();
            let Some(r) = &mut self.recovery else { return };
            let silent = now.saturating_duration_since(r.last_activity) >= r.cfg.watchdog;
            let next = if silent {
                let delay = r.backoff + r.jitter();
                r.backoff = (r.backoff + r.backoff).min(r.cfg.backoff_cap);
                self.hello_servers(ctx);
                delay
            } else {
                r.backoff = r.cfg.backoff_base;
                r.cfg.watchdog + r.jitter()
            };
            ctx.schedule(next, TIMER_WATCHDOG);
            return;
        }
        let Some((id, e)) = self.cursor.pop() else {
            return;
        };
        let (cd, size) = (e.cd.clone(), e.size);
        if let Some(p) = &mut self.pacer {
            if !p.allow(ctx.now()) {
                // Shed at the source (never published — the auditor sees
                // an unpublished trace event, not a lost packet); the
                // trace keeps advancing.
                ctx.emit(gcopss_sim::TraceEvent::Drop, crate::drops::RATE_LIMITED, size);
                ctx.lineage_shed(id, crate::drops::RATE_LIMITED);
                ctx.world().bump(crate::drops::RATE_LIMITED);
                self.schedule_next(ctx);
                return;
            }
        }
        let Some(&server) = self.server_of.get(&cd) else {
            ctx.emit(gcopss_sim::TraceEvent::Drop, crate::drops::IP_CLIENT_NO_SERVER, e.size);
            ctx.world().bump(crate::drops::IP_CLIENT_NO_SERVER);
            return;
        };
        let now = ctx.now();
        ctx.world().metrics.publish(id, self.player, now);
        let g = GPacket::Ip(IpPacket::ToServer {
            server,
            update: IpUpdate { id, cd, size },
        });
        let wire = g.wire_size();
        ctx.send(self.edge, g, wire);
        self.schedule_next(ctx);
    }

    fn on_packet(
        &mut self,
        ctx: &mut Ctx<'_, GPacket, GameWorld>,
        _from: Option<NodeId>,
        pkt: GPacket,
    ) {
        let _p = gcopss_sim::prof::scope("ip_client/packet");
        if let GPacket::Ip(IpPacket::ToClient { update, .. }) = pkt {
            let now = ctx.now();
            if let Some(r) = &mut self.recovery {
                r.last_activity = now;
            }
            if let Some(p) = &mut self.pacer {
                p.on_delivery(ctx.congestion_marked());
            }
            ctx.world().record_delivery(update.id, self.player, now);
            ctx.lineage_deliver(self.player.0);
            if ctx.telemetry_enabled() {
                ctx.counter("delivered", 1);
            }
        }
    }

    fn on_fault(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>, notice: FaultNotice) {
        let _p = gcopss_sim::prof::scope("ip_client/fault");
        if self.recovery.is_none() {
            return;
        }
        match notice {
            FaultNotice::LinkUp { .. } | FaultNotice::Restarted => {
                let now = ctx.now();
                let r = self.recovery.as_mut().expect("recovery enabled");
                r.backoff = r.cfg.backoff_base;
                r.last_activity = now;
                self.hello_servers(ctx);
                if notice == FaultNotice::Restarted {
                    // The crash killed our pending timers: re-arm both.
                    self.schedule_next(ctx);
                    let r = self.recovery.as_mut().expect("recovery enabled");
                    let delay = r.cfg.watchdog + r.jitter();
                    ctx.schedule(delay, TIMER_WATCHDOG);
                }
            }
            FaultNotice::LinkDown { .. } => {}
        }
    }
}

/// Partitions the leaf CDs of `map` across `server_nodes` round-robin by
/// level-1 prefix (the same scheme RPs use), returning the CD → server
/// mapping clients publish with.
#[must_use]
pub fn partition_cds_to_servers(
    map: &GameMap,
    server_nodes: &[NodeId],
) -> BTreeMap<Name, NodeId> {
    let mut out = BTreeMap::new();
    if server_nodes.is_empty() {
        return out;
    }
    // Group leaf CDs by level-1 component for locality, then round-robin.
    let mut tops: Vec<Name> = map
        .leaf_cds()
        .iter()
        .map(|cd| cd.prefix(1))
        .collect();
    tops.sort();
    tops.dedup();
    let top_server: BTreeMap<Name, NodeId> = tops
        .iter()
        .enumerate()
        .map(|(i, t)| (t.clone(), server_nodes[i % server_nodes.len()]))
        .collect();
    for cd in map.leaf_cds() {
        out.insert(cd.clone(), top_server[&cd.prefix(1)]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcopss_game::PlayerPopulation;

    #[test]
    fn roster_viewers_match_visibility() {
        let map = GameMap::paper_map();
        let pop = PlayerPopulation::uniform_per_area(&map, 2);
        let areas: Vec<AreaId> = pop.players().map(|p| pop.area_of(p)).collect();
        let nodes: Vec<NodeId> = (0..pop.len() as u32).map(NodeId).collect();
        let roster = Roster::new(&map, nodes, areas.clone());
        assert_eq!(roster.len(), 62);
        // Everyone sees the world layer: /0 has 62 viewers.
        assert_eq!(roster.viewers_of(&Name::parse_lit("/0")).len(), 62);
        // A zone is seen by its 2 soldiers + 2 region flyers + 2 satellites.
        assert_eq!(roster.viewers_of(&Name::parse_lit("/1/2")).len(), 6);
        for &p in roster.viewers_of(&Name::parse_lit("/1/2")) {
            let viewer_area = areas[p.index()];
            let target = map.area_of_leaf_cd(&Name::parse_lit("/1/2")).unwrap();
            assert!(map.can_see(viewer_area, target));
        }
    }

    #[test]
    fn cd_partition_covers_all_leaf_cds() {
        let map = GameMap::paper_map();
        let servers = vec![NodeId(100), NodeId(101), NodeId(102)];
        let part = partition_cds_to_servers(&map, &servers);
        assert_eq!(part.len(), 31);
        for s in part.values() {
            assert!(servers.contains(s));
        }
        // All CDs of one region go to one server.
        assert_eq!(
            part[&Name::parse_lit("/1/1")],
            part[&Name::parse_lit("/1/5")]
        );
        // With 6 level-1 prefixes and 3 servers, each serves 2.
        let mut counts: BTreeMap<NodeId, usize> = BTreeMap::new();
        for cd in map.leaf_cds() {
            *counts.entry(part[cd]).or_default() += 1;
        }
        assert_eq!(counts.len(), 3);
    }

    #[test]
    fn single_server_gets_everything() {
        let map = GameMap::paper_map();
        let part = partition_cds_to_servers(&map, &[NodeId(7)]);
        assert!(part.values().all(|n| *n == NodeId(7)));
        assert!(partition_cds_to_servers(&map, &[]).is_empty());
    }
}
