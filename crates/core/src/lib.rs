//! The G-COPSS system: the paper's primary contribution, its gaming
//! add-ons, and the baselines it is evaluated against.
//!
//! This crate assembles the substrates (`gcopss-names`, `gcopss-ndn`,
//! `gcopss-copss`, `gcopss-sim`, `gcopss-game`) into runnable systems:
//!
//! * [`GCopssRouter`] — the router of Fig. 2 (NDN + COPSS engines) with the
//!   dynamic RP-balancing protocol of §IV-B.
//! * [`GamePlayerClient`] — the player host: hierarchical subscriptions,
//!   trace-driven publishing, latency accounting.
//! * [`broker`] — the decentralized snapshot brokers of §IV-A with both
//!   dissemination modes (query/response and cyclic multicast).
//! * [`hybrid`] — hybrid-G-COPSS (COPSS edge + IP multicast core, §III-D).
//! * [`ip_server`] — the IP client/server baseline.
//! * [`ndn_baseline`] — the VoCCN-style NDN query/response baseline.
//! * [`scenario`] — builders assembling complete simulations.
//! * [`experiments`] — drivers regenerating every table and figure of §V.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod broker;
mod client;
pub mod drops;
pub mod experiments;
pub mod hybrid;
pub mod ip_server;
pub mod ndn_baseline;
mod packet;
mod params;
mod router;
pub mod scenario;
mod world;

pub use client::{CatchUpConfig, DedupWindow, GamePlayerClient, TraceCursor};
pub use packet::{payload_of, GPacket, IpPacket, IpUpdate};
pub use params::{
    AdaptiveCacheConfig, AdaptiveRpConfig, RateAdaptConfig, RecoveryConfig, SimParams,
};
pub use router::{FaceMap, GCopssRouter, RpSelection, SplitConfig};
pub use world::{
    CatchUpAudit, CatchUpLedger, CatchUpMode, CatchUpRecord, ConvergenceRecord, GameWorld,
    MetricsMode, SplitRecord, UpdateMetrics,
};
