//! The NDN query/response baseline (§V-A).
//!
//! The paper compares G-COPSS against a pure-NDN solution built "using the
//! method described in VoCCN" with player discovery assumed solved by ACT:
//! every player knows the other players in its AoI and continuously queries
//! each of them for their next update batch, with two optimizations:
//!
//! * **Pipelining**: up to `window` (paper: 3) outstanding Interests per
//!   producer, so the next batches are already requested while one is in
//!   flight.
//! * **Update accumulation**: a producer buffers its updates and answers
//!   the pending Interest for its next sequence number every `t` ms,
//!   putting all buffered updates into one Data packet (larger `t` saves
//!   bandwidth, costs latency).
//!
//! Update streams are named `/player/<id>/<seq>`. Routers are ordinary NDN
//! forwarders, so simultaneous consumers of one producer are aggregated in
//! the PIT and served by one Data — and still, as §V-A shows, the sheer
//! query volume melts the routers.

use std::collections::{BTreeMap, BTreeSet};

use gcopss_compat::bytes::Bytes;
use gcopss_game::{GameMap, PlayerId};
use gcopss_names::Name;
use gcopss_ndn::{Data, Interest};
use gcopss_sim::{Ctx, FaultNotice, NodeBehavior, NodeId, SimDuration, SimTime};

use crate::client::TraceCursor;
use crate::{GPacket, GameWorld};

/// The NDN name prefix of a player's update stream: `/player/<id>`.
#[must_use]
pub fn player_prefix(player: PlayerId) -> Name {
    Name::parse_lit("/player").child_index(player.0)
}

/// Configuration of the VoCCN-style client.
#[derive(Debug, Clone)]
pub struct NdnClientConfig {
    /// Outstanding Interests per producer (paper: 3).
    pub window: u32,
    /// Update-accumulation interval `t`.
    pub accum_interval: SimDuration,
    /// Re-express outstanding Interests older than this.
    pub retry_after: SimDuration,
    /// Keep the retry timer armed even after the trace ends and no retries
    /// are due. Required under fault injection — an Interest lost to a link
    /// failure after the last publish would otherwise never be re-expressed
    /// — at the cost of the simulation no longer draining to quiescence
    /// (use [`gcopss_sim::Simulator::run_until`]).
    pub retry_forever: bool,
}

impl Default for NdnClientConfig {
    fn default() -> Self {
        Self {
            window: 3,
            accum_interval: SimDuration::from_millis(100),
            retry_after: SimDuration::from_secs(4),
            retry_forever: false,
        }
    }
}

/// Encodes a batch of publication ids into a Data payload whose length
/// equals the accumulated update bytes (min. the id listing itself).
fn encode_batch(ids: &[u64], total_update_bytes: usize) -> Bytes {
    let header = 4 + ids.len() * 8;
    let len = header.max(total_update_bytes);
    let mut v = vec![0u8; len];
    v[..4].copy_from_slice(&(ids.len() as u32).to_le_bytes());
    for (i, id) in ids.iter().enumerate() {
        v[4 + i * 8..4 + i * 8 + 8].copy_from_slice(&id.to_le_bytes());
    }
    Bytes::from(v)
}

/// Decodes the publication ids from a batch payload.
fn decode_batch(payload: &[u8]) -> Vec<u64> {
    let Some(head) = payload.get(..4) else {
        return Vec::new();
    };
    let count = u32::from_le_bytes([head[0], head[1], head[2], head[3]]) as usize;
    (0..count)
        .filter_map(|i| {
            payload
                .get(4 + i * 8..4 + i * 8 + 8)
                .map(|b| u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
        })
        .collect()
}

/// Per-producer consumer state.
#[derive(Debug, Default)]
struct ConsumerState {
    next_to_request: u64,
    /// Outstanding seq → last expression time.
    outstanding: BTreeMap<u64, SimTime>,
    received: BTreeSet<u64>,
}

/// The VoCCN-style player host: producer of its own update stream,
/// consumer of every AoI-relevant player's stream.
pub struct NdnPlayerClient {
    player: PlayerId,
    edge: NodeId,
    cfg: NdnClientConfig,
    cursor: TraceCursor,
    /// Producers this player consumes from.
    producers: Vec<PlayerId>,
    consumer: Vec<ConsumerState>,
    // Producer side.
    cur_seq: u64,
    accum_ids: Vec<u64>,
    accum_bytes: usize,
    history: BTreeMap<u64, (Vec<u64>, usize)>,
    pending_seqs: BTreeSet<u64>,
    next_nonce: u64,
    trace_done: bool,
}

const TIMER_PUBLISH: u64 = 0;
const TIMER_FLUSH: u64 = 2;
const TIMER_RETRY: u64 = 3;
const HISTORY_CAP: usize = 128;

impl NdnPlayerClient {
    /// Creates a client. `producers` is the AoI roster from ACT: the
    /// players whose updates this player must track.
    #[must_use]
    pub fn new(
        player: PlayerId,
        edge: NodeId,
        cfg: NdnClientConfig,
        cursor: TraceCursor,
        producers: Vec<PlayerId>,
    ) -> Self {
        let consumer = producers.iter().map(|_| ConsumerState::default()).collect();
        Self {
            player,
            edge,
            cfg,
            cursor,
            producers,
            consumer,
            cur_seq: 0,
            accum_ids: Vec::new(),
            accum_bytes: 0,
            history: BTreeMap::new(),
            pending_seqs: BTreeSet::new(),
            next_nonce: u64::from(player.0) << 40,
            trace_done: false,
        }
    }

    /// Computes the AoI roster for every player from static placements:
    /// consumer → producers whose location the consumer sees.
    #[must_use]
    pub fn rosters(map: &GameMap, areas: &[gcopss_game::AreaId]) -> Vec<Vec<PlayerId>> {
        (0..areas.len())
            .map(|c| {
                (0..areas.len() as u32)
                    .map(PlayerId)
                    .filter(|p| p.index() != c && map.can_see(areas[c], areas[p.index()]))
                    .collect()
            })
            .collect()
    }

    fn nonce(&mut self) -> u64 {
        self.next_nonce += 1;
        self.next_nonce
    }

    fn express(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>, producer_idx: usize, seq: u64) {
        let name = player_prefix(self.producers[producer_idx]).child_index(seq as u32);
        let nonce = self.nonce();
        let g = GPacket::Interest(Interest::new(name, nonce));
        let size = g.wire_size();
        ctx.send(self.edge, g, size);
        if ctx.telemetry_enabled() {
            ctx.counter("ndn-interests-expressed", 1);
        }
        let now = ctx.now();
        self.consumer[producer_idx].outstanding.insert(seq, now);
    }

    fn send_batch(&self, ctx: &mut Ctx<'_, GPacket, GameWorld>, seq: u64) {
        let Some((ids, bytes)) = self.history.get(&seq) else {
            return;
        };
        let name = player_prefix(self.player).child_index(seq as u32);
        let data = Data::with_freshness(name, encode_batch(ids, *bytes), 500_000_000);
        let g = GPacket::Data(data);
        let size = g.wire_size();
        ctx.send(self.edge, g, size);
        if ctx.telemetry_enabled() {
            ctx.counter("ndn-batches-answered", 1);
            ctx.observe("ndn-batch-bytes", u64::from(size));
        }
    }

    fn flush(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>) {
        if !self.accum_ids.is_empty() {
            let ids = std::mem::take(&mut self.accum_ids);
            let bytes = std::mem::take(&mut self.accum_bytes);
            let seq = self.cur_seq;
            self.cur_seq += 1;
            self.history.insert(seq, (ids, bytes));
            while self.history.len() > HISTORY_CAP {
                let oldest = *self.history.keys().next().expect("non-empty");
                self.history.remove(&oldest);
            }
            if self.pending_seqs.remove(&seq) {
                self.send_batch(ctx, seq);
            }
        }
        // Keep flushing while the trace runs (plus a drain period for the
        // last accumulated batch).
        if !self.trace_done || !self.accum_ids.is_empty() {
            ctx.schedule(self.cfg.accum_interval, TIMER_FLUSH);
        }
    }

    fn retry_stale(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>) {
        let now = ctx.now();
        let retry = self.cfg.retry_after;
        let mut to_retry = Vec::new();
        for (pi, st) in self.consumer.iter().enumerate() {
            for (&seq, &at) in &st.outstanding {
                if now.saturating_duration_since(at) >= retry {
                    to_retry.push((pi, seq));
                }
            }
        }
        let had_work = !to_retry.is_empty();
        for (pi, seq) in to_retry {
            self.express(ctx, pi, seq);
        }
        // Re-arm while the game is live (or forever, under fault
        // injection).
        if had_work || !self.trace_done || self.cfg.retry_forever {
            ctx.schedule(self.cfg.retry_after, TIMER_RETRY);
        }
    }

    fn publish(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>) {
        let Some((id, e)) = self.cursor.pop() else {
            self.trace_done = true;
            return;
        };
        let size = e.size;
        let now = ctx.now();
        ctx.world().metrics.publish(id, self.player, now);
        self.accum_ids.push(id);
        self.accum_bytes += size as usize;
        if self.cursor.next_time().is_some() {
            self.schedule_publish(ctx);
        } else {
            self.trace_done = true;
        }
    }

    fn schedule_publish(&self, ctx: &mut Ctx<'_, GPacket, GameWorld>) {
        if let Some(at) = self.cursor.next_time() {
            ctx.schedule(at.saturating_duration_since(ctx.now()), TIMER_PUBLISH);
        }
    }
}

impl NodeBehavior<GPacket, GameWorld> for NdnPlayerClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>) {
        let _p = gcopss_sim::prof::scope("ndn_client/start");
        // Prime the pipelines toward every producer.
        for pi in 0..self.producers.len() {
            for seq in 0..u64::from(self.cfg.window) {
                self.express(ctx, pi, seq);
            }
            self.consumer[pi].next_to_request = u64::from(self.cfg.window);
        }
        self.schedule_publish(ctx);
        ctx.schedule(self.cfg.accum_interval, TIMER_FLUSH);
        ctx.schedule(self.cfg.retry_after, TIMER_RETRY);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>, key: u64) {
        let _p = gcopss_sim::prof::scope("ndn_client/timer");
        match key {
            TIMER_PUBLISH => self.publish(ctx),
            TIMER_FLUSH => self.flush(ctx),
            TIMER_RETRY => self.retry_stale(ctx),
            _ => {}
        }
    }

    fn on_packet(
        &mut self,
        ctx: &mut Ctx<'_, GPacket, GameWorld>,
        _from: Option<NodeId>,
        pkt: GPacket,
    ) {
        let _p = gcopss_sim::prof::scope("ndn_client/packet");
        match pkt {
            // Producer role: a consumer asks for one of our batches.
            GPacket::Interest(i) => {
                let comps = i.name.components();
                if comps.len() != 3 || comps[0].as_str() != "player" {
                    return;
                }
                let Ok(seq) = comps[2].as_str().parse::<u64>() else {
                    return;
                };
                if self.history.contains_key(&seq) {
                    self.send_batch(ctx, seq);
                } else if seq >= self.cur_seq {
                    // Not produced yet: hold until accumulation flushes it
                    // (the PIT keeps the reverse path alive meanwhile).
                    self.pending_seqs.insert(seq);
                } else {
                    // Aged out of history.
                    ctx.emit(
                        gcopss_sim::TraceEvent::Drop,
                        crate::drops::NDN_BATCH_EXPIRED,
                        i.encoded_len() as u32,
                    );
                    ctx.world().bump(crate::drops::NDN_BATCH_EXPIRED);
                }
            }
            // Consumer role: a producer's batch arrived.
            GPacket::Data(d) => {
                let comps = d.name.components();
                if comps.len() != 3 || comps[0].as_str() != "player" {
                    return;
                }
                let Ok(pid) = comps[1].as_str().parse::<u32>() else {
                    return;
                };
                let Ok(seq) = comps[2].as_str().parse::<u64>() else {
                    return;
                };
                let Some(pi) = self.producers.iter().position(|p| p.0 == pid) else {
                    return;
                };
                let ids = decode_batch(&d.payload);
                let st = &mut self.consumer[pi];
                st.outstanding.remove(&seq);
                if !st.received.insert(seq) {
                    return; // duplicate batch
                }
                let now = ctx.now();
                let mut delivered = 0u64;
                for id in ids {
                    ctx.world().record_delivery(id, self.player, now);
                    ctx.lineage_deliver(self.player.0);
                    delivered += 1;
                }
                if delivered > 0 && ctx.telemetry_enabled() {
                    ctx.counter("delivered", delivered);
                }
                // Slide the pipeline window.
                let next = self.consumer[pi].next_to_request;
                self.consumer[pi].next_to_request = next + 1;
                self.express(ctx, pi, next);
            }
            _ => {}
        }
    }

    fn service_time(&self, _pkt: &GPacket) -> SimDuration {
        SimDuration::ZERO
    }

    fn on_fault(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>, notice: FaultNotice) {
        let _p = gcopss_sim::prof::scope("ndn_client/fault");
        if notice == FaultNotice::Restarted {
            // A host crash killed the publish/flush/retry timers (their
            // epoch went stale): re-arm them so the client resumes.
            self.schedule_publish(ctx);
            ctx.schedule(self.cfg.accum_interval, TIMER_FLUSH);
            ctx.schedule(self.cfg.retry_after, TIMER_RETRY);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_encoding_round_trips() {
        let ids = vec![3u64, 99, 1 << 50];
        let b = encode_batch(&ids, 700);
        assert_eq!(b.len(), 700, "payload sized to accumulated bytes");
        assert_eq!(decode_batch(&b), ids);
        // Small batches are at least the listing size.
        let b = encode_batch(&ids, 0);
        assert_eq!(b.len(), 4 + 24);
        assert_eq!(decode_batch(&b), ids);
        assert!(decode_batch(&[]).is_empty());
    }

    #[test]
    fn player_prefix_name() {
        assert_eq!(player_prefix(PlayerId(7)), Name::parse_lit("/player/7"));
    }

    #[test]
    fn rosters_follow_visibility() {
        let map = GameMap::paper_map();
        let pop = gcopss_game::PlayerPopulation::uniform_per_area(&map, 2);
        let areas: Vec<_> = pop.players().map(|p| pop.area_of(p)).collect();
        let rosters = NdnPlayerClient::rosters(&map, &areas);
        assert_eq!(rosters.len(), 62);
        // The satellite players see everyone else.
        let world_players = pop.players_in(map.world());
        assert_eq!(rosters[world_players[0].index()].len(), 61);
        // No player tracks itself.
        for (c, r) in rosters.iter().enumerate() {
            assert!(!r.contains(&PlayerId(c as u32)));
        }
    }
}
