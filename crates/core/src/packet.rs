//! The unified packet type carried by the simulated network.

use std::sync::Arc;

use gcopss_compat::bytes::Bytes;
use gcopss_copss::{CopssPacket, MulticastPacket, RpId};
use gcopss_ndn::{Data, Interest};
use gcopss_sim::NodeId;

/// A shared 4 KiB buffer used to materialize payloads of arbitrary size
/// without per-packet allocation: `payload_of(n)` is a zero-copy slice.
static PAYLOAD_POOL: &[u8] = &[0u8; 4096];

/// Returns an `n`-byte payload backed by a shared static buffer (zero-copy,
/// cheap to clone).
///
/// # Panics
///
/// Panics if `n > 4096`.
#[must_use]
pub fn payload_of(n: usize) -> Bytes {
    assert!(n <= PAYLOAD_POOL.len(), "payload too large: {n}");
    Bytes::from_static(&PAYLOAD_POOL[..n])
}

/// An update delivered by the IP-server baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IpUpdate {
    /// Publication id (same id space as G-COPSS multicasts).
    pub id: u64,
    /// The leaf CD (area) the update pertains to; the server uses it to
    /// find the interested players.
    pub cd: gcopss_names::Name,
    /// Update payload size in bytes.
    pub size: u32,
}

impl IpUpdate {
    /// Wire size: IP header + addresses + payload (the paper's server test
    /// uses packets with source address, destination address and payload).
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        28 + self.size as usize
    }
}

/// Packets of the hybrid-G-COPSS and IP baselines that are routed by
/// destination node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IpPacket {
    /// Client → server: a published update.
    ToServer {
        /// The destination server.
        server: NodeId,
        /// The update.
        update: IpUpdate,
    },
    /// Server → client: a unicast copy of an update.
    ToClient {
        /// The destination player host.
        client: NodeId,
        /// The update.
        update: IpUpdate,
    },
    /// Client → server: a session (re-)establishment message. The baseline's
    /// recovery mode uses it to model TCP reconnects — a crashed server
    /// loses its connection table and only delivers to players that have
    /// re-helloed.
    Hello {
        /// The destination server.
        server: NodeId,
        /// The player (re-)connecting.
        player: gcopss_game::PlayerId,
        /// The player's host node (where `ToClient` packets go).
        client: NodeId,
    },
    /// An IP-multicast packet of hybrid-G-COPSS: forwarded hop-by-hop along
    /// the union of shortest paths to `dsts`, duplicating only where paths
    /// diverge (standard multicast tree behavior).
    Mcast {
        /// The IP multicast group (hashed from high-level CDs).
        group: u32,
        /// Member edge routers still to be reached via this copy.
        dsts: Arc<Vec<NodeId>>,
        /// The encapsulated COPSS multicast.
        inner: MulticastPacket,
    },
}

impl IpPacket {
    /// Wire size for network-load accounting.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        match self {
            Self::ToServer { update, .. } | Self::ToClient { update, .. } => {
                update.encoded_len()
            }
            // A bare TCP SYN-sized handshake: header + addresses, no payload.
            Self::Hello { .. } => 28,
            // Group id + encapsulated multicast; the destination set is
            // multicast routing state, not wire bytes.
            Self::Mcast { inner, .. } => 8 + inner.encoded_len(),
        }
    }
}

/// Every packet kind that can traverse the simulated network, across all
/// evaluated systems (G-COPSS, hybrid, IP server, NDN baseline).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GPacket {
    /// A native COPSS packet (hop-by-hop pub/sub plane).
    Copss(CopssPacket),
    /// A COPSS multicast encapsulated toward an RP — on the real wire this
    /// is an NDN Interest named `/rp/<id>` whose payload is the multicast
    /// (§III-C); routers forward it with the NDN engine's FIB.
    ToRp {
        /// The target RP.
        rp: RpId,
        /// The encapsulated publication.
        inner: MulticastPacket,
    },
    /// An NDN Interest (snapshot queries, NDN baseline).
    Interest(Interest),
    /// An NDN Data packet.
    Data(Data),
    /// An IP packet (baselines and hybrid core).
    Ip(IpPacket),
    /// A node-addressed control packet, routed hop-by-hop by destination —
    /// used for the RP handoff of §IV-B ("R sends a packet containing the
    /// list of CDs that R' needs to handle").
    Control {
        /// Destination node.
        dst: NodeId,
        /// The carried control message.
        inner: CopssPacket,
    },
}

impl GPacket {
    /// Wire size in bytes, for link-load accounting.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        match self {
            Self::Copss(p) => p.encoded_len(),
            // Encapsulation: Interest header + /rp/<id> name + multicast.
            Self::ToRp { inner, .. } => 12 + inner.encoded_len(),
            Self::Interest(i) => i.encoded_len(),
            Self::Data(d) => d.encoded_len(),
            Self::Ip(p) => p.encoded_len(),
            Self::Control { inner, .. } => 8 + inner.encoded_len(),
        }
    }

    /// Wire size as `u32` (what the simulator's send API takes).
    #[must_use]
    pub fn wire_size(&self) -> u32 {
        u32::try_from(self.encoded_len()).unwrap_or(u32::MAX)
    }

    /// The lineage id of the traced message this packet carries, if any.
    ///
    /// Publications keep their id across encapsulations (native multicast,
    /// `ToRp`, IP unicast/multicast), so one published update is one
    /// lineage no matter which system carries it. NDN Interests and Data
    /// derive tagged name-hash ids. Control traffic is untraced.
    #[must_use]
    pub fn lineage_id(&self) -> Option<u64> {
        match self {
            Self::Copss(p) => p.lineage_id(),
            Self::ToRp { inner, .. } | Self::Ip(IpPacket::Mcast { inner, .. }) => {
                Some(inner.id)
            }
            Self::Interest(i) => Some(i.lineage_id()),
            Self::Data(d) => Some(d.lineage_id()),
            Self::Ip(IpPacket::ToServer { update, .. } | IpPacket::ToClient { update, .. }) => {
                Some(update.id)
            }
            Self::Ip(IpPacket::Hello { .. }) | Self::Control { .. } => None,
        }
    }

    /// Overload-control priority class: 0 = control plane, 1 = bulk data.
    ///
    /// Control traffic — Subscribe/Unsubscribe, FIB and RP-rebalancing
    /// messages, `Control` handoffs, IP session hellos, and snapshot
    /// *manifest* Interests/Data (`/snapmani/...`, the tiny packets that
    /// tell a rejoining client what to fetch) — must survive overload for
    /// the system to recover, so it outranks bulk data (position updates,
    /// chunk transfers) in bounded queues and is never AQM-shed.
    #[must_use]
    pub fn priority(&self) -> u8 {
        match self {
            Self::Copss(CopssPacket::Multicast(_)) => 1,
            Self::Copss(_) | Self::Control { .. } | Self::Ip(IpPacket::Hello { .. }) => 0,
            Self::ToRp { .. } | Self::Ip(_) => 1,
            Self::Interest(i) => u8::from(!Self::is_manifest(&i.name)),
            Self::Data(d) => u8::from(!Self::is_manifest(&d.name)),
        }
    }

    /// `true` for names under the `/snapmani` manifest namespace.
    fn is_manifest(name: &gcopss_names::Name) -> bool {
        name.get(0).is_some_and(|c| c.as_str() == "snapmani")
    }

    /// Overload-control supersede key: packets with equal keys carry
    /// versions of the same in-queue-replaceable state, so on a full queue
    /// a newer arrival may evict a stale queued one.
    ///
    /// Position updates are keyed by their leaf CD (plus the leg-specific
    /// address — RP, server, client, group — so copies on different legs
    /// never cannibalize each other). This is an area-level approximation:
    /// a CD's newest update stands in for the area's current state, which
    /// is exactly the freshness-over-completeness trade a game makes under
    /// overload. Control traffic and chunk transfers never supersede.
    #[must_use]
    pub fn supersede_key(&self) -> Option<u64> {
        /// Mixes a leg discriminant into the CD hash (splitmix-style odd
        /// constant, so adjacent ids spread).
        fn mix(h: u64, leg: u64) -> u64 {
            h ^ (leg + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        }
        match self {
            Self::Copss(CopssPacket::Multicast(m)) => Some(m.cd.hashes().full()),
            Self::ToRp { rp, inner } => {
                Some(mix(inner.cd.hashes().full(), u64::from(rp.0)))
            }
            Self::Ip(IpPacket::Mcast { group, inner, .. }) => {
                Some(mix(inner.cd.hashes().full(), u64::from(*group)))
            }
            Self::Ip(IpPacket::ToServer { server, update }) => Some(mix(
                gcopss_names::CdHashes::compute(&update.cd).full(),
                u64::from(server.0) << 1,
            )),
            Self::Ip(IpPacket::ToClient { client, update }) => Some(mix(
                gcopss_names::CdHashes::compute(&update.cd).full(),
                (u64::from(client.0) << 1) | 1,
            )),
            Self::Copss(_)
            | Self::Interest(_)
            | Self::Data(_)
            | Self::Ip(IpPacket::Hello { .. })
            | Self::Control { .. } => None,
        }
    }

    /// Short tag for counters and logs.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Copss(p) => p.kind(),
            Self::ToRp { .. } => "to-rp",
            Self::Interest(_) => "interest",
            Self::Data(_) => "data",
            Self::Ip(IpPacket::ToServer { .. }) => "ip-to-server",
            Self::Ip(IpPacket::ToClient { .. }) => "ip-to-client",
            Self::Ip(IpPacket::Hello { .. }) => "ip-hello",
            Self::Ip(IpPacket::Mcast { .. }) => "ip-mcast",
            Self::Control { .. } => "control",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcopss_names::{Cd, Name};

    #[test]
    fn payload_pool_slices() {
        let p = payload_of(350);
        assert_eq!(p.len(), 350);
        let q = payload_of(0);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "payload too large")]
    fn payload_pool_bounds() {
        let _ = payload_of(5000);
    }

    #[test]
    fn encoded_lens_positive() {
        let m = MulticastPacket::new(Cd::parse_lit("/1/2"), payload_of(100), 7);
        let pkts = [
            GPacket::Copss(CopssPacket::Multicast(m.clone())),
            GPacket::ToRp {
                rp: RpId(0),
                inner: m.clone(),
            },
            GPacket::Interest(Interest::new(Name::parse_lit("/snapshot/1/2"), 1)),
            GPacket::Data(Data::new(Name::parse_lit("/snapshot/1/2"), payload_of(64))),
            GPacket::Ip(IpPacket::ToServer {
                server: NodeId(0),
                update: IpUpdate {
                    id: 1,
                    cd: Name::parse_lit("/1/2"),
                    size: 100,
                },
            }),
            GPacket::Ip(IpPacket::Mcast {
                group: 3,
                dsts: Arc::new(vec![NodeId(1)]),
                inner: m,
            }),
        ];
        for p in &pkts {
            assert!(p.encoded_len() > 0, "{}", p.kind());
            assert_eq!(p.wire_size() as usize, p.encoded_len());
        }
    }

    #[test]
    fn lineage_ids_follow_the_publication() {
        let m = MulticastPacket::new(Cd::parse_lit("/1/2"), payload_of(10), 77);
        assert_eq!(
            GPacket::Copss(CopssPacket::Multicast(m.clone())).lineage_id(),
            Some(77)
        );
        assert_eq!(
            GPacket::ToRp { rp: RpId(0), inner: m.clone() }.lineage_id(),
            Some(77)
        );
        assert_eq!(
            GPacket::Ip(IpPacket::Mcast {
                group: 1,
                dsts: Arc::new(vec![NodeId(1)]),
                inner: m,
            })
            .lineage_id(),
            Some(77)
        );
        let u = IpUpdate { id: 9, cd: Name::parse_lit("/1"), size: 4 };
        assert_eq!(
            GPacket::Ip(IpPacket::ToServer { server: NodeId(0), update: u.clone() })
                .lineage_id(),
            Some(9)
        );
        assert_eq!(
            GPacket::Ip(IpPacket::ToClient { client: NodeId(2), update: u }).lineage_id(),
            Some(9)
        );
        // NDN names trace under tagged hash ids; control traffic is untraced.
        assert!(GPacket::Interest(Interest::new(Name::parse_lit("/s"), 1))
            .lineage_id()
            .is_some());
        assert_eq!(
            GPacket::Copss(CopssPacket::Subscribe { cds: vec![], rp: None }).lineage_id(),
            None
        );
        assert_eq!(
            GPacket::Ip(IpPacket::Hello {
                server: NodeId(0),
                player: gcopss_game::PlayerId(1),
                client: NodeId(3),
            })
            .lineage_id(),
            None
        );
    }

    #[test]
    fn encapsulation_overhead() {
        let m = MulticastPacket::new(Cd::parse_lit("/1/2"), payload_of(100), 7);
        let native = GPacket::Copss(CopssPacket::Multicast(m.clone())).encoded_len();
        let encap = GPacket::ToRp { rp: RpId(0), inner: m }.encoded_len();
        assert!(encap > native, "encapsulation adds header bytes");
    }
}
