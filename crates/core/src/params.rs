//! Calibration parameters of the simulated systems.
//!
//! The paper parameterizes its simulator with microbenchmark measurements
//! (§V-B): an RP's per-packet processing (FIB lookup, decapsulation, ST
//! lookup) of ≈3.3 ms and a game-server processing time of ≈6 ms. The
//! remaining constants model the relative costs the paper describes
//! qualitatively ("IP routers are much more efficient than the G-COPSS
//! routers"; the NDN baseline's routers buckle under query load).

use gcopss_sim::SimDuration;

/// Per-packet service times and related constants of every simulated node
/// type. All experiments take a `SimParams`; the defaults reproduce §V-B,
/// and the microbenchmark overrides a few (see
/// [`SimParams::microbenchmark`]).
#[derive(Debug, Clone)]
pub struct SimParams {
    /// Native COPSS multicast forwarding at a transit router (Bloom-filter
    /// ST check on precomputed hashes — cheap).
    pub copss_multicast_proc: SimDuration,
    /// Forwarding an RP-encapsulated publication (an Interest through the
    /// NDN engine).
    pub encap_proc: SimDuration,
    /// Full RP processing: FIB lookup + decapsulation + ST lookup
    /// (paper: ≈3.3 ms).
    pub rp_proc: SimDuration,
    /// COPSS control packets (Subscribe/Unsubscribe/FIB/RP updates).
    pub control_proc: SimDuration,
    /// NDN Interest/Data forwarding at a router (the paper's CCNx v0.4.0
    /// measurements make this the heaviest per-packet path).
    pub ndn_proc: SimDuration,
    /// IP forwarding at a router.
    pub ip_proc: SimDuration,
    /// Game-server base processing per update (paper: ≈6 ms, including
    /// location translation and collision detection).
    pub server_proc: SimDuration,
    /// Additional server cost per unicast recipient of an update.
    pub server_per_recipient: SimDuration,
    /// Broker cost per snapshot object served (QR response or cyclic
    /// multicast emission).
    pub broker_per_object: SimDuration,
    /// Pacing gap between consecutive cyclic-multicast object emissions.
    pub cyclic_gap: SimDuration,
    /// RP queue-length threshold that triggers automatic RP splitting
    /// (§IV-B). `None` disables auto-balancing.
    pub rp_split_queue_threshold: Option<usize>,
    /// Sliding-window size (packets) for RP traffic monitoring.
    pub rp_window: usize,
    /// Minimum packets an RP must serve between consecutive splits
    /// (prevents split storms while the first split takes effect).
    pub rp_split_cooldown_packets: u64,
    /// Stream-driven RP balancing (§IV-B closed over live telemetry):
    /// `Some` makes RPs trigger splits from observed queue-depth EWMAs and
    /// served-load skew instead of the fixed
    /// [`SimParams::rp_split_queue_threshold`]. Strictly opt-in — `None`
    /// is byte-identical to builds that predate adaptive control; enabling
    /// it additionally requires the engine's stream hub (a non-vacuous
    /// `StreamConfig`), without which the trigger never evaluates.
    pub rp_adaptive: Option<AdaptiveRpConfig>,
    /// Stream-driven per-prefix caching: `Some` makes brokers promote the
    /// freshness class of snapshot Data for content descriptors the live
    /// popularity sketch reports as hot, so NDN content stores along the
    /// path absorb flash crowds. Strictly opt-in like
    /// [`SimParams::rp_adaptive`].
    pub cache_adaptive: Option<AdaptiveCacheConfig>,
}

impl Default for SimParams {
    /// The §V-B large-scale simulation calibration.
    fn default() -> Self {
        Self {
            copss_multicast_proc: SimDuration::from_micros(300),
            encap_proc: SimDuration::from_millis(1),
            rp_proc: SimDuration::from_micros(3_300),
            control_proc: SimDuration::from_micros(200),
            ndn_proc: SimDuration::from_micros(1_500),
            ip_proc: SimDuration::from_micros(20),
            server_proc: SimDuration::from_millis(6),
            server_per_recipient: SimDuration::from_micros(50),
            broker_per_object: SimDuration::from_micros(300),
            cyclic_gap: SimDuration::from_millis(8),
            rp_split_queue_threshold: None,
            rp_window: 2_000,
            rp_split_cooldown_packets: 5_000,
            rp_adaptive: None,
            cache_adaptive: None,
        }
    }
}

/// Tunables of stream-driven RP auto-balancing.
///
/// An RP evaluates the trigger at most once per stream roll: it fires when
/// its own service-queue EWMA has stayed at or above `min_queue_ewma` *and*
/// its windowed served rate at or above `skew_num/skew_den` times the mean
/// over all RP nodes (skew is waived while it is the only RP) for `sustain`
/// consecutive rolls. After a triggered split the trigger disarms and
/// re-arms either once the queue EWMA falls below
/// `release_num/release_den` of the floor (load resolved — the anti-flap
/// half of the hysteresis) or after `escalate_rolls` further rolls of
/// unbroken pressure (load *not* resolved — one move was not enough, keep
/// shedding). Triggered splits use their own `cooldown_packets` floor
/// instead of [`SimParams::rp_split_cooldown_packets`]: the stream trigger
/// paces itself through the hysteresis, so the packet cooldown only needs
/// to guarantee the traffic window has enough fresh samples to plan a
/// meaningful split. All comparisons are integer Q8 arithmetic; no PRNG
/// draws.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdaptiveRpConfig {
    /// Queue-depth EWMA floor (whole packets) below which the trigger
    /// never fires.
    pub min_queue_ewma: u64,
    /// Skew ratio numerator: fire when `own_rate ≥ mean_rate ·
    /// skew_num/skew_den` across RP nodes.
    pub skew_num: u64,
    /// Skew ratio denominator.
    pub skew_den: u64,
    /// Consecutive rolls the trigger condition must hold.
    pub sustain: u32,
    /// Re-arm watermark numerator: after a split, re-arm once the queue
    /// EWMA drops below `min_queue_ewma · release_num/release_den`.
    pub release_num: u64,
    /// Re-arm watermark denominator.
    pub release_den: u64,
    /// Escalation: while disarmed, this many consecutive rolls of
    /// unbroken pressure re-arm the trigger anyway — sustained overload
    /// means the last move was not enough.
    pub escalate_rolls: u32,
    /// Minimum packets served between stream-triggered splits (keeps the
    /// traffic window meaningful; the hysteresis does the pacing).
    pub cooldown_packets: u64,
}

impl Default for AdaptiveRpConfig {
    fn default() -> Self {
        Self {
            min_queue_ewma: 8,
            skew_num: 3,
            skew_den: 2,
            sustain: 2,
            release_num: 1,
            release_den: 2,
            escalate_rolls: 8,
            cooldown_packets: 1_000,
        }
    }
}

/// Tunables of stream-driven per-prefix cache/freshness promotion.
///
/// Brokers feed every query-response serve into the `"qr-pop"` popularity
/// sketch keyed by content descriptor. A descriptor becomes *hot* once the
/// sketch has seen at least `min_window` total recent mass and the
/// descriptor's share of it reaches `hot_num/hot_den`; it cools once its
/// share falls below half that (enter/exit hysteresis, so the class
/// doesn't flap at the boundary). Data published under a hot descriptor
/// carries `freshness · hot_freshness_mul`, letting NDN content stores
/// along the path serve the flash crowd instead of the broker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdaptiveCacheConfig {
    /// Hot-share threshold numerator.
    pub hot_num: u64,
    /// Hot-share threshold denominator.
    pub hot_den: u64,
    /// Minimum recent sketch mass before anything can be classified hot
    /// (avoids promoting the first lonely request).
    pub min_window: u64,
    /// Freshness multiplier applied to Data under hot descriptors.
    pub hot_freshness_mul: u32,
}

impl Default for AdaptiveCacheConfig {
    fn default() -> Self {
        Self {
            hot_num: 1,
            hot_den: 4,
            min_window: 32,
            hot_freshness_mul: 100,
        }
    }
}

/// Tunables of the failure-recovery half of the protocol stack.
///
/// Recovery is strictly opt-in: every scenario config carries an
/// `Option<RecoveryConfig>` defaulting to `None`, and with `None` the
/// simulation is byte-identical to builds that predate fault injection.
/// When enabled, clients arm silence watchdogs (so runs must use
/// [`gcopss_sim::Simulator::run_until`] — the watchdogs re-arm forever),
/// routers periodically sweep expired PIT entries, and the NDN baseline
/// client retries stale Interests indefinitely.
#[derive(Debug, Clone)]
pub struct RecoveryConfig {
    /// Client-side silence threshold: if nothing was delivered for this
    /// long, the client assumes its subscription state was lost upstream
    /// and re-Subscribes.
    pub watchdog: SimDuration,
    /// Initial re-Subscribe backoff after a watchdog firing.
    pub backoff_base: SimDuration,
    /// Cap on the exponential re-Subscribe backoff.
    pub backoff_cap: SimDuration,
    /// Maximum seeded jitter added to each watchdog re-arm (decorrelates
    /// the re-Subscribe storm after a repair).
    pub jitter: SimDuration,
    /// Period of the router-side expired-PIT sweep.
    pub pit_sweep: SimDuration,
    /// Periodic soft-state Subscribe refresh (COPSS only): every interval
    /// (plus jitter) a client re-expresses its subscriptions and a router
    /// re-expresses its upstream joins (one batched Subscribe per RP tree,
    /// PIM-style), deliveries or not. Aggregation absorbs each refresh at
    /// the next hop, but the packets still transit the upstream service
    /// queues — so under overload, control traffic genuinely contends with
    /// bulk data. `None` disables the refresh and is byte-identical to
    /// builds that predate it.
    pub subscribe_refresh: Option<SimDuration>,
    /// Seed for the per-client jitter PRNG (mixed with the player id).
    pub seed: u64,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        Self {
            watchdog: SimDuration::from_millis(2_000),
            backoff_base: SimDuration::from_millis(500),
            backoff_cap: SimDuration::from_millis(8_000),
            jitter: SimDuration::from_millis(100),
            pit_sweep: SimDuration::from_millis(1_000),
            subscribe_refresh: None,
            seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

/// Tunables of client-side congestion-feedback rate adaptation.
///
/// Like [`RecoveryConfig`], this is strictly opt-in: scenario configs carry
/// an `Option<RateAdaptConfig>` defaulting to `None`, and with `None` the
/// simulation is byte-identical to builds that predate overload control.
/// When enabled, a client that receives a congestion-marked delivery (see
/// `Ctx::congestion_marked`) multiplicatively stretches the minimum gap
/// between its own publishes — doubling per marked delivery, up to `cap` —
/// and halves the gap again on every clean delivery. Publishes attempted
/// inside the gap are shed at the source (`"rate-limited"`): under
/// overload, sending a stale position later is worse than not sending it.
#[derive(Debug, Clone)]
pub struct RateAdaptConfig {
    /// The gap installed by the first marked delivery (and the floor below
    /// which decay switches the pacer back off).
    pub min_gap: SimDuration,
    /// Cap on the multiplicatively-grown publish gap.
    pub cap: SimDuration,
}

impl Default for RateAdaptConfig {
    fn default() -> Self {
        Self {
            min_gap: SimDuration::from_millis(20),
            cap: SimDuration::from_millis(500),
        }
    }
}

impl SimParams {
    /// The testbed microbenchmark calibration (§V-A): the same machines,
    /// but the server runs less game logic (no 414-player location
    /// translation) and the RP path was measured slightly cheaper. The
    /// server constants put it near (but below) saturation for the
    /// 62-player trace, reproducing the paper's ≈3× latency gap and its
    /// >55 ms tail.
    #[must_use]
    pub fn microbenchmark() -> Self {
        Self {
            rp_proc: SimDuration::from_micros(2_500),
            server_proc: SimDuration::from_micros(2_500),
            server_per_recipient: SimDuration::from_micros(70),
            ..Self::default()
        }
    }

    /// Enables automatic RP balancing with the given queue threshold.
    #[must_use]
    pub fn with_auto_balancing(mut self, queue_threshold: usize) -> Self {
        self.rp_split_queue_threshold = Some(queue_threshold);
        self
    }

    /// Enables stream-driven adaptive RP balancing (requires the engine's
    /// stream hub to be installed to have any effect).
    #[must_use]
    pub fn with_adaptive_rp(mut self, cfg: AdaptiveRpConfig) -> Self {
        self.rp_adaptive = Some(cfg);
        self
    }

    /// Enables stream-driven per-prefix cache/freshness promotion at
    /// brokers (requires the engine's stream hub to have any effect).
    #[must_use]
    pub fn with_adaptive_cache(mut self, cfg: AdaptiveCacheConfig) -> Self {
        self.cache_adaptive = Some(cfg);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_calibration() {
        let p = SimParams::default();
        assert_eq!(p.rp_proc, SimDuration::from_micros(3_300));
        assert_eq!(p.server_proc, SimDuration::from_millis(6));
        assert!(p.rp_split_queue_threshold.is_none());
    }

    #[test]
    fn microbenchmark_overrides() {
        let p = SimParams::microbenchmark();
        assert!(p.rp_proc < SimParams::default().rp_proc);
        assert!(p.server_proc < SimParams::default().server_proc);
        assert!(p.server_per_recipient > SimParams::default().server_per_recipient);
    }

    #[test]
    fn auto_balancing_builder() {
        let p = SimParams::default().with_auto_balancing(40);
        assert_eq!(p.rp_split_queue_threshold, Some(40));
    }

    #[test]
    fn adaptive_configs_default_off() {
        let p = SimParams::default();
        assert!(p.rp_adaptive.is_none());
        assert!(p.cache_adaptive.is_none());
        let p = p
            .with_adaptive_rp(AdaptiveRpConfig::default())
            .with_adaptive_cache(AdaptiveCacheConfig::default());
        assert_eq!(p.rp_adaptive, Some(AdaptiveRpConfig::default()));
        assert_eq!(p.cache_adaptive, Some(AdaptiveCacheConfig::default()));
    }
}
