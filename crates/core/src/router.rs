//! The G-COPSS router: an NDN engine and a COPSS engine side by side
//! (Fig. 2 of the paper), plus the dynamic RP-balancing control plane
//! (§IV-B).

use std::collections::{BTreeMap, BTreeSet, HashSet};

use gcopss_compat::{Rng, SeedableRng, SmallRng};
use gcopss_copss::{CopssEngine, CopssPacket, JoinRequest, MulticastPacket, PruneRequest, RpId, TrafficWindow};
use gcopss_names::Name;
use gcopss_ndn::{FaceId, NdnAction, NdnConfig, NdnEngine};
use gcopss_sim::prof;
use gcopss_sim::{Ctx, FaultNotice, NodeBehavior, NodeId, SimDuration, SimTime, Topology, TraceEvent};

use crate::{GPacket, GameWorld, RecoveryConfig, SimParams, SplitRecord};

/// Maps between the simulator's neighbor [`NodeId`]s and the engines'
/// local [`FaceId`]s. Faces are assigned in ascending neighbor order, so
/// the mapping is deterministic.
#[derive(Debug, Clone, Default)]
pub struct FaceMap {
    nodes: Vec<NodeId>,
    by_node: BTreeMap<NodeId, FaceId>,
}

impl FaceMap {
    /// Builds the face map of `me` from the topology's adjacency.
    #[must_use]
    pub fn new(topology: &Topology, me: NodeId) -> Self {
        let mut nodes: Vec<NodeId> = topology.neighbors(me).map(|(n, _)| n).collect();
        nodes.sort_unstable();
        let by_node = nodes
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, FaceId(i as u32)))
            .collect();
        Self { nodes, by_node }
    }

    /// The face leading to `node`, if adjacent.
    #[must_use]
    pub fn face_of(&self, node: NodeId) -> Option<FaceId> {
        self.by_node.get(&node).copied()
    }

    /// The neighbor behind `face`.
    #[must_use]
    pub fn node_of(&self, face: FaceId) -> Option<NodeId> {
        self.nodes.get(face.0 as usize).copied()
    }

    /// All `(face, node)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FaceId, NodeId)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, &n)| (FaceId(i as u32), n))
    }

    /// Number of faces.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the node has no neighbors.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// How a new RP's node is chosen when a split fires. The paper uses a
/// random selection and names network-coordinate systems (Vivaldi) as the
/// intended improvement; these strategies are deterministic stand-ins
/// spanning that design space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RpSelection {
    /// Rotate through the candidate list (the paper's evaluation setting:
    /// load spread without placement intelligence).
    #[default]
    Rotation,
    /// Pick the candidate closest (by routing delay) to the overloaded RP —
    /// minimizes handoff/transition cost.
    ClosestToSelf,
    /// Pick the candidate farthest (by routing delay) from every existing
    /// RP — a network-coordinate-style spread that avoids co-locating hot
    /// cores.
    Spread,
}

/// Configuration for automatic RP splitting on this router.
#[derive(Debug, Clone, Default)]
pub struct SplitConfig {
    /// Candidate nodes for newly created RPs.
    pub candidates: Vec<NodeId>,
    /// Placement strategy over the candidates.
    pub strategy: RpSelection,
    /// Grace period during which the old RP keeps multicasting moved CDs
    /// down its existing tree while the new tree forms (the paper's
    /// "R continues to act as the core till the complete network is aware
    /// of the new RP").
    pub grace: SimDuration,
}

/// Timer key used to flush deferred prunes after the split grace period.
const PRUNE_TIMER: u64 = 0x00de_fe55;

/// Timer key of the periodic expired-PIT sweep (recovery mode only).
const PIT_SWEEP_TIMER: u64 = 0x00de_fe56;

/// Timer key of the periodic soft-state join refresh
/// ([`RecoveryConfig::subscribe_refresh`] only).
const JOIN_REFRESH_TIMER: u64 = 0x00de_fe57;

/// The G-COPSS router behavior.
///
/// One instance runs on every router node of a G-COPSS simulation. It hosts
/// the two engines of Fig. 2 — the NDN engine (FIB/PIT/Content Store) and
/// the COPSS engine (ST/RP table) — and implements:
///
/// * native COPSS forwarding (`Subscribe`/`Unsubscribe`/`Multicast`),
/// * RP encapsulation: publications travel as [`GPacket::ToRp`] (an
///   Interest named `/rp/<id>` on the real wire) routed by the NDN FIB,
/// * RP duties when this router serves CD prefixes: decapsulation, ST
///   multicast, traffic monitoring, and the three-stage split protocol of
///   §IV-B when the service queue exceeds the configured threshold,
/// * plain NDN Interest/Data forwarding (snapshot queries, baselines).
pub struct GCopssRouter {
    params: SimParams,
    faces: FaceMap,
    copss: CopssEngine,
    ndn: NdnEngine,
    /// RPs hosted on this router.
    local_rps: BTreeSet<RpId>,
    /// Traffic window for split planning (only RPs record into it).
    traffic: TrafficWindow,
    served_since_split: u64,
    split: SplitConfig,
    next_candidate: usize,
    /// Flood deduplication for `RpUpdate`s.
    seen_updates: HashSet<u64>,
    /// Joins waiting for a route to a not-yet-announced RP.
    pending_joins: Vec<JoinRequest>,
    /// Prunes deferred by the pending-ST rule of §IV-B: during an RP move
    /// a router "does not leave the original ST branch until it is added
    /// to a new ST branch" — we keep the old branch for the grace period.
    deferred_prunes: Vec<PruneRequest>,
    /// Old-tree grace multicast: CDs this router recently handed off, and
    /// the deadline until which it keeps serving them down its old tree.
    legacy: Vec<(Name, SimTime)>,
    /// Reverse tunnel while a handoff settles: as the *new* RP, send every
    /// freshly served publication for these CDs back to the old RP (which
    /// still multicasts its old tree) until the deadline.
    tunnel_back: Vec<(Name, RpId, SimTime)>,
    /// Failure-recovery tunables; `None` (the default) disables the
    /// periodic PIT sweep and changes nothing in a fault-free run.
    recovery: Option<RecoveryConfig>,
    /// Whether the PIT-sweep timer is currently armed.
    sweep_armed: bool,
    /// Jitter PRNG of the periodic join refresh (seeded per node in
    /// `on_start`; `None` until then or when the refresh is disabled).
    refresh_rng: Option<SmallRng>,
    /// Hysteresis state of stream-driven RP balancing; inert unless
    /// `SimParams::rp_adaptive` is set *and* the stream hub is enabled.
    adaptive: AdaptiveTrigger,
}

/// Per-router state of the adaptive split trigger (see
/// [`crate::AdaptiveRpConfig`]): once-per-roll evaluation, the sustain
/// streak, and the armed/released hysteresis latch.
#[derive(Debug, Clone)]
struct AdaptiveTrigger {
    /// The last stream roll the trigger evaluated on.
    last_roll: u64,
    /// Consecutive rolls the trigger condition has held.
    streak: u32,
    /// Watching for overload; `false` between a triggered split and the
    /// release watermark (the anti-flap half of the hysteresis).
    armed: bool,
    /// Consecutive pressured rolls seen while disarmed (escalation
    /// counter — sustained overload re-arms the trigger).
    hot_rolls: u32,
}

impl Default for AdaptiveTrigger {
    fn default() -> Self {
        Self {
            last_roll: 0,
            streak: 0,
            armed: true,
            hot_rolls: 0,
        }
    }
}

/// Aggregation depth of the per-prefix content-store streams: lookups are
/// keyed by the stable hash of the interest name's first three components
/// (`/snapshot/<area path>` for the game's snapshot traffic), so meta and
/// object fetches of one content descriptor land on one sketch key.
const CS_PREFIX_DEPTH: usize = 3;

/// The sketch key of an interest name (see [`CS_PREFIX_DEPTH`]). Shared
/// with the broker so producer-side popularity and router-side hit-rate
/// streams key the same prefix identically.
pub(crate) fn cs_prefix_key(name: &Name) -> u64 {
    name.prefix(name.len().min(CS_PREFIX_DEPTH)).stable_hash()
}

impl GCopssRouter {
    /// Creates a router.
    ///
    /// `copss` arrives preconfigured with the initial RP table; `fib_routes`
    /// seeds the NDN FIB (notably `/rp/<id>` prefixes toward each initial
    /// RP and any application prefixes such as `/snapshot`).
    #[must_use]
    pub fn new(
        params: SimParams,
        faces: FaceMap,
        copss: CopssEngine,
        fib_routes: Vec<(Name, FaceId)>,
        local_rps: BTreeSet<RpId>,
        split: SplitConfig,
    ) -> Self {
        let mut ndn = NdnEngine::new(NdnConfig::default());
        for (prefix, face) in fib_routes {
            ndn.fib_mut().add(prefix, face);
        }
        let window = params.rp_window;
        // The cooldown spaces out *successive* splits; the first split may
        // fire as soon as the queue threshold is crossed.
        let served_since_split = params.rp_split_cooldown_packets;
        Self {
            params,
            faces,
            copss,
            ndn,
            local_rps,
            traffic: TrafficWindow::new(window.max(1)),
            served_since_split,
            split,
            next_candidate: 0,
            seen_updates: HashSet::new(),
            pending_joins: Vec::new(),
            deferred_prunes: Vec::new(),
            legacy: Vec::new(),
            tunnel_back: Vec::new(),
            recovery: None,
            sweep_armed: false,
            refresh_rng: None,
            adaptive: AdaptiveTrigger::default(),
        }
    }

    /// Enables the failure-recovery half of the router: periodic expired-PIT
    /// sweeps and (always active when faults are installed) soft-state
    /// repair on fault notices.
    #[must_use]
    pub fn with_recovery(mut self, cfg: RecoveryConfig) -> Self {
        self.recovery = Some(cfg);
        self
    }

    /// The COPSS engine (for inspection in tests).
    #[must_use]
    pub fn copss(&self) -> &CopssEngine {
        &self.copss
    }

    /// The NDN engine (for inspection in tests).
    #[must_use]
    pub fn ndn(&self) -> &NdnEngine {
        &self.ndn
    }

    /// The RPs hosted here.
    #[must_use]
    pub fn local_rps(&self) -> &BTreeSet<RpId> {
        &self.local_rps
    }

    fn face_of(&self, node: Option<NodeId>) -> Option<FaceId> {
        node.and_then(|n| self.faces.face_of(n))
    }

    /// Sends a COPSS packet to the neighbor behind `face`.
    fn send_copss(&self, ctx: &mut Ctx<'_, GPacket, GameWorld>, face: FaceId, pkt: CopssPacket) {
        if let Some(node) = self.faces.node_of(face) {
            let g = GPacket::Copss(pkt);
            let size = g.wire_size();
            ctx.send(node, g, size);
        }
    }

    /// The next-hop face toward an RP, via the NDN FIB entry `/rp/<id>`.
    fn face_toward_rp(&self, rp: RpId) -> Option<FaceId> {
        let _lpm = prof::scope("ndn/fib_lpm");
        self.ndn
            .fib()
            .lookup(&rp.ndn_prefix())
            .and_then(|faces| faces.first().copied())
    }

    /// Accounts one content-store lookup: per-node telemetry counters and
    /// world totals (`cs-hit`/`cs-miss`), plus the per-prefix popularity
    /// and hit streams the adaptive caching layer consumes. Each hook is
    /// one branch while its subsystem is disabled.
    fn note_cs_lookup(&self, ctx: &mut Ctx<'_, GPacket, GameWorld>, pfx: u64, hit: bool) {
        let tag = if hit { "cs-hit" } else { "cs-miss" };
        ctx.counter(tag, 1);
        ctx.world().bump(tag);
        ctx.stream_bump(tag, 1);
        ctx.stream_offer("cs-req-pop", pfx, 1);
        if hit {
            ctx.stream_offer("cs-hit-pop", pfx, 1);
        }
    }

    /// Seeded jitter added to each join-refresh re-arm (decorrelates the
    /// per-router refresh phases). Zero when the refresh is disabled.
    fn refresh_jitter(&mut self) -> SimDuration {
        let max = self.recovery.as_ref().map_or(0, |c| c.jitter.as_nanos());
        match (&mut self.refresh_rng, max) {
            (Some(rng), 1..) => SimDuration::from_nanos(rng.gen_range(0..=max)),
            _ => SimDuration::ZERO,
        }
    }

    fn send_joins(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>, joins: Vec<JoinRequest>) {
        for j in joins {
            if self.local_rps.contains(&j.rp) {
                continue; // the tree roots here
            }
            match self.face_toward_rp(j.rp) {
                Some(face) => {
                    self.send_copss(
                        ctx,
                        face,
                        CopssPacket::Subscribe {
                            cds: vec![j.name],
                            rp: Some(j.rp),
                        },
                    );
                }
                None => {
                    ctx.world().bump("join-pending-no-route");
                    if ctx.telemetry_enabled() {
                        ctx.emit(TraceEvent::Mark, "join-pending-no-route", 0);
                    }
                    self.pending_joins.push(j);
                }
            }
        }
    }

    fn send_prunes(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>, prunes: Vec<PruneRequest>) {
        for p in prunes {
            if self.local_rps.contains(&p.rp) {
                continue;
            }
            if let Some(face) = self.face_toward_rp(p.rp) {
                self.send_copss(
                    ctx,
                    face,
                    CopssPacket::Unsubscribe {
                        cds: vec![p.name.clone()],
                        rp: Some(p.rp),
                    },
                );
            }
            // A prune toward an unknown RP is moot: nothing was joined.
            self.pending_joins.retain(|j| !(j.rp == p.rp && j.name == p.name));
        }
    }

    /// Multicasts `m` (already tagged with its tree) out of every
    /// subscribed face of that tree except `arrival`.
    ///
    /// Router faces require a tree match (a publication stays on its own
    /// core-based tree — anything else loops on cyclic topologies); host
    /// faces are leaves and are matched by name alone, so subscribers keep
    /// receiving from a draining old tree during RP moves.
    fn multicast(
        &self,
        ctx: &mut Ctx<'_, GPacket, GameWorld>,
        m: &MulticastPacket,
        arrival: Option<FaceId>,
    ) {
        let st = prof::scope("copss/st_match");
        let mut faces = self.copss.multicast_faces(&m.cd, arrival, m.tree);
        if m.tree.is_some() {
            for face in self.copss.multicast_faces(&m.cd, arrival, None) {
                if faces.contains(&face) {
                    continue;
                }
                let is_host = self.faces.node_of(face).is_some_and(|n| {
                    ctx.topology().node_kind(n) == gcopss_sim::NodeKind::Host
                });
                if is_host {
                    faces.push(face);
                }
            }
        }
        drop(st);
        for face in faces {
            self.send_copss(ctx, face, CopssPacket::Multicast(m.clone()));
        }
    }

    /// Serves a publication as the responsible RP: decapsulate, tag with
    /// our tree, multicast along the ST.
    fn serve_as_rp(
        &mut self,
        ctx: &mut Ctx<'_, GPacket, GameWorld>,
        rp: RpId,
        m: &MulticastPacket,
    ) {
        let _rp = prof::scope("copss/rp_serve");
        self.traffic.record(m.cd.name().clone());
        self.served_since_split += 1;
        if ctx.telemetry_enabled() {
            ctx.counter("rp-served", 1);
            ctx.observe("rp-queue-depth", ctx.queue_len() as u64);
            ctx.gauge("st-entries", self.copss.st().len() as u64);
        }
        // Live load streams (one branch while disabled): the windowed
        // served rate feeds the adaptive balancer's skew signal, the
        // sketch tracks which CDs carry the load.
        ctx.stream_bump("rp-served", 1);
        ctx.stream_offer("rp-cd-load", m.cd.name().stable_hash(), 1);
        let tagged = m.on_tree(rp);
        self.multicast(ctx, &tagged, None);
        // §IV-B transition: a *fresh* publication (not one proxied over
        // from the old RP, which already served its old tree) is tunneled
        // back so subscribers that have not re-anchored yet still get it.
        if m.tree.is_none() && !self.tunnel_back.is_empty() {
            let now = ctx.now();
            self.tunnel_back.retain(|(_, _, until)| *until >= now);
            let back: Vec<RpId> = self
                .tunnel_back
                .iter()
                .filter(|(cd, _, _)| cd.is_prefix_of(m.cd.name()))
                .map(|(_, old, _)| *old)
                .collect();
            for old_rp in back {
                if let Some(face) = self.face_toward_rp(old_rp) {
                    if let Some(node) = self.faces.node_of(face) {
                        let g = GPacket::ToRp {
                            rp: old_rp,
                            inner: tagged.clone(),
                        };
                        let size = g.wire_size();
                        ctx.send(node, g, size);
                    }
                }
            }
        }
        self.maybe_split(ctx);
        self.maybe_adaptive_split(ctx);
    }

    /// §IV-B with the fixed trigger: when the instantaneous service queue
    /// exceeds the configured threshold, attempt a split.
    fn maybe_split(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>) {
        let Some(threshold) = self.params.rp_split_queue_threshold else {
            return;
        };
        if ctx.queue_len() <= threshold {
            return;
        }
        self.try_split(ctx, self.params.rp_split_cooldown_packets);
    }

    /// §IV-B with the stream-driven trigger: instead of an instantaneous
    /// queue threshold, fire on *observed* sustained pressure — the node's
    /// queue-depth EWMA at or above the configured floor and its windowed
    /// served rate skewed above the mean over all RP nodes (skew is waived
    /// while this is the only RP) for `sustain` consecutive stream rolls.
    /// After a triggered split the latch disarms until the queue EWMA
    /// drains below the release watermark — the hysteresis that keeps the
    /// balancer from flapping. Evaluated at most once per stream roll;
    /// inert without [`crate::AdaptiveRpConfig`] or without the stream hub.
    fn maybe_adaptive_split(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>) {
        let Some(cfg) = self.params.rp_adaptive.clone() else {
            return;
        };
        if !ctx.streams_enabled() {
            return;
        }
        let roll = ctx.stream_rolls();
        if roll == 0 || roll == self.adaptive.last_roll {
            return;
        }
        self.adaptive.last_roll = roll;
        let me = ctx.node();
        let q8 = ctx.stream_queue_ewma_q8(me);
        let floor_q8 = cfg.min_queue_ewma << 8;
        let pressure = q8 >= floor_q8;
        if !self.adaptive.armed {
            // Released: re-arm when the queue drains below the watermark
            // (the move worked) — or when pressure holds unbroken for the
            // escalation span (it did not; one move was not enough).
            if q8 * cfg.release_den < floor_q8 * cfg.release_num {
                self.adaptive.armed = true;
                self.adaptive.streak = 0;
                self.adaptive.hot_rolls = 0;
            } else if pressure {
                self.adaptive.hot_rolls += 1;
                if self.adaptive.hot_rolls >= cfg.escalate_rolls {
                    self.adaptive.armed = true;
                    self.adaptive.streak = 0;
                    self.adaptive.hot_rolls = 0;
                }
            } else {
                self.adaptive.hot_rolls = 0;
            }
            return;
        }
        let skew = {
            let mut rp_nodes: BTreeSet<u32> =
                ctx.world().rp_locations.values().copied().collect();
            rp_nodes.insert(me.0);
            if rp_nodes.len() <= 1 {
                true
            } else {
                let mine = ctx.stream_rate_of("rp-served", me);
                let sum: u64 = rp_nodes
                    .iter()
                    .map(|&n| ctx.stream_rate_of("rp-served", NodeId(n)))
                    .sum();
                mine * cfg.skew_den * rp_nodes.len() as u64 >= sum * cfg.skew_num
            }
        };
        if !(pressure && skew) {
            self.adaptive.streak = 0;
            return;
        }
        self.adaptive.streak += 1;
        if self.adaptive.streak < cfg.sustain {
            return;
        }
        if self.try_split(ctx, cfg.cooldown_packets) {
            ctx.counter("rp-move-triggered", 1);
            ctx.world().bump("rp-move-triggered");
            self.adaptive.armed = false;
            self.adaptive.streak = 0;
            self.adaptive.hot_rolls = 0;
        }
    }

    /// The split execution shared by both triggers: pick ~half the observed
    /// load, appoint a new RP, and kick off handoff + flood. Returns `true`
    /// when a split was actually performed (the cooldown may be running, no
    /// candidate node may be free, or the traffic window may have nothing
    /// eligible to move).
    fn try_split(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>, cooldown: u64) -> bool {
        if self.served_since_split < cooldown || self.split.candidates.is_empty() {
            return false;
        }
        // Served prefixes of every RP hosted here (splits move load off
        // this *node*). Only CDs this node still owns and that are not in
        // a settling handoff are eligible to move.
        let served: Vec<Name> = self
            .local_rps
            .iter()
            .flat_map(|rp| self.copss.rp_table().prefixes_of(*rp))
            .collect();
        let now = ctx.now();
        let table = self.copss.rp_table();
        let local = &self.local_rps;
        let legacy = &self.legacy;
        let tunnels = &self.tunnel_back;
        let eligible = |cd: &Name| {
            table.rp_for(cd).is_some_and(|rp| local.contains(&rp))
                && !legacy
                    .iter()
                    .any(|(p, until)| *until >= now && p.is_prefix_of(cd))
                && !tunnels
                    .iter()
                    .any(|(p, _, until)| *until >= now && p.is_prefix_of(cd))
        };
        let Some(plan) = self.traffic.plan_split_where(&served, 0.5, eligible) else {
            return false;
        };
        // Pick the new RP node per the configured strategy, skipping self
        // and nodes already hosting an RP.
        let me = ctx.node();
        let taken: Vec<NodeId> = ctx
            .world()
            .rp_locations
            .values()
            .map(|&n| NodeId(n))
            .collect();
        let free = |c: &NodeId| *c != me && !taken.contains(c);
        let chosen = match self.split.strategy {
            RpSelection::Rotation => {
                let mut pick = None;
                for _ in 0..self.split.candidates.len() {
                    let c =
                        self.split.candidates[self.next_candidate % self.split.candidates.len()];
                    self.next_candidate += 1;
                    if free(&c) {
                        pick = Some(c);
                        break;
                    }
                }
                pick
            }
            RpSelection::ClosestToSelf => self
                .split
                .candidates
                .iter()
                .copied()
                .filter(free)
                .min_by_key(|c| ctx.routing().distance(me, *c)),
            RpSelection::Spread => self
                .split
                .candidates
                .iter()
                .copied()
                .filter(free)
                .max_by_key(|c| {
                    taken
                        .iter()
                        .chain(std::iter::once(&me))
                        .filter_map(|r| ctx.routing().distance(*r, *c))
                        .min()
                        .unwrap_or(SimDuration::ZERO)
                }),
        };
        let Some(new_node) = chosen else { return false };
        let new_rp = RpId(ctx.world().allocate_rp_id(new_node.0));
        let old_rp = *self.local_rps.iter().next().expect("RP router");

        // Refine our own table: retained stays with the (first) local RP,
        // moved goes to the new one. Coarser shadowed entries are resolved
        // by longest-prefix matching.
        for r in &plan.retained {
            self.copss.rp_table_mut().apply_move(std::slice::from_ref(r), old_rp);
        }
        let (joins, prunes) = self.copss.handle_rp_update(&plan.moved, new_rp);
        self.send_joins(ctx, joins);
        if !prunes.is_empty() {
            let empty_before = self.deferred_prunes.is_empty();
            self.deferred_prunes.extend(prunes);
            if empty_before {
                ctx.schedule(self.split.grace, PRUNE_TIMER);
            }
        }

        // Stage 2 (handoff): route the CD list to the new RP; install our
        // FIB entry so stale publications are proxied (the intermediate
        // routers install theirs while forwarding the control packet).
        if let Some(hop) = ctx.routing().next_hop(me, new_node) {
            if let Some(face) = self.faces.face_of(hop) {
                self.ndn.fib_mut().add(new_rp.ndn_prefix(), face);
            }
            let ctrl = GPacket::Control {
                dst: new_node,
                inner: CopssPacket::RpHandoff {
                    cds: plan.moved.clone(),
                    new_rp,
                    old_rp,
                },
            };
            let size = ctrl.wire_size();
            ctx.send(hop, ctrl, size);
        }

        // Old-tree grace: keep multicasting the moved CDs ourselves until
        // the new tree has formed.
        let until = ctx.now() + self.split.grace;
        for cd in &plan.moved {
            self.legacy.push((cd.clone(), until));
        }
        self.served_since_split = 0;

        let now = ctx.now();
        ctx.emit(TraceEvent::Mark, "rp-split", 0);
        ctx.world().bump("rp-splits");
        ctx.world().splits.push(SplitRecord {
            at: now,
            from_rp: old_rp.0,
            to_rp: new_rp.0,
            moved: plan.moved,
        });
        true
    }

    fn on_to_rp(
        &mut self,
        ctx: &mut Ctx<'_, GPacket, GameWorld>,
        rp: RpId,
        inner: MulticastPacket,
    ) {
        if self.local_rps.contains(&rp) {
            match self.copss.rp_for_publication(inner.cd.name()) {
                Some(current) if self.local_rps.contains(&current) => {
                    self.serve_as_rp(ctx, current, &inner);
                }
                Some(new_rp) => {
                    let back_tunneled = inner.tree == Some(new_rp);
                    if !back_tunneled {
                        // Stale publisher traffic: proxy to the new RP (no
                        // loss), marked with our tree so it is not tunneled
                        // back to us again.
                        if let Some(face) = self.face_toward_rp(new_rp) {
                            let g = GPacket::ToRp {
                                rp: new_rp,
                                inner: inner.on_tree(rp),
                            };
                            let size = g.wire_size();
                            if let Some(node) = self.faces.node_of(face) {
                                ctx.send(node, g, size);
                            }
                        } else {
                            ctx.emit(TraceEvent::Drop, crate::drops::TORP_NO_ROUTE, inner.encoded_len() as u32);
                            ctx.world().bump(crate::drops::TORP_NO_ROUTE);
                        }
                    }
                    // Keep the old tree warm during the grace period (both
                    // for stale traffic and for back-tunneled packets).
                    let now = ctx.now();
                    self.legacy.retain(|(_, until)| *until >= now);
                    if self
                        .legacy
                        .iter()
                        .any(|(cd, _)| cd.is_prefix_of(inner.cd.name()))
                    {
                        let tagged = inner.on_tree(rp);
                        self.multicast(ctx, &tagged, None);
                    }
                }
                None => {
                    ctx.emit(TraceEvent::Drop, crate::drops::TORP_UNSERVED_CD, inner.encoded_len() as u32);
                    ctx.world().bump(crate::drops::TORP_UNSERVED_CD);
                }
            }
        } else {
            // Transit: forward the encapsulated Interest along the FIB.
            match self.face_toward_rp(rp) {
                Some(face) => {
                    if let Some(node) = self.faces.node_of(face) {
                        let g = GPacket::ToRp { rp, inner };
                        let size = g.wire_size();
                        ctx.send(node, g, size);
                    }
                }
                None => {
                    ctx.emit(TraceEvent::Drop, crate::drops::TORP_NO_ROUTE, inner.encoded_len() as u32);
                    ctx.world().bump(crate::drops::TORP_NO_ROUTE);
                }
            }
        }
    }

    fn on_rp_update(
        &mut self,
        ctx: &mut Ctx<'_, GPacket, GameWorld>,
        from: Option<NodeId>,
        cds: Vec<Name>,
        new_rp: RpId,
    ) {
        // Flood dedup key over (rp, cds).
        let mut key = u64::from(new_rp.0) << 32;
        for cd in &cds {
            key ^= cd.stable_hash().rotate_left(7);
        }
        if !self.seen_updates.insert(key) {
            return;
        }
        // Learn the route to the new RP from the flood's arrival direction
        // (reverse-path FIB construction).
        if let Some(face) = self.face_of(from) {
            if self.ndn.fib().exact(&new_rp.ndn_prefix()).is_none() && !self.local_rps.contains(&new_rp) {
                self.ndn.fib_mut().add(new_rp.ndn_prefix(), face);
            }
        }
        let (joins, prunes) = self.copss.handle_rp_update(&cds, new_rp);
        self.send_joins(ctx, joins);
        // Pending-ST: defer leaving the old trees until the new tree has
        // had the grace period to form (no subscriber misses a packet).
        if !prunes.is_empty() {
            let empty_before = self.deferred_prunes.is_empty();
            self.deferred_prunes.extend(prunes);
            if empty_before {
                ctx.schedule(self.split.grace, PRUNE_TIMER);
            }
        }
        // A route to the new RP may unblock pending joins.
        let pending = std::mem::take(&mut self.pending_joins);
        self.send_joins(ctx, pending);
        // Re-flood to every router neighbor except the arrival.
        for (face, node) in self.faces.iter().collect::<Vec<_>>() {
            if Some(node) == from {
                continue;
            }
            if ctx.topology().node_kind(node) == gcopss_sim::NodeKind::Host {
                continue;
            }
            self.send_copss(
                ctx,
                face,
                CopssPacket::RpUpdate {
                    cds: cds.clone(),
                    new_rp,
                },
            );
        }
    }

    fn on_rp_handoff(
        &mut self,
        ctx: &mut Ctx<'_, GPacket, GameWorld>,
        cds: Vec<Name>,
        new_rp: RpId,
        old_rp: RpId,
    ) {
        // Stage 2 complete: we are now the RP for `cds`. Do not split
        // again before serving a full cooldown's worth of traffic.
        self.local_rps.insert(new_rp);
        self.served_since_split = 0;
        let until = ctx.now() + self.split.grace;
        for cd in &cds {
            self.tunnel_back.push((cd.clone(), old_rp, until));
        }
        let (joins, prunes) = self.copss.handle_rp_update(&cds, new_rp);
        self.send_joins(ctx, joins);
        if !prunes.is_empty() {
            let empty_before = self.deferred_prunes.is_empty();
            self.deferred_prunes.extend(prunes);
            if empty_before {
                ctx.schedule(self.split.grace, PRUNE_TIMER);
            }
        }
        // Stage 3: announce network-wide (journaled so partitioned routers
        // can resynchronize once repaired).
        ctx.world()
            .rp_moves
            .extend(cds.iter().map(|c| (c.clone(), new_rp.0)));
        self.on_rp_update(ctx, None, cds, new_rp);
        ctx.emit(TraceEvent::Mark, "rp-handoff", 0);
        ctx.world().bump("rp-handoffs");
    }

    /// Rebuilds every `/rp/<id>` FIB entry from the world's RP registry and
    /// the freshly recomputed routing table. Entries toward currently
    /// unreachable RP hosts are removed, so their traffic is counted as
    /// `torp-no-route` instead of being fed into a dead link.
    fn repair_rp_routes(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>) {
        let me = ctx.node();
        let locs: Vec<(u32, u32)> = ctx
            .world()
            .rp_locations
            .iter()
            .map(|(&rp, &node)| (rp, node))
            .collect();
        for (rp, node) in locs {
            let rp = RpId(rp);
            if self.local_rps.contains(&rp) {
                continue;
            }
            let target = NodeId(node);
            let face = if target == me {
                None
            } else {
                ctx.routing()
                    .next_hop(me, target)
                    .and_then(|hop| self.faces.face_of(hop))
            };
            let prefix = rp.ndn_prefix();
            self.ndn.fib_mut().remove_prefix(&prefix);
            if let Some(face) = face {
                self.ndn.fib_mut().add(prefix, face);
            }
        }
    }

    /// Re-expresses every join this router believes it holds upstream (the
    /// repaired path may differ from the one the joins were sent along, and
    /// an upstream may have purged our branch), and retries joins that were
    /// parked waiting for a route.
    fn refresh_joins(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>) {
        let mut joins = self.copss.refresh_joins();
        for j in std::mem::take(&mut self.pending_joins) {
            if !joins.contains(&j) {
                joins.push(j);
            }
        }
        self.send_joins(ctx, joins);
    }

    /// Detects RPs whose host became unreachable and hands their prefixes
    /// to the lowest-numbered surviving RP through the ordinary RP-update
    /// flood (§IV-B machinery reused for failover). Any router adjacent to
    /// the fault may initiate; the world's RP registry is updated by the
    /// first initiator, so later notices skip the already-failed-over RP,
    /// and the flood dedup absorbs any duplicates in flight.
    fn check_rp_failover(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>) {
        let me = ctx.node();
        let locs: Vec<(u32, u32)> = ctx
            .world()
            .rp_locations
            .iter()
            .map(|(&rp, &node)| (rp, node))
            .collect();
        let mut survivor = None;
        let mut dead_rps = Vec::new();
        for &(rp, node) in &locs {
            let up = NodeId(node) == me || ctx.routing().next_hop(me, NodeId(node)).is_some();
            if up {
                survivor.get_or_insert(RpId(rp));
            } else {
                dead_rps.push(rp);
            }
        }
        let Some(survivor) = survivor else { return };
        for rp in dead_rps {
            let moved = self.copss.rp_table().prefixes_of(RpId(rp));
            if moved.is_empty() {
                continue; // served nothing, or already moved by a flood
            }
            ctx.world().rp_locations.remove(&rp);
            ctx.world().bump("rp-failovers");
            ctx.counter("rp-failovers", 1);
            ctx.emit(TraceEvent::Mark, "rp-failover", 0);
            ctx.world()
                .rp_moves
                .extend(moved.iter().map(|c| (c.clone(), survivor.0)));
            self.on_rp_update(ctx, None, moved, survivor);
        }
    }

    /// Replays the world's RP move journal against our RP table. The
    /// RP-update flood cannot reach a router that the very fault being
    /// repaired had partitioned (or crashed), so on a repair notice the
    /// router catches up on any moves it missed: last write per prefix
    /// wins, and prefixes already mapped correctly are no-ops. Runs after
    /// [`Self::repair_rp_routes`] so re-joins travel the repaired routes.
    fn resync_rp_moves(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>) {
        if ctx.world().rp_moves.is_empty() {
            return;
        }
        let mut latest: BTreeMap<Name, u32> = BTreeMap::new();
        for (cd, rp) in ctx.world().rp_moves.clone() {
            latest.insert(cd, rp);
        }
        for (cd, rp) in latest {
            let rp = RpId(rp);
            if self.copss.rp_table().rp_for(&cd) == Some(rp) {
                continue;
            }
            let (joins, prunes) = self.copss.handle_rp_update(std::slice::from_ref(&cd), rp);
            self.send_joins(ctx, joins);
            // The old tree died with the fault; prune immediately.
            self.send_prunes(ctx, prunes);
        }
    }

    fn run_ndn_actions(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>, actions: Vec<NdnAction>) {
        for a in actions {
            match a {
                NdnAction::SendInterest { face, interest } => {
                    if let Some(node) = self.faces.node_of(face) {
                        let g = GPacket::Interest(interest);
                        let size = g.wire_size();
                        ctx.send(node, g, size);
                    }
                }
                NdnAction::SendData { face, data } => {
                    if let Some(node) = self.faces.node_of(face) {
                        let g = GPacket::Data(data);
                        let size = g.wire_size();
                        ctx.send(node, g, size);
                    }
                }
            }
        }
    }
}

impl NodeBehavior<GPacket, GameWorld> for GCopssRouter {
    fn on_start(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>) {
        let Some(iv) = self.recovery.as_ref().and_then(|c| c.subscribe_refresh) else {
            return;
        };
        let seed = self.recovery.as_ref().map_or(0, |c| c.seed);
        // A distinct stream from the clients' (which seed with the raw
        // player id): multiply the node id by an odd constant first.
        let mix = (ctx.node().index() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.refresh_rng = Some(SmallRng::seed_from_u64(seed ^ mix));
        let delay = iv + self.refresh_jitter();
        ctx.schedule(delay, JOIN_REFRESH_TIMER);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>, key: u64) {
        let _p = prof::scope("copss/timer");
        if key == JOIN_REFRESH_TIMER {
            let Some(iv) = self.recovery.as_ref().and_then(|c| c.subscribe_refresh) else {
                return;
            };
            // Soft-state refresh (PIM-style): periodically re-express every
            // join held upstream, one batched Subscribe per RP tree. COPSS
            // aggregation absorbs the refresh at the next hop — it installs
            // no new state in the steady case — but the *packet* still has
            // to transit the upstream service queue, so under overload the
            // control plane genuinely contends with bulk data hop by hop
            // (and the priority lattice has something real to protect).
            let mut per_rp: BTreeMap<RpId, Vec<Name>> = BTreeMap::new();
            for j in self.copss.refresh_joins() {
                per_rp.entry(j.rp).or_default().push(j.name);
            }
            for (rp, cds) in per_rp {
                if self.local_rps.contains(&rp) {
                    continue; // the tree roots here
                }
                if let Some(face) = self.face_toward_rp(rp) {
                    self.send_copss(ctx, face, CopssPacket::Subscribe { cds, rp: Some(rp) });
                    ctx.world().bump("router-join-refreshes");
                }
            }
            let delay = iv + self.refresh_jitter();
            ctx.schedule(delay, JOIN_REFRESH_TIMER);
        } else if key == PRUNE_TIMER {
            let prunes = std::mem::take(&mut self.deferred_prunes);
            // Only prune joins that are still stale (a re-subscription may
            // have made them live again meanwhile).
            let still_stale: Vec<PruneRequest> = prunes
                .into_iter()
                .filter(|p| !self.copss.joined_toward(p.rp).contains(&p.name))
                .collect();
            self.send_prunes(ctx, still_stale);
        } else if key == PIT_SWEEP_TIMER {
            let Some(period) = self.recovery.as_ref().map(|c| c.pit_sweep) else {
                return;
            };
            let swept = self.ndn.pit_mut().expire(ctx.now().as_nanos());
            if swept > 0 {
                ctx.world().bump_by(crate::drops::PIT_EXPIRED, swept as u64);
                if ctx.telemetry_enabled() {
                    ctx.counter(crate::drops::PIT_EXPIRED, swept as u64);
                    ctx.emit(TraceEvent::Drop, crate::drops::PIT_EXPIRED, swept as u32);
                }
            }
            // Re-arm only while entries remain, so fault-free runs still
            // drain to quiescence.
            if self.ndn.pit().is_empty() {
                self.sweep_armed = false;
            } else {
                ctx.schedule(period, PIT_SWEEP_TIMER);
            }
        }
    }

    fn on_fault(&mut self, ctx: &mut Ctx<'_, GPacket, GameWorld>, notice: FaultNotice) {
        let _p = prof::scope("copss/fault_recovery");
        match notice {
            FaultNotice::LinkDown { peer } => {
                let Some(face) = self.faces.face_of(peer) else {
                    return;
                };
                // Purge the per-face soft state of the dead adjacency.
                let (purged, _joins, prunes) = self.copss.handle_face_down(face);
                ctx.world().bump_by(crate::drops::ST_PURGED, purged.len() as u64);
                let dropped = self.ndn.pit_mut().purge_face(face);
                ctx.world().bump_by(crate::drops::PIT_PURGED, dropped as u64);
                if ctx.telemetry_enabled() {
                    if !purged.is_empty() {
                        ctx.counter(crate::drops::ST_PURGED, purged.len() as u64);
                        ctx.emit(TraceEvent::Drop, crate::drops::ST_PURGED, purged.len() as u32);
                    }
                    if dropped > 0 {
                        ctx.counter(crate::drops::PIT_PURGED, dropped as u64);
                        ctx.emit(TraceEvent::Drop, crate::drops::PIT_PURGED, dropped as u32);
                    }
                }
                // Repair routes first, then re-anchor: joins and prunes
                // must travel the surviving paths.
                self.repair_rp_routes(ctx);
                self.refresh_joins(ctx);
                self.send_prunes(ctx, prunes);
                self.check_rp_failover(ctx);
            }
            FaultNotice::LinkUp { .. } => {
                // A repaired (possibly shorter) path: re-route, catch up on
                // RP moves flooded while we were partitioned, and re-anchor
                // the trees along the new routes.
                self.repair_rp_routes(ctx);
                self.resync_rp_moves(ctx);
                self.refresh_joins(ctx);
                self.check_rp_failover(ctx);
            }
            FaultNotice::Restarted => {
                // Crash-restart loses all soft state; only configuration
                // (RP table, static FIB routes) survives. RP roles that
                // failed over to a survivor while we were down are gone.
                let me = ctx.node();
                let registered: Vec<u32> = ctx
                    .world()
                    .rp_locations
                    .iter()
                    .filter(|&(_, &node)| NodeId(node) == me)
                    .map(|(&rp, _)| rp)
                    .collect();
                self.local_rps.retain(|r| registered.contains(&r.0));
                self.copss.clear_soft_state();
                self.ndn.pit_mut().clear();
                self.seen_updates.clear();
                self.pending_joins.clear();
                self.deferred_prunes.clear();
                self.legacy.clear();
                self.tunnel_back.clear();
                self.traffic = TrafficWindow::new(self.params.rp_window.max(1));
                self.served_since_split = self.params.rp_split_cooldown_packets;
                self.sweep_armed = false;
                ctx.world().bump("router-restarts");
                self.repair_rp_routes(ctx);
                self.check_rp_failover(ctx);
            }
        }
    }

    fn service_time(&self, pkt: &GPacket) -> SimDuration {
        match pkt {
            GPacket::Copss(CopssPacket::Multicast(_)) => self.params.copss_multicast_proc,
            GPacket::Copss(_) | GPacket::Control { .. } => self.params.control_proc,
            GPacket::ToRp { rp, .. } => {
                if self.local_rps.contains(rp) {
                    self.params.rp_proc
                } else {
                    self.params.encap_proc
                }
            }
            GPacket::Interest(_) | GPacket::Data(_) => self.params.ndn_proc,
            GPacket::Ip(_) => self.params.ip_proc,
        }
    }

    fn on_packet(
        &mut self,
        ctx: &mut Ctx<'_, GPacket, GameWorld>,
        from: Option<NodeId>,
        pkt: GPacket,
    ) {
        let arrival = self.face_of(from);
        match pkt {
            GPacket::Copss(CopssPacket::Subscribe { cds, rp }) => {
                let _p = prof::scope("copss/subscribe");
                let Some(face) = arrival else { return };
                let joins = self.copss.handle_subscribe(face, &cds, rp);
                self.send_joins(ctx, joins);
            }
            GPacket::Copss(CopssPacket::Unsubscribe { cds, rp }) => {
                let _p = prof::scope("copss/unsubscribe");
                let Some(face) = arrival else { return };
                let (joins, prunes) = self.copss.handle_unsubscribe(face, &cds, rp);
                self.send_joins(ctx, joins);
                self.send_prunes(ctx, prunes);
            }
            GPacket::Copss(CopssPacket::Multicast(m)) => {
                let _p = prof::scope("copss/multicast");
                // First hop for a host publication: encapsulate toward the
                // RP. Otherwise: native ST forwarding.
                let from_host = from.is_some_and(|n| {
                    ctx.topology().node_kind(n) == gcopss_sim::NodeKind::Host
                });
                if from_host || from.is_none() {
                    match self.copss.rp_for_publication(m.cd.name()) {
                        Some(rp) if self.local_rps.contains(&rp) => {
                            self.serve_as_rp(ctx, rp, &m);
                        }
                        Some(rp) => self.on_to_rp(ctx, rp, m),
                        None => {
                            ctx.emit(
                                TraceEvent::Drop,
                                crate::drops::PUBLICATION_UNSERVED_CD,
                                m.encoded_len() as u32,
                            );
                            ctx.world().bump(crate::drops::PUBLICATION_UNSERVED_CD);
                        }
                    }
                } else {
                    self.multicast(ctx, &m, arrival);
                }
            }
            GPacket::Copss(CopssPacket::FibAdd { prefixes }) => {
                let _p = prof::scope("copss/fib_update");
                if let Some(face) = arrival {
                    for p in prefixes {
                        self.ndn.fib_mut().add(p, face);
                    }
                }
            }
            GPacket::Copss(CopssPacket::FibRemove { prefixes }) => {
                let _p = prof::scope("copss/fib_update");
                if let Some(face) = arrival {
                    for p in prefixes {
                        self.ndn.fib_mut().remove(&p, face);
                    }
                }
            }
            GPacket::Copss(CopssPacket::RpUpdate { cds, new_rp }) => {
                let _p = prof::scope("copss/rp_update");
                self.on_rp_update(ctx, from, cds, new_rp);
            }
            GPacket::Copss(CopssPacket::RpHandoff { cds, new_rp, old_rp }) => {
                let _p = prof::scope("copss/rp_handoff");
                // Bare handoff (not wrapped): treat as addressed to us.
                self.on_rp_handoff(ctx, cds, new_rp, old_rp);
            }
            GPacket::Control { dst, inner } => {
                let _p = prof::scope("copss/control");
                if dst == ctx.node() {
                    match inner {
                        CopssPacket::RpHandoff { cds, new_rp, old_rp } => {
                            self.on_rp_handoff(ctx, cds, new_rp, old_rp);
                        }
                        other => {
                            let Some(face) = arrival else { return };
                            // Delegate any other control packet locally.
                            let g = GPacket::Copss(other);
                            let _ = (face, g);
                        }
                    }
                } else {
                    // Route onward; if it is a handoff, install the FIB
                    // entry for the new RP toward the destination (the
                    // paper's FIB-add along the old→new RP path).
                    if let CopssPacket::RpHandoff { new_rp, .. } = &inner {
                        if let Some(hop) = ctx.routing().next_hop(ctx.node(), dst) {
                            if let Some(face) = self.faces.face_of(hop) {
                                self.ndn.fib_mut().add(new_rp.ndn_prefix(), face);
                            }
                        }
                    }
                    let g = GPacket::Control { dst, inner };
                    let size = g.wire_size();
                    ctx.send_toward(dst, g, size);
                }
            }
            GPacket::ToRp { rp, inner } => {
                let _p = prof::scope("copss/to_rp");
                self.on_to_rp(ctx, rp, inner);
            }
            GPacket::Interest(i) => {
                let _p = prof::scope("ndn/interest");
                let Some(face) = arrival else { return };
                let now = ctx.now().as_nanos();
                let pfx = cs_prefix_key(&i.name);
                let hits_before = self.ndn.content_store().hits();
                let actions = self.ndn.process_interest(now, face, i);
                let hit = self.ndn.content_store().hits() > hits_before;
                self.note_cs_lookup(ctx, pfx, hit);
                self.run_ndn_actions(ctx, actions);
                // Recovery mode: keep a periodic sweep armed while
                // breadcrumbs exist, so orphaned entries (satellite of the
                // fault model — Data lost on a dead link never consumes
                // them) are reclaimed and counted.
                if let Some(cfg) = &self.recovery {
                    if !self.sweep_armed && !self.ndn.pit().is_empty() {
                        self.sweep_armed = true;
                        ctx.schedule(cfg.pit_sweep, PIT_SWEEP_TIMER);
                    }
                }
            }
            GPacket::Data(d) => {
                let _p = prof::scope("ndn/data");
                let Some(face) = arrival else { return };
                let now = ctx.now().as_nanos();
                let before = self.ndn.unsolicited_data();
                let actions = self.ndn.process_data(now, face, d);
                if self.ndn.unsolicited_data() > before {
                    ctx.world().bump("ndn-unsolicited-data");
                }
                self.run_ndn_actions(ctx, actions);
            }
            GPacket::Ip(ip) => {
                let _p = prof::scope("ip/route");
                crate::hybrid::route_ip_at_router(ctx, ip);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn face_map_is_deterministic() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let c = t.add_node("c");
        t.try_add_link(b, a, SimDuration::from_millis(1), None).unwrap();
        t.try_add_link(b, c, SimDuration::from_millis(1), None).unwrap();
        let fm = FaceMap::new(&t, b);
        assert_eq!(fm.len(), 2);
        assert_eq!(fm.face_of(a), Some(FaceId(0)));
        assert_eq!(fm.face_of(c), Some(FaceId(1)));
        assert_eq!(fm.node_of(FaceId(0)), Some(a));
        assert_eq!(fm.node_of(FaceId(9)), None);
        assert_eq!(fm.face_of(b), None);
        assert!(!fm.is_empty());
    }
}
