//! Scenario assembly: builds complete simulations (topology + routing +
//! behaviors) for every evaluated system.

use std::collections::BTreeMap;
use std::sync::Arc;

use gcopss_copss::{CopssEngine, RpId, RpTable};
use gcopss_game::trace::TraceEvent;
use gcopss_game::{GameMap, PlayerPopulation};
use gcopss_names::Name;
use gcopss_ndn::FaceId;
use gcopss_sim::generators::{attach_hosts, benchmark_testbed, rocketfuel_like, BackboneParams};
use gcopss_sim::{NodeBehavior, NodeId, RoutingTable, SimDuration, Simulator, Topology};

use crate::client::{GamePlayerClient, TraceCursor};
use crate::hybrid::HybridEdgeRouter;
use crate::ip_server::{partition_cds_to_servers, IpClient, IpServer, Roster};
use crate::ndn_baseline::{player_prefix, NdnClientConfig, NdnPlayerClient};
use crate::router::{FaceMap, GCopssRouter, SplitConfig};
use crate::{GPacket, GameWorld, MetricsMode, RecoveryConfig, SimParams};

/// Builds the behavior of one player host given its id, its edge router and
/// its trace cursor (used by movement scenarios to substitute
/// [`crate::broker::MovingPlayerClient`]s).
pub type ClientFactory<'a> = Box<
    dyn FnMut(gcopss_game::PlayerId, NodeId, TraceCursor) -> Box<dyn NodeBehavior<GPacket, GameWorld>>
        + 'a,
>;

/// Which physical network to simulate.
#[derive(Debug, Clone)]
pub enum NetworkSpec {
    /// The 6-router lab testbed of Fig. 3b (microbenchmark).
    Testbed,
    /// A Rocketfuel-like backbone (§V-B).
    Backbone {
        /// Topology seed.
        seed: u64,
        /// Generator parameters (79 core routers by default).
        params: BackboneParams,
    },
}

impl NetworkSpec {
    /// The paper's large-scale network with default parameters.
    #[must_use]
    pub fn default_backbone(seed: u64) -> Self {
        Self::Backbone {
            seed,
            params: BackboneParams::default(),
        }
    }

    /// The router nodes where RPs/servers/brokers would be placed, in
    /// placement order — lets callers pick `ExtraHost::attach_to` points
    /// before building.
    #[must_use]
    pub fn rp_pool_preview(&self) -> Vec<NodeId> {
        self.build().rp_pool
    }

    /// The router-router links of the base network, in id order — the
    /// candidate set for chaos link flaps. Hosts attach *after* the core is
    /// built, so every base link is a core link and the ids are stable
    /// across the G-COPSS/IP/NDN builds of the same spec.
    #[must_use]
    pub fn core_links_preview(&self) -> Vec<gcopss_sim::LinkId> {
        let n = u32::try_from(self.build().topology.link_count()).expect("link count fits u32");
        (0..n).map(gcopss_sim::LinkId).collect()
    }

    fn build(&self) -> BuiltNetwork {
        match self {
            Self::Testbed => {
                let (topology, routers) = benchmark_testbed();
                BuiltNetwork {
                    attach_points: routers.clone(),
                    rp_pool: routers.clone(),
                    routers,
                    topology,
                }
            }
            Self::Backbone { seed, params } => {
                let b = rocketfuel_like(*seed, params);
                // Spread RP/server placements over the core with a stride
                // so consecutive picks land far apart.
                let stride = 29usize;
                let mut rp_pool = Vec::new();
                let n = b.core.len();
                for i in 0..n {
                    let c = b.core[(i * stride) % n];
                    if !rp_pool.contains(&c) {
                        rp_pool.push(c);
                    }
                }
                for &c in &b.core {
                    if !rp_pool.contains(&c) {
                        rp_pool.push(c);
                    }
                }
                BuiltNetwork {
                    routers: b
                        .core
                        .iter()
                        .chain(b.edge.iter())
                        .copied()
                        .collect(),
                    attach_points: b.edge,
                    rp_pool,
                    topology: b.topology,
                }
            }
        }
    }
}

struct BuiltNetwork {
    topology: Topology,
    routers: Vec<NodeId>,
    attach_points: Vec<NodeId>,
    rp_pool: Vec<NodeId>,
}

/// Partitions the map's level-1 CD prefixes across `n` RPs (or servers),
/// round-robin. `n = 1` yields the single root prefix `/`.
///
/// # Panics
///
/// Panics if `n` is zero or exceeds the number of level-1 prefixes.
#[must_use]
pub fn rp_prefix_partition(map: &GameMap, n: usize) -> Vec<Vec<Name>> {
    assert!(n >= 1, "need at least one RP");
    if n == 1 {
        return vec![vec![Name::root()]];
    }
    let mut tops: Vec<Name> = map.leaf_cds().iter().map(|cd| cd.prefix(1)).collect();
    tops.sort();
    tops.dedup();
    assert!(
        n <= tops.len(),
        "cannot spread {} level-1 prefixes across {n} RPs",
        tops.len()
    );
    let mut groups = vec![Vec::new(); n];
    for (i, t) in tops.into_iter().enumerate() {
        groups[i % n].push(t);
    }
    groups
}

/// Configuration of a G-COPSS simulation.
#[derive(Debug, Clone)]
pub struct GcopssConfig {
    /// Calibration constants.
    pub params: SimParams,
    /// Latency-metrics retention.
    pub metrics_mode: MetricsMode,
    /// Exact delivery log + duplicate detection (small runs only).
    pub delivery_log: bool,
    /// Number of initial RPs.
    pub rp_count: usize,
    /// Time before the first trace event (lets subscriptions settle).
    pub warmup: SimDuration,
    /// Grace period for old-tree multicast during RP splits.
    pub split_grace: SimDuration,
    /// Extra CD prefixes anchored at RP 0 (e.g. `/snapcast` for movement
    /// scenarios).
    pub extra_rp_prefixes: Vec<Name>,
    /// Additional RPs hosted at explicit router nodes, each serving the
    /// given prefixes — e.g. a dedicated snapshot-stream RP co-located
    /// with each broker so bulk cyclic multicast never shares a core with
    /// the latency-critical game RPs.
    pub extra_rps: Vec<(Vec<Name>, NodeId)>,
    /// Placement strategy for automatically created RPs.
    pub rp_selection: crate::RpSelection,
    /// Failure-recovery tunables. `None` (the default) leaves the
    /// simulation byte-identical to pre-fault-injection builds; `Some`
    /// arms client watchdogs and router PIT sweeps, and requires running
    /// with [`Simulator::run_until`].
    pub recovery: Option<RecoveryConfig>,
}

impl Default for GcopssConfig {
    fn default() -> Self {
        Self {
            params: SimParams::default(),
            metrics_mode: MetricsMode::StatsOnly,
            delivery_log: false,
            rp_count: 3,
            warmup: SimDuration::from_secs(2),
            split_grace: SimDuration::from_secs(2),
            extra_rp_prefixes: Vec::new(),
            extra_rps: Vec::new(),
            rp_selection: crate::RpSelection::default(),
            recovery: None,
        }
    }
}

/// An extra host (broker, monitor, …) attached to the network at build
/// time.
pub struct ExtraHost {
    /// Router the host hangs off (1 ms access link).
    pub attach_to: NodeId,
    /// Name prefixes every router routes toward this host (FIB seeding,
    /// e.g. `/snapshot/...` for a broker).
    pub routes: Vec<Name>,
    /// Behavior factory, invoked with the host's node id and its edge
    /// router's node id.
    #[allow(clippy::type_complexity)]
    pub make: Box<dyn FnOnce(NodeId, NodeId) -> Box<dyn NodeBehavior<GPacket, GameWorld>>>,
}

/// A fully-assembled G-COPSS simulation.
pub struct GcopssSim {
    /// The simulator, ready to run.
    pub sim: Simulator<GPacket, GameWorld>,
    /// Host node of each player.
    pub player_nodes: Vec<NodeId>,
    /// Where the initial RPs live.
    pub rp_nodes: BTreeMap<RpId, NodeId>,
    /// Nodes created for [`ExtraHost`]s, in input order.
    pub extra_nodes: Vec<NodeId>,
    /// End of the warmup period (first trace event earliest time).
    pub warmup: SimDuration,
}

/// Builds a complete G-COPSS simulation: routers with NDN+COPSS engines,
/// seeded `/rp/<id>` FIB routes, per-player clients driving the shared
/// trace, and any extra hosts.
#[must_use]
pub fn build_gcopss(
    cfg: GcopssConfig,
    net: &NetworkSpec,
    map: &Arc<GameMap>,
    population: &PlayerPopulation,
    trace: &Arc<Vec<TraceEvent>>,
    extra_hosts: Vec<ExtraHost>,
) -> GcopssSim {
    let pop = population;
    let map_arc = Arc::clone(map);
    let recovery = cfg.recovery.clone();
    let factory: ClientFactory<'_> = Box::new(move |p, edge, cursor| {
        let mut client =
            GamePlayerClient::new(p, edge, pop.area_of(p), Arc::clone(&map_arc), cursor);
        if let Some(rc) = &recovery {
            client = client.with_recovery(rc.clone());
        }
        Box::new(client)
    });
    build_gcopss_custom(cfg, net, map, population, trace, extra_hosts, factory)
}

/// Like [`build_gcopss`] but with a caller-supplied player behavior factory
/// (movement scenarios install [`crate::broker::MovingPlayerClient`]s).
#[must_use]
pub fn build_gcopss_custom(
    cfg: GcopssConfig,
    net: &NetworkSpec,
    map: &Arc<GameMap>,
    population: &PlayerPopulation,
    trace: &Arc<Vec<TraceEvent>>,
    extra_hosts: Vec<ExtraHost>,
    mut client_factory: ClientFactory<'_>,
) -> GcopssSim {
    let _ = map;
    let mut bn = net.build();
    let player_nodes = attach_hosts(
        &mut bn.topology,
        &bn.attach_points,
        population.len(),
        SimDuration::from_millis(1),
        "player",
    );
    let mut extra_nodes = Vec::new();
    let mut extra_makes = Vec::new();
    for h in extra_hosts {
        let node = bn
            .topology
            .add_node_kind(format!("extra{}", extra_nodes.len()), gcopss_sim::NodeKind::Host);
        bn.topology
            .add_link(node, h.attach_to, SimDuration::from_millis(1), None);
        extra_nodes.push(node);
        extra_makes.push((node, h.attach_to, h.routes, h.make));
    }
    let routing = RoutingTable::shortest_paths(&bn.topology);

    // Initial RP assignment.
    let groups = rp_prefix_partition(map, cfg.rp_count);
    let mut rp_table = RpTable::new();
    let mut rp_nodes = BTreeMap::new();
    for (i, group) in groups.iter().enumerate() {
        let rp = RpId(i as u32);
        for prefix in group {
            rp_table
                .assign(prefix.clone(), rp)
                .expect("partition is prefix-free");
        }
        rp_nodes.insert(rp, bn.rp_pool[i % bn.rp_pool.len()]);
    }
    for prefix in &cfg.extra_rp_prefixes {
        rp_table
            .assign(prefix.clone(), RpId(0))
            .expect("extra prefixes must not overlap the map namespace");
    }
    for (prefixes, node) in &cfg.extra_rps {
        let rp = RpId(rp_nodes.len() as u32);
        for prefix in prefixes {
            rp_table
                .assign(prefix.clone(), rp)
                .expect("extra RP prefixes must be disjoint");
        }
        rp_nodes.insert(rp, *node);
    }

    let mut world = GameWorld::new(cfg.metrics_mode);
    if cfg.delivery_log {
        world = world.with_delivery_log();
    }
    world.next_rp_id = cfg.rp_count as u32;
    for (rp, node) in &rp_nodes {
        world.rp_locations.insert(rp.0, node.0);
    }

    let mut sim = Simulator::with_routing(bn.topology, routing, world);
    sim.set_packet_kinds(GPacket::kind);
    sim.set_lineage_ids(GPacket::lineage_id);

    // Routers.
    for &r in &bn.routers {
        let faces = FaceMap::new(sim.topology(), r);
        let mut copss = CopssEngine::new();
        for (prefix, rp) in rp_table.assignments() {
            copss
                .rp_table_mut()
                .assign(prefix, rp)
                .expect("prefix-free");
        }
        let mut local_rps = std::collections::BTreeSet::new();
        let mut fib_routes: Vec<(Name, FaceId)> = Vec::new();
        for (&rp, &node) in &rp_nodes {
            if node == r {
                local_rps.insert(rp);
            } else if let Some(hop) = sim.routing().next_hop(r, node) {
                if let Some(face) = faces.face_of(hop) {
                    fib_routes.push((rp.ndn_prefix(), face));
                }
            }
        }
        for (node, _, routes, _) in &extra_makes {
            if let Some(hop) = sim.routing().next_hop(r, *node) {
                if let Some(face) = faces.face_of(hop) {
                    for prefix in routes {
                        fib_routes.push((prefix.clone(), face));
                    }
                }
            }
        }
        let split = SplitConfig {
            candidates: bn.rp_pool.clone(),
            strategy: cfg.rp_selection,
            grace: cfg.split_grace,
        };
        let mut router =
            GCopssRouter::new(cfg.params.clone(), faces, copss, fib_routes, local_rps, split);
        if let Some(rc) = &cfg.recovery {
            router = router.with_recovery(rc.clone());
        }
        sim.set_behavior(r, Box::new(router));
    }

    // Players.
    for p in population.players() {
        let node = player_nodes[p.index()];
        let (edge, _) = sim
            .topology()
            .neighbors(node)
            .next()
            .expect("player attached");
        let cursor = TraceCursor::for_player(Arc::clone(trace), p, cfg.warmup);
        sim.set_behavior(node, client_factory(p, edge, cursor));
    }

    // Extra hosts.
    for (node, edge, _, make) in extra_makes {
        let behavior = make(node, edge);
        sim.set_behavior(node, behavior);
    }

    GcopssSim {
        sim,
        player_nodes,
        rp_nodes,
        extra_nodes,
        warmup: cfg.warmup,
    }
}

/// Configuration of an IP client/server baseline simulation.
#[derive(Debug, Clone)]
pub struct IpConfig {
    /// Calibration constants.
    pub params: SimParams,
    /// Latency-metrics retention.
    pub metrics_mode: MetricsMode,
    /// Exact delivery log (small runs only).
    pub delivery_log: bool,
    /// Number of game servers.
    pub server_count: usize,
    /// Time before the first trace event.
    pub warmup: SimDuration,
    /// Failure-recovery tunables: `Some` enables the session model
    /// (client `Hello`s, server connection table, reconnect watchdogs).
    pub recovery: Option<RecoveryConfig>,
}

impl Default for IpConfig {
    fn default() -> Self {
        Self {
            params: SimParams::default(),
            metrics_mode: MetricsMode::StatsOnly,
            delivery_log: false,
            server_count: 3,
            warmup: SimDuration::from_secs(2),
            recovery: None,
        }
    }
}

/// A fully-assembled IP-server baseline simulation.
pub struct IpSim {
    /// The simulator, ready to run.
    pub sim: Simulator<GPacket, GameWorld>,
    /// Host node of each player.
    pub player_nodes: Vec<NodeId>,
    /// The server nodes.
    pub server_nodes: Vec<NodeId>,
}

/// Builds the IP client/server baseline: plain IP forwarding at routers,
/// `server_count` servers partitioning the leaf CDs, and unicast fan-out to
/// every interested player.
#[must_use]
pub fn build_ip_server(
    cfg: IpConfig,
    net: &NetworkSpec,
    map: &Arc<GameMap>,
    population: &PlayerPopulation,
    trace: &Arc<Vec<TraceEvent>>,
) -> IpSim {
    let mut bn = net.build();
    let player_nodes = attach_hosts(
        &mut bn.topology,
        &bn.attach_points,
        population.len(),
        SimDuration::from_millis(1),
        "player",
    );
    // Servers attach to the RP pool positions (R1 on the testbed).
    let mut server_nodes = Vec::new();
    for i in 0..cfg.server_count {
        let at = bn.rp_pool[i % bn.rp_pool.len()];
        let node = bn
            .topology
            .add_node_kind(format!("server{i}"), gcopss_sim::NodeKind::Host);
        bn.topology
            .add_link(node, at, SimDuration::from_millis(1), None);
        server_nodes.push(node);
    }
    let routing = RoutingTable::shortest_paths(&bn.topology);

    let mut world = GameWorld::new(cfg.metrics_mode);
    if cfg.delivery_log {
        world = world.with_delivery_log();
    }
    let mut sim = Simulator::with_routing(bn.topology, routing, world);
    sim.set_packet_kinds(GPacket::kind);
    sim.set_lineage_ids(GPacket::lineage_id);

    // Plain IP routers (a G-COPSS router with no RPs forwards IP packets).
    for &r in &bn.routers {
        let faces = FaceMap::new(sim.topology(), r);
        let mut router = GCopssRouter::new(
            cfg.params.clone(),
            faces,
            CopssEngine::new(),
            Vec::new(),
            std::collections::BTreeSet::new(),
            SplitConfig::default(),
        );
        if let Some(rc) = &cfg.recovery {
            router = router.with_recovery(rc.clone());
        }
        sim.set_behavior(r, Box::new(router));
    }

    let areas: Vec<_> = population.players().map(|p| population.area_of(p)).collect();
    let roster = Arc::new(Roster::new(map, player_nodes.clone(), areas));
    for &s in &server_nodes {
        let mut server = IpServer::new(cfg.params.clone(), Arc::clone(&roster));
        if let Some(rc) = &cfg.recovery {
            server = server.with_recovery(rc.clone());
        }
        sim.set_behavior(s, Box::new(server));
    }

    let server_of = Arc::new(partition_cds_to_servers(map, &server_nodes));
    for p in population.players() {
        let node = player_nodes[p.index()];
        let (edge, _) = sim
            .topology()
            .neighbors(node)
            .next()
            .expect("player attached");
        let cursor = TraceCursor::for_player(Arc::clone(trace), p, cfg.warmup);
        let mut client = IpClient::new(p, edge, Arc::clone(&server_of), cursor);
        if let Some(rc) = &cfg.recovery {
            client = client.with_recovery(rc.clone());
        }
        sim.set_behavior(node, Box::new(client));
    }

    IpSim {
        sim,
        player_nodes,
        server_nodes,
    }
}

/// Configuration of a hybrid-G-COPSS simulation (§III-D).
#[derive(Debug, Clone)]
pub struct HybridConfig {
    /// Calibration constants.
    pub params: SimParams,
    /// Latency-metrics retention.
    pub metrics_mode: MetricsMode,
    /// Exact delivery log (small runs only).
    pub delivery_log: bool,
    /// Available IP multicast groups (Table II uses 6).
    pub group_count: u32,
    /// Time before the first trace event.
    pub warmup: SimDuration,
}

impl Default for HybridConfig {
    fn default() -> Self {
        Self {
            params: SimParams::default(),
            metrics_mode: MetricsMode::StatsOnly,
            delivery_log: false,
            group_count: 6,
            warmup: SimDuration::from_secs(2),
        }
    }
}

/// A fully-assembled hybrid-G-COPSS simulation.
pub struct HybridSim {
    /// The simulator, ready to run.
    pub sim: Simulator<GPacket, GameWorld>,
    /// Host node of each player.
    pub player_nodes: Vec<NodeId>,
}

/// Builds hybrid-G-COPSS: COPSS-aware edge routers mapping CDs onto
/// `group_count` IP multicast groups, plain IP core.
#[must_use]
pub fn build_hybrid(
    cfg: HybridConfig,
    net: &NetworkSpec,
    map: &Arc<GameMap>,
    population: &PlayerPopulation,
    trace: &Arc<Vec<TraceEvent>>,
) -> HybridSim {
    let mut bn = net.build();
    let player_nodes = attach_hosts(
        &mut bn.topology,
        &bn.attach_points,
        population.len(),
        SimDuration::from_millis(1),
        "player",
    );
    let routing = RoutingTable::shortest_paths(&bn.topology);
    let mut world = GameWorld::new(cfg.metrics_mode);
    if cfg.delivery_log {
        world = world.with_delivery_log();
    }
    let mut sim = Simulator::with_routing(bn.topology, routing, world);
    sim.set_packet_kinds(GPacket::kind);
    sim.set_lineage_ids(GPacket::lineage_id);

    for &r in &bn.routers {
        let faces = FaceMap::new(sim.topology(), r);
        if bn.attach_points.contains(&r) {
            sim.set_behavior(
                r,
                Box::new(HybridEdgeRouter::new(cfg.params.clone(), faces, cfg.group_count)),
            );
        } else {
            sim.set_behavior(
                r,
                Box::new(GCopssRouter::new(
                    cfg.params.clone(),
                    faces,
                    CopssEngine::new(),
                    Vec::new(),
                    std::collections::BTreeSet::new(),
                    SplitConfig::default(),
                )),
            );
        }
    }

    for p in population.players() {
        let node = player_nodes[p.index()];
        let (edge, _) = sim
            .topology()
            .neighbors(node)
            .next()
            .expect("player attached");
        let cursor = TraceCursor::for_player(Arc::clone(trace), p, cfg.warmup);
        sim.set_behavior(
            node,
            Box::new(GamePlayerClient::new(
                p,
                edge,
                population.area_of(p),
                Arc::clone(map),
                cursor,
            )),
        );
    }

    HybridSim { sim, player_nodes }
}

/// Configuration of the NDN (VoCCN-style) baseline simulation.
#[derive(Debug, Clone)]
pub struct NdnBaselineConfig {
    /// Calibration constants.
    pub params: SimParams,
    /// Latency-metrics retention.
    pub metrics_mode: MetricsMode,
    /// Exact delivery log (small runs only).
    pub delivery_log: bool,
    /// Client pipelining/accumulation settings.
    pub client: NdnClientConfig,
    /// Time before the first trace event.
    pub warmup: SimDuration,
    /// Failure-recovery tunables: `Some` enables the router PIT sweep and
    /// forces `client.retry_forever` so lost Interests are always
    /// re-expressed eventually.
    pub recovery: Option<RecoveryConfig>,
}

impl Default for NdnBaselineConfig {
    fn default() -> Self {
        Self {
            params: SimParams::default(),
            metrics_mode: MetricsMode::StatsOnly,
            delivery_log: false,
            client: NdnClientConfig::default(),
            warmup: SimDuration::from_secs(2),
            recovery: None,
        }
    }
}

/// A fully-assembled NDN-baseline simulation.
pub struct NdnSim {
    /// The simulator. Because consumers poll forever, run it with
    /// [`Simulator::run_until`] up to a horizon rather than to quiescence.
    pub sim: Simulator<GPacket, GameWorld>,
    /// Host node of each player.
    pub player_nodes: Vec<NodeId>,
}

/// Builds the VoCCN-style NDN baseline: plain NDN routers with
/// `/player/<id>` routes toward every player, and clients that pipeline
/// Interests to every producer in their AoI (roster from ACT).
#[must_use]
pub fn build_ndn_baseline(
    cfg: NdnBaselineConfig,
    net: &NetworkSpec,
    map: &Arc<GameMap>,
    population: &PlayerPopulation,
    trace: &Arc<Vec<TraceEvent>>,
) -> NdnSim {
    let mut bn = net.build();
    let player_nodes = attach_hosts(
        &mut bn.topology,
        &bn.attach_points,
        population.len(),
        SimDuration::from_millis(1),
        "player",
    );
    let routing = RoutingTable::shortest_paths(&bn.topology);
    let mut world = GameWorld::new(cfg.metrics_mode);
    if cfg.delivery_log {
        world = world.with_delivery_log();
    }
    let mut sim = Simulator::with_routing(bn.topology, routing, world);
    sim.set_packet_kinds(GPacket::kind);
    sim.set_lineage_ids(GPacket::lineage_id);

    // NDN routers with /player/<id> routes toward every player host.
    for &r in &bn.routers {
        let faces = FaceMap::new(sim.topology(), r);
        let mut fib_routes: Vec<(Name, FaceId)> = Vec::new();
        for p in population.players() {
            let node = player_nodes[p.index()];
            if let Some(hop) = sim.routing().next_hop(r, node) {
                if let Some(face) = faces.face_of(hop) {
                    fib_routes.push((player_prefix(p), face));
                }
            }
        }
        let mut router = GCopssRouter::new(
            cfg.params.clone(),
            faces,
            CopssEngine::new(),
            fib_routes,
            std::collections::BTreeSet::new(),
            SplitConfig::default(),
        );
        if let Some(rc) = &cfg.recovery {
            router = router.with_recovery(rc.clone());
        }
        sim.set_behavior(r, Box::new(router));
    }

    let mut client_cfg = cfg.client.clone();
    if cfg.recovery.is_some() {
        client_cfg.retry_forever = true;
    }
    let areas: Vec<_> = population.players().map(|p| population.area_of(p)).collect();
    let rosters = NdnPlayerClient::rosters(map, &areas);
    for p in population.players() {
        let node = player_nodes[p.index()];
        let (edge, _) = sim
            .topology()
            .neighbors(node)
            .next()
            .expect("player attached");
        let cursor = TraceCursor::for_player(Arc::clone(trace), p, cfg.warmup);
        sim.set_behavior(
            node,
            Box::new(NdnPlayerClient::new(
                p,
                edge,
                client_cfg.clone(),
                cursor,
                rosters[p.index()].clone(),
            )),
        );
    }

    NdnSim { sim, player_nodes }
}

/// The number of deliveries a correct dissemination must produce for
/// `trace` with static player placements: for every event, every player
/// that can see the event's area, minus the publisher.
#[must_use]
pub fn expected_deliveries(
    map: &GameMap,
    population: &PlayerPopulation,
    trace: &[TraceEvent],
) -> u64 {
    let mut viewers: BTreeMap<&Name, u64> = BTreeMap::new();
    for cd in map.leaf_cds() {
        let area = map.area_of_leaf_cd(cd).expect("leaf CD");
        let count = population
            .players()
            .filter(|p| map.can_see(population.area_of(*p), area))
            .count() as u64;
        viewers.insert(cd, count);
    }
    trace
        .iter()
        .map(|e| viewers.get(&e.cd).copied().unwrap_or(0).saturating_sub(1))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcopss_game::PlayerId;

    #[test]
    fn rp_partition_shapes() {
        let map = GameMap::paper_map();
        assert_eq!(rp_prefix_partition(&map, 1), vec![vec![Name::root()]]);
        let g3 = rp_prefix_partition(&map, 3);
        assert_eq!(g3.len(), 3);
        let all: Vec<Name> = g3.iter().flatten().cloned().collect();
        assert_eq!(all.len(), 6); // /0, /1..5
        let g6 = rp_prefix_partition(&map, 6);
        assert!(g6.iter().all(|g| g.len() == 1));
    }

    #[test]
    #[should_panic(expected = "cannot spread")]
    fn rp_partition_rejects_too_many() {
        let map = GameMap::paper_map();
        let _ = rp_prefix_partition(&map, 7);
    }

    #[test]
    fn expected_deliveries_counts_visibility() {
        use gcopss_game::trace::TraceEvent;
        let map = GameMap::paper_map();
        let pop = PlayerPopulation::uniform_per_area(&map, 2);
        // One event to zone /1/2: 6 viewers - publisher = 5.
        let trace = vec![TraceEvent {
            time_ns: 0,
            player: PlayerId(0),
            cd: Name::parse_lit("/1/2"),
            object: gcopss_game::ObjectId(0),
            size: 100,
        }];
        assert_eq!(expected_deliveries(&map, &pop, &trace), 5);
        // World layer: 62 viewers - publisher = 61.
        let trace = vec![TraceEvent {
            time_ns: 0,
            player: PlayerId(0),
            cd: Name::parse_lit("/0"),
            object: gcopss_game::ObjectId(0),
            size: 100,
        }];
        assert_eq!(expected_deliveries(&map, &pop, &trace), 61);
    }
}
