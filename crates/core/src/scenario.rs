//! Scenario assembly: builds complete simulations (topology + routing +
//! behaviors) for every evaluated system.

use std::collections::BTreeMap;
use std::sync::Arc;

use gcopss_copss::{CopssEngine, RpId, RpTable};
use gcopss_game::trace::TraceEvent;
use gcopss_game::{GameMap, PlayerPopulation};
use gcopss_names::Name;
use gcopss_ndn::FaceId;
use gcopss_sim::generators::{attach_hosts, benchmark_testbed, rocketfuel_like, BackboneParams};
use gcopss_sim::{
    FaultPlan, NodeBehavior, NodeId, OverloadConfig, RoutingTable, SimDuration, Simulator,
    StreamConfig, Topology,
};

use crate::client::{CatchUpConfig, GamePlayerClient, TraceCursor};
use crate::hybrid::HybridEdgeRouter;
use crate::ip_server::{partition_cds_to_servers, IpClient, IpServer, Roster};
use crate::ndn_baseline::{player_prefix, NdnClientConfig, NdnPlayerClient};
use crate::router::{FaceMap, GCopssRouter, SplitConfig};
use crate::{GPacket, GameWorld, MetricsMode, RateAdaptConfig, RecoveryConfig, SimParams};

/// Builds the behavior of one player host given its id, its edge router and
/// its trace cursor (used by movement scenarios to substitute
/// [`crate::broker::MovingPlayerClient`]s).
pub type ClientFactory<'a> = Box<
    dyn FnMut(gcopss_game::PlayerId, NodeId, TraceCursor) -> Box<dyn NodeBehavior<GPacket, GameWorld>>
        + 'a,
>;

/// Which physical network to simulate.
#[derive(Debug, Clone)]
pub enum NetworkSpec {
    /// The 6-router lab testbed of Fig. 3b (microbenchmark).
    Testbed,
    /// A Rocketfuel-like backbone (§V-B).
    Backbone {
        /// Topology seed.
        seed: u64,
        /// Generator parameters (79 core routers by default).
        params: BackboneParams,
    },
}

impl NetworkSpec {
    /// The paper's large-scale network with default parameters.
    #[must_use]
    pub fn default_backbone(seed: u64) -> Self {
        Self::Backbone {
            seed,
            params: BackboneParams::default(),
        }
    }

    /// The router nodes where RPs/servers/brokers would be placed, in
    /// placement order — lets callers pick `ExtraHost::attach_to` points
    /// before building.
    #[must_use]
    pub fn rp_pool_preview(&self) -> Vec<NodeId> {
        self.build().rp_pool
    }

    /// The access links the build will create for `players` hosts, in
    /// player order. Players attach right after the core is built — one
    /// access link each, before any [`ExtraHost`] links — so the ids simply
    /// continue the core sequence. This is the deterministic handle a chaos
    /// plan needs to cut a cohort of clients off (e.g. a mass-reconnect
    /// storm).
    #[must_use]
    pub fn player_access_links(&self, players: usize) -> Vec<gcopss_sim::LinkId> {
        let base = self.build().topology.link_count();
        (0..players)
            .map(|i| gcopss_sim::LinkId((base + i) as u32))
            .collect()
    }

    /// The router-router links of the base network, in id order — the
    /// candidate set for chaos link flaps. Hosts attach *after* the core is
    /// built, so every base link is a core link and the ids are stable
    /// across the G-COPSS/IP/NDN builds of the same spec.
    #[must_use]
    pub fn core_links_preview(&self) -> Vec<gcopss_sim::LinkId> {
        let n = u32::try_from(self.build().topology.link_count()).expect("link count fits u32");
        (0..n).map(gcopss_sim::LinkId).collect()
    }

    fn build(&self) -> BuiltNetwork {
        match self {
            Self::Testbed => {
                let (topology, routers) = benchmark_testbed();
                BuiltNetwork {
                    attach_points: routers.clone(),
                    rp_pool: routers.clone(),
                    routers,
                    topology,
                }
            }
            Self::Backbone { seed, params } => {
                let b = rocketfuel_like(*seed, params);
                // Spread RP/server placements over the core with a stride
                // so consecutive picks land far apart.
                let stride = 29usize;
                let mut rp_pool = Vec::new();
                let n = b.core.len();
                for i in 0..n {
                    let c = b.core[(i * stride) % n];
                    if !rp_pool.contains(&c) {
                        rp_pool.push(c);
                    }
                }
                for &c in &b.core {
                    if !rp_pool.contains(&c) {
                        rp_pool.push(c);
                    }
                }
                BuiltNetwork {
                    routers: b
                        .core
                        .iter()
                        .chain(b.edge.iter())
                        .copied()
                        .collect(),
                    attach_points: b.edge,
                    rp_pool,
                    topology: b.topology,
                }
            }
        }
    }
}

struct BuiltNetwork {
    topology: Topology,
    routers: Vec<NodeId>,
    attach_points: Vec<NodeId>,
    rp_pool: Vec<NodeId>,
}

/// Partitions the map's level-1 CD prefixes across `n` RPs (or servers),
/// round-robin. `n = 1` yields the single root prefix `/`.
///
/// # Panics
///
/// Panics if `n` is zero or exceeds the number of level-1 prefixes.
#[must_use]
pub fn rp_prefix_partition(map: &GameMap, n: usize) -> Vec<Vec<Name>> {
    assert!(n >= 1, "need at least one RP");
    if n == 1 {
        return vec![vec![Name::root()]];
    }
    let mut tops: Vec<Name> = map.leaf_cds().iter().map(|cd| cd.prefix(1)).collect();
    tops.sort();
    tops.dedup();
    assert!(
        n <= tops.len(),
        "cannot spread {} level-1 prefixes across {n} RPs",
        tops.len()
    );
    let mut groups = vec![Vec::new(); n];
    for (i, t) in tops.into_iter().enumerate() {
        groups[i % n].push(t);
    }
    groups
}

/// Configuration of a G-COPSS simulation.
#[derive(Debug, Clone)]
pub struct GcopssConfig {
    /// Calibration constants.
    pub params: SimParams,
    /// Latency-metrics retention.
    pub metrics_mode: MetricsMode,
    /// Exact delivery log + duplicate detection (small runs only).
    pub delivery_log: bool,
    /// Number of initial RPs.
    pub rp_count: usize,
    /// Time before the first trace event (lets subscriptions settle).
    pub warmup: SimDuration,
    /// Grace period for old-tree multicast during RP splits.
    pub split_grace: SimDuration,
    /// Extra CD prefixes anchored at RP 0 (e.g. `/snapcast` for movement
    /// scenarios).
    pub extra_rp_prefixes: Vec<Name>,
    /// Additional RPs hosted at explicit router nodes, each serving the
    /// given prefixes — e.g. a dedicated snapshot-stream RP co-located
    /// with each broker so bulk cyclic multicast never shares a core with
    /// the latency-critical game RPs.
    pub extra_rps: Vec<(Vec<Name>, NodeId)>,
    /// Placement strategy for automatically created RPs.
    pub rp_selection: crate::RpSelection,
    /// Failure-recovery tunables. `None` (the default) leaves the
    /// simulation byte-identical to pre-fault-injection builds; `Some`
    /// arms client watchdogs and router PIT sweeps, and requires running
    /// with [`Simulator::run_until`].
    pub recovery: Option<RecoveryConfig>,
    /// Engine overload control (bounded service queues, admission policy,
    /// priority classes, sojourn marking). `None` (the default) — or a
    /// vacuous config — leaves the simulation byte-identical to
    /// pre-overload builds.
    pub overload: Option<OverloadConfig>,
    /// Client-side congestion-feedback rate adaptation. Only meaningful
    /// together with an `overload` config that sets `mark_sojourn`; `None`
    /// (the default) is byte-identical to pre-overload builds.
    pub rate_adapt: Option<RateAdaptConfig>,
    /// In-simulation streaming-metric pipeline (windowed counters, EWMA
    /// gauges, heavy-hitter sketches). The vacuous default is byte-identical
    /// to builds without the pipeline; a non-vacuous config is required for
    /// [`SimParams::rp_adaptive`] / [`SimParams::cache_adaptive`] consumers
    /// to observe anything.
    pub stream: StreamConfig,
}

impl Default for GcopssConfig {
    fn default() -> Self {
        Self {
            params: SimParams::default(),
            metrics_mode: MetricsMode::StatsOnly,
            delivery_log: false,
            rp_count: 3,
            warmup: SimDuration::from_secs(2),
            split_grace: SimDuration::from_secs(2),
            extra_rp_prefixes: Vec::new(),
            extra_rps: Vec::new(),
            rp_selection: crate::RpSelection::default(),
            recovery: None,
            overload: None,
            rate_adapt: None,
            stream: StreamConfig::default(),
        }
    }
}

/// An extra host (broker, monitor, …) attached to the network at build
/// time.
pub struct ExtraHost {
    /// Router the host hangs off (1 ms access link).
    pub attach_to: NodeId,
    /// Name prefixes every router routes toward this host (FIB seeding,
    /// e.g. `/snapshot/...` for a broker).
    pub routes: Vec<Name>,
    /// Behavior factory, invoked with the host's node id and its edge
    /// router's node id.
    #[allow(clippy::type_complexity)]
    pub make: Box<dyn FnOnce(NodeId, NodeId) -> Box<dyn NodeBehavior<GPacket, GameWorld>>>,
}

/// A fully-assembled G-COPSS simulation.
pub struct GcopssSim {
    /// The simulator, ready to run.
    pub sim: Simulator<GPacket, GameWorld>,
    /// Host node of each player.
    pub player_nodes: Vec<NodeId>,
    /// Where the initial RPs live.
    pub rp_nodes: BTreeMap<RpId, NodeId>,
    /// Nodes created for [`ExtraHost`]s, in input order.
    pub extra_nodes: Vec<NodeId>,
    /// End of the warmup period (first trace event earliest time).
    pub warmup: SimDuration,
}

/// Which evaluated system a [`ScenarioSpec`] assembles, with its
/// protocol-specific configuration.
#[derive(Debug, Clone)]
pub enum Protocol {
    /// G-COPSS proper: routers with NDN+COPSS engines and dynamic RPs.
    Gcopss(GcopssConfig),
    /// The IP client/server baseline.
    IpServer(IpConfig),
    /// Hybrid-G-COPSS: COPSS edge + IP multicast core (§III-D).
    Hybrid(HybridConfig),
    /// The VoCCN-style NDN query/response baseline.
    NdnBaseline(NdnBaselineConfig),
}

/// Declarative description of one complete simulation, replacing the old
/// multi-positional `build_*` functions: every scenario is "a [`Protocol`]
/// on a [`NetworkSpec`] with a game world", plus optional extras (brokers,
/// a custom client factory, snapshot catch-up, a chaos schedule).
///
/// # Example
///
/// ```
/// # use std::sync::Arc;
/// # use gcopss_core::scenario::{GcopssConfig, NetworkSpec, ScenarioSpec};
/// # use gcopss_game::{GameMap, PlayerPopulation};
/// let map = Arc::new(GameMap::paper_map());
/// let pop = PlayerPopulation::uniform_per_area(&map, 1);
/// let trace = Arc::new(Vec::new());
/// let built = ScenarioSpec::new(&NetworkSpec::Testbed, &map, &pop, &trace)
///     .gcopss(GcopssConfig::default())
///     .build()
///     .into_gcopss();
/// assert_eq!(built.player_nodes.len(), pop.len());
/// ```
pub struct ScenarioSpec<'a> {
    protocol: Protocol,
    net: NetworkSpec,
    map: Arc<GameMap>,
    population: &'a PlayerPopulation,
    trace: Arc<Vec<TraceEvent>>,
    extra_hosts: Vec<ExtraHost>,
    client_factory: Option<ClientFactory<'a>>,
    catch_up: Option<CatchUpConfig>,
    fault_plan: Option<FaultPlan>,
}

impl<'a> ScenarioSpec<'a> {
    /// Starts a spec for the given network and game world. The protocol
    /// defaults to G-COPSS with default configuration.
    #[must_use]
    pub fn new(
        net: &NetworkSpec,
        map: &Arc<GameMap>,
        population: &'a PlayerPopulation,
        trace: &Arc<Vec<TraceEvent>>,
    ) -> Self {
        Self {
            protocol: Protocol::Gcopss(GcopssConfig::default()),
            net: net.clone(),
            map: Arc::clone(map),
            population,
            trace: Arc::clone(trace),
            extra_hosts: Vec::new(),
            client_factory: None,
            catch_up: None,
            fault_plan: None,
        }
    }

    /// Selects the protocol under evaluation.
    #[must_use]
    pub fn protocol(mut self, protocol: Protocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// Shorthand for [`Protocol::Gcopss`].
    #[must_use]
    pub fn gcopss(self, cfg: GcopssConfig) -> Self {
        self.protocol(Protocol::Gcopss(cfg))
    }

    /// Shorthand for [`Protocol::IpServer`].
    #[must_use]
    pub fn ip_server(self, cfg: IpConfig) -> Self {
        self.protocol(Protocol::IpServer(cfg))
    }

    /// Shorthand for [`Protocol::Hybrid`].
    #[must_use]
    pub fn hybrid(self, cfg: HybridConfig) -> Self {
        self.protocol(Protocol::Hybrid(cfg))
    }

    /// Shorthand for [`Protocol::NdnBaseline`].
    #[must_use]
    pub fn ndn_baseline(self, cfg: NdnBaselineConfig) -> Self {
        self.protocol(Protocol::NdnBaseline(cfg))
    }

    /// Attaches one extra host (broker, monitor, …). G-COPSS only; other
    /// protocols ignore extra hosts.
    #[must_use]
    pub fn extra_host(mut self, host: ExtraHost) -> Self {
        self.extra_hosts.push(host);
        self
    }

    /// Attaches several extra hosts, in order. G-COPSS only.
    #[must_use]
    pub fn extra_hosts(mut self, hosts: Vec<ExtraHost>) -> Self {
        self.extra_hosts.extend(hosts);
        self
    }

    /// Replaces the default per-player behavior factory (movement scenarios
    /// install [`crate::broker::MovingPlayerClient`]s). G-COPSS only.
    #[must_use]
    pub fn client_factory(mut self, factory: ClientFactory<'a>) -> Self {
        self.client_factory = Some(factory);
        self
    }

    /// Enables snapshot catch-up on the default G-COPSS clients (ignored
    /// when a custom [`Self::client_factory`] is installed — wire
    /// [`GamePlayerClient::with_catch_up`] there instead).
    #[must_use]
    pub fn catch_up(mut self, cfg: CatchUpConfig) -> Self {
        self.catch_up = Some(cfg);
        self
    }

    /// Installs a chaos schedule on the built simulator.
    #[must_use]
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Assembles the simulation. Construction order (and therefore every
    /// same-seed run) is identical to the legacy `build_*` functions.
    #[must_use]
    pub fn build(self) -> BuiltScenario {
        let mut built = match self.protocol {
            Protocol::Gcopss(cfg) => {
                let factory = match self.client_factory {
                    Some(f) => f,
                    None => default_gcopss_factory(&cfg, &self.map, self.population, self.catch_up),
                };
                BuiltScenario::Gcopss(assemble_gcopss(
                    cfg,
                    &self.net,
                    &self.map,
                    self.population,
                    &self.trace,
                    self.extra_hosts,
                    factory,
                ))
            }
            Protocol::IpServer(cfg) => BuiltScenario::IpServer(assemble_ip_server(
                cfg,
                &self.net,
                &self.map,
                self.population,
                &self.trace,
            )),
            Protocol::Hybrid(cfg) => BuiltScenario::Hybrid(assemble_hybrid(
                cfg,
                &self.net,
                &self.map,
                self.population,
                &self.trace,
            )),
            Protocol::NdnBaseline(cfg) => BuiltScenario::NdnBaseline(assemble_ndn_baseline(
                cfg,
                &self.net,
                &self.map,
                self.population,
                &self.trace,
            )),
        };
        if let Some(plan) = self.fault_plan {
            built.sim_mut().install_faults(plan);
        }
        built
    }
}

/// The result of [`ScenarioSpec::build`]: one fully-assembled simulation,
/// tagged by protocol.
pub enum BuiltScenario {
    /// A G-COPSS simulation.
    Gcopss(GcopssSim),
    /// An IP client/server simulation.
    IpServer(IpSim),
    /// A hybrid-G-COPSS simulation.
    Hybrid(HybridSim),
    /// An NDN-baseline simulation.
    NdnBaseline(NdnSim),
}

impl BuiltScenario {
    /// The simulator, whichever protocol was built.
    pub fn sim_mut(&mut self) -> &mut Simulator<GPacket, GameWorld> {
        match self {
            Self::Gcopss(s) => &mut s.sim,
            Self::IpServer(s) => &mut s.sim,
            Self::Hybrid(s) => &mut s.sim,
            Self::NdnBaseline(s) => &mut s.sim,
        }
    }

    /// Unwraps a G-COPSS build.
    ///
    /// # Panics
    ///
    /// Panics if the spec selected a different protocol.
    #[must_use]
    pub fn into_gcopss(self) -> GcopssSim {
        match self {
            Self::Gcopss(s) => s,
            _ => panic!("scenario was not built with Protocol::Gcopss"),
        }
    }

    /// Unwraps an IP-server build.
    ///
    /// # Panics
    ///
    /// Panics if the spec selected a different protocol.
    #[must_use]
    pub fn into_ip_server(self) -> IpSim {
        match self {
            Self::IpServer(s) => s,
            _ => panic!("scenario was not built with Protocol::IpServer"),
        }
    }

    /// Unwraps a hybrid build.
    ///
    /// # Panics
    ///
    /// Panics if the spec selected a different protocol.
    #[must_use]
    pub fn into_hybrid(self) -> HybridSim {
        match self {
            Self::Hybrid(s) => s,
            _ => panic!("scenario was not built with Protocol::Hybrid"),
        }
    }

    /// Unwraps an NDN-baseline build.
    ///
    /// # Panics
    ///
    /// Panics if the spec selected a different protocol.
    #[must_use]
    pub fn into_ndn_baseline(self) -> NdnSim {
        match self {
            Self::NdnBaseline(s) => s,
            _ => panic!("scenario was not built with Protocol::NdnBaseline"),
        }
    }
}

/// The stock G-COPSS player behavior: a [`GamePlayerClient`] with the
/// config's recovery settings and the spec's catch-up settings.
fn default_gcopss_factory<'a>(
    cfg: &GcopssConfig,
    map: &Arc<GameMap>,
    population: &'a PlayerPopulation,
    catch_up: Option<CatchUpConfig>,
) -> ClientFactory<'a> {
    let map_arc = Arc::clone(map);
    let recovery = cfg.recovery.clone();
    let rate_adapt = cfg.rate_adapt.clone();
    Box::new(move |p, edge, cursor| {
        let mut client =
            GamePlayerClient::new(p, edge, population.area_of(p), Arc::clone(&map_arc), cursor);
        if let Some(rc) = &recovery {
            client = client.with_recovery(rc.clone());
        }
        if let Some(ra) = &rate_adapt {
            client = client.with_rate_adapt(ra.clone());
        }
        if let Some(cu) = &catch_up {
            client = client.with_catch_up(cu.clone());
        }
        Box::new(client)
    })
}

fn assemble_gcopss(
    cfg: GcopssConfig,
    net: &NetworkSpec,
    map: &Arc<GameMap>,
    population: &PlayerPopulation,
    trace: &Arc<Vec<TraceEvent>>,
    extra_hosts: Vec<ExtraHost>,
    mut client_factory: ClientFactory<'_>,
) -> GcopssSim {
    let _ = map;
    let mut bn = net.build();
    let player_nodes = attach_hosts(
        &mut bn.topology,
        &bn.attach_points,
        population.len(),
        SimDuration::from_millis(1),
        "player",
    );
    let mut extra_nodes = Vec::new();
    let mut extra_makes = Vec::new();
    for h in extra_hosts {
        let node = bn
            .topology
            .add_node_kind(format!("extra{}", extra_nodes.len()), gcopss_sim::NodeKind::Host);
        bn.topology
            .try_add_link(node, h.attach_to, SimDuration::from_millis(1), None)
            .expect("extra host attaches to a known router");
        extra_nodes.push(node);
        extra_makes.push((node, h.attach_to, h.routes, h.make));
    }
    let routing = RoutingTable::shortest_paths(&bn.topology);

    // Initial RP assignment.
    let groups = rp_prefix_partition(map, cfg.rp_count);
    let mut rp_table = RpTable::new();
    let mut rp_nodes = BTreeMap::new();
    for (i, group) in groups.iter().enumerate() {
        let rp = RpId(i as u32);
        for prefix in group {
            rp_table
                .assign(prefix.clone(), rp)
                .expect("partition is prefix-free");
        }
        rp_nodes.insert(rp, bn.rp_pool[i % bn.rp_pool.len()]);
    }
    for prefix in &cfg.extra_rp_prefixes {
        rp_table
            .assign(prefix.clone(), RpId(0))
            .expect("extra prefixes must not overlap the map namespace");
    }
    for (prefixes, node) in &cfg.extra_rps {
        let rp = RpId(rp_nodes.len() as u32);
        for prefix in prefixes {
            rp_table
                .assign(prefix.clone(), rp)
                .expect("extra RP prefixes must be disjoint");
        }
        rp_nodes.insert(rp, *node);
    }

    let mut world = GameWorld::new(cfg.metrics_mode);
    if cfg.delivery_log {
        world = world.with_delivery_log();
    }
    world.next_rp_id = cfg.rp_count as u32;
    for (rp, node) in &rp_nodes {
        world.rp_locations.insert(rp.0, node.0);
    }

    let mut sim = Simulator::with_routing(bn.topology, routing, world);
    sim.set_packet_kinds(GPacket::kind);
    sim.set_lineage_ids(GPacket::lineage_id);
    sim.set_priorities(GPacket::priority);
    sim.set_supersede_keys(GPacket::supersede_key);
    if let Some(ov) = cfg.overload.clone() {
        sim.install_overload(ov);
    }
    sim.install_streams(cfg.stream.clone());

    // Routers.
    for &r in &bn.routers {
        let faces = FaceMap::new(sim.topology(), r);
        let mut copss = CopssEngine::new();
        for (prefix, rp) in rp_table.assignments() {
            copss
                .rp_table_mut()
                .assign(prefix, rp)
                .expect("prefix-free");
        }
        let mut local_rps = std::collections::BTreeSet::new();
        let mut fib_routes: Vec<(Name, FaceId)> = Vec::new();
        for (&rp, &node) in &rp_nodes {
            if node == r {
                local_rps.insert(rp);
            } else if let Some(hop) = sim.routing().next_hop(r, node) {
                if let Some(face) = faces.face_of(hop) {
                    fib_routes.push((rp.ndn_prefix(), face));
                }
            }
        }
        for (node, _, routes, _) in &extra_makes {
            if let Some(hop) = sim.routing().next_hop(r, *node) {
                if let Some(face) = faces.face_of(hop) {
                    for prefix in routes {
                        fib_routes.push((prefix.clone(), face));
                    }
                }
            }
        }
        let split = SplitConfig {
            candidates: bn.rp_pool.clone(),
            strategy: cfg.rp_selection,
            grace: cfg.split_grace,
        };
        let mut router =
            GCopssRouter::new(cfg.params.clone(), faces, copss, fib_routes, local_rps, split);
        if let Some(rc) = &cfg.recovery {
            router = router.with_recovery(rc.clone());
        }
        sim.set_behavior(r, Box::new(router));
    }

    // Players.
    for p in population.players() {
        let node = player_nodes[p.index()];
        let (edge, _) = sim
            .topology()
            .neighbors(node)
            .next()
            .expect("player attached");
        let cursor = TraceCursor::for_player(Arc::clone(trace), p, cfg.warmup);
        sim.set_behavior(node, client_factory(p, edge, cursor));
    }

    // Extra hosts.
    for (node, edge, _, make) in extra_makes {
        let behavior = make(node, edge);
        sim.set_behavior(node, behavior);
    }

    GcopssSim {
        sim,
        player_nodes,
        rp_nodes,
        extra_nodes,
        warmup: cfg.warmup,
    }
}

/// Configuration of an IP client/server baseline simulation.
#[derive(Debug, Clone)]
pub struct IpConfig {
    /// Calibration constants.
    pub params: SimParams,
    /// Latency-metrics retention.
    pub metrics_mode: MetricsMode,
    /// Exact delivery log (small runs only).
    pub delivery_log: bool,
    /// Number of game servers.
    pub server_count: usize,
    /// Time before the first trace event.
    pub warmup: SimDuration,
    /// Failure-recovery tunables: `Some` enables the session model
    /// (client `Hello`s, server connection table, reconnect watchdogs).
    pub recovery: Option<RecoveryConfig>,
    /// Engine overload control; `None` (or a vacuous config) is
    /// byte-identical to pre-overload builds.
    pub overload: Option<OverloadConfig>,
    /// Client-side congestion-feedback rate adaptation (see
    /// [`GcopssConfig::rate_adapt`]).
    pub rate_adapt: Option<RateAdaptConfig>,
}

impl Default for IpConfig {
    fn default() -> Self {
        Self {
            params: SimParams::default(),
            metrics_mode: MetricsMode::StatsOnly,
            delivery_log: false,
            server_count: 3,
            warmup: SimDuration::from_secs(2),
            recovery: None,
            overload: None,
            rate_adapt: None,
        }
    }
}

/// A fully-assembled IP-server baseline simulation.
pub struct IpSim {
    /// The simulator, ready to run.
    pub sim: Simulator<GPacket, GameWorld>,
    /// Host node of each player.
    pub player_nodes: Vec<NodeId>,
    /// The server nodes.
    pub server_nodes: Vec<NodeId>,
}

fn assemble_ip_server(
    cfg: IpConfig,
    net: &NetworkSpec,
    map: &Arc<GameMap>,
    population: &PlayerPopulation,
    trace: &Arc<Vec<TraceEvent>>,
) -> IpSim {
    let mut bn = net.build();
    let player_nodes = attach_hosts(
        &mut bn.topology,
        &bn.attach_points,
        population.len(),
        SimDuration::from_millis(1),
        "player",
    );
    // Servers attach to the RP pool positions (R1 on the testbed).
    let mut server_nodes = Vec::new();
    for i in 0..cfg.server_count {
        let at = bn.rp_pool[i % bn.rp_pool.len()];
        let node = bn
            .topology
            .add_node_kind(format!("server{i}"), gcopss_sim::NodeKind::Host);
        bn.topology
            .try_add_link(node, at, SimDuration::from_millis(1), None)
            .expect("server attaches to a known router");
        server_nodes.push(node);
    }
    let routing = RoutingTable::shortest_paths(&bn.topology);

    let mut world = GameWorld::new(cfg.metrics_mode);
    if cfg.delivery_log {
        world = world.with_delivery_log();
    }
    let mut sim = Simulator::with_routing(bn.topology, routing, world);
    sim.set_packet_kinds(GPacket::kind);
    sim.set_lineage_ids(GPacket::lineage_id);
    sim.set_priorities(GPacket::priority);
    sim.set_supersede_keys(GPacket::supersede_key);
    if let Some(ov) = cfg.overload.clone() {
        sim.install_overload(ov);
    }

    // Plain IP routers (a G-COPSS router with no RPs forwards IP packets).
    for &r in &bn.routers {
        let faces = FaceMap::new(sim.topology(), r);
        let mut router = GCopssRouter::new(
            cfg.params.clone(),
            faces,
            CopssEngine::new(),
            Vec::new(),
            std::collections::BTreeSet::new(),
            SplitConfig::default(),
        );
        if let Some(rc) = &cfg.recovery {
            router = router.with_recovery(rc.clone());
        }
        sim.set_behavior(r, Box::new(router));
    }

    let areas: Vec<_> = population.players().map(|p| population.area_of(p)).collect();
    let roster = Arc::new(Roster::new(map, player_nodes.clone(), areas));
    for &s in &server_nodes {
        let mut server = IpServer::new(cfg.params.clone(), Arc::clone(&roster));
        if let Some(rc) = &cfg.recovery {
            server = server.with_recovery(rc.clone());
        }
        sim.set_behavior(s, Box::new(server));
    }

    let server_of = Arc::new(partition_cds_to_servers(map, &server_nodes));
    for p in population.players() {
        let node = player_nodes[p.index()];
        let (edge, _) = sim
            .topology()
            .neighbors(node)
            .next()
            .expect("player attached");
        let cursor = TraceCursor::for_player(Arc::clone(trace), p, cfg.warmup);
        let mut client = IpClient::new(p, edge, Arc::clone(&server_of), cursor);
        if let Some(rc) = &cfg.recovery {
            client = client.with_recovery(rc.clone());
        }
        if let Some(ra) = &cfg.rate_adapt {
            client = client.with_rate_adapt(ra.clone());
        }
        sim.set_behavior(node, Box::new(client));
    }

    IpSim {
        sim,
        player_nodes,
        server_nodes,
    }
}

/// Configuration of a hybrid-G-COPSS simulation (§III-D).
#[derive(Debug, Clone)]
pub struct HybridConfig {
    /// Calibration constants.
    pub params: SimParams,
    /// Latency-metrics retention.
    pub metrics_mode: MetricsMode,
    /// Exact delivery log (small runs only).
    pub delivery_log: bool,
    /// Available IP multicast groups (Table II uses 6).
    pub group_count: u32,
    /// Time before the first trace event.
    pub warmup: SimDuration,
    /// Engine overload control; `None` (or a vacuous config) is
    /// byte-identical to pre-overload builds.
    pub overload: Option<OverloadConfig>,
    /// Client-side congestion-feedback rate adaptation (see
    /// [`GcopssConfig::rate_adapt`]).
    pub rate_adapt: Option<RateAdaptConfig>,
}

impl Default for HybridConfig {
    fn default() -> Self {
        Self {
            params: SimParams::default(),
            metrics_mode: MetricsMode::StatsOnly,
            delivery_log: false,
            group_count: 6,
            warmup: SimDuration::from_secs(2),
            overload: None,
            rate_adapt: None,
        }
    }
}

/// A fully-assembled hybrid-G-COPSS simulation.
pub struct HybridSim {
    /// The simulator, ready to run.
    pub sim: Simulator<GPacket, GameWorld>,
    /// Host node of each player.
    pub player_nodes: Vec<NodeId>,
}

fn assemble_hybrid(
    cfg: HybridConfig,
    net: &NetworkSpec,
    map: &Arc<GameMap>,
    population: &PlayerPopulation,
    trace: &Arc<Vec<TraceEvent>>,
) -> HybridSim {
    let mut bn = net.build();
    let player_nodes = attach_hosts(
        &mut bn.topology,
        &bn.attach_points,
        population.len(),
        SimDuration::from_millis(1),
        "player",
    );
    let routing = RoutingTable::shortest_paths(&bn.topology);
    let mut world = GameWorld::new(cfg.metrics_mode);
    if cfg.delivery_log {
        world = world.with_delivery_log();
    }
    let mut sim = Simulator::with_routing(bn.topology, routing, world);
    sim.set_packet_kinds(GPacket::kind);
    sim.set_lineage_ids(GPacket::lineage_id);
    sim.set_priorities(GPacket::priority);
    sim.set_supersede_keys(GPacket::supersede_key);
    if let Some(ov) = cfg.overload.clone() {
        sim.install_overload(ov);
    }

    for &r in &bn.routers {
        let faces = FaceMap::new(sim.topology(), r);
        if bn.attach_points.contains(&r) {
            sim.set_behavior(
                r,
                Box::new(HybridEdgeRouter::new(cfg.params.clone(), faces, cfg.group_count)),
            );
        } else {
            sim.set_behavior(
                r,
                Box::new(GCopssRouter::new(
                    cfg.params.clone(),
                    faces,
                    CopssEngine::new(),
                    Vec::new(),
                    std::collections::BTreeSet::new(),
                    SplitConfig::default(),
                )),
            );
        }
    }

    for p in population.players() {
        let node = player_nodes[p.index()];
        let (edge, _) = sim
            .topology()
            .neighbors(node)
            .next()
            .expect("player attached");
        let cursor = TraceCursor::for_player(Arc::clone(trace), p, cfg.warmup);
        let mut client =
            GamePlayerClient::new(p, edge, population.area_of(p), Arc::clone(map), cursor);
        if let Some(ra) = &cfg.rate_adapt {
            client = client.with_rate_adapt(ra.clone());
        }
        sim.set_behavior(node, Box::new(client));
    }

    HybridSim { sim, player_nodes }
}

/// Configuration of the NDN (VoCCN-style) baseline simulation.
#[derive(Debug, Clone)]
pub struct NdnBaselineConfig {
    /// Calibration constants.
    pub params: SimParams,
    /// Latency-metrics retention.
    pub metrics_mode: MetricsMode,
    /// Exact delivery log (small runs only).
    pub delivery_log: bool,
    /// Client pipelining/accumulation settings.
    pub client: NdnClientConfig,
    /// Time before the first trace event.
    pub warmup: SimDuration,
    /// Failure-recovery tunables: `Some` enables the router PIT sweep and
    /// forces `client.retry_forever` so lost Interests are always
    /// re-expressed eventually.
    pub recovery: Option<RecoveryConfig>,
    /// Engine overload control; `None` (or a vacuous config) is
    /// byte-identical to pre-overload builds. The NDN baseline has no
    /// client-side rate adaptation: its consumers pull (Interests pace the
    /// producers already), so only the router queues are overload-managed.
    pub overload: Option<OverloadConfig>,
}

impl Default for NdnBaselineConfig {
    fn default() -> Self {
        Self {
            params: SimParams::default(),
            metrics_mode: MetricsMode::StatsOnly,
            delivery_log: false,
            client: NdnClientConfig::default(),
            warmup: SimDuration::from_secs(2),
            recovery: None,
            overload: None,
        }
    }
}

/// A fully-assembled NDN-baseline simulation.
pub struct NdnSim {
    /// The simulator. Because consumers poll forever, run it with
    /// [`Simulator::run_until`] up to a horizon rather than to quiescence.
    pub sim: Simulator<GPacket, GameWorld>,
    /// Host node of each player.
    pub player_nodes: Vec<NodeId>,
}

fn assemble_ndn_baseline(
    cfg: NdnBaselineConfig,
    net: &NetworkSpec,
    map: &Arc<GameMap>,
    population: &PlayerPopulation,
    trace: &Arc<Vec<TraceEvent>>,
) -> NdnSim {
    let mut bn = net.build();
    let player_nodes = attach_hosts(
        &mut bn.topology,
        &bn.attach_points,
        population.len(),
        SimDuration::from_millis(1),
        "player",
    );
    let routing = RoutingTable::shortest_paths(&bn.topology);
    let mut world = GameWorld::new(cfg.metrics_mode);
    if cfg.delivery_log {
        world = world.with_delivery_log();
    }
    let mut sim = Simulator::with_routing(bn.topology, routing, world);
    sim.set_packet_kinds(GPacket::kind);
    sim.set_lineage_ids(GPacket::lineage_id);
    sim.set_priorities(GPacket::priority);
    sim.set_supersede_keys(GPacket::supersede_key);
    if let Some(ov) = cfg.overload.clone() {
        sim.install_overload(ov);
    }

    // NDN routers with /player/<id> routes toward every player host.
    for &r in &bn.routers {
        let faces = FaceMap::new(sim.topology(), r);
        let mut fib_routes: Vec<(Name, FaceId)> = Vec::new();
        for p in population.players() {
            let node = player_nodes[p.index()];
            if let Some(hop) = sim.routing().next_hop(r, node) {
                if let Some(face) = faces.face_of(hop) {
                    fib_routes.push((player_prefix(p), face));
                }
            }
        }
        let mut router = GCopssRouter::new(
            cfg.params.clone(),
            faces,
            CopssEngine::new(),
            fib_routes,
            std::collections::BTreeSet::new(),
            SplitConfig::default(),
        );
        if let Some(rc) = &cfg.recovery {
            router = router.with_recovery(rc.clone());
        }
        sim.set_behavior(r, Box::new(router));
    }

    let mut client_cfg = cfg.client.clone();
    if cfg.recovery.is_some() {
        client_cfg.retry_forever = true;
    }
    let areas: Vec<_> = population.players().map(|p| population.area_of(p)).collect();
    let rosters = NdnPlayerClient::rosters(map, &areas);
    for p in population.players() {
        let node = player_nodes[p.index()];
        let (edge, _) = sim
            .topology()
            .neighbors(node)
            .next()
            .expect("player attached");
        let cursor = TraceCursor::for_player(Arc::clone(trace), p, cfg.warmup);
        sim.set_behavior(
            node,
            Box::new(NdnPlayerClient::new(
                p,
                edge,
                client_cfg.clone(),
                cursor,
                rosters[p.index()].clone(),
            )),
        );
    }

    NdnSim { sim, player_nodes }
}

/// The number of deliveries a correct dissemination must produce for
/// `trace` with static player placements: for every event, every player
/// that can see the event's area, minus the publisher.
#[must_use]
pub fn expected_deliveries(
    map: &GameMap,
    population: &PlayerPopulation,
    trace: &[TraceEvent],
) -> u64 {
    let mut viewers: BTreeMap<&Name, u64> = BTreeMap::new();
    for cd in map.leaf_cds() {
        let area = map.area_of_leaf_cd(cd).expect("leaf CD");
        let count = population
            .players()
            .filter(|p| map.can_see(population.area_of(*p), area))
            .count() as u64;
        viewers.insert(cd, count);
    }
    trace
        .iter()
        .map(|e| viewers.get(&e.cd).copied().unwrap_or(0).saturating_sub(1))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcopss_game::PlayerId;

    #[test]
    fn rp_partition_shapes() {
        let map = GameMap::paper_map();
        assert_eq!(rp_prefix_partition(&map, 1), vec![vec![Name::root()]]);
        let g3 = rp_prefix_partition(&map, 3);
        assert_eq!(g3.len(), 3);
        let all: Vec<Name> = g3.iter().flatten().cloned().collect();
        assert_eq!(all.len(), 6); // /0, /1..5
        let g6 = rp_prefix_partition(&map, 6);
        assert!(g6.iter().all(|g| g.len() == 1));
    }

    #[test]
    #[should_panic(expected = "cannot spread")]
    fn rp_partition_rejects_too_many() {
        let map = GameMap::paper_map();
        let _ = rp_prefix_partition(&map, 7);
    }

    #[test]
    fn spec_builds_every_protocol() {
        let map = Arc::new(GameMap::paper_map());
        let pop = PlayerPopulation::uniform_per_area(&map, 1);
        let trace: Arc<Vec<TraceEvent>> = Arc::new(Vec::new());
        let net = NetworkSpec::Testbed;

        let g = ScenarioSpec::new(&net, &map, &pop, &trace).build().into_gcopss();
        assert_eq!(g.player_nodes.len(), pop.len());
        let ip = ScenarioSpec::new(&net, &map, &pop, &trace)
            .ip_server(IpConfig::default())
            .build()
            .into_ip_server();
        assert_eq!(ip.server_nodes.len(), IpConfig::default().server_count);
        let hy = ScenarioSpec::new(&net, &map, &pop, &trace)
            .hybrid(HybridConfig::default())
            .build()
            .into_hybrid();
        assert_eq!(hy.player_nodes.len(), pop.len());
        let ndn = ScenarioSpec::new(&net, &map, &pop, &trace)
            .ndn_baseline(NdnBaselineConfig::default())
            .build()
            .into_ndn_baseline();
        assert_eq!(ndn.player_nodes.len(), pop.len());
    }

    #[test]
    #[should_panic(expected = "not built with Protocol::Gcopss")]
    fn built_scenario_unwrap_checks_protocol() {
        let map = Arc::new(GameMap::paper_map());
        let pop = PlayerPopulation::uniform_per_area(&map, 1);
        let trace: Arc<Vec<TraceEvent>> = Arc::new(Vec::new());
        let _ = ScenarioSpec::new(&NetworkSpec::Testbed, &map, &pop, &trace)
            .ip_server(IpConfig::default())
            .build()
            .into_gcopss();
    }

    #[test]
    fn expected_deliveries_counts_visibility() {
        use gcopss_game::trace::TraceEvent;
        let map = GameMap::paper_map();
        let pop = PlayerPopulation::uniform_per_area(&map, 2);
        // One event to zone /1/2: 6 viewers - publisher = 5.
        let trace = vec![TraceEvent {
            time_ns: 0,
            player: PlayerId(0),
            cd: Name::parse_lit("/1/2"),
            object: gcopss_game::ObjectId(0),
            size: 100,
        }];
        assert_eq!(expected_deliveries(&map, &pop, &trace), 5);
        // World layer: 62 viewers - publisher = 61.
        let trace = vec![TraceEvent {
            time_ns: 0,
            player: PlayerId(0),
            cd: Name::parse_lit("/0"),
            object: gcopss_game::ObjectId(0),
            size: 100,
        }];
        assert_eq!(expected_deliveries(&map, &pop, &trace), 61);
    }
}
