//! Shared world state: the metrics every behavior reports into.

use std::collections::{BTreeMap, HashSet};

use gcopss_game::{MoveType, PlayerId};
use gcopss_names::Name;
use gcopss_sim::metrics::{LatencySamples, OnlineStats};
use gcopss_sim::{LogHistogram, SimDuration, SimTime};

/// How much per-delivery detail to keep. Large traces (1.7M publications ×
/// tens of receivers) cannot afford full sample retention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricsMode {
    /// Keep every delivery latency sample (CDFs — Fig. 4).
    Full,
    /// Keep per-publication min/mean/max (timelines — Fig. 5).
    PerPublication,
    /// Keep only aggregate statistics (Tables I/II, Fig. 6).
    #[default]
    StatsOnly,
}

/// Per-publication latency aggregate.
#[derive(Debug, Clone, Copy)]
struct PubAgg {
    min: SimDuration,
    max: SimDuration,
    sum: SimDuration,
    count: u32,
}

/// End-to-end update-latency accounting.
///
/// Publication ids are sequential (the global trace-event index), so send
/// times live in a dense `Vec`. Deliveries to the publisher itself are
/// ignored (a player is subscribed to its own area and receives its own
/// multicasts back).
#[derive(Debug, Default)]
pub struct UpdateMetrics {
    mode: MetricsMode,
    sent: Vec<Option<(SimTime, PlayerId)>>,
    published: u64,
    stats: OnlineStats,
    /// Log-scale latency histogram, kept in every mode: O(1) memory, so
    /// even [`MetricsMode::StatsOnly`] runs over millions of deliveries get
    /// approximate p50/p95/p99.
    hist: LogHistogram,
    samples: LatencySamples,
    per_pub: BTreeMap<u64, PubAgg>,
    delivered: u64,
    self_deliveries: u64,
}

impl UpdateMetrics {
    /// Creates metrics with the given retention mode.
    #[must_use]
    pub fn new(mode: MetricsMode) -> Self {
        Self {
            mode,
            ..Default::default()
        }
    }

    /// Registers publication `id` sent by `publisher` at `at`. Ids are
    /// dense (global trace-event indexes); gaps are tolerated.
    pub fn publish(&mut self, id: u64, publisher: PlayerId, at: SimTime) {
        let idx = id as usize;
        if idx >= self.sent.len() {
            self.sent.resize(idx + 1, None);
        }
        self.sent[idx] = Some((at, publisher));
        self.published += 1;
    }

    /// Records a delivery of `id` to `receiver` at `at`.
    pub fn deliver(&mut self, id: u64, receiver: PlayerId, at: SimTime) {
        let Some(&Some((t0, publisher))) = self.sent.get(id as usize) else {
            return;
        };
        if receiver == publisher {
            self.self_deliveries += 1;
            return;
        }
        let lat = at.saturating_duration_since(t0);
        self.delivered += 1;
        self.stats.record(lat);
        self.hist.record_duration(lat);
        match self.mode {
            MetricsMode::Full => self.samples.record(lat),
            MetricsMode::PerPublication => {
                let e = self.per_pub.entry(id).or_insert(PubAgg {
                    min: lat,
                    max: lat,
                    sum: SimDuration::ZERO,
                    count: 0,
                });
                e.min = e.min.min(lat);
                e.max = e.max.max(lat);
                e.sum += lat;
                e.count += 1;
            }
            MetricsMode::StatsOnly => {}
        }
    }

    /// Number of publications registered.
    #[must_use]
    pub fn published(&self) -> u64 {
        self.published
    }

    /// Number of non-self deliveries recorded.
    #[must_use]
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Deliveries back to the publisher (suppressed from latency stats).
    #[must_use]
    pub fn self_deliveries(&self) -> u64 {
        self.self_deliveries
    }

    /// Aggregate latency statistics.
    #[must_use]
    pub fn stats(&self) -> &OnlineStats {
        &self.stats
    }

    /// The log-scale latency histogram (kept in every retention mode).
    /// Quantiles are bucket upper bounds, in nanoseconds — within 2× of the
    /// exact value by construction.
    #[must_use]
    pub fn latency_hist(&self) -> &LogHistogram {
        &self.hist
    }

    /// All delivery samples ([`MetricsMode::Full`] only; empty otherwise).
    pub fn samples_mut(&mut self) -> &mut LatencySamples {
        &mut self.samples
    }

    /// Per-publication `(id, min, mean, max)` rows in id order
    /// ([`MetricsMode::PerPublication`] only).
    #[must_use]
    pub fn per_publication_rows(&self) -> Vec<(u64, SimDuration, SimDuration, SimDuration)> {
        self.per_pub
            .iter()
            .map(|(&id, a)| (id, a.min, a.sum / u64::from(a.count.max(1)), a.max))
            .collect()
    }

    /// The send time of a publication, if registered.
    #[must_use]
    pub fn sent_at(&self, id: u64) -> Option<SimTime> {
        self.sent.get(id as usize).copied().flatten().map(|(t, _)| t)
    }

    /// The publisher of a publication, if registered.
    #[must_use]
    pub fn publisher_of(&self, id: u64) -> Option<PlayerId> {
        self.sent.get(id as usize).copied().flatten().map(|(_, p)| p)
    }
}

/// A recorded automatic RP split (§IV-B), for Fig. 5c.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitRecord {
    /// When the split fired.
    pub at: SimTime,
    /// The overloaded RP.
    pub from_rp: u32,
    /// The newly created RP.
    pub to_rp: u32,
    /// The CD prefixes that moved.
    pub moved: Vec<Name>,
}

/// One completed snapshot convergence after a player movement (Table III)
/// or an offline player coming online (§IV-A).
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceRecord {
    /// The moving/joining player.
    pub player: PlayerId,
    /// Movement classification (for an online join: the type whose
    /// snapshot requirement matches the join area's full view).
    pub move_type: MoveType,
    /// Leaf CDs downloaded.
    pub leaf_cds: usize,
    /// Time from arrival in the new area to the last snapshot byte.
    pub convergence: SimDuration,
    /// Snapshot bytes received.
    pub bytes: u64,
    /// `true` when this records an offline player coming online rather
    /// than an in-game move.
    pub online_join: bool,
}

/// How a catching-up client refreshes its world view after (re)joining.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CatchUpMode {
    /// Naive baseline: re-fetch every object snapshot via `/snapshot` QR.
    FullSnapshot,
    /// Content-addressed delta: fetch manifests, diff against the chunk
    /// store, fetch only missing `/chunk`s.
    ChunkedDelta,
}

/// One completed client catch-up (initial prewarm or post-fault recovery).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatchUpRecord {
    /// The catching-up player.
    pub player: PlayerId,
    /// Retrieval strategy used.
    pub mode: CatchUpMode,
    /// `false` for the initial (prewarm) catch-up at game start, `true`
    /// for a watchdog/fault-triggered recovery catch-up.
    pub recovery: bool,
    /// Time from trigger to the last byte.
    pub latency: SimDuration,
    /// Total catch-up payload bytes received (manifests + chunks/objects).
    pub bytes: u64,
    /// Chunks fetched over the network (`ChunkedDelta` only).
    pub chunks_fetched: u64,
    /// Manifest chunks already held locally — the dedup win
    /// (`ChunkedDelta` only).
    pub chunks_held: u64,
    /// Leaf CDs covered.
    pub cds: usize,
}

/// Exactly-once accounting of the catch-up path: every owed item — a
/// (manifest | chunk | snapshot-object, subscriber) pair — is registered
/// when its Interest is issued and marked off when its Data is consumed.
///
/// This is an *application-level* ledger (the network-level lineage auditor
/// cannot follow catch-up content: a Content-Store hit serves Data with no
/// causal link to the broker's original send). An item re-requested in a
/// later catch-up simply raises its owed count; the books are clean when
/// every entry has `delivered == owed` and nothing was over-delivered.
#[derive(Debug, Default)]
pub struct CatchUpLedger {
    /// (item key, player) → (owed, delivered). Item keys are chunk ids or
    /// FNV hashes of the fetched name.
    entries: BTreeMap<(u64, u32), (u64, u64)>,
    over_delivered: u64,
}

/// Summary of a [`CatchUpLedger`] at audit time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatchUpAudit {
    /// Total items owed (Interests issued).
    pub owed: u64,
    /// Total items delivered and consumed.
    pub delivered: u64,
    /// Items still owed at audit time.
    pub outstanding: u64,
    /// Deliveries beyond an item's owed count (accounting violations).
    pub over_delivered: u64,
    /// Distinct (item, player) pairs tracked.
    pub entries: u64,
}

impl CatchUpAudit {
    /// `true` when every owed item was delivered exactly once per owe.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.outstanding == 0 && self.over_delivered == 0
    }
}

impl CatchUpLedger {
    /// Registers one owed delivery of `item` to `player`.
    pub fn owe(&mut self, item: u64, player: u32) {
        self.entries.entry((item, player)).or_insert((0, 0)).0 += 1;
    }

    /// Marks one delivery of `item` to `player` consumed. Deliveries beyond
    /// the owed count are flagged, never double-credited.
    pub fn deliver(&mut self, item: u64, player: u32) {
        let e = self.entries.entry((item, player)).or_insert((0, 0));
        if e.1 < e.0 {
            e.1 += 1;
        } else {
            self.over_delivered += 1;
        }
    }

    /// Audits the books.
    #[must_use]
    pub fn audit(&self) -> CatchUpAudit {
        let (mut owed, mut delivered) = (0u64, 0u64);
        for &(o, d) in self.entries.values() {
            owed += o;
            delivered += d;
        }
        CatchUpAudit {
            owed,
            delivered,
            outstanding: owed - delivered,
            over_delivered: self.over_delivered,
            entries: self.entries.len() as u64,
        }
    }

    /// Deterministic FNV-1a fingerprint over the full entry table, for
    /// same-seed reproducibility checks.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut bytes = Vec::with_capacity(self.entries.len() * 28);
        for (&(item, player), &(o, d)) in &self.entries {
            bytes.extend_from_slice(&item.to_le_bytes());
            bytes.extend_from_slice(&player.to_le_bytes());
            bytes.extend_from_slice(&o.to_le_bytes());
            bytes.extend_from_slice(&d.to_le_bytes());
        }
        gcopss_names::fnv1a(&bytes)
    }
}

/// The shared world state of every simulation: metrics sinks and global
/// experiment bookkeeping.
#[derive(Debug, Default)]
pub struct GameWorld {
    /// Update latency accounting.
    pub metrics: UpdateMetrics,
    /// Exact-delivery bookkeeping for correctness tests (publication id,
    /// receiver) pairs — enabled only in small runs.
    pub delivery_log: Option<HashSet<(u64, u32)>>,
    /// Duplicate deliveries observed when the delivery log is enabled.
    pub duplicate_deliveries: u64,
    /// Automatic RP splits that occurred.
    pub splits: Vec<SplitRecord>,
    /// Snapshot convergence records (movement experiments).
    pub convergence: Vec<ConvergenceRecord>,
    /// Completed client catch-ups (rejoin experiments).
    pub catchups: Vec<CatchUpRecord>,
    /// Exactly-once catch-up delivery accounting.
    pub catchup_ledger: CatchUpLedger,
    /// Free-form counters (packet kinds, drops, cache hits, …).
    pub counters: BTreeMap<&'static str, u64>,
    /// IP multicast group membership (hybrid-G-COPSS; stands in for IGMP).
    pub mcast_groups: crate::hybrid::McastGroups,
    /// Next RP id to allocate when an automatic split creates a new RP.
    pub next_rp_id: u32,
    /// Where each RP lives (for reporting), RP id → node id.
    pub rp_locations: BTreeMap<u32, u32>,
    /// Append-only journal of RP prefix moves `(prefix, new RP id)` in
    /// announcement order, written by the flood originator of every split
    /// handoff and failover. Stands in for a versioned RP-announcement
    /// protocol: a router that was down or partitioned while a flood went
    /// round replays the journal (last write per prefix wins) when its
    /// connectivity is repaired.
    pub rp_moves: Vec<(gcopss_names::Name, u32)>,
}

impl GameWorld {
    /// Creates a world with the given metrics retention mode.
    #[must_use]
    pub fn new(mode: MetricsMode) -> Self {
        Self {
            metrics: UpdateMetrics::new(mode),
            ..Default::default()
        }
    }

    /// Enables exact per-delivery logging (duplicate detection) — only for
    /// small correctness runs.
    #[must_use]
    pub fn with_delivery_log(mut self) -> Self {
        self.delivery_log = Some(HashSet::new());
        self
    }

    /// Records a delivery, including duplicate detection when the delivery
    /// log is enabled.
    pub fn record_delivery(&mut self, id: u64, receiver: PlayerId, at: SimTime) {
        if let Some(log) = &mut self.delivery_log {
            if !log.insert((id, receiver.0)) {
                self.duplicate_deliveries += 1;
                return; // count each (id, receiver) delivery once
            }
        }
        self.metrics.deliver(id, receiver, at);
    }

    /// Bumps a named counter.
    pub fn bump(&mut self, key: &'static str) {
        *self.counters.entry(key).or_insert(0) += 1;
    }

    /// Adds `n` to a named counter (no-op when `n == 0`, so callers can
    /// pass a purge count without conditionals).
    pub fn bump_by(&mut self, key: &'static str, n: u64) {
        if n > 0 {
            *self.counters.entry(key).or_insert(0) += n;
        }
    }

    /// Reads a named counter.
    #[must_use]
    pub fn counter(&self, key: &'static str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Allocates a fresh RP id (used by automatic RP splitting) and records
    /// its location.
    pub fn allocate_rp_id(&mut self, node: u32) -> u32 {
        let id = self.next_rp_id;
        self.next_rp_id += 1;
        self.rp_locations.insert(id, node);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_deliver_roundtrip() {
        let mut m = UpdateMetrics::new(MetricsMode::Full);
        m.publish(0, PlayerId(1), SimTime::from_millis(10));
        m.deliver(0, PlayerId(2), SimTime::from_millis(14));
        m.deliver(0, PlayerId(1), SimTime::from_millis(14)); // self, ignored
        m.deliver(99, PlayerId(3), SimTime::from_millis(20)); // unknown
        assert_eq!(m.delivered(), 1);
        assert_eq!(m.self_deliveries(), 1);
        assert_eq!(m.stats().mean(), SimDuration::from_millis(4));
        assert_eq!(m.samples_mut().len(), 1);
        assert_eq!(m.publisher_of(0), Some(PlayerId(1)));
        assert_eq!(m.sent_at(0), Some(SimTime::from_millis(10)));
    }

    #[test]
    fn id_gaps_tolerated() {
        let mut m = UpdateMetrics::new(MetricsMode::StatsOnly);
        m.publish(5, PlayerId(0), SimTime::ZERO);
        m.deliver(5, PlayerId(1), SimTime::from_millis(1));
        m.deliver(3, PlayerId(1), SimTime::from_millis(1)); // unknown gap id
        assert_eq!(m.published(), 1);
        assert_eq!(m.delivered(), 1);
    }

    #[test]
    fn per_publication_mode_aggregates() {
        let mut m = UpdateMetrics::new(MetricsMode::PerPublication);
        m.publish(0, PlayerId(0), SimTime::ZERO);
        m.deliver(0, PlayerId(1), SimTime::from_millis(2));
        m.deliver(0, PlayerId(2), SimTime::from_millis(6));
        let rows = m.per_publication_rows();
        assert_eq!(rows.len(), 1);
        let (id, min, mean, max) = rows[0];
        assert_eq!(id, 0);
        assert_eq!(min, SimDuration::from_millis(2));
        assert_eq!(mean, SimDuration::from_millis(4));
        assert_eq!(max, SimDuration::from_millis(6));
        // Full samples not retained in this mode.
        assert_eq!(m.samples_mut().len(), 0);
    }

    #[test]
    fn stats_only_mode_keeps_aggregates() {
        let mut m = UpdateMetrics::new(MetricsMode::StatsOnly);
        m.publish(0, PlayerId(0), SimTime::ZERO);
        for i in 1..=10 {
            m.deliver(0, PlayerId(i), SimTime::from_millis(u64::from(i)));
        }
        assert_eq!(m.delivered(), 10);
        assert_eq!(m.stats().count(), 10);
        assert!(m.per_publication_rows().is_empty());
        // The log-scale histogram is on even in StatsOnly mode.
        assert_eq!(m.latency_hist().count(), 10);
        assert!(m.latency_hist().quantile(0.5) >= 1_000_000);
    }

    #[test]
    fn world_duplicate_detection() {
        let mut w = GameWorld::new(MetricsMode::Full).with_delivery_log();
        w.metrics.publish(0, PlayerId(0), SimTime::ZERO);
        w.record_delivery(0, PlayerId(1), SimTime::from_millis(1));
        w.record_delivery(0, PlayerId(1), SimTime::from_millis(2));
        assert_eq!(w.duplicate_deliveries, 1);
        assert_eq!(w.metrics.delivered(), 1, "duplicate not double counted");
    }

    #[test]
    fn catchup_ledger_accounting() {
        let mut l = CatchUpLedger::default();
        l.owe(10, 1);
        l.owe(11, 1);
        let mid = l.audit();
        assert_eq!(mid.owed, 2);
        assert_eq!(mid.outstanding, 2);
        assert!(!mid.clean());
        l.deliver(10, 1);
        l.deliver(11, 1);
        assert!(l.audit().clean());
        // Re-owing the same item later is fine; the delivery squares it.
        l.owe(10, 1);
        assert!(!l.audit().clean());
        l.deliver(10, 1);
        assert!(l.audit().clean());
        // A delivery past the owed count is flagged, not credited.
        l.deliver(10, 1);
        let a = l.audit();
        assert_eq!(a.over_delivered, 1);
        assert!(!a.clean());
        assert_ne!(l.fingerprint(), CatchUpLedger::default().fingerprint());
    }

    #[test]
    fn counters() {
        let mut w = GameWorld::default();
        w.bump("x");
        w.bump("x");
        assert_eq!(w.counter("x"), 2);
        assert_eq!(w.counter("y"), 0);
    }
}
