//! Chaos soak: random core-link flaps plus the crash (and restart) of an
//! RP-hosting router on a Rocketfuel-like backbone must heal — an RP
//! failover hands the dead RP's prefixes to a survivor, routers repair
//! soft state from fault notices, and every publication sent after the
//! last repair (plus a settle margin) reaches its full AoI fan-out. The
//! whole chaotic run must also be same-seed reproducible.
//!
//! The run doubles as the delivery-audit gate: the lineage tracer rides
//! along and the auditor must account for 100 % of the owed
//! `(publication, subscriber)` pairs with zero duplicates and zero
//! unexplained losses, with byte-identical span/audit/time-series exports
//! across same-seed runs.

use std::collections::BTreeMap;

use gcopss_core::experiments::audit::{damage_window, register_expectations};
use gcopss_core::experiments::{Workload, WorkloadParams};
use gcopss_core::scenario::{GcopssConfig, NetworkSpec, ScenarioSpec};
use gcopss_core::{MetricsMode, RecoveryConfig};
use gcopss_game::PlayerId;
use gcopss_names::Name;
use gcopss_sim::generators::BackboneParams;
use gcopss_sim::{
    AdmissionPolicy, FaultPlan, LineageConfig, OverloadConfig, SimDuration, SimTime,
    TelemetryConfig, TimeSeriesConfig,
};

fn small_backbone() -> NetworkSpec {
    NetworkSpec::Backbone {
        seed: 5,
        params: BackboneParams {
            core_routers: 12,
            ..BackboneParams::default()
        },
    }
}

struct SoakOutcome {
    fingerprint: u64,
    prof_counts_json: String,
    prof_count_fingerprint: u64,
    last_repair: SimTime,
    rp_failovers: u64,
    fault_drops: u64,
    post_expected: u64,
    post_delivered: u64,
    audit: gcopss_sim::AuditReport,
    audit_json: String,
    spans_fingerprint: u64,
    spans_json: String,
    timeseries_json: String,
    overload_active: bool,
    overload_drops: (u64, u64, u64),
}

fn run_soak(seed: u64, overload: Option<OverloadConfig>) -> SoakOutcome {
    // The self-profiler rides along: phase *counts* are part of the
    // determinism contract (wall times are not, and are excluded from the
    // fingerprint and the counts export).
    gcopss_sim::prof::reset();
    gcopss_sim::prof::enable();
    let w = Workload::counter_strike(&WorkloadParams {
        seed,
        players: 48,
        updates: 4_000,
        ..WorkloadParams::default()
    });
    let net = small_backbone();
    let links = net.core_links_preview();
    let cfg = GcopssConfig {
        metrics_mode: MetricsMode::StatsOnly,
        delivery_log: true,
        rp_count: 2,
        recovery: Some(RecoveryConfig::default()),
        overload,
        ..GcopssConfig::default()
    };
    let warmup = cfg.warmup;
    let mut built = ScenarioSpec::new(&net, &w.map, &w.population, &w.trace)
        .gcopss(cfg)
        .build()
        .into_gcopss();

    // Crash the router hosting the highest RP; flap links around it.
    let crash = *built
        .rp_nodes
        .values()
        .next_back()
        .expect("two RPs were placed");
    let span = SimDuration::from_nanos(w.trace.last().expect("trace").time_ns);
    let at = |num: u64, den: u64| {
        SimTime::ZERO + warmup + SimDuration::from_nanos(span.as_nanos() * num / den)
    };
    let plan = FaultPlan::new(0xda05)
        .random_link_flaps(&links, 4, at(2, 10), at(6, 10), SimDuration::from_millis(500))
        .node_down(at(3, 10), crash)
        .node_up(at(5, 10), crash);
    let first_fault = plan
        .schedule()
        .iter()
        .map(|&(t, _)| t)
        .min()
        .expect("plan has events");
    built.sim.enable_telemetry(TelemetryConfig::default());
    built.sim.enable_timeseries(TimeSeriesConfig {
        tick: SimDuration::from_millis(500),
        per_node: vec!["rp-served"],
        ..TimeSeriesConfig::default()
    });
    built.sim.enable_lineage(LineageConfig::default());
    register_expectations(&mut built.sim, &w, warmup);
    built.sim.install_faults(plan);
    let horizon = SimTime::ZERO + warmup + span + SimDuration::from_secs(10);
    built.sim.run_until(horizon);

    let fingerprint = built.sim.telemetry_report("soak", 0).fingerprint;
    let prof = gcopss_sim::prof::take_report();
    gcopss_sim::prof::disable();
    let prof_counts_json = prof.counts_json().to_string();
    let prof_count_fingerprint = prof.count_fingerprint();
    assert!(
        prof.coverage() >= 0.9,
        "phase self-times cover only {:.1}% of the measured wall",
        prof.coverage() * 100.0
    );
    assert!(prof.counter("engine/events") > 0, "no events counted");
    let last_repair = built.sim.last_repair_time().expect("repairs were scheduled");
    let settle = SimDuration::from_secs(2);
    let audit = built.sim.lineage().audit(
        horizon,
        damage_window(Some(first_fault), Some(last_repair), settle),
    );
    let audit_json = audit.to_json().to_string();
    let spans_fingerprint = built.sim.lineage().fingerprint();
    let spans_json = built.sim.lineage().spans_json().to_string();
    let timeseries_json = built
        .sim
        .timeseries_json()
        .expect("sampler was armed")
        .to_string();
    let (link_lost, node_lost) = built.sim.fault_drops();
    let overload_active = built.sim.overload_active();
    let overload_drops = built.sim.overload_drops();
    let world = built.sim.into_world();

    // Expected fan-out per leaf CD under the AoI model.
    let mut viewers: BTreeMap<&Name, u64> = BTreeMap::new();
    for cd in w.map.leaf_cds() {
        let area = w.map.area_of_leaf_cd(cd).expect("leaf CD");
        let count = w
            .population
            .players()
            .filter(|p| w.map.can_see(w.population.area_of(*p), area))
            .count() as u64;
        viewers.insert(cd, count);
    }
    let log = world.delivery_log.as_ref().expect("delivery log enabled");
    let mut per_id = vec![0u64; w.trace.len()];
    for &(id, receiver) in log {
        if world.metrics.publisher_of(id) == Some(PlayerId(receiver)) {
            continue;
        }
        per_id[id as usize] += 1;
    }
    let (mut post_expected, mut post_delivered) = (0u64, 0u64);
    for (i, e) in w.trace.iter().enumerate() {
        let sent = SimTime::ZERO + warmup + SimDuration::from_nanos(e.time_ns);
        if sent <= last_repair + settle {
            continue;
        }
        let want = viewers.get(&e.cd).copied().unwrap_or(0).saturating_sub(1);
        post_expected += want;
        post_delivered += per_id[i].min(want);
    }
    SoakOutcome {
        fingerprint,
        prof_counts_json,
        prof_count_fingerprint,
        last_repair,
        rp_failovers: world.counters.get("rp-failovers").copied().unwrap_or(0),
        fault_drops: link_lost + node_lost,
        post_expected,
        post_delivered,
        audit,
        audit_json,
        spans_fingerprint,
        spans_json,
        timeseries_json,
        overload_active,
        overload_drops,
    }
}

#[test]
fn soak_recovers_fully_and_is_reproducible() {
    let a = run_soak(33, None);
    assert!(a.fault_drops > 0, "chaos never dropped a packet");
    assert!(a.rp_failovers >= 1, "RP crash did not trigger failover");
    assert!(a.post_expected > 0, "post-repair window is vacuous");
    assert_eq!(
        a.post_delivered, a.post_expected,
        "under-delivery after the last repair ({} of {})",
        a.post_delivered, a.post_expected
    );

    // The auditor must close the books on the same run: 100 % of owed
    // pairs accounted for, zero duplicates, zero unexplained losses.
    assert!(
        a.audit.is_clean(),
        "audit not clean:\n{}\nerrors: {:?}",
        a.audit.table(),
        a.audit.errors
    );
    assert!(a.audit.total_pairs > 0, "no pairs registered");
    assert_eq!(a.audit.duplicates, 0);
    assert_eq!(a.audit.unexplained, 0);
    assert_eq!(
        a.audit.delivered
            + a.audit.duplicates
            + a.audit.in_flight
            + a.audit.unpublished
            + a.audit.dropped_total()
            + a.audit.unexplained,
        a.audit.total_pairs,
        "audit classes do not sum to the owed pairs"
    );

    let b = run_soak(33, None);
    assert_eq!(a.fingerprint, b.fingerprint, "chaos is not reproducible");
    assert_eq!(a.last_repair, b.last_repair);
    assert_eq!(a.post_delivered, b.post_delivered);
    // Observability exports are part of the determinism contract:
    // same-seed runs must produce byte-identical documents.
    assert_eq!(a.spans_fingerprint, b.spans_fingerprint, "span logs differ");
    assert_eq!(a.spans_json, b.spans_json, "span exports differ");
    assert_eq!(a.audit_json, b.audit_json, "audit exports differ");
    assert_eq!(a.timeseries_json, b.timeseries_json, "time series differ");
    // Self-profile phase counts are deterministic too — byte-identical
    // counts sections and equal counts-only fingerprints, chaos included.
    assert_eq!(
        a.prof_count_fingerprint, b.prof_count_fingerprint,
        "prof count fingerprints differ"
    );
    assert_eq!(a.prof_counts_json, b.prof_counts_json, "prof counts differ");
}

/// The same chaos soak with overload management installed: a generous
/// bounded drop-tail queue with priorities and congestion marking must
/// not change the healing story. The RP crash leaves the survivor above
/// capacity, so the backlog it builds (a few hundred packets) stays far
/// under the bound — nothing is shed, the priority lattice merely
/// reorders, and the run must still deliver fully after the last repair
/// with a clean audit. (An *AQM* policy would rightly shed that standing
/// backlog instead of draining it in the tail; that trade-off is the
/// overload sweep's subject, not this soak's.)
#[test]
fn soak_with_overload_management_still_heals() {
    let overload = OverloadConfig {
        queue_capacity: Some(4_096),
        policy: AdmissionPolicy::DropTail,
        priority: true,
        mark_sojourn: Some(SimDuration::from_millis(50)),
    };
    assert!(!overload.is_vacuous());
    let a = run_soak(33, Some(overload));
    assert!(a.overload_active, "overload layer was not installed");
    assert_eq!(
        a.overload_drops,
        (0, 0, 0),
        "a generous queue must not shed at soak load"
    );
    assert!(a.fault_drops > 0, "chaos never dropped a packet");
    assert!(a.rp_failovers >= 1, "RP crash did not trigger failover");
    assert!(a.post_expected > 0, "post-repair window is vacuous");
    assert_eq!(
        a.post_delivered, a.post_expected,
        "under-delivery after the last repair ({} of {})",
        a.post_delivered, a.post_expected
    );
    assert!(
        a.audit.is_clean(),
        "audit not clean:\n{}\nerrors: {:?}",
        a.audit.table(),
        a.audit.errors
    );
}
