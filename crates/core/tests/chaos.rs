//! Chaos soak: random core-link flaps plus the crash (and restart) of an
//! RP-hosting router on a Rocketfuel-like backbone must heal — an RP
//! failover hands the dead RP's prefixes to a survivor, routers repair
//! soft state from fault notices, and every publication sent after the
//! last repair (plus a settle margin) reaches its full AoI fan-out. The
//! whole chaotic run must also be same-seed reproducible.

use std::collections::BTreeMap;

use gcopss_core::experiments::{Workload, WorkloadParams};
use gcopss_core::scenario::{build_gcopss, GcopssConfig, NetworkSpec};
use gcopss_core::{MetricsMode, RecoveryConfig};
use gcopss_game::PlayerId;
use gcopss_names::Name;
use gcopss_sim::generators::BackboneParams;
use gcopss_sim::{FaultPlan, SimDuration, SimTime, TelemetryConfig};

fn small_backbone() -> NetworkSpec {
    NetworkSpec::Backbone {
        seed: 5,
        params: BackboneParams {
            core_routers: 12,
            ..BackboneParams::default()
        },
    }
}

struct SoakOutcome {
    fingerprint: u64,
    last_repair: SimTime,
    rp_failovers: u64,
    fault_drops: u64,
    post_expected: u64,
    post_delivered: u64,
}

fn run_soak(seed: u64) -> SoakOutcome {
    let w = Workload::counter_strike(&WorkloadParams {
        seed,
        players: 48,
        updates: 4_000,
        ..WorkloadParams::default()
    });
    let net = small_backbone();
    let links = net.core_links_preview();
    let cfg = GcopssConfig {
        metrics_mode: MetricsMode::StatsOnly,
        delivery_log: true,
        rp_count: 2,
        recovery: Some(RecoveryConfig::default()),
        ..GcopssConfig::default()
    };
    let warmup = cfg.warmup;
    let mut built = build_gcopss(cfg, &net, &w.map, &w.population, &w.trace, vec![]);

    // Crash the router hosting the highest RP; flap links around it.
    let crash = *built
        .rp_nodes
        .values()
        .next_back()
        .expect("two RPs were placed");
    let span = SimDuration::from_nanos(w.trace.last().expect("trace").time_ns);
    let at = |num: u64, den: u64| {
        SimTime::ZERO + warmup + SimDuration::from_nanos(span.as_nanos() * num / den)
    };
    let plan = FaultPlan::new(0xda05)
        .random_link_flaps(&links, 4, at(2, 10), at(6, 10), SimDuration::from_millis(500))
        .node_down(at(3, 10), crash)
        .node_up(at(5, 10), crash);
    built.sim.enable_telemetry(TelemetryConfig::default());
    built.sim.install_faults(plan);
    built
        .sim
        .run_until(SimTime::ZERO + warmup + span + SimDuration::from_secs(10));

    let fingerprint = built.sim.telemetry_report("soak", 0).fingerprint;
    let last_repair = built.sim.last_repair_time().expect("repairs were scheduled");
    let (link_lost, node_lost) = built.sim.fault_drops();
    let world = built.sim.into_world();

    // Expected fan-out per leaf CD under the AoI model.
    let mut viewers: BTreeMap<&Name, u64> = BTreeMap::new();
    for cd in w.map.leaf_cds() {
        let area = w.map.area_of_leaf_cd(cd).expect("leaf CD");
        let count = w
            .population
            .players()
            .filter(|p| w.map.can_see(w.population.area_of(*p), area))
            .count() as u64;
        viewers.insert(cd, count);
    }
    let log = world.delivery_log.as_ref().expect("delivery log enabled");
    let mut per_id = vec![0u64; w.trace.len()];
    for &(id, receiver) in log {
        if world.metrics.publisher_of(id) == Some(PlayerId(receiver)) {
            continue;
        }
        per_id[id as usize] += 1;
    }
    let settle = SimDuration::from_secs(2);
    let (mut post_expected, mut post_delivered) = (0u64, 0u64);
    for (i, e) in w.trace.iter().enumerate() {
        let sent = SimTime::ZERO + warmup + SimDuration::from_nanos(e.time_ns);
        if sent <= last_repair + settle {
            continue;
        }
        let want = viewers.get(&e.cd).copied().unwrap_or(0).saturating_sub(1);
        post_expected += want;
        post_delivered += per_id[i].min(want);
    }
    SoakOutcome {
        fingerprint,
        last_repair,
        rp_failovers: world.counters.get("rp-failovers").copied().unwrap_or(0),
        fault_drops: link_lost + node_lost,
        post_expected,
        post_delivered,
    }
}

#[test]
fn soak_recovers_fully_and_is_reproducible() {
    let a = run_soak(33);
    assert!(a.fault_drops > 0, "chaos never dropped a packet");
    assert!(a.rp_failovers >= 1, "RP crash did not trigger failover");
    assert!(a.post_expected > 0, "post-repair window is vacuous");
    assert_eq!(
        a.post_delivered, a.post_expected,
        "under-delivery after the last repair ({} of {})",
        a.post_delivered, a.post_expected
    );

    let b = run_soak(33);
    assert_eq!(a.fingerprint, b.fingerprint, "chaos is not reproducible");
    assert_eq!(a.last_repair, b.last_repair);
    assert_eq!(a.post_delivered, b.post_delivered);
}
