//! Failure-injection and churn tests: RP splits under live traffic,
//! subscriber churn from player movement, and randomized delivery
//! exactness across RP layouts.

use std::sync::Arc;

use gcopss_core::broker::{
    partition_cds_to_brokers, snapcast_rp_prefixes, MovingPlayerClient, SnapshotBroker,
    SnapshotMode,
};
use gcopss_core::scenario::{
    expected_deliveries, ClientFactory, ExtraHost, GcopssConfig, NetworkSpec, ScenarioSpec,
};
use gcopss_core::{MetricsMode, SimParams};
use gcopss_game::{MovementModel, MovementParams};
use gcopss_sim::{SimDuration, SimTime};

use gcopss_core::experiments::{Workload, WorkloadParams};

fn workload(updates: usize, players: usize, seed: u64) -> Workload {
    Workload::counter_strike(&WorkloadParams {
        seed,
        updates,
        players,
        ..WorkloadParams::default()
    })
}

/// Randomized exactness: across seeds and RP layouts, delivery is exact
/// and duplicate-free in steady state.
#[test]
fn delivery_exact_across_rp_layouts_and_seeds() {
    for seed in [1u64, 2, 3] {
        for rp_count in [1usize, 2, 4, 6] {
            let w = workload(600, 60, seed);
            let expected = expected_deliveries(&w.map, &w.population, &w.trace);
            let cfg = GcopssConfig {
                delivery_log: true,
                rp_count,
                ..GcopssConfig::default()
            };
            let net = NetworkSpec::default_backbone(seed * 31 + rp_count as u64);
            let mut b = ScenarioSpec::new(&net, &w.map, &w.population, &w.trace)
                .gcopss(cfg)
                .build()
                .into_gcopss();
            b.sim.run();
            let world = b.sim.world();
            assert_eq!(
                world.metrics.delivered(),
                expected,
                "seed={seed} rps={rp_count}"
            );
            assert_eq!(world.duplicate_deliveries, 0, "seed={seed} rps={rp_count}");
        }
    }
}

/// A split in the middle of live traffic: every in-flight and subsequent
/// update still reaches every subscriber (the §IV-B no-loss guarantee),
/// and the latency after the split beats the pre-split congestion.
#[test]
fn split_mid_traffic_is_loss_free() {
    let w = workload(6_000, 100, 23);
    let expected = expected_deliveries(&w.map, &w.population, &w.trace);
    let mut params = SimParams::default().with_auto_balancing(30);
    params.rp_split_cooldown_packets = 800;
    let cfg = GcopssConfig {
        params,
        delivery_log: true,
        metrics_mode: MetricsMode::PerPublication,
        rp_count: 1,
        ..GcopssConfig::default()
    };
    let net = NetworkSpec::default_backbone(29);
    let mut b = ScenarioSpec::new(&net, &w.map, &w.population, &w.trace)
        .gcopss(cfg)
        .build()
        .into_gcopss();
    b.sim.run();
    let world = b.sim.world();
    assert!(!world.splits.is_empty(), "split must fire under congestion");
    assert_eq!(world.metrics.delivered(), expected, "no update lost");
    // After the split(s) drain the backlog, the tail of the trace must be
    // served well below the congestion peak.
    let rows = world.metrics.per_publication_rows();
    let k = (rows.len() / 8).max(1);
    let quarter_mean = |slice: &[(u64, gcopss_sim::SimDuration, gcopss_sim::SimDuration, gcopss_sim::SimDuration)]| {
        slice.iter().map(|r| r.2.as_millis_f64()).sum::<f64>() / slice.len().max(1) as f64
    };
    let peak = rows
        .chunks(k)
        .map(quarter_mean)
        .fold(0.0f64, f64::max);
    let tail = quarter_mean(&rows[rows.len() - k..]);
    assert!(
        tail < peak * 0.7,
        "post-split tail ({tail:.1} ms) should be well below the congestion peak ({peak:.1} ms)"
    );
}

/// Subscriber churn: players move (unsubscribe/resubscribe + snapshot
/// fetches) while the update stream runs. The control plane must stay
/// consistent: no unroutable publications, and the brokers keep serving.
#[test]
fn movement_churn_keeps_control_plane_consistent() {
    let w = workload(1_500, 80, 31);
    let trace_span = w.trace.last().map_or(0, |e| e.time_ns);
    let model = MovementModel::new(MovementParams {
        interval_ns: (1_000_000_000, 3_000_000_000), // move every 1–3 s
        ..MovementParams::default()
    });
    let mut moves = model.generate(5, &w.map, &w.population, trace_span);
    moves.retain(|m| m.player.index() % 8 == 0); // 10 movers keep brokers sane
    assert!(!moves.is_empty());

    let serving = partition_cds_to_brokers(&w.map, 3);
    let net = NetworkSpec::default_backbone(37);
    let pool = net.rp_pool_preview();
    let params = SimParams::default();
    let mut extra_hosts = Vec::new();
    for (i, cds) in serving.into_iter().enumerate() {
        let routes = SnapshotBroker::fib_prefixes(&cds);
        let objects = w.objects.clone();
        let trace = Arc::clone(&w.trace);
        let p = params.clone();
        extra_hosts.push(ExtraHost {
            attach_to: pool[(3 + i) % pool.len()],
            routes,
            make: Box::new(move |_n, edge| {
                Box::new(SnapshotBroker::new(p, edge, cds, objects, trace))
            }),
        });
    }

    let cfg = GcopssConfig {
        params,
        delivery_log: true,
        rp_count: 3,
        extra_rp_prefixes: snapcast_rp_prefixes(),
        ..GcopssConfig::default()
    };
    let warmup = cfg.warmup;
    let map = Arc::clone(&w.map);
    let pop = &w.population;
    let moves_ref = &moves;
    let factory: ClientFactory<'_> = Box::new(move |p, edge, cursor| {
        let my_moves: Vec<_> = moves_ref
            .iter()
            .filter(|m| m.player == p)
            .cloned()
            .collect();
        Box::new(MovingPlayerClient::new(
            p,
            edge,
            pop.area_of(p),
            Arc::clone(&map),
            cursor,
            my_moves,
            warmup,
            SnapshotMode::QueryResponse { window: 15 },
        ))
    });
    let mut b = ScenarioSpec::new(&net, &w.map, &w.population, &w.trace)
        .gcopss(cfg)
        .extra_hosts(extra_hosts)
        .client_factory(factory)
        .build()
        .into_gcopss();
    let horizon =
        SimTime::ZERO + warmup + SimDuration::from_nanos(trace_span) + SimDuration::from_secs(60);
    b.sim.run_until(horizon);
    let world = b.sim.world();

    // All updates published; control plane never hit a routing hole.
    assert_eq!(world.metrics.published(), w.trace.len() as u64);
    assert_eq!(world.counter("torp-no-route"), 0);
    assert_eq!(world.counter("publication-unserved-cd"), 0);
    assert_eq!(world.counter("broker-unknown-interest"), 0);
    // Movement completed with convergence records and snapshot bytes.
    assert!(!world.convergence.is_empty());
    assert!(world.convergence.iter().any(|c| c.bytes > 0));
    // Brokers stayed subscribed and applied live updates.
    assert!(world.counter("broker-updates-applied") > 0);
}

/// The same movement churn under cyclic multicast: streams start and stop
/// with join/leave, and convergence completes.
#[test]
fn movement_churn_cyclic_mode() {
    let w = workload(2_000, 60, 41);
    let trace_span = w.trace.last().map_or(0, |e| e.time_ns);
    // Trace spans ~4.8 s; 8 movers, each moving once after 1-2 s.
    let model = MovementModel::new(MovementParams {
        interval_ns: (1_000_000_000, 2_000_000_000),
        ..MovementParams::default()
    });
    let mut moves = model.generate(6, &w.map, &w.population, trace_span);
    moves.retain(|m| m.player.index() % 8 == 0);
    assert!(!moves.is_empty(), "movement schedule must not be empty");

    let serving = partition_cds_to_brokers(&w.map, 2);
    let net = NetworkSpec::default_backbone(43);
    let pool = net.rp_pool_preview();
    let params = SimParams::default();
    let mut extra_hosts = Vec::new();
    for (i, cds) in serving.into_iter().enumerate() {
        let routes = SnapshotBroker::fib_prefixes(&cds);
        let objects = w.objects.clone();
        let trace = Arc::clone(&w.trace);
        let p = params.clone();
        extra_hosts.push(ExtraHost {
            attach_to: pool[(3 + i) % pool.len()],
            routes,
            make: Box::new(move |_n, edge| {
                Box::new(SnapshotBroker::new(p, edge, cds, objects, trace))
            }),
        });
    }
    let cfg = GcopssConfig {
        params,
        rp_count: 3,
        extra_rp_prefixes: snapcast_rp_prefixes(),
        ..GcopssConfig::default()
    };
    let warmup = cfg.warmup;
    let map = Arc::clone(&w.map);
    let pop = &w.population;
    let moves_ref = &moves;
    let factory: ClientFactory<'_> = Box::new(move |p, edge, cursor| {
        let my_moves: Vec<_> = moves_ref
            .iter()
            .filter(|m| m.player == p)
            .cloned()
            .collect();
        Box::new(MovingPlayerClient::new(
            p,
            edge,
            pop.area_of(p),
            Arc::clone(&map),
            cursor,
            my_moves,
            warmup,
            SnapshotMode::CyclicMulticast,
        ))
    });
    let mut b = ScenarioSpec::new(&net, &w.map, &w.population, &w.trace)
        .gcopss(cfg)
        .extra_hosts(extra_hosts)
        .client_factory(factory)
        .build()
        .into_gcopss();
    let horizon =
        SimTime::ZERO + warmup + SimDuration::from_nanos(trace_span) + SimDuration::from_secs(90);
    b.sim.run_until(horizon);
    let world = b.sim.world();
    assert!(world.counter("broker-cyclic-joins") > 0, "no cyclic joins");
    assert!(world.counter("broker-cyclic-sent") > 0, "no cyclic stream");
    assert!(
        world.convergence.iter().any(|c| c.leaf_cds > 0 && c.bytes > 0),
        "no cyclic fetch completed"
    );
}

/// §IV-A offline support: a player that comes online mid-game subscribes,
/// downloads the snapshot of everything it can see, and starts receiving
/// live updates from then on.
#[test]
fn offline_player_comes_online() {
    let w = workload(2_000, 60, 53);
    let trace_span = w.trace.last().map_or(0, |e| e.time_ns);

    let serving = partition_cds_to_brokers(&w.map, 3);
    let net = NetworkSpec::default_backbone(47);
    let pool = net.rp_pool_preview();
    let params = SimParams::default();
    let mut extra_hosts = Vec::new();
    let mut extra_rps = Vec::new();
    for (i, cds) in serving.into_iter().enumerate() {
        let routes = SnapshotBroker::fib_prefixes(&cds);
        let attach = pool[(3 + i) % pool.len()];
        let snapcast: Vec<_> = cds
            .iter()
            .map(|cd| gcopss_core::broker::snapcast_ns().join(cd))
            .collect();
        extra_rps.push((snapcast, attach));
        let objects = w.objects.clone();
        let trace = Arc::clone(&w.trace);
        let p = params.clone();
        extra_hosts.push(ExtraHost {
            attach_to: attach,
            routes,
            make: Box::new(move |_n, edge| {
                Box::new(SnapshotBroker::new(p, edge, cds, objects, trace))
            }),
        });
    }

    let cfg = GcopssConfig {
        params,
        delivery_log: true,
        rp_count: 3,
        extra_rps,
        ..GcopssConfig::default()
    };
    let warmup = cfg.warmup;
    // Player 5 is offline for the first ~1.5 s of the trace, then joins.
    let joiner = gcopss_game::PlayerId(5);
    let online_at = SimTime::ZERO + warmup + SimDuration::from_millis(1_500);
    let map = Arc::clone(&w.map);
    let pop = &w.population;
    let factory: ClientFactory<'_> = Box::new(move |p, edge, cursor| {
        let client = MovingPlayerClient::new(
            p,
            edge,
            pop.area_of(p),
            Arc::clone(&map),
            cursor,
            Vec::new(),
            warmup,
            SnapshotMode::QueryResponse { window: 15 },
        );
        if p == joiner {
            Box::new(client.offline_until(online_at))
        } else {
            Box::new(client)
        }
    });
    let mut b = ScenarioSpec::new(&net, &w.map, &w.population, &w.trace)
        .gcopss(cfg)
        .extra_hosts(extra_hosts)
        .client_factory(factory)
        .build()
        .into_gcopss();
    let horizon =
        SimTime::ZERO + warmup + SimDuration::from_nanos(trace_span) + SimDuration::from_secs(60);
    b.sim.run_until(horizon);
    let world = b.sim.world();

    // The join completed: one online-join convergence record covering the
    // player's whole view, with real snapshot bytes.
    let joins: Vec<_> = world
        .convergence
        .iter()
        .filter(|r| r.online_join)
        .collect();
    assert_eq!(joins.len(), 1, "exactly one online join");
    let j = joins[0];
    assert_eq!(j.player, joiner);
    assert_eq!(
        j.leaf_cds,
        w.map.visible_leaf_cds(w.population.area_of(joiner)).len(),
        "a joiner downloads its entire view"
    );
    assert!(j.bytes > 0, "snapshot bytes received");
    assert!(j.convergence > SimDuration::ZERO);
    assert_eq!(world.counter("online-joins"), 1);

    // After joining, the player receives live updates: the delivery log
    // holds (publication, joiner) pairs for updates published post-join.
    let log = world.delivery_log.as_ref().expect("log enabled");
    let online_ns = online_at.as_nanos();
    let late_delivery = log.iter().any(|&(id, p)| {
        p == joiner.0
            && w.trace
                .get(id as usize)
                .is_some_and(|e| e.time_ns + warmup.as_nanos() > online_ns)
    });
    assert!(late_delivery, "joiner must receive post-join updates");

    // And while offline it neither published nor received anything.
    let early_delivery = log.iter().any(|&(id, p)| {
        p == joiner.0
            && w.trace
                .get(id as usize)
                .is_some_and(|e| e.time_ns + warmup.as_nanos() + 200_000_000 < online_ns)
    });
    assert!(
        !early_delivery,
        "no deliveries to the player while offline"
    );
}
