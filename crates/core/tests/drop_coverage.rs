//! Drop-reason coverage gate: every tag registered in
//! [`gcopss_core::drops::ALL`] must show up in at least one telemetry
//! counters export across a mini experiment suite. A new drop site whose
//! tag never fires anywhere would ship untestable — this gate forces every
//! registered reason to have at least one exercising scenario.
//!
//! Each scenario below is a small simulation arranged to fire a specific
//! subset of tags: chaos faults for the engine-level drops and soft-state
//! purges, targeted [`gcopss_sim::Simulator::inject`] calls for the
//! defensive arms that healthy runs never reach (unroutable RPs, unknown
//! interests, unexpected packet kinds, aged-out NDN batches), and a
//! past-capacity run behind a tight bounded queue for the overload sheds
//! (`queue-full`, `aqm-shed`, `stale-superseded`, `rate-limited`).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use gcopss_copss::{CopssPacket, MulticastPacket, RpId};
use gcopss_core::broker::SnapshotBroker;
use gcopss_core::experiments::{Workload, WorkloadParams};
use gcopss_core::ip_server::IpClient;
use gcopss_core::ndn_baseline::player_prefix;
use gcopss_core::scenario::{
    ExtraHost, GcopssConfig, HybridConfig, IpConfig, NdnBaselineConfig, NetworkSpec, ScenarioSpec,
};
use gcopss_core::{
    drops, payload_of, GPacket, GameWorld, IpPacket, IpUpdate, MetricsMode, RateAdaptConfig,
    RecoveryConfig, TraceCursor,
};
use gcopss_game::{ObjectModel, ObjectModelParams, PlayerId};
use gcopss_names::{Cd, Name};
use gcopss_ndn::{Data, Interest};
use gcopss_sim::generators::BackboneParams;
use gcopss_sim::{
    AdmissionPolicy, FaultPlan, OverloadConfig, SimDuration, SimTime, Simulator, TelemetryConfig,
};

/// Publication-id space for injected packets, far above any trace id.
const INJECT_ID: u64 = 1 << 50;

fn harvest(sim: &Simulator<GPacket, GameWorld>, seen: &mut BTreeSet<&'static str>) {
    for &tag in drops::ALL {
        if sim.telemetry().counter_total(tag) > 0 {
            seen.insert(tag);
        }
    }
}

fn mcast(cd: &str, id: u64) -> MulticastPacket {
    MulticastPacket::new(Cd::new(Name::parse_lit(cd)), payload_of(64), id)
}

/// G-COPSS under chaos: link flaps and an RP crash fire the engine fault
/// drops (`link-lost`, `node-lost`) and the routers' soft-state purges
/// (`st-purged`); injections cover the COPSS routing dead-ends, the client
/// dedup window and the broker's unknown-interest arm.
fn gcopss_chaos(seen: &mut BTreeSet<&'static str>) {
    let w = Workload::counter_strike(&WorkloadParams {
        seed: 7,
        players: 24,
        updates: 2_000,
        ..WorkloadParams::default()
    });
    let net = NetworkSpec::Backbone {
        seed: 5,
        params: BackboneParams {
            core_routers: 12,
            ..BackboneParams::default()
        },
    };
    let links = net.core_links_preview();
    let broker_at = net.rp_pool_preview()[0];
    let cfg = GcopssConfig {
        metrics_mode: MetricsMode::StatsOnly,
        rp_count: 2,
        recovery: Some(RecoveryConfig::default()),
        ..GcopssConfig::default()
    };
    let warmup = cfg.warmup;
    let serving: Vec<Name> = w.map.leaf_cds().iter().take(2).cloned().collect();
    let objects = ObjectModel::generate(7, &w.map, &ObjectModelParams::default());
    let broker_trace = Arc::clone(&w.trace);
    let broker = ExtraHost {
        attach_to: broker_at,
        routes: SnapshotBroker::fib_prefixes(&serving),
        make: Box::new(move |_node, edge| {
            Box::new(SnapshotBroker::new(
                gcopss_core::SimParams::default(),
                edge,
                serving,
                objects,
                broker_trace,
            ))
        }),
    };
    let mut built = ScenarioSpec::new(&net, &w.map, &w.population, &w.trace)
        .gcopss(cfg)
        .extra_host(broker)
        .build()
        .into_gcopss();

    let crash = *built.rp_nodes.values().next_back().expect("two RPs");
    let rp0_node = built.rp_nodes[&RpId(0)];
    let span = SimDuration::from_nanos(w.trace.last().expect("trace").time_ns);
    let at = |num: u64, den: u64| {
        SimTime::ZERO + warmup + SimDuration::from_nanos(span.as_nanos() * num / den)
    };
    let plan = FaultPlan::new(0xda05)
        .random_link_flaps(&links, 4, at(2, 10), at(6, 10), SimDuration::from_millis(500))
        .node_down(at(3, 10), crash)
        .node_up(at(5, 10), crash);
    built.sim.enable_telemetry(TelemetryConfig::default());
    built.sim.install_faults(plan);

    // Injections before the crash window, while every target is alive.
    let t = at(1, 10);
    let player = built.player_nodes[0];
    let (edge, _) = built
        .sim
        .topology()
        .neighbors(player)
        .next()
        .expect("player attached");
    // Host publication whose CD maps to no RP (the map only assigns /0../5).
    let p = GPacket::Copss(CopssPacket::Multicast(mcast("/99/1", INJECT_ID)));
    let size = p.wire_size();
    built.sim.inject(t, edge, p, size);
    // Transit ToRp toward an RP no FIB route exists for.
    let p = GPacket::ToRp {
        rp: RpId(77),
        inner: mcast("/1/1", INJECT_ID + 1),
    };
    let size = p.wire_size();
    built.sim.inject(t, edge, p, size);
    // ToRp reaching its RP with a CD the RP table does not serve.
    let p = GPacket::ToRp {
        rp: RpId(0),
        inner: mcast("/99/2", INJECT_ID + 2),
    };
    let size = p.wire_size();
    built.sim.inject(t, rp0_node, p, size);
    // The same multicast twice at one player: the second copy must hit the
    // dedup window.
    for _ in 0..2 {
        let p = GPacket::Copss(CopssPacket::Multicast(mcast("/1/1", INJECT_ID + 3)));
        let size = p.wire_size();
        built.sim.inject(t, player, p, size);
    }
    // An interest the broker cannot parse as snapshot or stream control.
    let p = GPacket::Interest(Interest::new(Name::parse_lit("/bogus/1"), 9_001));
    let size = p.wire_size();
    built.sim.inject(t, built.extra_nodes[0], p, size);
    // A chunk interest for an id no broker holds: the expected miss on the
    // /chunk fan-out (chunk names carry no CD, so non-holders always miss).
    let p = GPacket::Interest(Interest::new(
        Name::parse_lit("/chunk/0000000000000000"),
        9_002,
    ));
    let size = p.wire_size();
    built.sim.inject(t, built.extra_nodes[0], p, size);
    // Chunk data whose bytes do not hash to its name: the client's
    // content-addressed integrity check must reject it.
    let p = GPacket::Data(Data::new(
        Name::parse_lit("/chunk/0000000000000000"),
        payload_of(8),
    ));
    let size = p.wire_size();
    built.sim.inject(t, player, p, size);
    // Catch-up data arriving at a client with no fetch in flight (a
    // retransmit racing its original, or a stale delivery).
    let p = GPacket::Data(Data::new(Name::parse_lit("/snapmani/1/1"), payload_of(4)));
    let size = p.wire_size();
    built.sim.inject(t, player, p, size);

    let horizon = SimTime::ZERO + warmup + span + SimDuration::from_secs(8);
    built.sim.run_until(horizon);
    harvest(&built.sim, seen);
}

/// NDN baseline with link flaps: dangling PIT state is purged on face death
/// and expired by the recovery sweep; an injected interest for a batch far
/// behind the producer's history window fires the aged-out arm.
fn ndn_faults(seen: &mut BTreeSet<&'static str>) {
    let w = Workload::counter_strike(&WorkloadParams {
        seed: 11,
        players: 4,
        updates: 3_000,
        ..WorkloadParams::default()
    });
    let net = NetworkSpec::Testbed;
    let links = net.core_links_preview();
    let mut cfg = NdnBaselineConfig {
        metrics_mode: MetricsMode::StatsOnly,
        recovery: Some(RecoveryConfig::default()),
        ..NdnBaselineConfig::default()
    };
    // Flush often enough that the 128-batch history window rolls over
    // within the trace span, so an early seq is genuinely aged out.
    cfg.client.accum_interval = SimDuration::from_millis(10);
    let warmup = cfg.warmup;
    let mut built = ScenarioSpec::new(&net, &w.map, &w.population, &w.trace)
        .ndn_baseline(cfg)
        .build()
        .into_ndn_baseline();

    let span = SimDuration::from_nanos(w.trace.last().expect("trace").time_ns);
    let at = |num: u64, den: u64| {
        SimTime::ZERO + warmup + SimDuration::from_nanos(span.as_nanos() * num / den)
    };
    let plan = FaultPlan::new(0xbeef).random_link_flaps(
        &links,
        6,
        at(2, 10),
        at(7, 10),
        SimDuration::from_millis(500),
    );
    built.sim.enable_telemetry(TelemetryConfig::default());
    built.sim.install_faults(plan);

    // Ask player 0 for its very first batch near the end of the run — by
    // then the producer has flushed far more than 128 batches and evicted
    // seq 0 from history.
    let name = player_prefix(PlayerId(0)).child_index(0);
    let p = GPacket::Interest(Interest::new(name, 9_002));
    let size = p.wire_size();
    built.sim.inject(at(9, 10), built.player_nodes[0], p, size);

    let horizon = SimTime::ZERO + warmup + span + SimDuration::from_secs(6);
    built.sim.run_until(horizon);
    harvest(&built.sim, seen);
}

/// IP baseline with a server crash: the restarted server's empty connection
/// table drops updates for not-yet-reconnected players; injections cover
/// the unexpected-packet arm and the no-server client dead-end.
fn ip_server_crash(seen: &mut BTreeSet<&'static str>) {
    let w = Workload::counter_strike(&WorkloadParams {
        seed: 13,
        players: 16,
        updates: 1_500,
        ..WorkloadParams::default()
    });
    let net = NetworkSpec::default_backbone(11);
    let cfg = IpConfig {
        metrics_mode: MetricsMode::StatsOnly,
        server_count: 1,
        recovery: Some(RecoveryConfig::default()),
        ..IpConfig::default()
    };
    let warmup = cfg.warmup;
    let mut built = ScenarioSpec::new(&net, &w.map, &w.population, &w.trace)
        .ip_server(cfg)
        .build()
        .into_ip_server();
    let server = built.server_nodes[0];

    let span = SimDuration::from_nanos(w.trace.last().expect("trace").time_ns);
    let at = |num: u64, den: u64| {
        SimTime::ZERO + warmup + SimDuration::from_nanos(span.as_nanos() * num / den)
    };
    let plan = FaultPlan::new(0xfeed)
        .node_down(at(3, 10), server)
        .node_up(at(4, 10), server);
    built.sim.enable_telemetry(TelemetryConfig::default());
    built.sim.install_faults(plan);

    // A packet kind the server never expects.
    let p = GPacket::Interest(Interest::new(Name::parse_lit("/bogus/2"), 9_003));
    let size = p.wire_size();
    built.sim.inject(at(1, 10), server, p, size);

    // Player 0 publishes into an empty server map: every pop is a
    // no-server drop.
    let player = built.player_nodes[0];
    let (edge, _) = built
        .sim
        .topology()
        .neighbors(player)
        .next()
        .expect("player attached");
    let cursor = TraceCursor::for_player(Arc::clone(&w.trace), PlayerId(0), warmup);
    built.sim.set_behavior(
        player,
        Box::new(IpClient::new(PlayerId(0), edge, Arc::new(BTreeMap::new()), cursor)),
    );

    let horizon = SimTime::ZERO + warmup + span + SimDuration::from_secs(8);
    built.sim.run_until(horizon);
    harvest(&built.sim, seen);
}

/// Hybrid with heavy group sharing: edges filter unwanted group traffic;
/// injections cover the unexpected-packet arm and (with a crashed host and
/// failure-aware routing) the unroutable-IP-destination arm.
fn hybrid_filtering(seen: &mut BTreeSet<&'static str>) {
    let w = Workload::counter_strike(&WorkloadParams {
        seed: 17,
        players: 31,
        updates: 800,
        ..WorkloadParams::default()
    });
    let net = NetworkSpec::default_backbone(13);
    let cfg = HybridConfig {
        metrics_mode: MetricsMode::StatsOnly,
        group_count: 2,
        ..HybridConfig::default()
    };
    let warmup = cfg.warmup;
    let mut built = ScenarioSpec::new(&net, &w.map, &w.population, &w.trace)
        .hybrid(cfg)
        .build()
        .into_hybrid();

    let span = SimDuration::from_nanos(w.trace.last().expect("trace").time_ns);
    let at = |num: u64, den: u64| {
        SimTime::ZERO + warmup + SimDuration::from_nanos(span.as_nanos() * num / den)
    };
    let dead = built.player_nodes[1];
    let plan = FaultPlan::new(0xace).node_down(at(1, 10), dead);
    built.sim.enable_telemetry(TelemetryConfig::default());
    built.sim.install_faults(plan);

    let player = built.player_nodes[0];
    let (edge, _) = built
        .sim
        .topology()
        .neighbors(player)
        .next()
        .expect("player attached");
    // An IP unicast toward the crashed host: failure-aware routing leaves
    // no path, so the edge's forwarding hits the no-route arm.
    let p = GPacket::Ip(IpPacket::ToClient {
        client: dead,
        update: IpUpdate {
            id: INJECT_ID,
            cd: Name::parse_lit("/1/1"),
            size: 64,
        },
    });
    let size = p.wire_size();
    built.sim.inject(at(5, 10), edge, p, size);
    // A packet kind hybrid edges never expect.
    let p = GPacket::Interest(Interest::new(Name::parse_lit("/bogus/3"), 9_004));
    let size = p.wire_size();
    built.sim.inject(at(5, 10), edge, p, size);

    built.sim.run();
    harvest(&built.sim, seen);
}

/// G-COPSS far past capacity behind a tight AQM queue: the admission layer
/// fires `queue-full` rejections and `stale-superseded` evictions, CoDel
/// sheds standing-queue heads (`aqm-shed`), and congestion marks drive the
/// clients' pacers into source sheds (`rate-limited`).
fn overload_shedding(seen: &mut BTreeSet<&'static str>) {
    let w = Workload::counter_strike(&WorkloadParams {
        seed: 19,
        players: 24,
        updates: 2_000,
        // ≈4× the 2-RP aggregate service rate (3.3 ms / 2 = 1.65 ms).
        mean_interarrival: SimDuration::from_micros(400),
    });
    let net = NetworkSpec::default_backbone(7);
    let cfg = GcopssConfig {
        metrics_mode: MetricsMode::StatsOnly,
        rp_count: 2,
        recovery: Some(RecoveryConfig::default()),
        overload: Some(OverloadConfig {
            queue_capacity: Some(8),
            policy: AdmissionPolicy::CoDel {
                target: SimDuration::from_millis(2),
                interval: SimDuration::from_millis(20),
            },
            priority: true,
            mark_sojourn: Some(SimDuration::from_millis(4)),
        }),
        rate_adapt: Some(RateAdaptConfig::default()),
        ..GcopssConfig::default()
    };
    let warmup = cfg.warmup;
    let mut built = ScenarioSpec::new(&net, &w.map, &w.population, &w.trace)
        .gcopss(cfg)
        .build()
        .into_gcopss();
    built.sim.enable_telemetry(TelemetryConfig::default());

    let span = SimDuration::from_nanos(w.trace.last().expect("trace").time_ns);
    let horizon = SimTime::ZERO + warmup + span + SimDuration::from_secs(5);
    built.sim.run_until(horizon);
    harvest(&built.sim, seen);
}

#[test]
fn every_drop_reason_appears_in_some_telemetry_export() {
    let mut seen: BTreeSet<&'static str> = BTreeSet::new();
    gcopss_chaos(&mut seen);
    ndn_faults(&mut seen);
    ip_server_crash(&mut seen);
    hybrid_filtering(&mut seen);
    overload_shedding(&mut seen);

    let missing: Vec<&&str> = drops::ALL.iter().filter(|t| !seen.contains(**t)).collect();
    assert!(
        missing.is_empty(),
        "drop reasons never observed in any telemetry counters export: {missing:?}\n\
         observed: {seen:?}"
    );
}
