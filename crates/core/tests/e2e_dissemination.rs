//! End-to-end dissemination correctness: every system (G-COPSS, IP server,
//! hybrid) must deliver every update to exactly the players whose AoI
//! covers it — no loss, no duplicates, no spurious deliveries.

use std::sync::Arc;

use gcopss_core::scenario::{
    expected_deliveries, GcopssConfig, HybridConfig, IpConfig, NetworkSpec, ScenarioSpec,
};
use gcopss_core::{MetricsMode, SimParams};
use gcopss_game::trace::{microbenchmark_trace, MicrobenchParams};
use gcopss_game::{GameMap, ObjectModel, ObjectModelParams, PlayerPopulation};
use gcopss_sim::SimDuration;

struct Setup {
    map: Arc<GameMap>,
    pop: PlayerPopulation,
    trace: Arc<Vec<gcopss_game::trace::TraceEvent>>,
    expected: u64,
}

fn small_setup(seed: u64, duration_ms: u64) -> Setup {
    let map = Arc::new(GameMap::paper_map());
    let objects = ObjectModel::generate(seed, &map, &ObjectModelParams::default());
    let pop = PlayerPopulation::uniform_per_area(&map, 2);
    let params = MicrobenchParams {
        duration_ns: duration_ms * 1_000_000,
        ..MicrobenchParams::default()
    };
    let trace = Arc::new(microbenchmark_trace(seed, &map, &objects, &pop, &params));
    let expected = expected_deliveries(&map, &pop, &trace);
    Setup {
        map,
        pop,
        trace,
        expected,
    }
}

#[test]
fn gcopss_delivers_exactly_the_aoi_testbed_one_rp() {
    let s = small_setup(1, 2_000);
    assert!(s.trace.len() > 100, "trace has {} events", s.trace.len());
    let cfg = GcopssConfig {
        params: SimParams::microbenchmark(),
        metrics_mode: MetricsMode::Full,
        delivery_log: true,
        rp_count: 1,
        ..GcopssConfig::default()
    };
    let mut built = ScenarioSpec::new(&NetworkSpec::Testbed, &s.map, &s.pop, &s.trace)
        .gcopss(cfg)
        .build()
        .into_gcopss();
    built.sim.run();
    let w = built.sim.world();
    assert_eq!(w.metrics.published(), s.trace.len() as u64);
    assert_eq!(
        w.metrics.delivered(),
        s.expected,
        "G-COPSS lost or fabricated deliveries (dups: {})",
        w.duplicate_deliveries
    );
    assert_eq!(w.duplicate_deliveries, 0, "steady state must be a tree");
    assert!(w.metrics.stats().mean() > SimDuration::ZERO);
    assert_eq!(w.counter("torp-no-route"), 0);
    assert_eq!(w.counter("publication-unserved-cd"), 0);
}

#[test]
fn gcopss_delivers_on_backbone_with_three_rps() {
    let s = small_setup(2, 1_000);
    let cfg = GcopssConfig {
        metrics_mode: MetricsMode::Full,
        delivery_log: true,
        rp_count: 3,
        ..GcopssConfig::default()
    };
    let net = NetworkSpec::default_backbone(7);
    let mut built = ScenarioSpec::new(&net, &s.map, &s.pop, &s.trace)
        .gcopss(cfg)
        .build()
        .into_gcopss();
    built.sim.run();
    let w = built.sim.world();
    assert_eq!(w.metrics.delivered(), s.expected);
    assert_eq!(w.duplicate_deliveries, 0);
    // Network load was accounted.
    assert!(built.sim.total_link_bytes() > 0);
}

#[test]
fn gcopss_six_rps_also_exact() {
    let s = small_setup(3, 1_000);
    let cfg = GcopssConfig {
        metrics_mode: MetricsMode::StatsOnly,
        delivery_log: true,
        rp_count: 6,
        ..GcopssConfig::default()
    };
    let net = NetworkSpec::default_backbone(3);
    let mut built = ScenarioSpec::new(&net, &s.map, &s.pop, &s.trace)
        .gcopss(cfg)
        .build()
        .into_gcopss();
    built.sim.run();
    assert_eq!(built.sim.world().metrics.delivered(), s.expected);
}

#[test]
fn ip_server_delivers_exactly_the_aoi() {
    let s = small_setup(4, 1_000);
    let cfg = IpConfig {
        params: SimParams::microbenchmark(),
        metrics_mode: MetricsMode::Full,
        delivery_log: true,
        server_count: 1,
        ..IpConfig::default()
    };
    let mut built = ScenarioSpec::new(&NetworkSpec::Testbed, &s.map, &s.pop, &s.trace)
        .ip_server(cfg)
        .build()
        .into_ip_server();
    built.sim.run();
    let w = built.sim.world();
    assert_eq!(w.metrics.published(), s.trace.len() as u64);
    assert_eq!(w.metrics.delivered(), s.expected);
    assert_eq!(w.duplicate_deliveries, 0);
    assert_eq!(w.counter("ip-no-route"), 0);
}

#[test]
fn ip_server_multiple_servers_partition_correctly() {
    let s = small_setup(5, 1_000);
    let cfg = IpConfig {
        delivery_log: true,
        server_count: 3,
        ..IpConfig::default()
    };
    let net = NetworkSpec::default_backbone(11);
    let mut built = ScenarioSpec::new(&net, &s.map, &s.pop, &s.trace)
        .ip_server(cfg)
        .build()
        .into_ip_server();
    assert_eq!(built.server_nodes.len(), 3);
    built.sim.run();
    assert_eq!(built.sim.world().metrics.delivered(), s.expected);
}

#[test]
fn hybrid_delivers_exactly_the_aoi() {
    let s = small_setup(6, 1_000);
    let cfg = HybridConfig {
        metrics_mode: MetricsMode::Full,
        delivery_log: true,
        group_count: 6,
        ..HybridConfig::default()
    };
    let net = NetworkSpec::default_backbone(13);
    let mut built = ScenarioSpec::new(&net, &s.map, &s.pop, &s.trace)
        .hybrid(cfg)
        .build()
        .into_hybrid();
    built.sim.run();
    let w = built.sim.world();
    assert_eq!(
        w.metrics.delivered(),
        s.expected,
        "hybrid edge filtering must deliver exactly the AoI"
    );
    assert_eq!(w.duplicate_deliveries, 0);
}

#[test]
fn hybrid_filtering_discards_unwanted_group_traffic() {
    // With only 2 groups, group sharing is heavy: edges must receive (and
    // filter) unwanted messages.
    let s = small_setup(7, 500);
    let cfg = HybridConfig {
        delivery_log: true,
        group_count: 2,
        ..HybridConfig::default()
    };
    let net = NetworkSpec::default_backbone(17);
    let mut built = ScenarioSpec::new(&net, &s.map, &s.pop, &s.trace)
        .hybrid(cfg)
        .build()
        .into_hybrid();
    built.sim.run();
    let w = built.sim.world();
    assert_eq!(w.metrics.delivered(), s.expected);
    assert!(
        w.counter("hybrid-filtered-unwanted") > 0,
        "2 groups over 6 prefixes must cause filtered traffic"
    );
}

#[test]
fn fewer_groups_means_more_network_load() {
    // The hybrid trade-off (§III-D): mapping many CDs onto few IP groups
    // causes unwanted dissemination, i.e. more bytes on the wire.
    let s = small_setup(8, 500);
    let net = NetworkSpec::default_backbone(19);
    let run = |groups: u32| {
        let cfg = HybridConfig {
            group_count: groups,
            ..HybridConfig::default()
        };
        let mut built = ScenarioSpec::new(&net, &s.map, &s.pop, &s.trace)
        .hybrid(cfg)
        .build()
        .into_hybrid();
        built.sim.run();
        built.sim.total_link_bytes()
    };
    let load_6 = run(6);
    let load_1 = run(1);
    assert!(
        load_1 > load_6,
        "1 group ({load_1} B) should carry more than 6 groups ({load_6} B)"
    );
}
