//! End-to-end overload-control properties at the scenario layer: a vacuous
//! [`OverloadConfig`] must leave runs byte-identical to no config at all
//! (mirroring the vacuous `FaultPlan` rule), equal seeds must give equal
//! runs even under shed-heavy policies, and a shedding config must actually
//! perturb the run it claims to manage.

use gcopss_core::experiments::{Workload, WorkloadParams};
use gcopss_core::scenario::{GcopssConfig, NetworkSpec, ScenarioSpec};
use gcopss_core::{MetricsMode, RateAdaptConfig, RecoveryConfig};
use gcopss_sim::{
    AdmissionPolicy, OverloadConfig, SimDuration, SimTime, TelemetryConfig, TelemetryReport,
};

/// Serializes a report the way the experiment binaries do, so equality
/// here means the emitted file would be byte-identical.
fn render(r: &TelemetryReport) -> String {
    let events: Vec<String> = r.trace_events.iter().map(ToString::to_string).collect();
    format!("{}|{}|{:016x}|{}", r.label, r.summary, r.fingerprint, events.join(","))
}

/// One instrumented over-capacity G-COPSS run with the given overload
/// wiring. The workload offers ≈2× the 2-RP service rate so a non-vacuous
/// config has something to shed; a fixed horizon keeps the run method
/// identical across modes.
fn overload_report(
    overload: Option<OverloadConfig>,
    rate_adapt: Option<RateAdaptConfig>,
) -> TelemetryReport {
    let w = Workload::counter_strike(&WorkloadParams {
        seed: 23,
        players: 24,
        updates: 1_500,
        mean_interarrival: SimDuration::from_micros(800),
    });
    let cfg = GcopssConfig {
        metrics_mode: MetricsMode::StatsOnly,
        rp_count: 2,
        recovery: Some(RecoveryConfig::default()),
        overload,
        rate_adapt,
        ..GcopssConfig::default()
    };
    let mut built =
        ScenarioSpec::new(&NetworkSpec::default_backbone(3), &w.map, &w.population, &w.trace)
            .gcopss(cfg)
            .build()
            .into_gcopss();
    built.sim.enable_telemetry(TelemetryConfig::default());
    built.sim.run_until(SimTime::ZERO + SimDuration::from_secs(30));
    built.sim.telemetry_report("overload", 0)
}

/// A bounded AQM config aggressive enough to shed at 2× load.
fn shedding_config() -> OverloadConfig {
    OverloadConfig {
        queue_capacity: Some(8),
        policy: AdmissionPolicy::CoDel {
            target: SimDuration::from_millis(2),
            interval: SimDuration::from_millis(20),
        },
        priority: true,
        mark_sojourn: Some(SimDuration::from_millis(4)),
    }
}

#[test]
fn vacuous_overload_config_is_byte_identical_to_none() {
    let off = overload_report(None, None);
    let vacuous = overload_report(Some(OverloadConfig::default()), None);
    assert!(OverloadConfig::default().is_vacuous());
    assert!(!off.trace_events.is_empty());
    assert_eq!(off.fingerprint, vacuous.fingerprint);
    assert_eq!(render(&off), render(&vacuous));
}

#[test]
fn same_seed_overload_runs_are_byte_identical() {
    let a = overload_report(Some(shedding_config()), Some(RateAdaptConfig::default()));
    let b = overload_report(Some(shedding_config()), Some(RateAdaptConfig::default()));
    assert!(!a.trace_events.is_empty());
    assert_eq!(a.fingerprint, b.fingerprint);
    assert_eq!(render(&a), render(&b));
    // The policy must actually bite at this load.
    let calm = overload_report(None, None);
    assert_ne!(a.fingerprint, calm.fingerprint);
}
