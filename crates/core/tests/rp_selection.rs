//! Tests for the RP placement strategies (the paper's "improving RP
//! selection" future work implemented as `RpSelection`).

use gcopss_core::scenario::{expected_deliveries, GcopssConfig, NetworkSpec, ScenarioSpec};
use gcopss_core::{MetricsMode, RpSelection, SimParams};
use gcopss_core::experiments::{Workload, WorkloadParams};

fn congested_workload(seed: u64) -> Workload {
    Workload::counter_strike(&WorkloadParams {
        seed,
        updates: 2_500,
        players: 100,
        ..WorkloadParams::default()
    })
}

fn run_with_strategy(strategy: RpSelection, seed: u64) -> (Vec<u32>, u64, u64) {
    let w = congested_workload(seed);
    let expected = expected_deliveries(&w.map, &w.population, &w.trace);
    let mut params = SimParams::default().with_auto_balancing(35);
    params.rp_split_cooldown_packets = 1_000;
    let cfg = GcopssConfig {
        params,
        delivery_log: true,
        metrics_mode: MetricsMode::StatsOnly,
        rp_count: 1,
        rp_selection: strategy,
        ..GcopssConfig::default()
    };
    let net = NetworkSpec::default_backbone(19);
    let mut b = ScenarioSpec::new(&net, &w.map, &w.population, &w.trace)
        .gcopss(cfg)
        .build()
        .into_gcopss();
    b.sim.run();
    let world = b.sim.world();
    assert_eq!(world.metrics.delivered(), expected, "{strategy:?} lost updates");
    let nodes: Vec<u32> = world.rp_locations.values().copied().collect();
    (
        nodes,
        world.splits.len() as u64,
        world.metrics.stats().mean().as_nanos(),
    )
}

#[test]
fn every_strategy_splits_without_loss() {
    for strategy in [
        RpSelection::Rotation,
        RpSelection::ClosestToSelf,
        RpSelection::Spread,
    ] {
        let (nodes, splits, mean) = run_with_strategy(strategy, 47);
        assert!(splits >= 1, "{strategy:?}: no split fired");
        assert!(mean > 0, "{strategy:?}: no latency recorded");
        // Every RP lives on a distinct node (strategies skip taken nodes).
        let mut dedup = nodes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), nodes.len(), "{strategy:?}: co-located RPs");
    }
}

#[test]
fn strategies_pick_different_placements() {
    let (rot, _, _) = run_with_strategy(RpSelection::Rotation, 47);
    let (close, _, _) = run_with_strategy(RpSelection::ClosestToSelf, 47);
    let (spread, _, _) = run_with_strategy(RpSelection::Spread, 47);
    // At least one strategy must place its new RP(s) differently from the
    // others (they optimize different objectives over 79 candidates).
    assert!(
        rot != close || rot != spread,
        "all strategies placed identically: {rot:?}"
    );
}

#[test]
fn rp_pool_preview_is_deterministic_and_matches_build() {
    let net = NetworkSpec::default_backbone(19);
    let a = net.rp_pool_preview();
    let b = net.rp_pool_preview();
    assert_eq!(a, b);
    assert!(!a.is_empty());
    // The preview spreads placements: the first few picks are distinct.
    let head: std::collections::BTreeSet<_> = a.iter().take(6).collect();
    assert_eq!(head.len(), 6);
}
