//! End-to-end streaming-metrics properties at the scenario layer: a
//! vacuous [`StreamConfig`] must leave runs byte-identical to the default
//! (mirroring the vacuous `FaultPlan`/`OverloadConfig` rule), a
//! non-vacuous hub with no adaptive consumer must *observe only* — the
//! packet schedule stays byte-identical to a streams-off run — and equal
//! seeds must give equal runs with the hub rolling.

use gcopss_core::experiments::{Workload, WorkloadParams};
use gcopss_core::scenario::{GcopssConfig, NetworkSpec, ScenarioSpec};
use gcopss_core::MetricsMode;
use gcopss_sim::{SimDuration, SimTime, StreamConfig, TelemetryConfig, TelemetryReport};

/// Serializes a report the way the experiment binaries do, so equality
/// here means the emitted file would be byte-identical.
fn render(r: &TelemetryReport) -> String {
    let events: Vec<String> = r.trace_events.iter().map(ToString::to_string).collect();
    format!("{}|{}|{:016x}|{}", r.label, r.summary, r.fingerprint, events.join(","))
}

/// One instrumented G-COPSS run with the given stream wiring; returns the
/// report plus the hub's roll count (0 when the hub never enabled).
fn stream_report(stream: StreamConfig) -> (TelemetryReport, u64) {
    let w = Workload::counter_strike(&WorkloadParams {
        seed: 23,
        players: 24,
        updates: 1_500,
        mean_interarrival: SimDuration::from_micros(800),
    });
    let cfg = GcopssConfig {
        metrics_mode: MetricsMode::StatsOnly,
        rp_count: 2,
        stream,
        ..GcopssConfig::default()
    };
    let mut built =
        ScenarioSpec::new(&NetworkSpec::default_backbone(3), &w.map, &w.population, &w.trace)
            .gcopss(cfg)
            .build()
            .into_gcopss();
    built.sim.enable_telemetry(TelemetryConfig::default());
    built.sim.run_until(SimTime::ZERO + SimDuration::from_secs(30));
    let rolls = built.sim.streams().rolls();
    (built.sim.telemetry_report("streams", 0), rolls)
}

#[test]
fn vacuous_stream_config_is_byte_identical_to_default() {
    let (off, r_off) = stream_report(StreamConfig::default());
    // Vacuous (zero tick) but with every other knob changed: still must
    // install nothing.
    let odd = StreamConfig {
        tick: SimDuration::ZERO,
        window_ticks: 3,
        ewma_shift: 1,
        sketch_capacity: 99,
    };
    assert!(odd.is_vacuous());
    let (vacuous, r_vac) = stream_report(odd);
    assert!(!off.trace_events.is_empty());
    assert_eq!((r_off, r_vac), (0, 0), "vacuous config must never roll");
    assert_eq!(off.fingerprint, vacuous.fingerprint);
    assert_eq!(render(&off), render(&vacuous));
}

#[test]
fn observer_only_streams_leave_packet_schedule_byte_identical() {
    let (off, _) = stream_report(StreamConfig::default());
    // A live hub rolling every 50 ms, but no adaptive consumer configured
    // (default `SimParams`): it may only observe.
    let (on, rolls) = stream_report(StreamConfig::every(SimDuration::from_millis(50)));
    assert!(rolls > 0, "hub never rolled");
    assert_eq!(off.fingerprint, on.fingerprint);
    assert_eq!(render(&off), render(&on));
}

#[test]
fn same_seed_stream_runs_are_byte_identical() {
    let (a, ra) = stream_report(StreamConfig::every(SimDuration::from_millis(25)));
    let (b, rb) = stream_report(StreamConfig::every(SimDuration::from_millis(25)));
    assert!(ra > 0 && ra == rb);
    assert!(!a.trace_events.is_empty());
    assert_eq!(a.fingerprint, b.fingerprint);
    assert_eq!(render(&a), render(&b));
}
