//! End-to-end telemetry properties: same-seed determinism of the packet
//! journal, per-link byte reconciliation against the engine's aggregate
//! load, journal disabling, and determinism under fault injection (a
//! vacuous chaos plan is byte-identical to no plan at all; equal seeds
//! give equal chaos).

use gcopss_core::experiments::rp_sweep::{self, RpSweepConfig};
use gcopss_core::experiments::{TelemetryCapture, Workload, WorkloadParams};
use gcopss_core::scenario::{GcopssConfig, NetworkSpec, ScenarioSpec};
use gcopss_core::{MetricsMode, RecoveryConfig, SimParams};
use gcopss_sim::json::Json;
use gcopss_sim::{FaultPlan, SimDuration, SimTime, TelemetryConfig, TelemetryReport};

fn small_cfg(seed: u64) -> RpSweepConfig {
    RpSweepConfig {
        workload: WorkloadParams {
            seed,
            updates: 2_000,
            players: 80,
            ..WorkloadParams::default()
        },
        rp_counts: vec![3],
        include_auto: false,
        server_counts: vec![1],
        fig5_detail: false,
        ..RpSweepConfig::default()
    }
}

fn capture(seed: u64, tcfg: TelemetryConfig) -> (TelemetryCapture, Vec<u64>) {
    let mut cap = TelemetryCapture::new(tcfg);
    let out = rp_sweep::run_with(&small_cfg(seed), Some(&mut cap));
    let loads = out
        .gcopss_rows
        .iter()
        .chain(&out.server_rows)
        .map(|r| r.network_bytes)
        .collect();
    (cap, loads)
}

/// Serializes a report the way the experiment binaries do, so equality
/// here means the emitted file would be byte-identical.
fn render(r: &TelemetryReport) -> String {
    let events: Vec<String> = r.trace_events.iter().map(ToString::to_string).collect();
    format!("{}|{}|{:016x}|{}", r.label, r.summary, r.fingerprint, events.join(","))
}

fn get<'a>(j: &'a Json, key: &str) -> Option<&'a Json> {
    match j {
        Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn get_u64(j: &Json, key: &str) -> u64 {
    match get(j, key) {
        Some(Json::UInt(v)) => *v,
        _ => panic!("missing u64 field {key}"),
    }
}

#[test]
fn same_seed_runs_are_byte_identical() {
    let (a, _) = capture(11, TelemetryConfig::default());
    let (b, _) = capture(11, TelemetryConfig::default());
    assert_eq!(a.reports.len(), 2);
    assert_eq!(b.reports.len(), 2);
    for (ra, rb) in a.reports.iter().zip(&b.reports) {
        assert!(!ra.trace_events.is_empty(), "{}: journal must record", ra.label);
        assert_eq!(ra.fingerprint, rb.fingerprint, "{}", ra.label);
        assert_eq!(render(ra), render(rb), "{}", ra.label);
    }
    // A different seed must actually change the journal.
    let (c, _) = capture(12, TelemetryConfig::default());
    assert_ne!(a.reports[0].fingerprint, c.reports[0].fingerprint);
}

#[test]
fn per_link_bytes_reconcile_with_aggregate_load() {
    let (cap, loads) = capture(7, TelemetryConfig::default());
    for (report, load) in cap.reports.iter().zip(loads) {
        // The summary's own total.
        assert_eq!(get_u64(&report.summary, "link_bytes_total"), load, "{}", report.label);
        // And the per-link table sums to the same number.
        let Some(Json::Array(links)) = get(&report.summary, "links") else {
            panic!("{}: no link table", report.label);
        };
        assert!(!links.is_empty(), "{}", report.label);
        let sum: u64 = links
            .iter()
            .map(|l| get_u64(l, "bytes_ab") + get_u64(l, "bytes_ba"))
            .sum();
        assert_eq!(sum, load, "{}: per-link sum != aggregate load", report.label);
    }
}

#[test]
fn journal_can_be_disabled_and_sampled() {
    // capacity 0 disables the journal but keeps counters and link stats.
    let (off, loads) = capture(7, TelemetryConfig {
        journal_capacity: 0,
        journal_sample: 1,
    });
    for (report, load) in off.reports.iter().zip(loads) {
        assert!(report.trace_events.is_empty(), "{}", report.label);
        assert_eq!(get_u64(&report.summary, "link_bytes_total"), load);
    }
    // Sampling keeps 1-in-n and stays deterministic.
    let tcfg = TelemetryConfig {
        journal_capacity: 1_024,
        journal_sample: 8,
    };
    let (s1, _) = capture(7, tcfg.clone());
    let (s2, _) = capture(7, tcfg);
    let (full, _) = capture(7, TelemetryConfig::default());
    assert_eq!(s1.reports[0].fingerprint, s2.reports[0].fingerprint);
    assert!(
        s1.reports[0].trace_events.len() < full.reports[0].trace_events.len(),
        "sampling must shrink the journal"
    );
}

/// One instrumented microbenchmark run on the testbed, optionally with a
/// chaos plan installed and recovery armed. A fixed horizon (instead of
/// run-to-quiescence) keeps the run method identical across modes.
fn chaos_report(plan: Option<FaultPlan>, recovery: Option<RecoveryConfig>) -> TelemetryReport {
    let w = Workload::microbenchmark(3, SimDuration::from_secs(10));
    let cfg = GcopssConfig {
        params: SimParams::microbenchmark(),
        metrics_mode: MetricsMode::StatsOnly,
        rp_count: 1,
        recovery,
        ..GcopssConfig::default()
    };
    let mut built = ScenarioSpec::new(&NetworkSpec::Testbed, &w.map, &w.population, &w.trace)
        .gcopss(cfg)
        .build()
        .into_gcopss();
    built.sim.enable_telemetry(TelemetryConfig::default());
    if let Some(p) = plan {
        built.sim.install_faults(p);
    }
    built.sim.run_until(SimTime::ZERO + SimDuration::from_secs(60));
    built.sim.telemetry_report("chaos", 0)
}

#[test]
fn vacuous_chaos_plan_is_byte_identical_to_no_plan() {
    let off = chaos_report(None, None);
    let vacuous = chaos_report(Some(FaultPlan::new(99)), None);
    assert!(!off.trace_events.is_empty());
    assert_eq!(off.fingerprint, vacuous.fingerprint);
    assert_eq!(render(&off), render(&vacuous));
}

#[test]
fn same_seed_chaos_runs_are_byte_identical() {
    let links = NetworkSpec::Testbed.core_links_preview();
    let mk_plan = || {
        FaultPlan::new(5).with_loss(0.02).random_link_flaps(
            &links,
            3,
            SimTime::from_millis(2_000),
            SimTime::from_millis(8_000),
            SimDuration::from_millis(500),
        )
    };
    let recovery = Some(RecoveryConfig::default());
    let a = chaos_report(Some(mk_plan()), recovery.clone());
    let b = chaos_report(Some(mk_plan()), recovery);
    assert!(!a.trace_events.is_empty());
    assert_eq!(a.fingerprint, b.fingerprint);
    assert_eq!(render(&a), render(&b));
    // The chaos must actually perturb the run.
    let calm = chaos_report(None, None);
    assert_ne!(a.fingerprint, calm.fingerprint);
}
