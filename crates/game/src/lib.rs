//! The game model of G-COPSS: hierarchical maps, players, objects, traces
//! and movement.
//!
//! The paper (§III-A, §V) evaluates G-COPSS with a Counter-Strike-like game
//! whose world map is partitioned hierarchically: the evaluation map has 5
//! regions of 5 zones each, yielding 31 *leaf CDs* — 25 zones (`/1/1` …
//! `/5/5`), 5 region own-areas (`/1/0` … `/5/0`, the airspace over each
//! region) and 1 world own-area (`/0`, the satellite layer).
//!
//! This crate models everything game-side:
//!
//! * [`GameMap`] — arbitrary-depth hierarchical maps with the paper's
//!   naming convention, publication/subscription CD derivation, visibility
//!   queries, and movement classification (the six movement types of
//!   Table III).
//! * [`ObjectModel`] / [`ObjectState`] — game objects distributed over
//!   areas, with the geometric update-size accumulation model
//!   `size(obj_vn) = Σ αⁿ⁻ⁱ·size(upd_i)` used to size snapshots.
//! * [`PlayerPopulation`] — player placement (2 per area for the
//!   microbenchmark, 4–20 per area for the 414-player trace).
//! * [`trace`] — synthetic trace generators replaying the *statistics* of
//!   the paper's traces: the 62-player / ≈12,440-event microbenchmark
//!   trace and the 414-player / 1,686,905-update Counter-Strike trace with
//!   its heavy-tailed per-player update distribution.
//! * [`MovementModel`] — the §V-B player-movement workload (move every
//!   5–35 min; 10% up, 10% down, 80–90% lateral) with per-move snapshot
//!   requirements.
//! * [`stats`] — the trace characterization of Fig. 3c/3d.
//!
//! # Example
//!
//! ```
//! use gcopss_game::{AreaId, GameMap};
//!
//! let map = GameMap::paper_map(); // 5 regions × 5 zones
//! assert_eq!(map.leaf_cds().len(), 31);
//!
//! // A soldier in zone /1/2 subscribes to the satellite layer, the
//! // airspace over region 1, and its own zone.
//! let zone = map.area_by_name(&"/1/2".parse().unwrap()).unwrap();
//! let subs: Vec<String> = map
//!     .subscription_cds(zone)
//!     .iter()
//!     .map(ToString::to_string)
//!     .collect();
//! assert_eq!(subs, ["/0", "/1/0", "/1/2"]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod map;
mod movement;
mod objects;
mod players;
pub mod stats;
pub mod trace;

pub use map::{AreaId, GameMap, MoveType};
pub use movement::{MoveEvent, MovementModel, MovementParams};
pub use objects::{ObjectId, ObjectModel, ObjectModelParams, ObjectState};
pub use players::{PlayerId, PlayerPopulation};
