//! Hierarchical game maps and the CD naming convention.

use std::collections::BTreeMap;
use std::fmt;

use gcopss_names::{Cd, Name};

/// Identifier of an area (any node of the map hierarchy: the world, a
/// region, or a zone).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
)]
pub struct AreaId(pub u32);

impl AreaId {
    /// Index into dense per-area arrays.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AreaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "area{}", self.0)
    }
}

/// The six movement types of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MoveType {
    /// To a lower layer, e.g. `/1/0 → /1/1` (plane landing). No snapshot
    /// download required.
    ToLowerLayer,
    /// Zone → its region, e.g. `/1/1 → /1/0` (plane take-off).
    ZoneToRegion,
    /// Region → the world layer, e.g. `/1/0 → /0` (launching a satellite).
    RegionToWorld,
    /// To a different zone in the same region, e.g. `/1/1 → /1/2`.
    ZoneSameRegion,
    /// To a different zone in a different region, e.g. `/2/3 → /3/2`.
    ZoneDifferentRegion,
    /// One region's airspace to another's, e.g. `/1/0 → /2/0`.
    RegionToRegion,
}

impl MoveType {
    /// Short label used in experiment tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::ToLowerLayer => "to lower layer",
            Self::ZoneToRegion => "zone -> region",
            Self::RegionToWorld => "region -> world",
            Self::ZoneSameRegion => "different zone [same region]",
            Self::ZoneDifferentRegion => "different zone [different region]",
            Self::RegionToRegion => "to a different region",
        }
    }

    /// All six types, in Table III order.
    #[must_use]
    pub fn all() -> [MoveType; 6] {
        [
            Self::ToLowerLayer,
            Self::ZoneToRegion,
            Self::RegionToWorld,
            Self::ZoneSameRegion,
            Self::ZoneDifferentRegion,
            Self::RegionToRegion,
        ]
    }
}

#[derive(Debug, Clone)]
struct AreaNode {
    /// Path from the root: `/` for the world, `/1` for region 1, `/1/2`
    /// for a zone.
    path: Name,
    parent: Option<AreaId>,
    children: Vec<AreaId>,
    depth: usize,
}

/// A hierarchical game map (§III-A).
///
/// Areas form a tree. A player "at" a leaf area stands in that zone; a
/// player "at" a non-leaf area occupies that layer's own-area (flies over
/// it). Every area therefore has a unique *publication* leaf CD:
///
/// * leaf area `/1/2` → publishes to `/1/2`;
/// * non-leaf area `/1` → publishes to its own-area CD `/1/0`;
/// * the world `/` → publishes to `/0`.
///
/// Subscriptions follow §III-B: a player at area `a` subscribes to the
/// own-area CDs of every strict ancestor of `a` plus `a`'s own path (which
/// aggregates everything below `a`, including `a`'s own-area).
#[derive(Debug, Clone)]
pub struct GameMap {
    areas: Vec<AreaNode>,
    by_path: BTreeMap<Name, AreaId>,
    /// Leaf publication CDs in deterministic order.
    leaf_cds: Vec<Name>,
}

impl GameMap {
    /// Builds a uniform map: `layout[d]` children at depth `d`. The paper's
    /// evaluation map is `&[5, 5]`; Fig. 1's example map is `&[2, 4]`.
    ///
    /// # Panics
    ///
    /// Panics if any layout entry is zero.
    #[must_use]
    pub fn uniform(layout: &[u32]) -> Self {
        assert!(
            layout.iter().all(|&c| c > 0),
            "layout entries must be positive"
        );
        let mut areas = vec![AreaNode {
            path: Name::root(),
            parent: None,
            children: Vec::new(),
            depth: 0,
        }];
        let mut frontier = vec![AreaId(0)];
        for (d, &fanout) in layout.iter().enumerate() {
            let mut next = Vec::new();
            for parent in frontier {
                for i in 1..=fanout {
                    let id = AreaId(areas.len() as u32);
                    let path = areas[parent.index()].path.child_index(i);
                    areas.push(AreaNode {
                        path,
                        parent: Some(parent),
                        children: Vec::new(),
                        depth: d + 1,
                    });
                    areas[parent.index()].children.push(id);
                    next.push(id);
                }
            }
            frontier = next;
        }
        Self::finish(areas)
    }

    /// The paper's evaluation map: 5 regions × 5 zones (31 leaf CDs).
    #[must_use]
    pub fn paper_map() -> Self {
        Self::uniform(&[5, 5])
    }

    /// The small example map of Fig. 1: 2 regions × 4 zones.
    #[must_use]
    pub fn figure1_map() -> Self {
        Self::uniform(&[2, 4])
    }

    fn finish(areas: Vec<AreaNode>) -> Self {
        let by_path = areas
            .iter()
            .enumerate()
            .map(|(i, a)| (a.path.clone(), AreaId(i as u32)))
            .collect();
        let mut leaf_cds: Vec<Name> = (0..areas.len())
            .map(|i| Self::pub_cd_of(&areas, AreaId(i as u32)))
            .collect();
        leaf_cds.sort();
        leaf_cds.dedup();
        Self {
            areas,
            by_path,
            leaf_cds,
        }
    }

    fn pub_cd_of(areas: &[AreaNode], area: AreaId) -> Name {
        let node = &areas[area.index()];
        if node.children.is_empty() {
            node.path.clone()
        } else {
            node.path.own_area()
        }
    }

    /// Number of areas (tree nodes), including the world.
    #[must_use]
    pub fn area_count(&self) -> usize {
        self.areas.len()
    }

    /// All area ids.
    pub fn areas(&self) -> impl Iterator<Item = AreaId> + '_ {
        (0..self.areas.len() as u32).map(AreaId)
    }

    /// The world area (tree root).
    #[must_use]
    pub fn world(&self) -> AreaId {
        AreaId(0)
    }

    /// The tree path of an area (`/1/2` for a zone, `/` for the world).
    ///
    /// # Panics
    ///
    /// Panics if `area` is unknown.
    #[must_use]
    pub fn path(&self, area: AreaId) -> &Name {
        &self.areas[area.index()].path
    }

    /// The parent area, or `None` for the world.
    #[must_use]
    pub fn parent(&self, area: AreaId) -> Option<AreaId> {
        self.areas[area.index()].parent
    }

    /// Child areas (empty for zones).
    #[must_use]
    pub fn children(&self, area: AreaId) -> &[AreaId] {
        &self.areas[area.index()].children
    }

    /// Depth in the tree (world = 0).
    #[must_use]
    pub fn depth(&self, area: AreaId) -> usize {
        self.areas[area.index()].depth
    }

    /// Returns `true` for areas with no children.
    #[must_use]
    pub fn is_leaf_area(&self, area: AreaId) -> bool {
        self.areas[area.index()].children.is_empty()
    }

    /// Looks up an area by its tree path.
    #[must_use]
    pub fn area_by_name(&self, path: &Name) -> Option<AreaId> {
        self.by_path.get(path).copied()
    }

    /// The leaf CD a player at `area` publishes to (§III-B "Hierarchical
    /// Publishing").
    #[must_use]
    pub fn publication_cd(&self, area: AreaId) -> Cd {
        Cd::new(Self::pub_cd_of(&self.areas, area))
    }

    /// The CDs a player at `area` subscribes to (§III-B "Hierarchical
    /// Subscriptions"): ancestors' own-areas, then the area's own aggregate
    /// path.
    #[must_use]
    pub fn subscription_cds(&self, area: AreaId) -> Vec<Name> {
        let mut out = Vec::new();
        // Walk ancestors from the root down for deterministic order.
        let mut ancestors = Vec::new();
        let mut cur = self.parent(area);
        while let Some(a) = cur {
            ancestors.push(a);
            cur = self.parent(a);
        }
        for a in ancestors.into_iter().rev() {
            out.push(self.path(a).own_area());
        }
        out.push(self.path(area).clone());
        out
    }

    /// All leaf publication CDs in deterministic order (the paper's 31 CDs
    /// for the 5×5 map).
    #[must_use]
    pub fn leaf_cds(&self) -> &[Name] {
        &self.leaf_cds
    }

    /// The area whose *publication CD* is `cd` (inverse of
    /// [`GameMap::publication_cd`]).
    #[must_use]
    pub fn area_of_leaf_cd(&self, cd: &Name) -> Option<AreaId> {
        if cd.last().is_some_and(gcopss_names::Component::is_own_area) {
            self.area_by_name(&cd.parent().expect("own-area CD has a parent"))
        } else {
            let id = self.area_by_name(cd)?;
            self.is_leaf_area(id).then_some(id)
        }
    }

    /// Leaf CDs visible from `area`: every leaf CD matched by one of the
    /// area's subscriptions. This is the player's Area of Interest (AoI).
    #[must_use]
    pub fn visible_leaf_cds(&self, area: AreaId) -> Vec<Name> {
        let subs = self.subscription_cds(area);
        self.leaf_cds
            .iter()
            .filter(|cd| subs.iter().any(|s| s.is_prefix_of(cd)))
            .cloned()
            .collect()
    }

    /// Areas whose publications a player at `viewer` receives.
    #[must_use]
    pub fn visible_areas(&self, viewer: AreaId) -> Vec<AreaId> {
        let subs = self.subscription_cds(viewer);
        self.areas()
            .filter(|&a| {
                let p = self.publication_cd(a);
                subs.iter().any(|s| s.is_prefix_of(p.name()))
            })
            .collect()
    }

    /// Returns `true` if a player at `viewer` receives publications made at
    /// `publisher`'s location.
    #[must_use]
    pub fn can_see(&self, viewer: AreaId, publisher: AreaId) -> bool {
        let p = self.publication_cd(publisher);
        self.subscription_cds(viewer)
            .iter()
            .any(|s| s.is_prefix_of(p.name()))
    }

    /// Classifies a move for Table III. Returns `None` for degenerate moves
    /// (same area, or multi-layer jumps the model never generates).
    #[must_use]
    pub fn classify_move(&self, from: AreaId, to: AreaId) -> Option<MoveType> {
        if from == to {
            return None;
        }
        let (df, dt) = (self.depth(from), self.depth(to));
        if dt > df {
            // Moving down any number of layers: view only narrows.
            return self
                .path(from)
                .is_prefix_of(self.path(to))
                .then_some(MoveType::ToLowerLayer);
        }
        if dt < df {
            if df - dt != 1 || self.parent(from) != Some(to) {
                return None; // only single-layer ascents are modeled
            }
            // Zone -> its region, or region -> world.
            return if self.is_leaf_area(from) {
                Some(MoveType::ZoneToRegion)
            } else {
                Some(MoveType::RegionToWorld)
            };
        }
        // Lateral.
        if self.is_leaf_area(from) && self.is_leaf_area(to) {
            if self.parent(from) == self.parent(to) {
                Some(MoveType::ZoneSameRegion)
            } else {
                Some(MoveType::ZoneDifferentRegion)
            }
        } else if !self.is_leaf_area(from) && !self.is_leaf_area(to) {
            Some(MoveType::RegionToRegion)
        } else {
            None
        }
    }

    /// The leaf CDs newly visible after moving `from → to`, i.e. the
    /// snapshots the player must download (Table III's "# of Leaf CDs"
    /// column).
    #[must_use]
    pub fn snapshot_cds_for_move(&self, from: AreaId, to: AreaId) -> Vec<Name> {
        let old: Vec<Name> = self.visible_leaf_cds(from);
        self.visible_leaf_cds(to)
            .into_iter()
            .filter(|cd| !old.contains(cd))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse_lit(s)
    }

    #[test]
    fn paper_map_has_31_leaf_cds() {
        let m = GameMap::paper_map();
        assert_eq!(m.area_count(), 1 + 5 + 25);
        let leaves = m.leaf_cds();
        assert_eq!(leaves.len(), 31);
        assert!(leaves.contains(&n("/0")));
        assert!(leaves.contains(&n("/3/0")));
        assert!(leaves.contains(&n("/5/5")));
        assert!(!leaves.contains(&n("/1")));
    }

    #[test]
    fn figure1_map_matches_paper_example() {
        let m = GameMap::figure1_map();
        assert_eq!(m.area_count(), 1 + 2 + 8);
        assert_eq!(m.leaf_cds().len(), 1 + 2 + 8);
    }

    #[test]
    fn publication_cds() {
        let m = GameMap::paper_map();
        let world = m.world();
        let region1 = m.area_by_name(&n("/1")).unwrap();
        let zone12 = m.area_by_name(&n("/1/2")).unwrap();
        assert_eq!(m.publication_cd(world).name(), &n("/0"));
        assert_eq!(m.publication_cd(region1).name(), &n("/1/0"));
        assert_eq!(m.publication_cd(zone12).name(), &n("/1/2"));
    }

    #[test]
    fn subscription_cds_follow_section_3b() {
        let m = GameMap::paper_map();
        let zone12 = m.area_by_name(&n("/1/2")).unwrap();
        assert_eq!(
            m.subscription_cds(zone12),
            vec![n("/0"), n("/1/0"), n("/1/2")]
        );
        let region1 = m.area_by_name(&n("/1")).unwrap();
        assert_eq!(m.subscription_cds(region1), vec![n("/0"), n("/1")]);
        assert_eq!(m.subscription_cds(m.world()), vec![Name::root()]);
    }

    #[test]
    fn visibility_matches_paper_semantics() {
        let m = GameMap::paper_map();
        let world = m.world();
        let r1 = m.area_by_name(&n("/1")).unwrap();
        let r2 = m.area_by_name(&n("/2")).unwrap();
        let z12 = m.area_by_name(&n("/1/2")).unwrap();
        let z13 = m.area_by_name(&n("/1/3")).unwrap();

        // Satellite sees everything.
        for a in m.areas() {
            assert!(m.can_see(world, a));
        }
        // Soldier sees: satellite, planes over region 1, own zone.
        assert!(m.can_see(z12, world));
        assert!(m.can_see(z12, r1));
        assert!(m.can_see(z12, z12));
        assert!(!m.can_see(z12, z13));
        assert!(!m.can_see(z12, r2));
        // Plane over region 1 sees all of region 1 and the satellite.
        assert!(m.can_see(r1, z12));
        assert!(m.can_see(r1, z13));
        assert!(m.can_see(r1, world));
        assert!(!m.can_see(r1, r2));
        // Soldier does NOT see other soldiers' zones; plane does.
        assert_eq!(m.visible_leaf_cds(z12).len(), 3);
        assert_eq!(m.visible_leaf_cds(r1).len(), 7); // /0, /1/0, /1/1../1/5
        assert_eq!(m.visible_leaf_cds(world).len(), 31);
    }

    #[test]
    fn area_of_leaf_cd_round_trips() {
        let m = GameMap::paper_map();
        for a in m.areas() {
            let cd = m.publication_cd(a);
            assert_eq!(m.area_of_leaf_cd(cd.name()), Some(a));
        }
        assert_eq!(m.area_of_leaf_cd(&n("/1")), None, "/1 is not a leaf CD");
        assert_eq!(m.area_of_leaf_cd(&n("/9/9")), None);
    }

    #[test]
    fn move_classification_matches_table3() {
        let m = GameMap::paper_map();
        let a = |s: &str| m.area_by_name(&n(s)).unwrap();
        assert_eq!(
            m.classify_move(a("/1"), a("/1/1")),
            Some(MoveType::ToLowerLayer)
        );
        assert_eq!(
            m.classify_move(a("/1/1"), a("/1")),
            Some(MoveType::ZoneToRegion)
        );
        assert_eq!(
            m.classify_move(a("/1"), m.world()),
            Some(MoveType::RegionToWorld)
        );
        assert_eq!(
            m.classify_move(a("/1/1"), a("/1/2")),
            Some(MoveType::ZoneSameRegion)
        );
        assert_eq!(
            m.classify_move(a("/2/3"), a("/3/2")),
            Some(MoveType::ZoneDifferentRegion)
        );
        assert_eq!(
            m.classify_move(a("/1"), a("/2")),
            Some(MoveType::RegionToRegion)
        );
        assert_eq!(m.classify_move(a("/1"), a("/1")), None);
    }

    #[test]
    fn snapshot_counts_match_table3() {
        let m = GameMap::paper_map();
        let a = |s: &str| m.area_by_name(&n(s)).unwrap();
        // Row 1: to lower layer -> 0 CDs.
        assert_eq!(m.snapshot_cds_for_move(a("/1"), a("/1/1")).len(), 0);
        // Row 2: zone -> region -> 4 CDs (/1/2../1/5).
        assert_eq!(m.snapshot_cds_for_move(a("/1/1"), a("/1")).len(), 4);
        // Row 3: region -> world -> 24 CDs.
        assert_eq!(m.snapshot_cds_for_move(a("/1"), m.world()).len(), 24);
        // Row 4: different zone, same region -> 1 CD.
        assert_eq!(m.snapshot_cds_for_move(a("/1/1"), a("/1/2")).len(), 1);
        // Row 5: different zone, different region -> 2 CDs.
        assert_eq!(m.snapshot_cds_for_move(a("/2/3"), a("/3/2")).len(), 2);
        // Row 6: region -> region -> 6 CDs.
        assert_eq!(m.snapshot_cds_for_move(a("/1"), a("/2")).len(), 6);
    }

    #[test]
    fn deeper_hierarchies_work() {
        let m = GameMap::uniform(&[2, 2, 2]);
        assert_eq!(m.area_count(), 1 + 2 + 4 + 8);
        // Leaf CDs: 8 zones + 4 + 2 + 1 own-areas.
        assert_eq!(m.leaf_cds().len(), 15);
        let deep = m.area_by_name(&n("/1/2/1")).unwrap();
        assert_eq!(
            m.subscription_cds(deep),
            vec![n("/0"), n("/1/0"), n("/1/2/0"), n("/1/2/1")]
        );
        assert_eq!(m.depth(deep), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_fanout_rejected() {
        let _ = GameMap::uniform(&[3, 0]);
    }
}
