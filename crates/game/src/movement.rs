//! The player-movement workload (§V-B "Message Dissemination for Players
//! Moving").

use gcopss_names::Name;
use gcopss_compat::StdRng;
use gcopss_compat::{Rng, SeedableRng};

use crate::{AreaId, GameMap, MoveType, PlayerId, PlayerPopulation};

/// Parameters of the movement model. The paper's defaults: every player
/// moves after an interval of 5–35 minutes; each move goes up with
/// probability 10%, down with 10% (when possible) and laterally otherwise.
#[derive(Debug, Clone)]
pub struct MovementParams {
    /// Per-player interval between moves, in nanoseconds (paper:
    /// 5–35 min).
    pub interval_ns: (u64, u64),
    /// Probability of moving one layer up (if not already at the world).
    pub p_up: f64,
    /// Probability of moving one layer down (if not at a zone).
    pub p_down: f64,
}

impl Default for MovementParams {
    fn default() -> Self {
        Self {
            interval_ns: (300_000_000_000, 2_100_000_000_000),
            p_up: 0.10,
            p_down: 0.10,
        }
    }
}

/// One movement of one player, with the snapshots it requires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MoveEvent {
    /// Event time in nanoseconds from trace start.
    pub time_ns: u64,
    /// The moving player.
    pub player: PlayerId,
    /// Area the player leaves.
    pub from: AreaId,
    /// Area the player enters.
    pub to: AreaId,
    /// Table III movement classification.
    pub move_type: MoveType,
    /// Leaf CDs whose snapshot the player must download (newly visible).
    pub snapshot_cds: Vec<Name>,
}

/// Generates movement traces over a [`GameMap`].
#[derive(Debug, Clone)]
pub struct MovementModel {
    params: MovementParams,
}

impl MovementModel {
    /// Creates a model with the given parameters.
    #[must_use]
    pub fn new(params: MovementParams) -> Self {
        Self { params }
    }

    /// Generates all moves up to `duration_ns`, sorted by time. Players
    /// start at their [`PlayerPopulation`] areas; each subsequent move
    /// starts from wherever the previous one ended.
    #[must_use]
    pub fn generate(
        &self,
        seed: u64,
        map: &GameMap,
        population: &PlayerPopulation,
        duration_ns: u64,
    ) -> Vec<MoveEvent> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::new();
        for player in population.players() {
            let mut area = population.area_of(player);
            let mut t = rng.gen_range(self.params.interval_ns.0..=self.params.interval_ns.1);
            while t < duration_ns {
                let to = self.next_area(&mut rng, map, area);
                if to != area {
                    let move_type = map
                        .classify_move(area, to)
                        .expect("generated moves are single-step");
                    events.push(MoveEvent {
                        time_ns: t,
                        player,
                        from: area,
                        to,
                        move_type,
                        snapshot_cds: map.snapshot_cds_for_move(area, to),
                    });
                    area = to;
                }
                t += rng.gen_range(self.params.interval_ns.0..=self.params.interval_ns.1);
            }
        }
        events.sort_by_key(|e| e.time_ns);
        events
    }

    /// Picks the next area: up / down / lateral per the configured
    /// probabilities, falling back to lateral when up/down is impossible.
    fn next_area(&self, rng: &mut StdRng, map: &GameMap, from: AreaId) -> AreaId {
        let roll: f64 = rng.gen();
        if roll < self.params.p_up {
            if let Some(parent) = map.parent(from) {
                return parent;
            }
        } else if roll < self.params.p_up + self.params.p_down {
            let children = map.children(from);
            if !children.is_empty() {
                return children[rng.gen_range(0..children.len())];
            }
        }
        // Lateral: a different area at the same depth.
        let depth = map.depth(from);
        let peers: Vec<AreaId> = map
            .areas()
            .filter(|&a| map.depth(a) == depth && a != from)
            .collect();
        if peers.is_empty() {
            // The world has no peer; descend instead.
            let children = map.children(from);
            if children.is_empty() {
                return from;
            }
            return children[rng.gen_range(0..children.len())];
        }
        peers[rng.gen_range(0..peers.len())]
    }
}

impl Default for MovementModel {
    fn default() -> Self {
        Self::new(MovementParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (GameMap, PlayerPopulation) {
        let map = GameMap::paper_map();
        let pop = PlayerPopulation::uniform_per_area(&map, 2);
        (map, pop)
    }

    #[test]
    fn moves_are_sorted_and_classified() {
        let (map, pop) = setup();
        let model = MovementModel::default();
        // 2 hours of game time -> every player moves a handful of times.
        let events = model.generate(3, &map, &pop, 7_200_000_000_000);
        assert!(!events.is_empty());
        for w in events.windows(2) {
            assert!(w[0].time_ns <= w[1].time_ns);
        }
        for e in &events {
            assert_ne!(e.from, e.to);
            assert_eq!(map.classify_move(e.from, e.to), Some(e.move_type));
            assert_eq!(
                e.snapshot_cds,
                map.snapshot_cds_for_move(e.from, e.to),
                "snapshot CDs consistent"
            );
        }
    }

    #[test]
    fn move_chain_is_consistent_per_player() {
        let (map, pop) = setup();
        let events = MovementModel::default().generate(5, &map, &pop, 7_200_000_000_000);
        let mut loc: Vec<AreaId> = pop.players().map(|p| pop.area_of(p)).collect();
        for e in &events {
            assert_eq!(loc[e.player.index()], e.from, "moves chain correctly");
            loc[e.player.index()] = e.to;
        }
    }

    #[test]
    fn all_six_move_types_occur() {
        let (map, pop) = setup();
        // Long duration + many players => all move types appear.
        let events = MovementModel::default().generate(8, &map, &pop, 36_000_000_000_000);
        for t in MoveType::all() {
            assert!(
                events.iter().any(|e| e.move_type == t),
                "move type {t:?} never generated"
            );
        }
    }

    #[test]
    fn lateral_moves_dominate() {
        let (map, pop) = setup();
        let events = MovementModel::default().generate(9, &map, &pop, 36_000_000_000_000);
        let lateral = events
            .iter()
            .filter(|e| {
                matches!(
                    e.move_type,
                    MoveType::ZoneSameRegion
                        | MoveType::ZoneDifferentRegion
                        | MoveType::RegionToRegion
                )
            })
            .count();
        let frac = lateral as f64 / events.len() as f64;
        assert!(
            (0.6..=0.95).contains(&frac),
            "lateral fraction {frac:.2} out of expected range"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let (map, pop) = setup();
        let a = MovementModel::default().generate(1, &map, &pop, 7_200_000_000_000);
        let b = MovementModel::default().generate(1, &map, &pop, 7_200_000_000_000);
        assert_eq!(a, b);
    }
}
