//! Game objects and the snapshot size model.

use std::fmt;

use gcopss_names::Name;
use gcopss_compat::StdRng;
use gcopss_compat::{Rng, SeedableRng};

use crate::GameMap;

/// Identifier of a game object.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
)]
pub struct ObjectId(pub u32);

impl ObjectId {
    /// Index into dense per-object arrays.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

/// The evolving state of one object under the paper's size model (§V-B):
///
/// `size(obj_vn) = Σ_{i=1..n} αⁿ⁻ⁱ · size(upd_i)`
///
/// i.e. each update contributes its size, discounted geometrically by age —
/// equivalently `size_n = α·size_{n-1} + size(upd_n)`. Version 0 (the
/// pristine object shipped with the map) has size 0 for snapshot purposes:
/// the broker "does not send anything if the object has not changed".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectState {
    /// Number of updates applied.
    pub version: u64,
    /// Current snapshot size in (fractional) bytes.
    pub size: f64,
}

impl ObjectState {
    /// A pristine, never-updated object.
    #[must_use]
    pub fn pristine() -> Self {
        Self {
            version: 0,
            size: 0.0,
        }
    }

    /// Applies one update of `update_size` bytes with decay factor `alpha`.
    pub fn apply_update(&mut self, alpha: f64, update_size: u32) {
        self.size = self.size * alpha + f64::from(update_size);
        self.version += 1;
    }

    /// Snapshot bytes the broker must ship for this object (0 when
    /// pristine).
    #[must_use]
    pub fn snapshot_bytes(&self) -> u32 {
        self.size.round() as u32
    }
}

impl Default for ObjectState {
    fn default() -> Self {
        Self::pristine()
    }
}

/// Parameters of the object distribution.
#[derive(Debug, Clone)]
pub struct ObjectModelParams {
    /// Objects per leaf area, drawn uniformly from this inclusive range
    /// (the paper's Fig. 3d shows 80–120 per area; the trace totals 3,197
    /// objects over 31 areas).
    pub objects_per_area: (u32, u32),
    /// Geometric decay of update contributions to the snapshot size. The
    /// paper sets α = 0.95; with its update sizes (50–350 B) and counts the
    /// reported final sizes (579–1,740 B) correspond to objects re-created
    /// periodically, which we reproduce by resetting long-lived objects is
    /// unnecessary — the steady state `mean_update/(1-α)` is simply capped
    /// by `max_size`.
    pub alpha: f64,
    /// Cap on the snapshot size of a single object (bytes). The paper
    /// reports final object sizes of 579–1,740 bytes; the cap keeps
    /// heavily-updated objects in that regime.
    pub max_size: u32,
}

impl Default for ObjectModelParams {
    fn default() -> Self {
        Self {
            objects_per_area: (80, 120),
            alpha: 0.95,
            max_size: 1_740,
        }
    }
}

/// The set of game objects: their placement over leaf areas and their
/// evolving snapshot sizes.
///
/// # Example
///
/// ```
/// # use gcopss_game::{GameMap, ObjectModel, ObjectModelParams};
/// let map = GameMap::paper_map();
/// let model = ObjectModel::generate(7, &map, &ObjectModelParams::default());
/// assert!(model.object_count() >= 31 * 80);
/// ```
#[derive(Debug, Clone)]
pub struct ObjectModel {
    params: ObjectModelParams,
    /// Per leaf-CD (indexed as in `GameMap::leaf_cds` order): object ids.
    per_area: Vec<Vec<ObjectId>>,
    /// Leaf CD of each object.
    area_of: Vec<usize>,
    /// Evolving state of each object.
    states: Vec<ObjectState>,
    /// Leaf CDs, mirroring the map.
    leaf_cds: Vec<Name>,
}

impl ObjectModel {
    /// Distributes objects over the leaf areas of `map`, deterministically
    /// for a given `seed`.
    #[must_use]
    pub fn generate(seed: u64, map: &GameMap, params: &ObjectModelParams) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let leaf_cds: Vec<Name> = map.leaf_cds().to_vec();
        let mut per_area = Vec::with_capacity(leaf_cds.len());
        let mut area_of = Vec::new();
        for (ai, _) in leaf_cds.iter().enumerate() {
            let (lo, hi) = params.objects_per_area;
            let count = rng.gen_range(lo..=hi);
            let mut ids = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let id = ObjectId(area_of.len() as u32);
                area_of.push(ai);
                ids.push(id);
            }
            per_area.push(ids);
        }
        let states = vec![ObjectState::pristine(); area_of.len()];
        Self {
            params: params.clone(),
            per_area,
            area_of,
            states,
            leaf_cds,
        }
    }

    /// Total number of objects.
    #[must_use]
    pub fn object_count(&self) -> usize {
        self.area_of.len()
    }

    /// The leaf CD containing an object.
    ///
    /// # Panics
    ///
    /// Panics if `obj` is unknown.
    #[must_use]
    pub fn leaf_cd_of(&self, obj: ObjectId) -> &Name {
        &self.leaf_cds[self.area_of[obj.index()]]
    }

    /// The objects located in the given leaf CD, if it exists.
    #[must_use]
    pub fn objects_in(&self, leaf_cd: &Name) -> &[ObjectId] {
        self.leaf_cds
            .iter()
            .position(|c| c == leaf_cd)
            .map_or(&[], |i| &self.per_area[i])
    }

    /// Number of objects per leaf CD, in `leaf_cds` order (Fig. 3d).
    #[must_use]
    pub fn objects_per_area(&self) -> Vec<(Name, usize)> {
        self.leaf_cds
            .iter()
            .cloned()
            .zip(self.per_area.iter().map(Vec::len))
            .collect()
    }

    /// Applies an update of `size` bytes to `obj`.
    ///
    /// # Panics
    ///
    /// Panics if `obj` is unknown.
    pub fn apply_update(&mut self, obj: ObjectId, size: u32) {
        let s = &mut self.states[obj.index()];
        s.apply_update(self.params.alpha, size);
        if s.size > f64::from(self.params.max_size) {
            s.size = f64::from(self.params.max_size);
        }
    }

    /// Current state of an object.
    ///
    /// # Panics
    ///
    /// Panics if `obj` is unknown.
    #[must_use]
    pub fn state(&self, obj: ObjectId) -> ObjectState {
        self.states[obj.index()]
    }

    /// Total snapshot bytes for one leaf CD: the sum of the snapshot sizes
    /// of its modified objects (pristine objects cost nothing). This is
    /// what a broker ships when a player moves into the area.
    #[must_use]
    pub fn snapshot_bytes_of(&self, leaf_cd: &Name) -> u64 {
        self.objects_in(leaf_cd)
            .iter()
            .map(|o| u64::from(self.states[o.index()].snapshot_bytes()))
            .sum()
    }

    /// Count of modified (version > 0) objects in a leaf CD.
    #[must_use]
    pub fn modified_objects_in(&self, leaf_cd: &Name) -> usize {
        self.objects_in(leaf_cd)
            .iter()
            .filter(|o| self.states[o.index()].version > 0)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_recurrence_matches_closed_form() {
        let alpha = 0.95;
        let updates = [100u32, 200, 300, 150];
        let mut s = ObjectState::pristine();
        for &u in &updates {
            s.apply_update(alpha, u);
        }
        let n = updates.len();
        let closed: f64 = updates
            .iter()
            .enumerate()
            .map(|(i, &u)| alpha.powi((n - 1 - i) as i32) * f64::from(u))
            .sum();
        assert!((s.size - closed).abs() < 1e-9);
        assert_eq!(s.version, 4);
    }

    #[test]
    fn pristine_objects_cost_nothing() {
        let s = ObjectState::pristine();
        assert_eq!(s.snapshot_bytes(), 0);
        assert_eq!(s.version, 0);
    }

    #[test]
    fn generation_is_deterministic_and_in_range() {
        let map = GameMap::paper_map();
        let p = ObjectModelParams::default();
        let a = ObjectModel::generate(5, &map, &p);
        let b = ObjectModel::generate(5, &map, &p);
        assert_eq!(a.object_count(), b.object_count());
        for (_, count) in a.objects_per_area() {
            assert!((80..=120).contains(&count));
        }
        // Total in the ballpark of the paper's 3,197.
        assert!((31 * 80..=31 * 120).contains(&a.object_count()));
    }

    #[test]
    fn updates_accumulate_and_cap() {
        let map = GameMap::paper_map();
        let mut m = ObjectModel::generate(
            1,
            &map,
            &ObjectModelParams {
                max_size: 1000,
                ..Default::default()
            },
        );
        let cd = map.leaf_cds()[0].clone();
        let obj = m.objects_in(&cd)[0];
        for _ in 0..200 {
            m.apply_update(obj, 300);
        }
        let s = m.state(obj);
        assert_eq!(s.snapshot_bytes(), 1000, "capped");
        assert_eq!(s.version, 200);
        assert!(m.snapshot_bytes_of(&cd) >= 1000);
        assert_eq!(m.modified_objects_in(&cd), 1);
    }

    #[test]
    fn objects_map_back_to_their_area() {
        let map = GameMap::paper_map();
        let m = ObjectModel::generate(2, &map, &ObjectModelParams::default());
        for ai in 0..map.leaf_cds().len() {
            let cd = &map.leaf_cds()[ai];
            for &o in m.objects_in(cd) {
                assert_eq!(m.leaf_cd_of(o), cd);
            }
        }
        assert!(m.objects_in(&Name::parse_lit("/9/9")).is_empty());
    }
}
