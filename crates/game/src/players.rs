//! Player identities and placement.

use std::fmt;

use gcopss_compat::StdRng;
use gcopss_compat::{Rng, SeedableRng};

use crate::{AreaId, GameMap};

/// Identifier of a player.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
)]
pub struct PlayerId(pub u32);

impl PlayerId {
    /// Index into dense per-player arrays.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PlayerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "player{}", self.0)
    }
}

/// A placement of players over the areas of a [`GameMap`].
///
/// Two constructions mirror the paper's setups:
/// [`PlayerPopulation::uniform_per_area`] (the 62-player microbenchmark: 2
/// players in every area) and [`PlayerPopulation::random_per_area`] (the
/// 414-player trace: 4–20 players per area, Fig. 3d).
#[derive(Debug, Clone)]
pub struct PlayerPopulation {
    /// Initial area of each player, indexed by player id.
    locations: Vec<AreaId>,
}

impl PlayerPopulation {
    /// Places exactly `per_area` players in every area (including the
    /// world and region layers). The paper's microbenchmark uses
    /// `per_area = 2` on the 31-area map → 62 players.
    #[must_use]
    pub fn uniform_per_area(map: &GameMap, per_area: u32) -> Self {
        let mut locations = Vec::new();
        for area in map.areas() {
            for _ in 0..per_area {
                locations.push(area);
            }
        }
        Self { locations }
    }

    /// Places a uniformly-drawn `per_area.0..=per_area.1` players in every
    /// area, deterministically for a given seed. With the paper's 31 areas
    /// and 4–20 players per area this lands near the trace's 414 players;
    /// [`PlayerPopulation::resize`] trims or pads to hit it exactly.
    #[must_use]
    pub fn random_per_area(seed: u64, map: &GameMap, per_area: (u32, u32)) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut locations = Vec::new();
        for area in map.areas() {
            let count = rng.gen_range(per_area.0..=per_area.1);
            for _ in 0..count {
                locations.push(area);
            }
        }
        Self { locations }
    }

    /// Adjusts the population to exactly `count` players by trimming the
    /// tail or cycling placements from the start.
    #[must_use]
    pub fn resize(mut self, count: usize) -> Self {
        if self.locations.len() > count {
            self.locations.truncate(count);
        } else {
            let mut i = 0;
            while self.locations.len() < count {
                let a = self.locations[i % self.locations.len().max(1)];
                self.locations.push(a);
                i += 1;
            }
        }
        self
    }

    /// Number of players.
    #[must_use]
    pub fn len(&self) -> usize {
        self.locations.len()
    }

    /// Returns `true` if there are no players.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.locations.is_empty()
    }

    /// All player ids.
    pub fn players(&self) -> impl Iterator<Item = PlayerId> + '_ {
        (0..self.locations.len() as u32).map(PlayerId)
    }

    /// The initial area of a player.
    ///
    /// # Panics
    ///
    /// Panics if `p` is unknown.
    #[must_use]
    pub fn area_of(&self, p: PlayerId) -> AreaId {
        self.locations[p.index()]
    }

    /// Players initially located in `area`.
    #[must_use]
    pub fn players_in(&self, area: AreaId) -> Vec<PlayerId> {
        self.players()
            .filter(|p| self.area_of(*p) == area)
            .collect()
    }

    /// Per-area player counts in area-id order (Fig. 3d).
    #[must_use]
    pub fn per_area_counts(&self, map: &GameMap) -> Vec<(AreaId, usize)> {
        map.areas()
            .map(|a| (a, self.players_in(a).len()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn microbenchmark_population_is_62() {
        let map = GameMap::paper_map();
        let pop = PlayerPopulation::uniform_per_area(&map, 2);
        assert_eq!(pop.len(), 62);
        for (_, c) in pop.per_area_counts(&map) {
            assert_eq!(c, 2);
        }
    }

    #[test]
    fn random_population_in_range_and_deterministic() {
        let map = GameMap::paper_map();
        let a = PlayerPopulation::random_per_area(9, &map, (4, 20));
        let b = PlayerPopulation::random_per_area(9, &map, (4, 20));
        assert_eq!(a.len(), b.len());
        for (_, c) in a.per_area_counts(&map) {
            assert!((4..=20).contains(&c));
        }
        // 31 areas x 4..20 -> mean 372; resize to the paper's 414.
        let resized = a.resize(414);
        assert_eq!(resized.len(), 414);
    }

    #[test]
    fn resize_trims() {
        let map = GameMap::paper_map();
        let pop = PlayerPopulation::uniform_per_area(&map, 2).resize(10);
        assert_eq!(pop.len(), 10);
        assert!(!pop.is_empty());
    }

    #[test]
    fn players_in_lists_members() {
        let map = GameMap::paper_map();
        let pop = PlayerPopulation::uniform_per_area(&map, 2);
        let world_players = pop.players_in(map.world());
        assert_eq!(world_players.len(), 2);
        assert_eq!(pop.area_of(world_players[0]), map.world());
    }
}
