//! Trace characterization (Fig. 3c / Fig. 3d of the paper).

use std::collections::BTreeMap;

use gcopss_names::Name;

use crate::trace::TraceEvent;
use crate::{GameMap, ObjectModel, PlayerPopulation};

/// Updates performed by each player, sorted ascending — the quantity whose
/// CDF the paper plots in Fig. 3c.
#[must_use]
pub fn updates_per_player(events: &[TraceEvent], player_count: usize) -> Vec<u64> {
    let mut counts = vec![0u64; player_count];
    for e in events {
        if let Some(c) = counts.get_mut(e.player.index()) {
            *c += 1;
        }
    }
    counts.sort_unstable();
    counts
}

/// CDF points `(updates, cumulative fraction of players)` from the sorted
/// per-player counts.
#[must_use]
pub fn updates_per_player_cdf(events: &[TraceEvent], player_count: usize) -> Vec<(u64, f64)> {
    let sorted = updates_per_player(events, player_count);
    let n = sorted.len();
    sorted
        .into_iter()
        .enumerate()
        .map(|(i, c)| (c, (i + 1) as f64 / n as f64))
        .collect()
}

/// Per-leaf-CD statistics: players located there, objects placed there and
/// updates observed there — the data behind Fig. 3d.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AreaStats {
    /// The area's leaf CD.
    pub cd: Name,
    /// Players whose publication CD this is.
    pub players: usize,
    /// Objects placed in the area.
    pub objects: usize,
    /// Updates published to the area in the trace.
    pub updates: u64,
}

/// Computes per-area statistics for a trace.
#[must_use]
pub fn per_area_stats(
    map: &GameMap,
    objects: &ObjectModel,
    population: &PlayerPopulation,
    events: &[TraceEvent],
) -> Vec<AreaStats> {
    let mut updates: BTreeMap<&Name, u64> = BTreeMap::new();
    for e in events {
        *updates.entry(&e.cd).or_insert(0) += 1;
    }
    let mut players_per_cd: BTreeMap<Name, usize> = BTreeMap::new();
    for p in population.players() {
        let cd = map.publication_cd(population.area_of(p));
        *players_per_cd.entry(cd.name().clone()).or_insert(0) += 1;
    }
    map.leaf_cds()
        .iter()
        .map(|cd| AreaStats {
            cd: cd.clone(),
            players: players_per_cd.get(cd).copied().unwrap_or(0),
            objects: objects.objects_in(cd).len(),
            updates: updates.get(cd).copied().unwrap_or(0),
        })
        .collect()
}

/// Per-layer update counts on each object's area depth: world / regions /
/// zones, mirroring the paper's observation that the 87 top-layer objects
/// see 27k+ changes each while bottom-layer objects see far fewer.
#[must_use]
pub fn updates_per_layer(map: &GameMap, events: &[TraceEvent]) -> BTreeMap<usize, u64> {
    let mut out = BTreeMap::new();
    for e in events {
        let depth = map
            .area_of_leaf_cd(&e.cd)
            .map_or(usize::MAX, |a| map.depth(a));
        *out.entry(depth).or_insert(0) += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{microbenchmark_trace, MicrobenchParams};
    use crate::ObjectModelParams;

    fn setup() -> (GameMap, ObjectModel, PlayerPopulation, Vec<TraceEvent>) {
        let map = GameMap::paper_map();
        let objects = ObjectModel::generate(1, &map, &ObjectModelParams::default());
        let pop = PlayerPopulation::uniform_per_area(&map, 2);
        let events = microbenchmark_trace(4, &map, &objects, &pop, &MicrobenchParams::default());
        (map, objects, pop, events)
    }

    #[test]
    fn updates_per_player_sums_to_total() {
        let (_, _, pop, events) = setup();
        let counts = updates_per_player(&events, pop.len());
        assert_eq!(counts.len(), 62);
        assert_eq!(counts.iter().sum::<u64>() as usize, events.len());
        assert!(counts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn cdf_ends_at_one() {
        let (_, _, pop, events) = setup();
        let cdf = updates_per_player_cdf(&events, pop.len());
        assert_eq!(cdf.last().unwrap().1, 1.0);
        assert!(cdf[0].1 > 0.0);
    }

    #[test]
    fn per_area_stats_cover_all_leaf_cds() {
        let (map, objects, pop, events) = setup();
        let stats = per_area_stats(&map, &objects, &pop, &events);
        assert_eq!(stats.len(), 31);
        let total_updates: u64 = stats.iter().map(|s| s.updates).sum();
        assert_eq!(total_updates as usize, events.len());
        let total_players: usize = stats.iter().map(|s| s.players).sum();
        assert_eq!(total_players, 62);
        for s in &stats {
            assert!((80..=120).contains(&s.objects));
            assert_eq!(s.players, 2);
        }
    }

    #[test]
    fn world_layer_receives_most_updates_per_area() {
        let (map, _, _, events) = setup();
        let layers = updates_per_layer(&map, &events);
        // depth 0: 1 area; depth 1: 5; depth 2: 25.
        let per_area_0 = layers[&0] as f64;
        let per_area_2 = layers[&2] as f64 / 25.0;
        assert!(per_area_0 > per_area_2);
    }
}
