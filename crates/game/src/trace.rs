//! Synthetic workload traces with the statistics of the paper's traces.
//!
//! The paper drives its evaluation with two traces:
//!
//! * a **microbenchmark trace**: 62 players (2 per area), 1 minute, each
//!   player publishing every 100–500 ms with 50–350-byte payloads,
//!   totalling ≈12,440 publish events (§V-A);
//! * a **Counter-Strike trace**: 414 unique players and 1,686,905 updates,
//!   with a heavy-tailed per-player update distribution (Fig. 3c) and a
//!   mean inter-arrival around 2.4 ms in the evaluated peak window (§V-B).
//!
//! The original Wireshark capture is not redistributable, so
//! [`CsTraceGenerator`] synthesizes a trace matching those published
//! statistics, deterministically from a seed.

use gcopss_names::Name;
use gcopss_compat::distributions::{Distribution, WeightedIndex};
use gcopss_compat::StdRng;
use gcopss_compat::{Rng, SeedableRng};

use crate::{GameMap, ObjectId, ObjectModel, PlayerId, PlayerPopulation};

/// One publish event of a trace: at `time_ns`, `player` modifies `object`
/// (located in leaf CD `cd`) with an update of `size` bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event time in nanoseconds from trace start.
    pub time_ns: u64,
    /// The publishing player.
    pub player: PlayerId,
    /// The leaf CD the update is published to.
    pub cd: Name,
    /// The modified object.
    pub object: ObjectId,
    /// Update payload size in bytes.
    pub size: u32,
}

/// Parameters of the microbenchmark trace (§V-A defaults).
#[derive(Debug, Clone)]
pub struct MicrobenchParams {
    /// Trace duration in nanoseconds (paper: 1 minute).
    pub duration_ns: u64,
    /// Per-player publish interval range in nanoseconds (paper:
    /// 100–500 ms).
    pub interval_ns: (u64, u64),
    /// Publication size range in bytes (paper: 50–350).
    pub size: (u32, u32),
}

impl Default for MicrobenchParams {
    fn default() -> Self {
        Self {
            duration_ns: 60_000_000_000,
            interval_ns: (100_000_000, 500_000_000),
            size: (50, 350),
        }
    }
}

/// Generates the microbenchmark trace: every player publishes periodically
/// (uniform random interval) to an object drawn uniformly from its AoI.
///
/// Events are returned sorted by time.
#[must_use]
pub fn microbenchmark_trace(
    seed: u64,
    map: &GameMap,
    objects: &ObjectModel,
    population: &PlayerPopulation,
    params: &MicrobenchParams,
) -> Vec<TraceEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    let visible = VisibleObjects::build(map, objects, population);
    let mut events = Vec::new();
    for player in population.players() {
        let mut t = rng.gen_range(0..=params.interval_ns.1);
        while t < params.duration_ns {
            let (cd, object) = visible.pick(&mut rng, player);
            events.push(TraceEvent {
                time_ns: t,
                player,
                cd,
                object,
                size: rng.gen_range(params.size.0..=params.size.1),
            });
            t += rng.gen_range(params.interval_ns.0..=params.interval_ns.1);
        }
    }
    events.sort_by_key(|e| e.time_ns);
    events
}

/// Parameters of the synthetic Counter-Strike trace (§V-B defaults).
#[derive(Debug, Clone)]
pub struct CsTraceParams {
    /// Total number of update events (paper: 1,686,905). Scale this down
    /// for quick runs; the per-player distribution shape is preserved.
    pub total_updates: usize,
    /// Mean inter-arrival time between consecutive updates, network-wide
    /// (paper: ≈2.4 ms in the evaluated window).
    pub mean_interarrival_ns: u64,
    /// Log-normal σ of the per-player update-rate weights; ≈1.5 produces
    /// the heavy tail of Fig. 3c.
    pub weight_sigma: f64,
    /// Linear ramp of the arrival rate across the trace, as multipliers of
    /// the mean inter-arrival at the start and end. The real capture grows
    /// busier toward its peak — the paper's 2-RP run only congests "after
    /// 70,000 packets" — so the default starts ~35% slower and ends ~35%
    /// faster than the mean (averaging to the configured mean).
    pub ramp: (f64, f64),
    /// Publication size range in bytes (Feng et al.: game packets are
    /// almost all under 200 B; the paper uses 50–350).
    pub size: (u32, u32),
}

impl Default for CsTraceParams {
    fn default() -> Self {
        Self {
            total_updates: 1_686_905,
            mean_interarrival_ns: 2_400_000,
            weight_sigma: 1.5,
            ramp: (1.35, 0.65),
            size: (50, 350),
        }
    }
}

/// Synthesizes a Counter-Strike-like trace: a Poisson arrival process whose
/// events are attributed to players according to heavy-tailed (log-normal)
/// weights, each update targeting an object drawn uniformly from the
/// player's AoI — so world-layer objects, visible to everyone, accumulate
/// the most changes, exactly as in the paper's object statistics.
#[derive(Debug, Clone)]
pub struct CsTraceGenerator {
    params: CsTraceParams,
    weights: Vec<f64>,
}

impl CsTraceGenerator {
    /// Prepares a generator for `population`, drawing per-player weights
    /// deterministically from `seed`.
    #[must_use]
    pub fn new(seed: u64, population: &PlayerPopulation, params: CsTraceParams) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let weights = (0..population.len())
            .map(|_| {
                // ln N(0, sigma^2)
                let z: f64 = sample_standard_normal(&mut rng);
                (params.weight_sigma * z).exp()
            })
            .collect();
        Self { params, weights }
    }

    /// The relative update-rate weight of each player.
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Generates the trace (sorted by time).
    ///
    /// # Panics
    ///
    /// Panics if the population is empty.
    #[must_use]
    pub fn generate(
        &self,
        seed: u64,
        map: &GameMap,
        objects: &ObjectModel,
        population: &PlayerPopulation,
    ) -> Vec<TraceEvent> {
        assert!(!population.is_empty(), "population must be non-empty");
        let mut rng = StdRng::seed_from_u64(seed);
        let visible = VisibleObjects::build(map, objects, population);
        let pick_player =
            WeightedIndex::new(&self.weights).expect("weights are positive and finite");
        let mean = self.params.mean_interarrival_ns as f64;
        let (r0, r1) = self.params.ramp;
        let n = self.params.total_updates.max(1) as f64;
        let mut t = 0u64;
        let mut events = Vec::with_capacity(self.params.total_updates);
        for k in 0..self.params.total_updates {
            // Exponential gap -> (non-homogeneous) Poisson process whose
            // rate ramps linearly across the trace.
            let factor = r0 + (r1 - r0) * (k as f64 / n);
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += (-u.ln() * mean * factor).round() as u64;
            let player = PlayerId(pick_player.sample(&mut rng) as u32);
            let (cd, object) = visible.pick(&mut rng, player);
            events.push(TraceEvent {
                time_ns: t,
                player,
                cd,
                object,
                size: rng.gen_range(self.params.size.0..=self.params.size.1),
            });
        }
        events
    }
}

/// Per-player cache of the visible objects (AoI), for fast uniform draws.
struct VisibleObjects {
    /// For each player: flattened (leaf CD index into `cds`, object) list.
    per_player: Vec<Vec<(usize, ObjectId)>>,
    cds: Vec<Name>,
}

impl VisibleObjects {
    fn build(map: &GameMap, objects: &ObjectModel, population: &PlayerPopulation) -> Self {
        let cds: Vec<Name> = map.leaf_cds().to_vec();
        // Visible object lists are identical for players in the same area;
        // build one per area and share.
        let mut per_area: Vec<Option<Vec<(usize, ObjectId)>>> =
            vec![None; map.area_count()];
        let mut per_player = Vec::with_capacity(population.len());
        for p in population.players() {
            let area = population.area_of(p);
            if per_area[area.index()].is_none() {
                let mut list = Vec::new();
                for cd in map.visible_leaf_cds(area) {
                    let ci = cds.iter().position(|c| *c == cd).expect("leaf CD known");
                    for &o in objects.objects_in(&cd) {
                        list.push((ci, o));
                    }
                }
                per_area[area.index()] = Some(list);
            }
            per_player.push(per_area[area.index()].clone().expect("just built"));
        }
        Self { per_player, cds }
    }

    fn pick(&self, rng: &mut StdRng, player: PlayerId) -> (Name, ObjectId) {
        let list = &self.per_player[player.index()];
        let (ci, o) = list[rng.gen_range(0..list.len())];
        (self.cds[ci].clone(), o)
    }
}

/// Samples a standard normal deviate via Box–Muller (keeps us off extra
/// dependencies; `rand` 0.8 has no normal distribution without
/// `rand_distr`).
fn sample_standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObjectModelParams;

    fn setup() -> (GameMap, ObjectModel, PlayerPopulation) {
        let map = GameMap::paper_map();
        let objects = ObjectModel::generate(1, &map, &ObjectModelParams::default());
        let pop = PlayerPopulation::uniform_per_area(&map, 2);
        (map, objects, pop)
    }

    #[test]
    fn microbenchmark_event_count_matches_paper() {
        let (map, objects, pop) = setup();
        let events =
            microbenchmark_trace(7, &map, &objects, &pop, &MicrobenchParams::default());
        // 62 players, 60 s, mean interval 300 ms -> ~12,400 events;
        // the paper reports 12,440.
        assert!(
            (11_000..=14_000).contains(&events.len()),
            "got {} events",
            events.len()
        );
        // Sorted by time, all within duration, sizes in range.
        for w in events.windows(2) {
            assert!(w[0].time_ns <= w[1].time_ns);
        }
        for e in &events {
            assert!(e.time_ns < 60_000_000_000);
            assert!((50..=350).contains(&e.size));
            assert!(map.leaf_cds().contains(&e.cd));
        }
    }

    #[test]
    fn microbenchmark_is_deterministic() {
        let (map, objects, pop) = setup();
        let p = MicrobenchParams::default();
        let a = microbenchmark_trace(7, &map, &objects, &pop, &p);
        let b = microbenchmark_trace(7, &map, &objects, &pop, &p);
        assert_eq!(a, b);
        let c = microbenchmark_trace(8, &map, &objects, &pop, &p);
        assert_ne!(a, c);
    }

    #[test]
    fn events_target_objects_in_aoi() {
        let (map, objects, pop) = setup();
        let events =
            microbenchmark_trace(3, &map, &objects, &pop, &MicrobenchParams::default());
        for e in events.iter().take(500) {
            let area = pop.area_of(e.player);
            let visible = map.visible_leaf_cds(area);
            assert!(visible.contains(&e.cd), "{} not visible from {area}", e.cd);
            assert_eq!(objects.leaf_cd_of(e.object), &e.cd);
        }
    }

    #[test]
    fn cs_trace_matches_requested_statistics() {
        let map = GameMap::paper_map();
        let objects = ObjectModel::generate(1, &map, &ObjectModelParams::default());
        let pop = PlayerPopulation::random_per_area(2, &map, (4, 20)).resize(414);
        let params = CsTraceParams {
            total_updates: 20_000,
            ..Default::default()
        };
        let generator = CsTraceGenerator::new(11, &pop, params);
        let events = generator.generate(12, &map, &objects, &pop);
        assert_eq!(events.len(), 20_000);
        // Mean inter-arrival within 10% of the target.
        let span = events.last().unwrap().time_ns - events[0].time_ns;
        let mean = span as f64 / (events.len() - 1) as f64;
        assert!(
            (mean - 2_400_000.0).abs() < 240_000.0,
            "mean inter-arrival {mean}"
        );
        // Heavy tail: the top 10% of players produce >30% of updates.
        let mut per_player = vec![0u64; pop.len()];
        for e in &events {
            per_player[e.player.index()] += 1;
        }
        per_player.sort_unstable_by(|a, b| b.cmp(a));
        let top: u64 = per_player.iter().take(pop.len() / 10).sum();
        let total: u64 = per_player.iter().sum();
        assert!(
            top as f64 / total as f64 > 0.3,
            "top-10% share = {}",
            top as f64 / total as f64
        );
    }

    #[test]
    fn cs_trace_world_objects_hottest() {
        // Objects at the world layer are visible to every player and must
        // receive disproportionately many updates (paper's object stats).
        let map = GameMap::paper_map();
        let objects = ObjectModel::generate(1, &map, &ObjectModelParams::default());
        let pop = PlayerPopulation::random_per_area(2, &map, (4, 20));
        let generator = CsTraceGenerator::new(
            5,
            &pop,
            CsTraceParams {
                total_updates: 30_000,
                ..Default::default()
            },
        );
        let events = generator.generate(6, &map, &objects, &pop);
        let world_cd = Name::parse_lit("/0");
        let world_updates = events.iter().filter(|e| e.cd == world_cd).count();
        let world_objects = objects.objects_in(&world_cd).len();
        let per_world_object = world_updates as f64 / world_objects as f64;
        // Compare to a zone: pick /3/3.
        let zone_cd = Name::parse_lit("/3/3");
        let zone_updates = events.iter().filter(|e| e.cd == zone_cd).count();
        let zone_objects = objects.objects_in(&zone_cd).len();
        let per_zone_object = zone_updates as f64 / zone_objects.max(1) as f64;
        assert!(
            per_world_object > per_zone_object * 2.0,
            "world {per_world_object:.2} vs zone {per_zone_object:.2}"
        );
    }
}
