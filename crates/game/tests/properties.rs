//! Property-based tests for the game model, on the deterministic
//! `gcopss_compat::prop` harness.

use gcopss_compat::prop::{self, Strategy};
use gcopss_compat::{Rng, SeedableRng, StdRng};
use gcopss_game::{GameMap, MoveType, ObjectModel, ObjectModelParams, ObjectState};

const CASES: u32 = 48;

/// Hierarchy layout: 1–2 layers of 1–4 areas each.
fn layout_strategy() -> impl Strategy<Value = Vec<u32>> {
    prop::vec(prop::range(1u32..5), 1..=2)
}

/// Visibility is reflexive and downward-closed along the hierarchy:
/// a player always sees its own area, and sees an area iff it sees
/// every deeper area under that area's subtree... (specifically: a
/// viewer sees all publications from areas in its own subtree and its
/// ancestor chain's own-areas).
#[test]
fn visibility_laws() {
    prop::check(0x9A01, CASES, &layout_strategy(), |layout| {
        let map = GameMap::uniform(layout);
        for viewer in map.areas() {
            // Reflexive.
            assert!(map.can_see(viewer, viewer));
            // Sees every ancestor's layer (their own-area publications).
            let mut cur = map.parent(viewer);
            while let Some(a) = cur {
                assert!(map.can_see(viewer, a));
                cur = map.parent(a);
            }
            // Sees everything in its own subtree.
            let vp = map.path(viewer).clone();
            for other in map.areas() {
                if vp.is_prefix_of(map.path(other)) {
                    assert!(map.can_see(viewer, other));
                }
            }
            // Never sees a *sibling subtree's interior* at deeper level:
            for other in map.areas() {
                let op = map.path(other);
                let unrelated = !vp.is_prefix_of(op) && !op.is_prefix_of(&vp);
                if unrelated {
                    assert!(!map.can_see(viewer, other), "{} should not see {}", vp, op);
                }
            }
        }
    });
}

/// Publication CDs are exactly the leaf CDs, and each is unique.
#[test]
fn publication_cds_bijective_with_areas() {
    prop::check(0x9A02, CASES, &layout_strategy(), |layout| {
        let map = GameMap::uniform(layout);
        let mut seen = std::collections::BTreeSet::new();
        for a in map.areas() {
            let cd = map.publication_cd(a);
            assert!(map.leaf_cds().contains(cd.name()));
            assert!(seen.insert(cd.name().clone()), "duplicate pub CD");
            assert_eq!(map.area_of_leaf_cd(cd.name()), Some(a));
        }
        assert_eq!(seen.len(), map.leaf_cds().len());
    });
}

/// Snapshot requirement of a move equals newly-visible leaf CDs, and
/// moving down requires nothing.
#[test]
fn snapshot_requirements() {
    let input = (layout_strategy(), prop::range(0u64..100));
    prop::check(0x9A03, CASES, &input, |(layout, seed)| {
        let map = GameMap::uniform(layout);
        let mut rng = StdRng::seed_from_u64(*seed);
        let areas: Vec<_> = map.areas().collect();
        for _ in 0..20 {
            let from = areas[rng.gen_range(0..areas.len())];
            let to = areas[rng.gen_range(0..areas.len())];
            let snaps = map.snapshot_cds_for_move(from, to);
            let old = map.visible_leaf_cds(from);
            let new = map.visible_leaf_cds(to);
            for cd in &snaps {
                assert!(new.contains(cd) && !old.contains(cd));
            }
            if map.classify_move(from, to) == Some(MoveType::ToLowerLayer) {
                assert!(snaps.is_empty(), "descending needs no snapshot");
            }
        }
    });
}

/// The object size model: bounded by max_size, monotone under equal
/// updates, and consistent with the recurrence.
#[test]
fn object_size_model() {
    let input = prop::vec(prop::range(50u32..350), 1..=39);
    prop::check(0x9A04, CASES, &input, |updates| {
        let alpha = 0.95;
        let mut s = ObjectState::pristine();
        let mut prev = 0.0;
        for &u in updates {
            s.apply_update(alpha, u);
            // size_n = alpha*size_{n-1} + u  >  alpha*size_{n-1}
            assert!(s.size > prev * alpha - 1e-9);
            prev = s.size;
        }
        assert_eq!(s.version, updates.len() as u64);
        // Bounded by the geometric-series bound.
        assert!(s.size <= 350.0 / (1.0 - alpha) + 1e-9);
    });
}

/// Object generation covers every leaf CD with the configured range.
#[test]
fn object_generation_in_range() {
    let input = (
        prop::range(0u64..50),
        prop::range(1u32..5),
        prop::range(0u32..5),
    );
    prop::check(0x9A05, CASES, &input, |(seed, lo, extra)| {
        let map = GameMap::paper_map();
        let hi = lo + extra;
        let m = ObjectModel::generate(
            *seed,
            &map,
            &ObjectModelParams {
                objects_per_area: (*lo, hi),
                ..Default::default()
            },
        );
        for (_, count) in m.objects_per_area() {
            assert!((*lo as usize..=hi as usize).contains(&count));
        }
        assert_eq!(
            m.objects_per_area().iter().map(|(_, c)| c).sum::<usize>(),
            m.object_count()
        );
    });
}
