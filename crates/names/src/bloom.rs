//! Bloom filters over CD hashes, as used by the COPSS Subscription Table.
//!
//! The paper stores, per outgoing face, a Bloom filter describing the set of
//! subscribed CDs (§III-C). Membership tests are performed on the
//! precomputed per-level hashes carried by multicast packets, so a router
//! only does "simple bit comparison".
//!
//! Two variants are provided:
//!
//! * [`BloomFilter`] — the classic insert-only filter.
//! * [`CountingBloomFilter`] — 16-bit counters so that `Unsubscribe` can
//!   delete entries, which the COPSS subscription table needs.

use std::fmt;

/// Sizing parameters for a Bloom filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BloomParams {
    /// Number of bits (or counters).
    pub bits: usize,
    /// Number of hash functions.
    pub hashes: u32,
}

impl BloomParams {
    /// Parameters sized for an expected number of entries and a target
    /// false-positive rate, using the standard optimal formulas.
    ///
    /// # Panics
    ///
    /// Panics if `expected_items` is zero or `fp_rate` is not in `(0, 1)`.
    #[must_use]
    pub fn for_items(expected_items: usize, fp_rate: f64) -> Self {
        assert!(expected_items > 0, "expected_items must be positive");
        assert!(
            fp_rate > 0.0 && fp_rate < 1.0,
            "fp_rate must be in (0, 1), got {fp_rate}"
        );
        let n = expected_items as f64;
        let ln2 = std::f64::consts::LN_2;
        let m = (-n * fp_rate.ln() / (ln2 * ln2)).ceil().max(8.0);
        let k = ((m / n) * ln2).round().clamp(1.0, 16.0);
        Self {
            bits: m as usize,
            hashes: k as u32,
        }
    }
}

impl Default for BloomParams {
    /// Sized for ~256 CDs at a 1% false-positive rate, comfortable for the
    /// paper's 31-leaf-CD game maps with headroom.
    fn default() -> Self {
        Self::for_items(256, 0.01)
    }
}

/// Derives the `i`-th bit index from a single 64-bit element hash using
/// Kirsch–Mitzenmacher double hashing.
#[inline]
fn bit_index(element_hash: u64, i: u32, bits: usize) -> usize {
    // Split the 64-bit hash into two 32-bit halves, then h1 + i*h2.
    let h1 = element_hash as u32 as u64;
    let h2 = (element_hash >> 32) | 1; // force odd so strides cover the table
    ((h1.wrapping_add(u64::from(i).wrapping_mul(h2))) % bits as u64) as usize
}

/// A classic insert-only Bloom filter keyed by precomputed 64-bit hashes.
///
/// Guarantees no false negatives; false positives occur with a probability
/// controlled by [`BloomParams`].
///
/// # Example
///
/// ```
/// # use gcopss_names::{BloomFilter, Name};
/// let mut f = BloomFilter::default();
/// let h = Name::parse_lit("/1/2").stable_hash();
/// f.insert(h);
/// assert!(f.contains(h));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct BloomFilter {
    params: BloomParams,
    bits: Vec<u64>,
    items: usize,
}

impl BloomFilter {
    /// Creates an empty filter with the given parameters.
    #[must_use]
    pub fn new(params: BloomParams) -> Self {
        let words = params.bits.div_ceil(64);
        Self {
            params,
            bits: vec![0; words],
            items: 0,
        }
    }

    /// The sizing parameters.
    #[must_use]
    pub fn params(&self) -> BloomParams {
        self.params
    }

    /// Number of `insert` calls so far (not distinct elements).
    #[must_use]
    pub fn items(&self) -> usize {
        self.items
    }

    /// Inserts an element by its 64-bit hash.
    pub fn insert(&mut self, element_hash: u64) {
        for i in 0..self.params.hashes {
            let b = bit_index(element_hash, i, self.params.bits);
            self.bits[b / 64] |= 1 << (b % 64);
        }
        self.items += 1;
    }

    /// Tests membership by 64-bit hash. May return false positives, never
    /// false negatives.
    #[must_use]
    pub fn contains(&self, element_hash: u64) -> bool {
        (0..self.params.hashes).all(|i| {
            let b = bit_index(element_hash, i, self.params.bits);
            self.bits[b / 64] & (1 << (b % 64)) != 0
        })
    }

    /// Tests whether any of the given hashes is (probably) present — the ST
    /// lookup for a multicast packet, which checks every prefix level of its
    /// CD.
    #[must_use]
    pub fn contains_any(&self, hashes: &[u64]) -> bool {
        hashes.iter().any(|&h| self.contains(h))
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.items = 0;
    }

    /// Estimated false-positive probability at the current fill level.
    #[must_use]
    pub fn estimated_fp_rate(&self) -> f64 {
        let m = self.params.bits as f64;
        let k = f64::from(self.params.hashes);
        let n = self.items as f64;
        (1.0 - (-k * n / m).exp()).powf(k)
    }
}

impl Default for BloomFilter {
    fn default() -> Self {
        Self::new(BloomParams::default())
    }
}

impl fmt::Debug for BloomFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BloomFilter")
            .field("bits", &self.params.bits)
            .field("hashes", &self.params.hashes)
            .field("items", &self.items)
            .finish()
    }
}

/// A counting Bloom filter (16-bit saturating counters) supporting removal.
///
/// Used by the COPSS subscription table so that `Unsubscribe` packets can
/// delete a face's CDs without rebuilding the filter.
///
/// Counters are 16-bit: with 8-bit counters an undersized filter under
/// heavy per-face load (≥1M inserts) saturates counters at 255, and since a
/// saturated counter is sticky (never decremented, to preserve
/// no-false-negative), the filter accumulates permanent false positives.
/// 16-bit counters push the saturation point past any load a face can
/// realistically present; [`CountingBloomFilter::saturated_counters`]
/// exposes whether the backstop was ever hit.
///
/// # Example
///
/// ```
/// # use gcopss_names::CountingBloomFilter;
/// let mut f = CountingBloomFilter::default();
/// f.insert(42);
/// f.insert(42);
/// f.remove(42);
/// assert!(f.contains(42)); // still one insertion outstanding
/// f.remove(42);
/// assert!(!f.contains(42));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct CountingBloomFilter {
    params: BloomParams,
    counters: Vec<u16>,
    items: usize,
}

impl CountingBloomFilter {
    /// Creates an empty filter with the given parameters.
    #[must_use]
    pub fn new(params: BloomParams) -> Self {
        Self {
            counters: vec![0; params.bits],
            params,
            items: 0,
        }
    }

    /// The sizing parameters.
    #[must_use]
    pub fn params(&self) -> BloomParams {
        self.params
    }

    /// Net number of elements (inserts minus removes).
    #[must_use]
    pub fn items(&self) -> usize {
        self.items
    }

    /// Returns `true` if no elements are present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// Inserts an element by its 64-bit hash. Counters saturate at
    /// [`u16::MAX`] (a saturated counter is never decremented, preserving
    /// no-false-negative at the cost of a permanent false positive).
    pub fn insert(&mut self, element_hash: u64) {
        for i in 0..self.params.hashes {
            let b = bit_index(element_hash, i, self.params.bits);
            self.counters[b] = self.counters[b].saturating_add(1);
        }
        self.items += 1;
    }

    /// Removes one occurrence of an element by its 64-bit hash.
    ///
    /// Removing an element that was never inserted can introduce false
    /// negatives (as with any counting Bloom filter); callers keep an exact
    /// set alongside and only remove present elements.
    pub fn remove(&mut self, element_hash: u64) {
        for i in 0..self.params.hashes {
            let b = bit_index(element_hash, i, self.params.bits);
            if self.counters[b] != u16::MAX {
                self.counters[b] = self.counters[b].saturating_sub(1);
            }
        }
        self.items = self.items.saturating_sub(1);
    }

    /// Tests membership by 64-bit hash.
    #[must_use]
    pub fn contains(&self, element_hash: u64) -> bool {
        (0..self.params.hashes).all(|i| {
            let b = bit_index(element_hash, i, self.params.bits);
            self.counters[b] > 0
        })
    }

    /// Tests whether any of the given hashes is (probably) present.
    #[must_use]
    pub fn contains_any(&self, hashes: &[u64]) -> bool {
        hashes.iter().any(|&h| self.contains(h))
    }

    /// Number of counters stuck at the saturation ceiling. Non-zero means
    /// the filter was driven far past its sizing and now carries permanent
    /// false positives in those slots.
    #[must_use]
    pub fn saturated_counters(&self) -> usize {
        self.counters.iter().filter(|&&c| c == u16::MAX).count()
    }

    /// The largest counter value — headroom indicator for saturation audits.
    #[must_use]
    pub fn max_counter(&self) -> u16 {
        self.counters.iter().copied().max().unwrap_or(0)
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.counters.fill(0);
        self.items = 0;
    }
}

impl Default for CountingBloomFilter {
    fn default() -> Self {
        Self::new(BloomParams::default())
    }
}

impl fmt::Debug for CountingBloomFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CountingBloomFilter")
            .field("bits", &self.params.bits)
            .field("hashes", &self.params.hashes)
            .field("items", &self.items)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Name;

    #[test]
    fn params_for_items_reasonable() {
        let p = BloomParams::for_items(100, 0.01);
        assert!(p.bits >= 900, "bits = {}", p.bits);
        assert!((5..=9).contains(&p.hashes), "hashes = {}", p.hashes);
    }

    #[test]
    #[should_panic(expected = "fp_rate")]
    fn params_reject_bad_fp() {
        let _ = BloomParams::for_items(10, 1.5);
    }

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::new(BloomParams::for_items(64, 0.01));
        let hashes: Vec<u64> = (0..64u64)
            .map(|i| Name::parse_lit(&format!("/a/{i}")).stable_hash())
            .collect();
        for &h in &hashes {
            f.insert(h);
        }
        for &h in &hashes {
            assert!(f.contains(h));
        }
    }

    #[test]
    fn fp_rate_is_bounded() {
        let mut f = BloomFilter::new(BloomParams::for_items(128, 0.01));
        for i in 0..128u64 {
            f.insert(Name::parse_lit(&format!("/in/{i}")).stable_hash());
        }
        let mut fps = 0;
        let probes = 10_000;
        for i in 0..probes {
            if f.contains(Name::parse_lit(&format!("/out/{i}")).stable_hash()) {
                fps += 1;
            }
        }
        // 1% nominal; allow generous slack.
        assert!(fps < probes / 20, "false positives: {fps}/{probes}");
        assert!(f.estimated_fp_rate() < 0.05);
    }

    #[test]
    fn contains_any_checks_all_levels() {
        let mut f = BloomFilter::default();
        f.insert(Name::parse_lit("/1").stable_hash());
        let cd = Name::parse_lit("/1/2/3");
        assert!(f.contains_any(&cd.hash_chain()));
        let other = Name::parse_lit("/2/2/3");
        assert!(!f.contains_any(&other.hash_chain()));
    }

    #[test]
    fn clear_empties_filter() {
        let mut f = BloomFilter::default();
        f.insert(7);
        f.clear();
        assert!(!f.contains(7));
        assert_eq!(f.items(), 0);
    }

    #[test]
    fn counting_filter_supports_removal() {
        let mut f = CountingBloomFilter::default();
        let h = Name::parse_lit("/1/2").stable_hash();
        f.insert(h);
        assert!(f.contains(h));
        f.remove(h);
        assert!(!f.contains(h));
        assert!(f.is_empty());
    }

    #[test]
    fn counting_filter_multiset_semantics() {
        let mut f = CountingBloomFilter::default();
        f.insert(99);
        f.insert(99);
        f.remove(99);
        assert!(f.contains(99));
        f.remove(99);
        assert!(!f.contains(99));
    }

    #[test]
    fn counting_filter_no_false_negatives_under_churn() {
        let mut f = CountingBloomFilter::new(BloomParams::for_items(256, 0.01));
        let keep: Vec<u64> = (0..100u64)
            .map(|i| Name::parse_lit(&format!("/keep/{i}")).stable_hash())
            .collect();
        let churn: Vec<u64> = (0..100u64)
            .map(|i| Name::parse_lit(&format!("/churn/{i}")).stable_hash())
            .collect();
        for &h in &keep {
            f.insert(h);
        }
        for &h in &churn {
            f.insert(h);
        }
        for &h in &churn {
            f.remove(h);
        }
        for &h in &keep {
            assert!(f.contains(h), "false negative after churn");
        }
    }

    #[test]
    fn counting_filter_survives_million_insert_churn() {
        // Saturation audit (ISSUE 6): a face sized for 256 CDs but driven
        // with 1M inserts pushes average counter values near 2000 — far past
        // the 255 ceiling of 8-bit counters, whose sticky saturation would
        // leave permanent false positives after the face unsubscribes
        // everything. 16-bit counters must absorb the load and drain back to
        // an empty, false-positive-free filter.
        let params = BloomParams::default(); // ~256 CDs, ~2.5k counters
        let mut f = CountingBloomFilter::new(params);
        const N: u64 = 1_000_000;
        let hash = |i: u64| i.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(31);
        for i in 0..N {
            f.insert(hash(i));
        }
        assert_eq!(f.items(), N as usize);
        let peak = f.max_counter();
        assert!(
            peak > u64::from(u8::MAX) as u16,
            "audit premise: load must exceed what 8-bit counters can hold, peak = {peak}"
        );
        assert_eq!(
            f.saturated_counters(),
            0,
            "16-bit counters must not saturate at 1M inserts per face"
        );
        for i in 0..N {
            f.remove(hash(i));
        }
        assert!(f.is_empty());
        assert_eq!(f.max_counter(), 0, "counters must drain exactly to zero");
        for i in 0..1000 {
            assert!(
                !f.contains(hash(N + i)),
                "drained filter must not report members"
            );
        }
    }
}
