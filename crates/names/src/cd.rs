//! Content Descriptors: names used as pub/sub topics.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use crate::Name;

/// The precomputed per-level hash chain of a CD.
///
/// Element `i` is the stable hash of the CD's prefix with `i` components;
/// the chain therefore has `name.len() + 1` elements. The paper's §III-C
/// optimization has the first-hop router compute these once so that every
/// downstream router can match its Bloom filters with integer operations
/// only.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CdHashes(Vec<u64>);

impl CdHashes {
    /// Computes the hash chain for `name`.
    #[must_use]
    pub fn compute(name: &Name) -> Self {
        Self(name.hash_chain())
    }

    /// Returns the hash of the prefix with `levels` components.
    #[must_use]
    pub fn level(&self, levels: usize) -> Option<u64> {
        self.0.get(levels).copied()
    }

    /// Returns the hash of the full CD.
    #[must_use]
    pub fn full(&self) -> u64 {
        *self.0.last().expect("hash chain is never empty")
    }

    /// All per-level hashes, root first.
    #[must_use]
    pub fn as_slice(&self) -> &[u64] {
        &self.0
    }

    /// Number of levels (name length + 1).
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// A hash chain always contains at least the root hash.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// A Content Descriptor: a [`Name`] used as a publish/subscribe topic,
/// bundled with its precomputed [`CdHashes`].
///
/// `Cd` is cheap to clone (`Arc` internally) because multicast packets carry
/// their CD across every hop of the simulated network.
///
/// # Example
///
/// ```
/// # use gcopss_names::{Cd, Name};
/// let cd = Cd::parse_lit("/1/2");
/// assert_eq!(cd.name().to_string(), "/1/2");
/// assert_eq!(cd.hashes().len(), 3); // "/", "/1", "/1/2"
/// ```
#[derive(Clone)]
pub struct Cd {
    inner: Arc<CdInner>,
}

struct CdInner {
    name: Name,
    hashes: CdHashes,
}

impl Cd {
    /// Creates a CD from a name, computing its hash chain.
    #[must_use]
    pub fn new(name: Name) -> Self {
        let hashes = CdHashes::compute(&name);
        Self {
            inner: Arc::new(CdInner { name, hashes }),
        }
    }

    /// Parses a CD from a string literal, panicking on failure. Intended for
    /// tests and examples.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not a valid name.
    #[must_use]
    pub fn parse_lit(s: &str) -> Self {
        Self::new(Name::parse_lit(s))
    }

    /// The underlying name.
    #[must_use]
    pub fn name(&self) -> &Name {
        &self.inner.name
    }

    /// The precomputed per-level hashes.
    #[must_use]
    pub fn hashes(&self) -> &CdHashes {
        &self.inner.hashes
    }

    /// Number of name components.
    #[must_use]
    pub fn level_count(&self) -> usize {
        self.inner.name.len()
    }
}

impl fmt::Display for Cd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.name.fmt(f)
    }
}

impl fmt::Debug for Cd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cd({})", self.inner.name)
    }
}

impl PartialEq for Cd {
    fn eq(&self, other: &Self) -> bool {
        self.inner.name == other.inner.name
    }
}

impl Eq for Cd {}

impl PartialOrd for Cd {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Cd {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.inner.name.cmp(&other.inner.name)
    }
}

impl std::hash::Hash for Cd {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.inner.name.hash(state);
    }
}

impl From<Name> for Cd {
    fn from(name: Name) -> Self {
        Self::new(name)
    }
}

impl std::str::FromStr for Cd {
    type Err = crate::ParseNameError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(Self::new(s.parse()?))
    }
}

/// An ordered set of subscription names, with the prefix-closure queries the
/// COPSS layer needs.
///
/// `CdSet` is the exact (non-probabilistic) ground truth that sits next to
/// the Bloom filter in a subscription table entry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CdSet {
    names: BTreeSet<Name>,
}

impl CdSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a subscription name; returns `true` if newly inserted.
    pub fn insert(&mut self, name: Name) -> bool {
        self.names.insert(name)
    }

    /// Removes a subscription name; returns `true` if it was present.
    pub fn remove(&mut self, name: &Name) -> bool {
        self.names.remove(name)
    }

    /// Returns `true` if the exact name is present.
    #[must_use]
    pub fn contains(&self, name: &Name) -> bool {
        self.names.contains(name)
    }

    /// Returns `true` if any stored subscription is a prefix of `cd` —
    /// i.e. whether a publication to `cd` must be delivered here.
    #[must_use]
    pub fn matches_publication(&self, cd: &Name) -> bool {
        cd.prefixes().any(|p| self.names.contains(&p))
    }

    /// Returns `true` if any stored subscription has `prefix` as a prefix
    /// (i.e. the set contains subscriptions at or below `prefix`).
    #[must_use]
    pub fn any_under(&self, prefix: &Name) -> bool {
        self.names
            .range(prefix.clone()..)
            .next()
            .is_some_and(|n| prefix.is_prefix_of(n))
    }

    /// Number of stored names.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if no names are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates the stored names in order.
    pub fn iter(&self) -> impl Iterator<Item = &Name> {
        self.names.iter()
    }
}

impl FromIterator<Name> for CdSet {
    fn from_iter<I: IntoIterator<Item = Name>>(iter: I) -> Self {
        Self {
            names: iter.into_iter().collect(),
        }
    }
}

impl Extend<Name> for CdSet {
    fn extend<I: IntoIterator<Item = Name>>(&mut self, iter: I) {
        self.names.extend(iter);
    }
}

impl<'a> IntoIterator for &'a CdSet {
    type Item = &'a Name;
    type IntoIter = std::collections::btree_set::Iter<'a, Name>;

    fn into_iter(self) -> Self::IntoIter {
        self.names.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cd_exposes_name_and_hashes() {
        let cd = Cd::parse_lit("/1/2");
        assert_eq!(cd.name(), &Name::parse_lit("/1/2"));
        assert_eq!(cd.hashes().len(), 3);
        assert_eq!(cd.level_count(), 2);
        assert_eq!(
            cd.hashes().level(1).unwrap(),
            Name::parse_lit("/1").stable_hash()
        );
        assert_eq!(cd.hashes().full(), Name::parse_lit("/1/2").stable_hash());
    }

    #[test]
    fn cd_equality_ignores_arc_identity() {
        let a = Cd::parse_lit("/1");
        let b = Cd::parse_lit("/1");
        assert_eq!(a, b);
        let c = a.clone();
        assert_eq!(a, c);
    }

    #[test]
    fn cd_clone_is_shallow() {
        let a = Cd::parse_lit("/1/2/3");
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.inner, &b.inner));
    }

    #[test]
    fn cdset_matches_publication_via_prefix() {
        let mut s = CdSet::new();
        s.insert(Name::parse_lit("/1"));
        assert!(s.matches_publication(&Name::parse_lit("/1/2")));
        assert!(s.matches_publication(&Name::parse_lit("/1")));
        assert!(!s.matches_publication(&Name::parse_lit("/2/1")));
        assert!(!s.matches_publication(&Name::root()));
    }

    #[test]
    fn cdset_root_subscription_matches_everything() {
        let mut s = CdSet::new();
        s.insert(Name::root());
        assert!(s.matches_publication(&Name::parse_lit("/9/9/9")));
        assert!(s.matches_publication(&Name::root()));
    }

    #[test]
    fn cdset_any_under() {
        let mut s = CdSet::new();
        s.insert(Name::parse_lit("/1/2"));
        s.insert(Name::parse_lit("/3"));
        assert!(s.any_under(&Name::parse_lit("/1")));
        assert!(s.any_under(&Name::parse_lit("/1/2")));
        assert!(s.any_under(&Name::root()));
        assert!(!s.any_under(&Name::parse_lit("/2")));
        assert!(!s.any_under(&Name::parse_lit("/1/2/3")));
    }

    #[test]
    fn cdset_insert_remove() {
        let mut s = CdSet::new();
        assert!(s.insert(Name::parse_lit("/1")));
        assert!(!s.insert(Name::parse_lit("/1")));
        assert_eq!(s.len(), 1);
        assert!(s.remove(&Name::parse_lit("/1")));
        assert!(!s.remove(&Name::parse_lit("/1")));
        assert!(s.is_empty());
    }
}
