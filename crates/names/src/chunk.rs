//! Content-addressed snapshot chunking: ids, manifests and chunk stores.
//!
//! Production game-content pipelines (NGDP/TACT + CASC) identify every piece
//! of content by the hash of its bytes, describe a snapshot as a *manifest*
//! (an ordered list of chunk ids) and ship only the chunks the receiver does
//! not already hold. This module is the in-tree, dependency-free core of
//! that pattern for G-COPSS snapshot brokers:
//!
//! * [`ChunkId`] — the FNV-1a hash of a chunk's bytes. Content-addressed:
//!   two chunks with equal bytes have equal ids, so routers and clients
//!   dedup across CDs for free.
//! * [`Chunker`] — rolling-hash *content-defined* boundary cutting. Cutting
//!   on content (not fixed offsets) keeps chunk boundaries stable when a
//!   small edit shifts bytes, so an update to one object perturbs only the
//!   chunks covering it.
//! * [`Manifest`] — an ordered chunk list plus total length, with a compact
//!   little-endian wire encoding and strict decode validation.
//! * [`ChunkStore`] — a verified hash → bytes map with manifest diffing
//!   ([`ChunkStore::missing`]) and integrity-checked reassembly.
//!
//! Everything here is deterministic and seed-free (FNV-1a throughout), so
//! same-seed simulation runs chunk identically.

use std::collections::BTreeMap;
use std::fmt;

use crate::fnv1a;

/// The content-addressed identity of a chunk: the FNV-1a hash of its bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChunkId(pub u64);

impl ChunkId {
    /// Hashes `bytes` into their chunk id.
    #[must_use]
    pub fn of(bytes: &[u8]) -> Self {
        Self(fnv1a(bytes))
    }

    /// Fixed-width lowercase hex, usable as a name component
    /// (`/chunk/<hex>`).
    #[must_use]
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses the [`ChunkId::to_hex`] form back.
    #[must_use]
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(Self)
    }
}

impl fmt::Display for ChunkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Content-defined chunking parameters.
///
/// Boundaries are cut where a rolling hash of the last bytes matches
/// `boundary_mask` (expected chunk size ≈ `mask + 1` bytes), clamped to
/// `[min_size, max_size]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkingConfig {
    /// No boundary before this many bytes of the current chunk.
    pub min_size: usize,
    /// Boundary when `rolling_hash & boundary_mask == boundary_mask`;
    /// must be `2^k - 1`. Average chunk ≈ `min_size + boundary_mask + 1`.
    pub boundary_mask: u64,
    /// Force a boundary at this many bytes even without a hash match.
    pub max_size: usize,
}

impl Default for ChunkingConfig {
    fn default() -> Self {
        // Sized so the chunk grain sits *below* the typical game-object
        // snapshot (~0.5–1.7 KB): an update that rewrites a field-sized
        // window of one object then dirties one or two chunks, and the rest
        // of the object — let alone the CD blob — keeps its chunk ids. Much
        // coarser chunks would erase the delta resolution; much finer ones
        // would turn a catch-up into a per-packet Interest flood.
        Self {
            min_size: 128,
            boundary_mask: 0xff, // ~256 B average past the minimum
            max_size: 1024,
        }
    }
}

/// The per-byte mixing table of the gear rolling hash, derived
/// deterministically from FNV-1a so no random seed is needed.
fn gear(b: u8) -> u64 {
    fnv1a(&[b, 0x9e, 0x37, 0x79, 0xb9])
}

/// Content-defined chunker over [`ChunkingConfig`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Chunker {
    /// Boundary-cutting parameters.
    pub config: ChunkingConfig,
}

impl Chunker {
    /// Creates a chunker with the given parameters.
    #[must_use]
    pub fn new(config: ChunkingConfig) -> Self {
        Self { config }
    }

    /// Splits `data` into content-defined chunks. Every byte lands in
    /// exactly one chunk and chunks concatenate back to `data`; an empty
    /// input yields no chunks.
    #[must_use]
    pub fn chunks<'d>(&self, data: &'d [u8]) -> Vec<&'d [u8]> {
        let cfg = &self.config;
        let mut out = Vec::new();
        let mut start = 0usize;
        let mut h = 0u64;
        for (i, &b) in data.iter().enumerate() {
            let len = i - start + 1;
            h = (h << 1).wrapping_add(gear(b));
            let hash_cut = len >= cfg.min_size && (h & cfg.boundary_mask) == cfg.boundary_mask;
            if hash_cut || len >= cfg.max_size {
                out.push(&data[start..=i]);
                start = i + 1;
                h = 0;
            }
        }
        if start < data.len() {
            out.push(&data[start..]);
        }
        out
    }

    /// Chunks `data` and returns the manifest describing it (chunks are
    /// *not* stored; pair with [`ChunkStore::insert`]).
    #[must_use]
    pub fn manifest(&self, version: u64, data: &[u8]) -> Manifest {
        let chunks = self
            .chunks(data)
            .iter()
            .map(|c| ChunkRef {
                id: ChunkId::of(c),
                len: c.len() as u32,
            })
            .collect();
        Manifest {
            version,
            total_len: data.len() as u64,
            chunks,
        }
    }
}

/// One chunk as referenced by a manifest: its id and byte length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkRef {
    /// Content-addressed id.
    pub id: ChunkId,
    /// Chunk length in bytes.
    pub len: u32,
}

/// An ordered description of one snapshot version: which chunks, in which
/// order, reassemble it.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Manifest {
    /// Snapshot version this manifest describes (monotonic per CD).
    pub version: u64,
    /// Total reassembled length in bytes (integrity cross-check).
    pub total_len: u64,
    /// Chunks in reassembly order.
    pub chunks: Vec<ChunkRef>,
}

/// Wire-format magic for encoded manifests (`"GCMF"` + format version 1).
const MANIFEST_MAGIC: u32 = 0x4743_4d01;

impl Manifest {
    /// Total bytes across all referenced chunks (equals `total_len` for a
    /// well-formed manifest).
    #[must_use]
    pub fn chunk_len_sum(&self) -> u64 {
        self.chunks.iter().map(|c| u64::from(c.len)).sum()
    }

    /// Encodes to the little-endian wire format:
    /// `magic:u32 | version:u64 | total_len:u64 | count:u32 |
    /// (id:u64 | len:u32)*`.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + self.chunks.len() * 12);
        out.extend_from_slice(&MANIFEST_MAGIC.to_le_bytes());
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&self.total_len.to_le_bytes());
        out.extend_from_slice(&(self.chunks.len() as u32).to_le_bytes());
        for c in &self.chunks {
            out.extend_from_slice(&c.id.0.to_le_bytes());
            out.extend_from_slice(&c.len.to_le_bytes());
        }
        out
    }

    /// Decodes the [`Manifest::encode`] format, validating magic, exact
    /// length and the `total_len` / chunk-length-sum invariant.
    pub fn decode(bytes: &[u8]) -> Result<Self, ChunkError> {
        let take4 = |b: &[u8], at: usize| -> Option<u32> {
            b.get(at..at + 4).map(|s| {
                let mut a = [0u8; 4];
                a.copy_from_slice(s);
                u32::from_le_bytes(a)
            })
        };
        let take8 = |b: &[u8], at: usize| -> Option<u64> {
            b.get(at..at + 8).map(|s| {
                let mut a = [0u8; 8];
                a.copy_from_slice(s);
                u64::from_le_bytes(a)
            })
        };
        let magic = take4(bytes, 0).ok_or(ChunkError::Truncated)?;
        if magic != MANIFEST_MAGIC {
            return Err(ChunkError::BadMagic(magic));
        }
        let version = take8(bytes, 4).ok_or(ChunkError::Truncated)?;
        let total_len = take8(bytes, 12).ok_or(ChunkError::Truncated)?;
        let count = take4(bytes, 20).ok_or(ChunkError::Truncated)? as usize;
        if bytes.len() != 24 + count * 12 {
            return Err(ChunkError::Truncated);
        }
        let mut chunks = Vec::with_capacity(count);
        for i in 0..count {
            let at = 24 + i * 12;
            chunks.push(ChunkRef {
                id: ChunkId(take8(bytes, at).ok_or(ChunkError::Truncated)?),
                len: take4(bytes, at + 8).ok_or(ChunkError::Truncated)?,
            });
        }
        let m = Self {
            version,
            total_len,
            chunks,
        };
        if m.chunk_len_sum() != m.total_len {
            return Err(ChunkError::LengthMismatch {
                expected: m.total_len,
                actual: m.chunk_len_sum(),
            });
        }
        Ok(m)
    }
}

/// Errors from manifest decoding, chunk verification and reassembly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkError {
    /// Encoded manifest shorter (or longer) than its header implies.
    Truncated,
    /// Encoded manifest does not start with the expected magic.
    BadMagic(u32),
    /// Manifest `total_len` disagrees with the sum of its chunk lengths.
    LengthMismatch {
        /// Declared total length.
        expected: u64,
        /// Sum of chunk lengths.
        actual: u64,
    },
    /// Chunk bytes hash to a different id than claimed (corruption).
    HashMismatch {
        /// Claimed id.
        expected: ChunkId,
        /// Hash of the bytes actually presented.
        actual: ChunkId,
    },
    /// Reassembly needs a chunk the store does not hold.
    MissingChunk(ChunkId),
    /// A held chunk's length disagrees with the manifest's reference.
    WrongLength {
        /// The chunk in question.
        id: ChunkId,
        /// Length the manifest declares.
        expected: u32,
        /// Length held in the store.
        actual: u32,
    },
}

impl fmt::Display for ChunkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated => write!(f, "manifest truncated"),
            Self::BadMagic(m) => write!(f, "bad manifest magic {m:#010x}"),
            Self::LengthMismatch { expected, actual } => {
                write!(f, "manifest total_len {expected} != chunk sum {actual}")
            }
            Self::HashMismatch { expected, actual } => {
                write!(f, "chunk bytes hash to {actual}, claimed {expected}")
            }
            Self::MissingChunk(id) => write!(f, "missing chunk {id}"),
            Self::WrongLength {
                id,
                expected,
                actual,
            } => write!(f, "chunk {id} length {actual} != manifest {expected}"),
        }
    }
}

impl std::error::Error for ChunkError {}

/// A verified content-addressed chunk cache: every held entry's bytes hash
/// to its key, so reassembly integrity reduces to membership checks.
#[derive(Debug, Clone, Default)]
pub struct ChunkStore {
    by_id: BTreeMap<u64, Vec<u8>>,
    bytes: u64,
}

impl ChunkStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Hashes and stores `bytes`, returning their id. Idempotent: equal
    /// bytes dedup onto one entry.
    pub fn insert(&mut self, bytes: &[u8]) -> ChunkId {
        let id = ChunkId::of(bytes);
        if self.by_id.insert(id.0, bytes.to_vec()).is_none() {
            self.bytes += bytes.len() as u64;
        }
        id
    }

    /// Stores `bytes` claimed to be chunk `id`, verifying the hash first —
    /// the receive-path entry point (a corrupted or forged chunk is
    /// rejected, never cached).
    pub fn insert_verified(&mut self, id: ChunkId, bytes: &[u8]) -> Result<(), ChunkError> {
        let actual = ChunkId::of(bytes);
        if actual != id {
            return Err(ChunkError::HashMismatch {
                expected: id,
                actual,
            });
        }
        self.insert(bytes);
        Ok(())
    }

    /// Whether the store holds `id`.
    #[must_use]
    pub fn contains(&self, id: ChunkId) -> bool {
        self.by_id.contains_key(&id.0)
    }

    /// The bytes of `id`, if held.
    #[must_use]
    pub fn get(&self, id: ChunkId) -> Option<&[u8]> {
        self.by_id.get(&id.0).map(Vec::as_slice)
    }

    /// Number of distinct chunks held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Total bytes held (after dedup).
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.bytes
    }

    /// The manifest entries this store does *not* hold — the delta a
    /// catching-up client must fetch. Duplicate references within the
    /// manifest are reported once.
    #[must_use]
    pub fn missing(&self, manifest: &Manifest) -> Vec<ChunkRef> {
        let mut seen = std::collections::BTreeSet::new();
        manifest
            .chunks
            .iter()
            .filter(|c| !self.contains(c.id) && seen.insert(c.id.0))
            .copied()
            .collect()
    }

    /// Reassembles the manifest's content from held chunks, verifying every
    /// chunk's length and the total length.
    pub fn reassemble(&self, manifest: &Manifest) -> Result<Vec<u8>, ChunkError> {
        let mut out = Vec::with_capacity(manifest.total_len as usize);
        for c in &manifest.chunks {
            let bytes = self
                .get(c.id)
                .ok_or(ChunkError::MissingChunk(c.id))?;
            if bytes.len() as u32 != c.len {
                return Err(ChunkError::WrongLength {
                    id: c.id,
                    expected: c.len,
                    actual: bytes.len() as u32,
                });
            }
            out.extend_from_slice(bytes);
        }
        if out.len() as u64 != manifest.total_len {
            return Err(ChunkError::LengthMismatch {
                expected: manifest.total_len,
                actual: out.len() as u64,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random bytes (FNV stream over a counter).
    fn synth(seed: u64, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut h = seed | 1;
        for i in 0..len {
            h = fnv1a(&(h ^ i as u64).to_le_bytes());
            out.push((h >> 32) as u8);
        }
        out
    }

    #[test]
    fn chunks_cover_input_exactly() {
        let chunker = Chunker::default();
        for len in [0usize, 1, 63, 64, 100, 1024, 5000, 40_000] {
            let data = synth(len as u64 + 7, len);
            let chunks = chunker.chunks(&data);
            let rejoined: Vec<u8> = chunks.concat();
            assert_eq!(rejoined, data, "len {len}");
            for c in &chunks {
                assert!(c.len() <= chunker.config.max_size);
                assert!(!c.is_empty());
            }
            // All chunks but the last respect the minimum size.
            for c in chunks.iter().rev().skip(1) {
                assert!(c.len() >= chunker.config.min_size, "len {len}");
            }
        }
    }

    #[test]
    fn boundaries_are_content_defined() {
        // Prepending bytes shifts offsets but the tail re-synchronizes:
        // most chunks of the shifted input match chunks of the original.
        let chunker = Chunker::default();
        let data = synth(3, 20_000);
        let mut shifted = synth(99, 17);
        shifted.extend_from_slice(&data);
        let ids: std::collections::BTreeSet<u64> = chunker
            .chunks(&data)
            .iter()
            .map(|c| ChunkId::of(c).0)
            .collect();
        let shared = chunker
            .chunks(&shifted)
            .iter()
            .filter(|c| ids.contains(&ChunkId::of(c).0))
            .count();
        let total = chunker.chunks(&shifted).len();
        assert!(
            shared * 2 > total,
            "only {shared}/{total} chunks survived a 17-byte prepend"
        );
    }

    #[test]
    fn manifest_roundtrip_and_reassembly() {
        let chunker = Chunker::default();
        let data = synth(11, 9_137);
        let manifest = chunker.manifest(42, &data);
        assert_eq!(manifest.total_len, data.len() as u64);
        assert_eq!(manifest.chunk_len_sum(), data.len() as u64);

        let wire = manifest.encode();
        let decoded = Manifest::decode(&wire).unwrap();
        assert_eq!(decoded, manifest);

        let mut store = ChunkStore::new();
        for c in chunker.chunks(&data) {
            store.insert(c);
        }
        assert_eq!(store.reassemble(&manifest).unwrap(), data);
    }

    #[test]
    fn decode_rejects_malformed() {
        let manifest = Chunker::default().manifest(1, &synth(5, 3000));
        let wire = manifest.encode();
        assert_eq!(Manifest::decode(&wire[..10]), Err(ChunkError::Truncated));
        let mut extra = wire.clone();
        extra.push(0);
        assert_eq!(Manifest::decode(&extra), Err(ChunkError::Truncated));
        let mut bad_magic = wire.clone();
        bad_magic[0] ^= 0xff;
        assert!(matches!(
            Manifest::decode(&bad_magic),
            Err(ChunkError::BadMagic(_))
        ));
        let mut bad_len = wire;
        bad_len[12] ^= 0x01; // perturb total_len
        assert!(matches!(
            Manifest::decode(&bad_len),
            Err(ChunkError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn store_verifies_and_diffs() {
        let chunker = Chunker::default();
        let data = synth(21, 4_096);
        let manifest = chunker.manifest(1, &data);
        let mut store = ChunkStore::new();

        // Nothing held: everything is missing.
        assert_eq!(store.missing(&manifest).len(), manifest.chunks.len());

        // Hold the first half.
        let chunks = chunker.chunks(&data);
        let half = chunks.len() / 2;
        for c in &chunks[..half] {
            store.insert(c);
        }
        let missing = store.missing(&manifest);
        assert_eq!(missing.len(), chunks.len() - half);
        assert!(missing.iter().all(|m| !store.contains(m.id)));

        // Corrupted chunk rejected, store unchanged.
        let victim = missing[0];
        let mut corrupt = chunks[half].to_vec();
        corrupt[0] ^= 0xff;
        assert!(matches!(
            store.insert_verified(victim.id, &corrupt),
            Err(ChunkError::HashMismatch { .. })
        ));
        assert!(!store.contains(victim.id));

        // Reassembly refuses while chunks are missing.
        assert!(matches!(
            store.reassemble(&manifest),
            Err(ChunkError::MissingChunk(_))
        ));

        // Complete the store; reassembly succeeds.
        for c in &chunks[half..] {
            store.insert(c);
        }
        assert_eq!(store.reassemble(&manifest).unwrap(), data);
        assert!(store.missing(&manifest).is_empty());
    }

    #[test]
    fn small_delta_dedups_most_chunks() {
        // Flip a small region of a large blob: the new manifest should
        // reuse the overwhelming majority of the old chunks.
        let chunker = Chunker::default();
        let mut data = synth(31, 50_000);
        let mut store = ChunkStore::new();
        for c in chunker.chunks(&data) {
            store.insert(c);
        }
        for b in &mut data[25_000..25_200] {
            *b ^= 0x5a;
        }
        let new_manifest = chunker.manifest(2, &data);
        let missing = store.missing(&new_manifest);
        let frac = missing.len() as f64 / new_manifest.chunks.len() as f64;
        assert!(
            frac < 0.05,
            "a 200-byte edit dirtied {frac:.1}% of {} chunks",
            new_manifest.chunks.len()
        );
        // And the delta alone completes reassembly.
        for m in &missing {
            let c = chunker
                .chunks(&data)
                .into_iter()
                .find(|c| ChunkId::of(c) == m.id)
                .unwrap()
                .to_vec();
            store.insert_verified(m.id, &c).unwrap();
        }
        assert_eq!(store.reassemble(&new_manifest).unwrap(), data);
    }

    /// Property sweep: for a spread of seeded random blobs, the full
    /// chunk → manifest → store → reassemble pipeline is the identity, and
    /// a warm store re-fetches nothing.
    #[test]
    fn prop_roundtrip_over_random_blobs() {
        let chunker = Chunker::default();
        for seed in 0..40u64 {
            let len = (fnv1a(&seed.to_le_bytes()) % 20_000) as usize;
            let data = synth(seed, len);
            let chunks = chunker.chunks(&data);
            assert_eq!(chunks.concat(), data, "seed {seed}: coverage");
            let manifest = chunker.manifest(seed, &data);
            assert_eq!(
                Manifest::decode(&manifest.encode()).unwrap(),
                manifest,
                "seed {seed}: wire roundtrip"
            );
            let mut store = ChunkStore::new();
            for c in &chunks {
                store.insert_verified(ChunkId::of(c), c).unwrap();
            }
            assert_eq!(store.reassemble(&manifest).unwrap(), data, "seed {seed}");
            assert!(
                store.missing(&manifest).is_empty(),
                "seed {seed}: warm store must fetch zero chunks"
            );
        }
    }

    /// Property sweep: whatever subset of chunks a store holds, `missing`
    /// is exactly the distinct complement, and fetching precisely that
    /// delta (nothing more) closes reassembly.
    #[test]
    fn prop_missing_is_exact_complement() {
        let chunker = Chunker::default();
        for seed in 0..20u64 {
            let data = synth(seed ^ 0xdead, 12_000);
            let chunks = chunker.chunks(&data);
            let manifest = chunker.manifest(seed, &data);
            let mut store = ChunkStore::new();
            let mut held = std::collections::BTreeSet::new();
            for (i, c) in chunks.iter().enumerate() {
                if fnv1a(&(seed ^ i as u64).to_le_bytes()).is_multiple_of(3) {
                    held.insert(store.insert(c).0);
                }
            }
            let missing = store.missing(&manifest);
            let expect: std::collections::BTreeSet<u64> = manifest
                .chunks
                .iter()
                .map(|c| c.id.0)
                .filter(|id| !held.contains(id))
                .collect();
            let got: std::collections::BTreeSet<u64> =
                missing.iter().map(|c| c.id.0).collect();
            assert_eq!(got, expect, "seed {seed}: exact complement");
            assert_eq!(got.len(), missing.len(), "seed {seed}: no duplicates");
            for c in &chunks {
                if got.contains(&ChunkId::of(c).0) {
                    store.insert_verified(ChunkId::of(c), c).unwrap();
                }
            }
            assert_eq!(store.reassemble(&manifest).unwrap(), data, "seed {seed}");
        }
    }

    /// Property sweep: field-sized random edits at random offsets dirty a
    /// small, bounded fraction of a large blob's chunks, and corrupted
    /// deliveries of the delta are always rejected.
    #[test]
    fn prop_random_edits_stay_local() {
        let chunker = Chunker::default();
        for seed in 0..20u64 {
            let mut data = synth(seed ^ 0xbeef, 30_000);
            let mut store = ChunkStore::new();
            for c in chunker.chunks(&data) {
                store.insert(c);
            }
            let at = (fnv1a(&(seed ^ 0x77).to_le_bytes()) % 29_900) as usize;
            for (i, b) in data[at..at + 64].iter_mut().enumerate() {
                *b ^= (fnv1a(&(seed ^ i as u64).to_le_bytes()) >> 16) as u8;
            }
            let manifest = chunker.manifest(seed + 1, &data);
            let missing = store.missing(&manifest);
            assert!(
                missing.len() * 10 < manifest.chunks.len(),
                "seed {seed}: a 64-byte edit dirtied {}/{} chunks",
                missing.len(),
                manifest.chunks.len()
            );
            for m in &missing {
                let c = chunker
                    .chunks(&data)
                    .into_iter()
                    .find(|c| ChunkId::of(c) == m.id)
                    .unwrap()
                    .to_vec();
                let mut corrupt = c.clone();
                corrupt[0] ^= 0x80;
                assert!(
                    store.insert_verified(m.id, &corrupt).is_err(),
                    "seed {seed}: corruption must be rejected"
                );
                store.insert_verified(m.id, &c).unwrap();
            }
            assert_eq!(store.reassemble(&manifest).unwrap(), data, "seed {seed}");
        }
    }

    #[test]
    fn hex_roundtrip() {
        let id = ChunkId::of(b"hello");
        assert_eq!(ChunkId::from_hex(&id.to_hex()), Some(id));
        assert_eq!(ChunkId::from_hex("xyz"), None);
        assert_eq!(ChunkId::from_hex(""), None);
    }
}
