//! A single label of a hierarchical [`Name`](crate::Name).

use std::borrow::Borrow;
use std::fmt;


use crate::ParseNameError;

/// One component (label) of a hierarchical name.
///
/// Components are non-empty UTF-8 strings that do not contain the `/`
/// separator. The component `"0"` is reserved by convention for the
/// "own-area" CD of a non-leaf map area (see the crate-level docs); it is an
/// ordinary component as far as this type is concerned.
///
/// # Example
///
/// ```
/// # use gcopss_names::Component;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let c = Component::new("lobby")?;
/// assert_eq!(c.as_str(), "lobby");
/// assert!(Component::new("a/b").is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Component(Box<str>);

impl Component {
    /// The reserved "own-area" component used by hierarchical game maps.
    pub const OWN_AREA_LABEL: &'static str = "0";

    /// Creates a component from a string, validating it.
    ///
    /// # Errors
    ///
    /// Returns [`ParseNameError`] if the string is empty or contains `/`.
    pub fn new(s: impl Into<String>) -> Result<Self, ParseNameError> {
        let s: String = s.into();
        if s.is_empty() {
            return Err(ParseNameError::EmptyComponent);
        }
        if s.contains('/') {
            return Err(ParseNameError::SeparatorInComponent);
        }
        Ok(Self(s.into_boxed_str()))
    }

    /// Creates the reserved own-area component (`"0"`).
    #[must_use]
    pub fn own_area() -> Self {
        Self(Self::OWN_AREA_LABEL.into())
    }

    /// Creates a numeric component (`1`, `2`, …), the form used for map
    /// regions and zones.
    #[must_use]
    pub fn index(i: u32) -> Self {
        Self(i.to_string().into_boxed_str())
    }

    /// Returns the component as a string slice.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Returns the raw bytes of the component.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        self.0.as_bytes()
    }

    /// Returns `true` if this is the reserved own-area component.
    #[must_use]
    pub fn is_own_area(&self) -> bool {
        &*self.0 == Self::OWN_AREA_LABEL
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Component({})", self.0)
    }
}

impl std::str::FromStr for Component {
    type Err = ParseNameError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::new(s)
    }
}

impl TryFrom<&str> for Component {
    type Error = ParseNameError;

    fn try_from(s: &str) -> Result<Self, Self::Error> {
        Self::new(s)
    }
}

impl TryFrom<String> for Component {
    type Error = ParseNameError;

    fn try_from(s: String) -> Result<Self, Self::Error> {
        Self::new(s)
    }
}

impl From<u32> for Component {
    fn from(i: u32) -> Self {
        Self::index(i)
    }
}

impl AsRef<str> for Component {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for Component {
    fn borrow(&self) -> &str {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_accepts_plain_labels() {
        let c = Component::new("sports").unwrap();
        assert_eq!(c.as_str(), "sports");
        assert_eq!(c.to_string(), "sports");
    }

    #[test]
    fn new_rejects_empty() {
        assert_eq!(
            Component::new("").unwrap_err(),
            ParseNameError::EmptyComponent
        );
    }

    #[test]
    fn new_rejects_separator() {
        assert_eq!(
            Component::new("a/b").unwrap_err(),
            ParseNameError::SeparatorInComponent
        );
    }

    #[test]
    fn own_area_is_zero_label() {
        let c = Component::own_area();
        assert!(c.is_own_area());
        assert_eq!(c.as_str(), "0");
        assert_eq!(c, Component::index(0));
    }

    #[test]
    fn index_components_are_numeric() {
        assert_eq!(Component::index(17).as_str(), "17");
        assert!(!Component::index(1).is_own_area());
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Component::new("1").unwrap() < Component::new("2").unwrap());
        // Note: lexicographic, not numeric.
        assert!(Component::new("10").unwrap() < Component::new("2").unwrap());
    }

    #[test]
    fn borrow_allows_str_lookup() {
        use std::collections::BTreeMap;
        let mut m = BTreeMap::new();
        m.insert(Component::new("a").unwrap(), 1);
        assert_eq!(m.get("a"), Some(&1));
    }
}
