//! Errors produced while parsing names.

use std::error::Error;
use std::fmt;

/// An error returned when parsing a [`Name`](crate::Name) or
/// [`Component`](crate::Component) from a string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ParseNameError {
    /// The name did not start with the `/` separator.
    MissingLeadingSlash,
    /// A component was empty (e.g. `//` inside a name, or a trailing `/`).
    EmptyComponent,
    /// A component contained the `/` separator.
    SeparatorInComponent,
}

impl fmt::Display for ParseNameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MissingLeadingSlash => write!(f, "name must start with '/'"),
            Self::EmptyComponent => write!(f, "name contains an empty component"),
            Self::SeparatorInComponent => write!(f, "component contains '/'"),
        }
    }
}

impl Error for ParseNameError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_punctuation() {
        for e in [
            ParseNameError::MissingLeadingSlash,
            ParseNameError::EmptyComponent,
            ParseNameError::SeparatorInComponent,
        ] {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(!s.ends_with('.'));
        }
    }
}
