//! Hierarchical names and Content Descriptors for G-COPSS.
//!
//! This crate provides the naming substrate shared by the NDN forwarding
//! engine (`gcopss-ndn`), the COPSS publish/subscribe layer (`gcopss-copss`)
//! and the game model (`gcopss-game`):
//!
//! * [`Name`] — an NDN-style hierarchical name (`/1/2/3`), a sequence of
//!   [`Component`]s.
//! * [`Cd`] — a *Content Descriptor*: a name used as a pub/sub topic, carrying
//!   a precomputed per-level hash chain ([`CdHashes`]) so that routers can
//!   match Bloom filters with plain integer comparisons (the first-hop hash
//!   optimization of §III-C of the paper).
//! * [`NameTree`] — a prefix trie keyed by names, used for subscription
//!   bookkeeping, content stores and RP tables.
//! * [`NameTreeBitmap`] — a stride-based tree-bitmap prefix map keyed on the
//!   per-level hash chain, used on the million-entry lookup paths (FIB
//!   longest-prefix match, Subscription Table matching).
//! * [`BloomFilter`] / [`CountingBloomFilter`] — the per-face CD set
//!   representation used by the COPSS Subscription Table.
//!
//! # Naming convention for hierarchical game maps
//!
//! Following the paper (§III-A), a game map is partitioned hierarchically and
//! each area maps to a CD. Every non-leaf area also owns a dedicated child
//! CD `0` (the "own-area" CD) representing the space *at* that layer, e.g.
//! the airspace above region `/1` is `/1/0` and the satellite layer above the
//! whole map is `/0`. Zones/regions are numbered from `1`, so component `0`
//! never collides with a real sub-area.
//!
//! # Example
//!
//! ```
//! # use gcopss_names::{Name, Cd};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let zone: Name = "/1/2".parse()?;
//! let region: Name = "/1".parse()?;
//! assert!(region.is_prefix_of(&zone));
//!
//! // A soldier standing on zone 1/2 publishes with CD /1/2 ...
//! let publication = Cd::new(zone);
//! // ... and a plane flying over region 1 (subscribed to /1) receives it.
//! assert!(region.is_prefix_of(publication.name()));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bloom;
mod cd;
pub mod chunk;
mod component;
mod error;
mod name;
mod tree;
mod tree_bitmap;

pub use bloom::{BloomFilter, BloomParams, CountingBloomFilter};
pub use cd::{Cd, CdHashes, CdSet};
pub use component::Component;
pub use error::ParseNameError;
pub use name::{Name, Prefixes};
pub use tree::NameTree;
pub use tree_bitmap::NameTreeBitmap;

/// Stable 64-bit FNV-1a hash used everywhere a deterministic, seed-free hash
/// of name data is required (Bloom filters, CD hash chains, hybrid
/// CD→IP-multicast-group mapping).
///
/// Determinism across runs matters: experiments are seeded and must be
/// exactly reproducible, which rules out `std`'s randomly-keyed hasher.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Extends an existing [`fnv1a`] hash with one more name component (used to
/// hash names incrementally, level by level).
///
/// A separator byte is mixed in after the component so that `/ab` + `/c`
/// hashes differently from `/a` + `/bc`.
#[must_use]
pub fn fnv1a_extend(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h ^= 0x2f; // '/'
    h.wrapping_mul(FNV_PRIME)
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[cfg(test)]
mod hash_tests {
    use super::*;

    #[test]
    fn fnv1a_is_deterministic() {
        assert_eq!(fnv1a(b"abc"), fnv1a(b"abc"));
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
    }

    #[test]
    fn fnv1a_empty_is_offset_basis() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn extend_distinguishes_component_boundaries() {
        let root = fnv1a(b"");
        let ab_c = fnv1a_extend(fnv1a_extend(root, b"ab"), b"c");
        let a_bc = fnv1a_extend(fnv1a_extend(root, b"a"), b"bc");
        assert_ne!(ab_c, a_bc);
    }
}
