//! NDN-style hierarchical names.

use std::fmt;
use std::str::FromStr;


use crate::{fnv1a, fnv1a_extend, Component, ParseNameError};

/// A hierarchical name: an ordered sequence of [`Component`]s.
///
/// Names are written with a leading `/` and `/`-separated components, as in
/// NDN: `/1/2`, `/snapshot/1/3`, `/rp/7`. The *root* name `/` has zero
/// components and is a prefix of every name.
///
/// `Name` is an ordinary value type: cheap to compare and hash, `Ord` by
/// component sequence (so a name sorts immediately before its descendants).
///
/// # Example
///
/// ```
/// # use gcopss_names::Name;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let n: Name = "/1/2".parse()?;
/// assert_eq!(n.len(), 2);
/// assert_eq!(n.parent().unwrap().to_string(), "/1");
/// assert!(Name::root().is_prefix_of(&n));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Name {
    components: Vec<Component>,
}

impl Name {
    /// Returns the root name `/` (zero components).
    #[must_use]
    pub fn root() -> Self {
        Self::default()
    }

    /// Builds a name from an iterator of components.
    pub fn from_components<I>(components: I) -> Self
    where
        I: IntoIterator<Item = Component>,
    {
        Self {
            components: components.into_iter().collect(),
        }
    }

    /// Parses a name, panicking on failure. Intended for literals in tests
    /// and examples.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not a valid name.
    #[must_use]
    pub fn parse_lit(s: &str) -> Self {
        s.parse().expect("invalid name literal")
    }

    /// Returns the number of components.
    #[must_use]
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Returns `true` for the root name `/`.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Returns the components as a slice.
    #[must_use]
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Returns the component at `level` (0-based), if any.
    #[must_use]
    pub fn get(&self, level: usize) -> Option<&Component> {
        self.components.get(level)
    }

    /// Returns the last component, if any.
    #[must_use]
    pub fn last(&self) -> Option<&Component> {
        self.components.last()
    }

    /// Returns `true` if `self` is a (non-strict) prefix of `other`.
    ///
    /// This is the COPSS delivery predicate: a subscription to `s` receives
    /// a publication to CD `c` iff `s.is_prefix_of(c)`.
    #[must_use]
    pub fn is_prefix_of(&self, other: &Name) -> bool {
        other.components.len() >= self.components.len()
            && self.components == other.components[..self.components.len()]
    }

    /// Returns `true` if `self` is a strict prefix of `other`.
    #[must_use]
    pub fn is_strict_prefix_of(&self, other: &Name) -> bool {
        other.components.len() > self.components.len() && self.is_prefix_of(other)
    }

    /// Returns the parent name (all but the last component), or `None` for
    /// the root.
    #[must_use]
    pub fn parent(&self) -> Option<Name> {
        if self.components.is_empty() {
            None
        } else {
            Some(Self {
                components: self.components[..self.components.len() - 1].to_vec(),
            })
        }
    }

    /// Returns the prefix of this name with the given number of components.
    ///
    /// # Panics
    ///
    /// Panics if `levels > self.len()`.
    #[must_use]
    pub fn prefix(&self, levels: usize) -> Name {
        assert!(
            levels <= self.components.len(),
            "prefix length {levels} exceeds name length {}",
            self.components.len()
        );
        Self {
            components: self.components[..levels].to_vec(),
        }
    }

    /// Returns a new name with `component` appended.
    #[must_use]
    pub fn child(&self, component: Component) -> Name {
        let mut components = self.components.clone();
        components.push(component);
        Self { components }
    }

    /// Returns a new name with the numeric component `i` appended.
    #[must_use]
    pub fn child_index(&self, i: u32) -> Name {
        self.child(Component::index(i))
    }

    /// Returns a new name with the reserved own-area component (`0`)
    /// appended.
    #[must_use]
    pub fn own_area(&self) -> Name {
        self.child(Component::own_area())
    }

    /// Appends a component in place.
    pub fn push(&mut self, component: Component) {
        self.components.push(component);
    }

    /// Returns the concatenation `self + suffix`.
    #[must_use]
    pub fn join(&self, suffix: &Name) -> Name {
        let mut components = self.components.clone();
        components.extend_from_slice(&suffix.components);
        Self { components }
    }

    /// Iterates over all prefixes of this name from the root (`/`) to the
    /// name itself, inclusive.
    ///
    /// ```
    /// # use gcopss_names::Name;
    /// let n = Name::parse_lit("/1/2");
    /// let p: Vec<String> = n.prefixes().map(|x| x.to_string()).collect();
    /// assert_eq!(p, ["/", "/1", "/1/2"]);
    /// ```
    #[must_use]
    pub fn prefixes(&self) -> Prefixes<'_> {
        Prefixes {
            name: self,
            next_len: 0,
        }
    }

    /// Computes the hash chain of this name: element `i` is the stable hash
    /// of the prefix with `i` components (element 0 is the root hash).
    ///
    /// The chain has `len() + 1` elements. This is the quantity the first-hop
    /// router precomputes in the paper's §III-C optimization.
    #[must_use]
    pub fn hash_chain(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.components.len() + 1);
        let mut h = fnv1a(b"");
        out.push(h);
        for c in &self.components {
            h = fnv1a_extend(h, c.as_bytes());
            out.push(h);
        }
        out
    }

    /// Returns the stable hash of the full name (the last element of
    /// [`Name::hash_chain`]).
    #[must_use]
    pub fn stable_hash(&self) -> u64 {
        let mut h = fnv1a(b"");
        for c in &self.components {
            h = fnv1a_extend(h, c.as_bytes());
        }
        h
    }

    /// Approximate encoded size of this name on the wire, in bytes (one byte
    /// of framing per component plus the component bytes). Used by the
    /// simulator for network-load accounting.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        1 + self
            .components
            .iter()
            .map(|c| 1 + c.as_bytes().len())
            .sum::<usize>()
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.components.is_empty() {
            return f.write_str("/");
        }
        for c in &self.components {
            write!(f, "/{c}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Name({self})")
    }
}

impl FromStr for Name {
    type Err = ParseNameError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "/" {
            return Ok(Self::root());
        }
        let Some(rest) = s.strip_prefix('/') else {
            return Err(ParseNameError::MissingLeadingSlash);
        };
        let components = rest
            .split('/')
            .map(Component::new)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { components })
    }
}

impl From<Component> for Name {
    fn from(c: Component) -> Self {
        Self {
            components: vec![c],
        }
    }
}

impl FromIterator<Component> for Name {
    fn from_iter<I: IntoIterator<Item = Component>>(iter: I) -> Self {
        Self::from_components(iter)
    }
}

impl Extend<Component> for Name {
    fn extend<I: IntoIterator<Item = Component>>(&mut self, iter: I) {
        self.components.extend(iter);
    }
}

/// Iterator over the prefixes of a [`Name`], from the root to the full name.
///
/// Produced by [`Name::prefixes`].
#[derive(Debug, Clone)]
pub struct Prefixes<'a> {
    name: &'a Name,
    next_len: usize,
}

impl Iterator for Prefixes<'_> {
    type Item = Name;

    fn next(&mut self) -> Option<Name> {
        if self.next_len > self.name.len() {
            return None;
        }
        let p = self.name.prefix(self.next_len);
        self.next_len += 1;
        Some(p)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.name.len() + 1 - self.next_len;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Prefixes<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["/", "/1", "/1/2", "/snapshot/1/3", "/a/b/c/d/e"] {
            let n: Name = s.parse().unwrap();
            assert_eq!(n.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_bad_names() {
        assert_eq!(
            "1/2".parse::<Name>().unwrap_err(),
            ParseNameError::MissingLeadingSlash
        );
        assert_eq!(
            "".parse::<Name>().unwrap_err(),
            ParseNameError::MissingLeadingSlash
        );
        assert_eq!(
            "//".parse::<Name>().unwrap_err(),
            ParseNameError::EmptyComponent
        );
        assert_eq!(
            "/1//2".parse::<Name>().unwrap_err(),
            ParseNameError::EmptyComponent
        );
        assert_eq!(
            "/1/".parse::<Name>().unwrap_err(),
            ParseNameError::EmptyComponent
        );
    }

    #[test]
    fn root_properties() {
        let r = Name::root();
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert_eq!(r.to_string(), "/");
        assert_eq!(r.parent(), None);
        assert!(r.is_prefix_of(&Name::parse_lit("/9/9")));
    }

    #[test]
    fn prefix_predicate() {
        let a = Name::parse_lit("/1");
        let b = Name::parse_lit("/1/2");
        let c = Name::parse_lit("/12");
        assert!(a.is_prefix_of(&b));
        assert!(!b.is_prefix_of(&a));
        assert!(a.is_prefix_of(&a));
        assert!(!a.is_strict_prefix_of(&a));
        assert!(a.is_strict_prefix_of(&b));
        // Component-wise, not string-wise: /1 is not a prefix of /12.
        assert!(!a.is_prefix_of(&c));
    }

    #[test]
    fn parent_and_child() {
        let n = Name::parse_lit("/1/2");
        assert_eq!(n.parent(), Some(Name::parse_lit("/1")));
        assert_eq!(Name::parse_lit("/1").child_index(2), n);
        assert_eq!(Name::parse_lit("/1").own_area().to_string(), "/1/0");
    }

    #[test]
    fn join_concatenates() {
        let a = Name::parse_lit("/snapshot");
        let b = Name::parse_lit("/1/3");
        assert_eq!(a.join(&b).to_string(), "/snapshot/1/3");
        assert_eq!(a.join(&Name::root()), a);
        assert_eq!(Name::root().join(&b), b);
    }

    #[test]
    fn prefixes_iterate_root_to_full() {
        let n = Name::parse_lit("/1/2/3");
        let p: Vec<String> = n.prefixes().map(|x| x.to_string()).collect();
        assert_eq!(p, ["/", "/1", "/1/2", "/1/2/3"]);
        assert_eq!(n.prefixes().len(), 4);
    }

    #[test]
    fn hash_chain_matches_prefix_hashes() {
        let n = Name::parse_lit("/1/2/3");
        let chain = n.hash_chain();
        assert_eq!(chain.len(), 4);
        for (i, p) in n.prefixes().enumerate() {
            assert_eq!(chain[i], p.stable_hash());
        }
    }

    #[test]
    fn hash_chain_differs_between_siblings() {
        let a = Name::parse_lit("/1/2").stable_hash();
        let b = Name::parse_lit("/1/3").stable_hash();
        assert_ne!(a, b);
    }

    #[test]
    fn ordering_groups_descendants() {
        let mut v = [
            Name::parse_lit("/2"),
            Name::parse_lit("/1/2"),
            Name::parse_lit("/1"),
            Name::root(),
        ];
        v.sort();
        let s: Vec<String> = v.iter().map(ToString::to_string).collect();
        assert_eq!(s, ["/", "/1", "/1/2", "/2"]);
    }

    #[test]
    fn encoded_len_counts_components() {
        assert_eq!(Name::root().encoded_len(), 1);
        assert_eq!(Name::parse_lit("/1/23").encoded_len(), 1 + (1 + 1) + (1 + 2));
    }

    #[test]
    fn from_iterator_collects() {
        let n: Name = (1..=3).map(Component::index).collect();
        assert_eq!(n.to_string(), "/1/2/3");
    }
}
