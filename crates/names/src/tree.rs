//! A prefix trie keyed by [`Name`]s.

use std::collections::BTreeMap;

use crate::{Component, Name};

/// A prefix trie mapping [`Name`]s to values of type `T`.
///
/// `NameTree` is the workhorse behind the NDN FIB (longest-prefix match),
/// the PIT, RP tables and subscription bookkeeping. Iteration order is
/// deterministic (children are kept in a `BTreeMap`).
///
/// # Example
///
/// ```
/// # use gcopss_names::{Name, NameTree};
/// let mut fib: NameTree<u32> = NameTree::new();
/// fib.insert(Name::parse_lit("/1"), 10);
/// fib.insert(Name::parse_lit("/1/2"), 12);
/// let (prefix, face) = fib.longest_prefix(&Name::parse_lit("/1/2/9")).unwrap();
/// assert_eq!(prefix.to_string(), "/1/2");
/// assert_eq!(*face, 12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NameTree<T> {
    root: TrieNode<T>,
    len: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct TrieNode<T> {
    value: Option<T>,
    children: BTreeMap<Component, TrieNode<T>>,
}

impl<T> Default for TrieNode<T> {
    fn default() -> Self {
        Self {
            value: None,
            children: BTreeMap::new(),
        }
    }
}

impl<T> Default for NameTree<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> NameTree<T> {
    /// Creates an empty tree.
    #[must_use]
    pub fn new() -> Self {
        Self {
            root: TrieNode::default(),
            len: 0,
        }
    }

    /// Number of names with values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no name has a value.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a value at `name`, returning the previous value if any.
    pub fn insert(&mut self, name: Name, value: T) -> Option<T> {
        let mut node = &mut self.root;
        for c in name.components() {
            node = node.children.entry(c.clone()).or_default();
        }
        let old = node.value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Returns the value stored exactly at `name`.
    #[must_use]
    pub fn get(&self, name: &Name) -> Option<&T> {
        self.node(name).and_then(|n| n.value.as_ref())
    }

    /// Returns the value stored exactly at `name`, mutably.
    pub fn get_mut(&mut self, name: &Name) -> Option<&mut T> {
        let mut node = &mut self.root;
        for c in name.components() {
            node = node.children.get_mut(c.as_str())?;
        }
        node.value.as_mut()
    }

    /// Returns the value at `name`, inserting `default()` if absent.
    pub fn get_or_insert_with(&mut self, name: &Name, default: impl FnOnce() -> T) -> &mut T {
        let mut node = &mut self.root;
        for c in name.components() {
            node = node.children.entry(c.clone()).or_default();
        }
        if node.value.is_none() {
            node.value = Some(default());
            self.len += 1;
        }
        node.value.as_mut().expect("value just ensured")
    }

    /// Removes and returns the value at `name`, pruning empty branches.
    pub fn remove(&mut self, name: &Name) -> Option<T> {
        fn rec<T>(node: &mut TrieNode<T>, comps: &[Component]) -> (Option<T>, bool) {
            match comps.split_first() {
                None => {
                    let v = node.value.take();
                    let prune = node.children.is_empty();
                    (v, prune)
                }
                Some((head, rest)) => {
                    let Some(child) = node.children.get_mut(head.as_str()) else {
                        return (None, false);
                    };
                    let (v, prune_child) = rec(child, rest);
                    if prune_child {
                        node.children.remove(head.as_str());
                    }
                    let prune = node.value.is_none() && node.children.is_empty();
                    (v, prune)
                }
            }
        }
        let (v, _) = rec(&mut self.root, name.components());
        if v.is_some() {
            self.len -= 1;
        }
        v
    }

    /// Longest-prefix match: returns the deepest `(prefix, value)` such that
    /// `prefix.is_prefix_of(name)` and a value is stored at `prefix`.
    ///
    /// This is the FIB lookup operation of NDN.
    #[must_use]
    pub fn longest_prefix(&self, name: &Name) -> Option<(Name, &T)> {
        let mut best: Option<(usize, &T)> = None;
        let mut node = &self.root;
        if let Some(v) = &node.value {
            best = Some((0, v));
        }
        for (depth, c) in name.components().iter().enumerate() {
            match node.children.get(c.as_str()) {
                Some(child) => {
                    node = child;
                    if let Some(v) = &node.value {
                        best = Some((depth + 1, v));
                    }
                }
                None => break,
            }
        }
        best.map(|(depth, v)| (name.prefix(depth), v))
    }

    /// Returns every `(prefix, value)` along the path from the root to
    /// `name` (all stored prefixes of `name`), shallowest first.
    #[must_use]
    pub fn all_prefixes(&self, name: &Name) -> Vec<(Name, &T)> {
        let mut out = Vec::new();
        let mut node = &self.root;
        if let Some(v) = &node.value {
            out.push((Name::root(), v));
        }
        for (depth, c) in name.components().iter().enumerate() {
            match node.children.get(c.as_str()) {
                Some(child) => {
                    node = child;
                    if let Some(v) = &node.value {
                        out.push((name.prefix(depth + 1), v));
                    }
                }
                None => break,
            }
        }
        out
    }

    /// Returns `true` if any value is stored at `prefix` or below it.
    #[must_use]
    pub fn any_under(&self, prefix: &Name) -> bool {
        fn has_any<T>(node: &TrieNode<T>) -> bool {
            node.value.is_some() || node.children.values().any(has_any)
        }
        self.node(prefix).is_some_and(has_any)
    }

    /// Collects every `(name, value)` stored at `prefix` or below it,
    /// in deterministic (lexicographic) order.
    #[must_use]
    pub fn descendants(&self, prefix: &Name) -> Vec<(Name, &T)> {
        let mut out = Vec::new();
        if let Some(node) = self.node(prefix) {
            collect(node, prefix.clone(), &mut out);
        }
        out
    }

    /// Iterates over all `(name, value)` pairs in deterministic order.
    #[must_use]
    pub fn iter(&self) -> Vec<(Name, &T)> {
        self.descendants(&Name::root())
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.root = TrieNode::default();
        self.len = 0;
    }

    fn node(&self, name: &Name) -> Option<&TrieNode<T>> {
        let mut node = &self.root;
        for c in name.components() {
            node = node.children.get(c.as_str())?;
        }
        Some(node)
    }
}

fn collect<'a, T>(node: &'a TrieNode<T>, name: Name, out: &mut Vec<(Name, &'a T)>) {
    if let Some(v) = &node.value {
        out.push((name.clone(), v));
    }
    for (c, child) in &node.children {
        collect(child, name.child(c.clone()), out);
    }
}

impl<T> FromIterator<(Name, T)> for NameTree<T> {
    fn from_iter<I: IntoIterator<Item = (Name, T)>>(iter: I) -> Self {
        let mut t = Self::new();
        for (n, v) in iter {
            t.insert(n, v);
        }
        t
    }
}

impl<T> Extend<(Name, T)> for NameTree<T> {
    fn extend<I: IntoIterator<Item = (Name, T)>>(&mut self, iter: I) {
        for (n, v) in iter {
            self.insert(n, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse_lit(s)
    }

    #[test]
    fn insert_get_remove() {
        let mut t = NameTree::new();
        assert_eq!(t.insert(n("/1/2"), "a"), None);
        assert_eq!(t.insert(n("/1/2"), "b"), Some("a"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&n("/1/2")), Some(&"b"));
        assert_eq!(t.get(&n("/1")), None);
        assert_eq!(t.remove(&n("/1/2")), Some("b"));
        assert!(t.is_empty());
        assert_eq!(t.remove(&n("/1/2")), None);
    }

    #[test]
    fn value_at_root() {
        let mut t = NameTree::new();
        t.insert(Name::root(), 0);
        assert_eq!(t.get(&Name::root()), Some(&0));
        assert_eq!(t.longest_prefix(&n("/x/y")).unwrap().0, Name::root());
    }

    #[test]
    fn longest_prefix_match() {
        let mut t = NameTree::new();
        t.insert(n("/1"), 1);
        t.insert(n("/1/2/3"), 123);
        let (p, v) = t.longest_prefix(&n("/1/2/3/4")).unwrap();
        assert_eq!((p, *v), (n("/1/2/3"), 123));
        let (p, v) = t.longest_prefix(&n("/1/2")).unwrap();
        assert_eq!((p, *v), (n("/1"), 1));
        assert!(t.longest_prefix(&n("/2")).is_none());
    }

    #[test]
    fn all_prefixes_returns_every_stored_ancestor() {
        let mut t = NameTree::new();
        t.insert(Name::root(), 0);
        t.insert(n("/1"), 1);
        t.insert(n("/1/2"), 12);
        t.insert(n("/1/9"), 19);
        let got: Vec<i32> = t.all_prefixes(&n("/1/2/3")).iter().map(|(_, v)| **v).collect();
        assert_eq!(got, [0, 1, 12]);
    }

    #[test]
    fn descendants_are_sorted_and_scoped() {
        let mut t = NameTree::new();
        t.insert(n("/1/2"), 'a');
        t.insert(n("/1"), 'b');
        t.insert(n("/2"), 'c');
        let d: Vec<String> = t
            .descendants(&n("/1"))
            .iter()
            .map(|(name, _)| name.to_string())
            .collect();
        assert_eq!(d, ["/1", "/1/2"]);
        assert_eq!(t.iter().len(), 3);
    }

    #[test]
    fn any_under_checks_subtree() {
        let mut t = NameTree::new();
        t.insert(n("/1/2/3"), ());
        assert!(t.any_under(&n("/1")));
        assert!(t.any_under(&n("/1/2/3")));
        assert!(!t.any_under(&n("/2")));
        assert!(!t.any_under(&n("/1/2/3/4")));
    }

    #[test]
    fn remove_prunes_branches() {
        let mut t = NameTree::new();
        t.insert(n("/1/2/3"), ());
        t.remove(&n("/1/2/3"));
        // The internal branch should be gone: nothing under /1.
        assert!(!t.any_under(&n("/1")));
    }

    #[test]
    fn remove_keeps_shared_branches() {
        let mut t = NameTree::new();
        t.insert(n("/1/2"), 'a');
        t.insert(n("/1/3"), 'b');
        t.remove(&n("/1/2"));
        assert_eq!(t.get(&n("/1/3")), Some(&'b'));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn get_or_insert_with() {
        let mut t: NameTree<Vec<u32>> = NameTree::new();
        t.get_or_insert_with(&n("/1"), Vec::new).push(7);
        t.get_or_insert_with(&n("/1"), Vec::new).push(8);
        assert_eq!(t.get(&n("/1")), Some(&vec![7, 8]));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn from_iterator() {
        let t: NameTree<u32> = [(n("/1"), 1), (n("/2"), 2)].into_iter().collect();
        assert_eq!(t.len(), 2);
    }
}
